// Golden determinism: the exact MH schedule of the paper's LU design on
// the FIG3 hypercube-8 machine is pinned placement by placement. Any
// change to tie-breaking, priorities, or the communication model shows
// up here first — update deliberately, alongside EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/serialize.hpp"
#include "sched/speedup.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

Machine fig3_machine() {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.process_startup = 0.0;
  p.message_startup = 0.05;
  p.bytes_per_second = 512.0;
  return Machine(machine::Topology::hypercube(3), p);
}

TEST(Golden, Fig3LuScheduleIsPinned) {
  const auto flat = workloads::lu3x3_design().flatten();
  const auto m = fig3_machine();
  const auto s = MhScheduler().run(flat.graph, m);
  s.validate(flat.graph, m);

  // The exact serialised schedule. If a deliberate scheduler change
  // lands, regenerate with:
  //   std::cout << sched::to_text(s, flat.graph);
  const char* expected =
      "schedule mh procs=8\n"
      "place fan1 proc=0 start=0 finish=2\n"
      "place upd2 proc=0 start=2 finish=6\n"
      "place upd3 proc=1 start=2.0656249999999998 finish=6.0656249999999998\n"
      "place fan2 proc=1 start=6.0656249999999998 finish=7.0656249999999998\n"
      "place packL proc=1 start=7.0656249999999998 finish=10.065625000000001\n"
      "place solve.fwd proc=1 start=10.065625000000001 "
      "finish=16.065625000000001\n"
      "place upd4 proc=0 start=7.1312499999999996 "
      "finish=9.1312499999999996\n"
      "place packU proc=0 start=9.1312499999999996 finish=12.13125\n"
      "place solve.back proc=1 start=16.065625000000001 "
      "finish=25.065625000000001\n";
  EXPECT_EQ(to_text(s, flat.graph), expected);
  EXPECT_NEAR(s.makespan(), 25.065625, 1e-9);
}

TEST(Golden, Fig3SpeedupSeriesIsPinned) {
  const auto flat = workloads::lu3x3_design().flatten();
  MhScheduler scheduler;
  const auto curve = predict_speedup(
      flat.graph, scheduler,
      [](int procs) {
        machine::MachineParams p;
        p.processor_speed = 1.0;
        p.message_startup = 0.05;
        p.bytes_per_second = 512.0;
        int dim = 0;
        while ((1 << dim) < procs) ++dim;
        return Machine(machine::Topology::hypercube(dim), p);
      },
      {1, 2, 4, 8});
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.points[0].makespan, 34.0);
  // 34 / 25.065625 = 1.35644...
  EXPECT_NEAR(curve.points[1].speedup, 1.3564, 1e-4);
  EXPECT_NEAR(curve.points[2].speedup, 1.3564, 1e-4);
  EXPECT_NEAR(curve.points[3].speedup, 1.3564, 1e-4);
}

}  // namespace
}  // namespace banger::sched
