// Randomized PITS robustness: generate hundreds of random (but valid)
// programs, then check the core invariants —
//   * printer/parser round trip is a fixpoint,
//   * execution is deterministic,
//   * execution never crashes: it either completes or throws a typed
//     banger::Error.
#include <gtest/gtest.h>

#include <string>

#include "pits/interp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace banger::pits {
namespace {

/// Generates a random expression of bounded depth over variables v0..v3
/// (always defined as scalars) and w (a vector).
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string program(int statements) {
    std::string out =
        "v0 := 1\nv1 := 2.5\nv2 := -3\nv3 := 0.5\nw := [1, 2, 3, 4]\n";
    for (int i = 0; i < statements; ++i) out += statement(2);
    return out;
  }

 private:
  std::string scalar_expr(int depth) {
    if (depth <= 0 || rng_.chance(0.3)) {
      switch (rng_.next_below(4)) {
        case 0: return std::to_string(rng_.uniform_int(1, 9));
        case 1: return "v" + std::to_string(rng_.next_below(4));
        case 2: return "w[" + std::to_string(rng_.next_below(4)) + "]";
        default: return "pi";
      }
    }
    switch (rng_.next_below(7)) {
      case 0:
        return "(" + scalar_expr(depth - 1) + " + " + scalar_expr(depth - 1) +
               ")";
      case 1:
        return "(" + scalar_expr(depth - 1) + " * " + scalar_expr(depth - 1) +
               ")";
      case 2:
        // Guarded division: add a constant so the denominator is nonzero
        // often; division by zero is a legal typed error anyway.
        return "(" + scalar_expr(depth - 1) + " / (" +
               scalar_expr(depth - 1) + " + 17))";
      case 3: return "abs(" + scalar_expr(depth - 1) + ")";
      case 4: return "min(" + scalar_expr(depth - 1) + ", " +
                     scalar_expr(depth - 1) + ")";
      case 5:
        return "when(" + scalar_expr(depth - 1) + " > 0, " +
               scalar_expr(depth - 1) + ", " + scalar_expr(depth - 1) + ")";
      default:
        return "(" + scalar_expr(depth - 1) + " - " + scalar_expr(depth - 1) +
               ")";
    }
  }

  std::string statement(int depth) {
    switch (rng_.next_below(depth > 0 ? 6 : 2)) {
      case 0:
        return "v" + std::to_string(rng_.next_below(4)) + " := " +
               scalar_expr(2) + "\n";
      case 1:
        return "w[" + std::to_string(rng_.next_below(4)) + "] := " +
               scalar_expr(2) + "\n";
      case 2: {
        std::string body;
        const int n = 1 + static_cast<int>(rng_.next_below(2));
        for (int i = 0; i < n; ++i) body += "  " + statement(depth - 1);
        return "if " + scalar_expr(1) + " > " + scalar_expr(1) + " then\n" +
               body + "end\n";
      }
      case 3: {
        std::string body = "  " + statement(depth - 1);
        return "repeat " + std::to_string(rng_.next_below(4)) + " times\n" +
               body + "end\n";
      }
      case 4: {
        std::string body = "  " + statement(depth - 1);
        return "for it := 0 to " + std::to_string(rng_.next_below(5)) +
               " do\n" + body + "end\n";
      }
      default: {
        // Bounded while: counts down from a small value.
        return "cnt := " + std::to_string(rng_.next_below(4)) +
               "\nwhile cnt > 0 do\n  cnt := cnt - 1\n  " +
               statement(depth - 1) + "end\n";
      }
    }
  }

  util::Rng rng_;
};

class PitsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PitsFuzz, PrinterParserFixpoint) {
  ProgramGen gen(GetParam());
  const std::string src = gen.program(6);
  Block block;
  ASSERT_NO_THROW(block = parse_block(src)) << src;
  const std::string once = to_source(block);
  Block reparsed;
  ASSERT_NO_THROW(reparsed = parse_block(once)) << once;
  EXPECT_EQ(to_source(reparsed), once) << src;
}

TEST_P(PitsFuzz, ExecutionDeterministicAndContained) {
  ProgramGen gen(GetParam() ^ 0x5eedull);
  const std::string src = gen.program(6);
  ExecOptions opts;
  opts.step_limit = 200000;

  auto run_once = [&]() -> std::pair<bool, std::string> {
    Env env;
    try {
      Program::parse(src).execute(env, opts);
    } catch (const Error& e) {
      return {false, e.what()};  // typed error: acceptable outcome
    }
    std::string state;
    for (const auto& [name, value] : env) {
      state += name + "=" + value.to_display() + ";";
    }
    return {true, state};
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << src;
}

TEST_P(PitsFuzz, RoundTrippedProgramBehavesIdentically) {
  ProgramGen gen(GetParam() ^ 0xabcdull);
  const std::string src = gen.program(5);
  const std::string printed = to_source(parse_block(src));
  ExecOptions opts;
  opts.step_limit = 200000;

  auto final_state = [&](const std::string& text) -> std::string {
    Env env;
    try {
      Program::parse(text).execute(env, opts);
    } catch (const Error& e) {
      return std::string("error: ") + std::string(to_string(e.code()));
    }
    std::string state;
    for (const auto& [name, value] : env) {
      state += name + "=" + value.to_display() + ";";
    }
    return state;
  };

  EXPECT_EQ(final_state(src), final_state(printed)) << src;
}

TEST_P(PitsFuzz, FusedVmMatchesWalker) {
  // The peephole pass always runs, so the VM side of this differential
  // executes fused superinstructions; the walker is the oracle. Random
  // programs hit fusion shapes (const operands, loop-head compares) the
  // hand-picked suites might miss.
  ProgramGen gen(GetParam() ^ 0xf05edull);
  const std::string src = gen.program(6);
  auto outcome = [&](ExecOptions::Engine engine) -> std::string {
    ExecOptions opts;
    opts.step_limit = 200000;
    opts.engine = engine;
    Env env;
    try {
      Program::parse(src).execute(env, opts);
    } catch (const Error& e) {
      return std::string("error: ") + e.what();
    }
    std::string state;
    for (const auto& [name, value] : env) {
      state += name + "=" + value.to_display() + ";";
    }
    return state;
  };
  EXPECT_EQ(outcome(ExecOptions::Engine::Vm),
            outcome(ExecOptions::Engine::Walk))
      << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PitsFuzz,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace banger::pits
