// The calculator's button functions: registry and semantics of every
// group, via the interpreter.
#include <gtest/gtest.h>

#include "pits/builtins.hpp"
#include "pits/interp.hpp"
#include "util/error.hpp"

namespace banger::pits {
namespace {

double evald(const std::string& expr, Env env = {}) {
  return eval_expression(expr, env).as_scalar();
}

Vector evalv(const std::string& expr, Env env = {}) {
  return eval_expression(expr, env).as_vector();
}

TEST(Registry, HasCoreButtons) {
  const auto& reg = BuiltinRegistry::instance();
  for (const char* name :
       {"sin", "cos", "sqrt", "exp", "ln", "abs", "min", "max", "len", "sum",
        "dot", "zeros", "range", "print", "rand"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("no_such_fn"), nullptr);
  EXPECT_GT(reg.size(), 40u);
}

TEST(Registry, GroupsPartitionButtons) {
  const auto& reg = BuiltinRegistry::instance();
  EXPECT_FALSE(reg.group("trig").empty());
  EXPECT_FALSE(reg.group("vector").empty());
  EXPECT_FALSE(reg.group("stats").empty());
  std::size_t total = 0;
  for (const char* g : {"trig", "explog", "round", "vector", "stats", "misc"}) {
    total += reg.group(g).size();
  }
  EXPECT_EQ(total, reg.size());
}

TEST(Registry, EveryButtonHasHelpText) {
  const auto& reg = BuiltinRegistry::instance();
  for (const auto& name : reg.names()) {
    EXPECT_FALSE(reg.find(name)->help.empty()) << name;
  }
}

TEST(Trig, BasicsAndInverses) {
  EXPECT_NEAR(evald("sin(pi / 2)"), 1.0, 1e-12);
  EXPECT_NEAR(evald("cos(0)"), 1.0, 1e-12);
  EXPECT_NEAR(evald("tan(pi / 4)"), 1.0, 1e-12);
  EXPECT_NEAR(evald("asin(1)"), 1.5707963267948966, 1e-12);
  EXPECT_NEAR(evald("atan2(1, 1)"), 0.7853981633974483, 1e-12);
  EXPECT_NEAR(evald("deg(pi)"), 180.0, 1e-9);
  EXPECT_NEAR(evald("rad(180)"), 3.14159265358979, 1e-9);
  EXPECT_NEAR(evald("tanh(100)"), 1.0, 1e-12);
}

TEST(Trig, BroadcastsOverVectors) {
  const auto v = evalv("sin([0, pi / 2])");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
}

TEST(ExpLog, DomainsEnforced) {
  EXPECT_NEAR(evald("ln(e)"), 1.0, 1e-12);
  EXPECT_NEAR(evald("log10(1000)"), 3.0, 1e-12);
  EXPECT_NEAR(evald("log2(8)"), 3.0, 1e-12);
  EXPECT_NEAR(evald("sqrt(16)"), 4.0, 1e-12);
  EXPECT_NEAR(evald("cbrt(-27)"), -3.0, 1e-12);
  EXPECT_NEAR(evald("hypot(3, 4)"), 5.0, 1e-12);
  EXPECT_THROW(evald("ln(0)"), Error);
  EXPECT_THROW(evald("sqrt(-1)"), Error);
  EXPECT_THROW(evald("log10(-5)"), Error);
}

TEST(Rounding, AllForms) {
  EXPECT_DOUBLE_EQ(evald("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(evald("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(evald("round(2.5)"), 3.0);
  EXPECT_DOUBLE_EQ(evald("trunc(-2.7)"), -2.0);
  EXPECT_NEAR(evald("frac(2.75)"), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(evald("sign(-9)"), -1.0);
  EXPECT_DOUBLE_EQ(evald("sign(0)"), 0.0);
  EXPECT_DOUBLE_EQ(evald("abs(-4)"), 4.0);
}

TEST(MinMaxClamp, Variadic) {
  EXPECT_DOUBLE_EQ(evald("min(3, 1, 2)"), 1.0);
  EXPECT_DOUBLE_EQ(evald("max(3, 1, 2)"), 3.0);
  EXPECT_DOUBLE_EQ(evald("min(5)"), 5.0);
  EXPECT_DOUBLE_EQ(evald("clamp(10, 0, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(evald("clamp(-1, 0, 5)"), 0.0);
  EXPECT_THROW(evald("clamp(1, 5, 0)"), Error);
}

TEST(Combinatorics, FactAndNcr) {
  EXPECT_DOUBLE_EQ(evald("fact(5)"), 120.0);
  EXPECT_DOUBLE_EQ(evald("fact(0)"), 1.0);
  EXPECT_DOUBLE_EQ(evald("ncr(5, 2)"), 10.0);
  EXPECT_DOUBLE_EQ(evald("ncr(5, 7)"), 0.0);
  EXPECT_THROW(evald("fact(-1)"), Error);
  EXPECT_THROW(evald("fact(2.5)"), Error);
  EXPECT_THROW(evald("fact(200)"), Error);
}

TEST(VectorOps, ConstructionButtons) {
  EXPECT_EQ(evalv("zeros(3)"), (Vector{0, 0, 0}));
  EXPECT_EQ(evalv("ones(2)"), (Vector{1, 1}));
  EXPECT_EQ(evalv("range(0, 4)"), (Vector{0, 1, 2, 3}));
  EXPECT_EQ(evalv("range(1, 2, 0.5)"), (Vector{1, 1.5}));
  EXPECT_EQ(evalv("range(3, 0, -1)"), (Vector{3, 2, 1}));
  EXPECT_THROW(evalv("range(0, 1, 0)"), Error);
  EXPECT_THROW(evalv("zeros(-1)"), Error);
}

TEST(VectorOps, Manipulation) {
  EXPECT_EQ(evalv("append([1, 2], 3)"), (Vector{1, 2, 3}));
  EXPECT_EQ(evalv("concat([1], [2, 3])"), (Vector{1, 2, 3}));
  EXPECT_EQ(evalv("slice([1, 2, 3, 4], 1, 3)"), (Vector{2, 3}));
  EXPECT_EQ(evalv("reverse([1, 2, 3])"), (Vector{3, 2, 1}));
  EXPECT_EQ(evalv("sort([3, 1, 2])"), (Vector{1, 2, 3}));
  EXPECT_EQ(evalv("set([1, 2, 3], 1, 9)"), (Vector{1, 9, 3}));
  EXPECT_DOUBLE_EQ(evald("get([5, 6], 1)"), 6.0);
  EXPECT_THROW(evalv("slice([1], 0, 5)"), Error);
  EXPECT_THROW(evald("get([1], 3)"), Error);
}

TEST(Stats, Reductions) {
  EXPECT_DOUBLE_EQ(evald("len([1, 2, 3])"), 3.0);
  EXPECT_DOUBLE_EQ(evald("len(\"hello\")"), 5.0);
  EXPECT_DOUBLE_EQ(evald("sum([1, 2, 3])"), 6.0);
  EXPECT_DOUBLE_EQ(evald("prod([2, 3, 4])"), 24.0);
  EXPECT_DOUBLE_EQ(evald("mean([1, 2, 3])"), 2.0);
  EXPECT_NEAR(evald("stddev([2, 4, 4, 4, 5, 5, 7, 9])"), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(evald("minv([3, 1, 2])"), 1.0);
  EXPECT_DOUBLE_EQ(evald("maxv([3, 1, 2])"), 3.0);
  EXPECT_DOUBLE_EQ(evald("dot([1, 2], [3, 4])"), 11.0);
  EXPECT_DOUBLE_EQ(evald("norm([3, 4])"), 5.0);
  EXPECT_THROW(evald("mean([])"), Error);
  EXPECT_THROW(evald("dot([1], [1, 2])"), Error);
}

TEST(Misc, StrRendersValues) {
  Env env;
  EXPECT_EQ(eval_expression("str(3.5)", env).as_string(), "3.5");
  EXPECT_EQ(eval_expression("str([1, 2])", env).as_string(), "[1, 2]");
}

TEST(Misc, ArityErrors) {
  EXPECT_THROW(evald("sqrt()"), Error);
  EXPECT_THROW(evald("sqrt(1, 2)"), Error);
  EXPECT_THROW(evald("dot([1])"), Error);
  EXPECT_THROW(evald("min()"), Error);
}

TEST(Misc, TypeErrors) {
  EXPECT_THROW(evald("sum(3)"), Error);
  EXPECT_THROW(evald("sqrt([1], 2)"), Error);
  EXPECT_THROW(evald("zeros([1])"), Error);
}

TEST(Constants, PhysicsTable) {
  const auto& c = constants();
  EXPECT_NEAR(c.at("pi"), 3.141592653589793, 1e-15);
  EXPECT_NEAR(c.at("g_accel"), 9.80665, 1e-12);
  EXPECT_NEAR(c.at("c_light"), 299792458.0, 1.0);
  EXPECT_GT(c.size(), 8u);
}

}  // namespace
}  // namespace banger::pits
