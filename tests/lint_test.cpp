// Design-level linting: interface mismatches, dead stores, unreachable
// work — the environment's early-defect-removal feedback.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/lint.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger {
namespace {

using graph::Design;
using graph::Node;
using graph::NodeKind;

Node task_node(std::string name, std::vector<std::string> in,
               std::vector<std::string> out, std::string pits) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = std::move(name);
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  n.pits = std::move(pits);
  return n;
}

Node store_node(std::string name) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = std::move(name);
  return n;
}

bool mentions(const std::vector<LintIssue>& issues, const std::string& text) {
  return std::any_of(issues.begin(), issues.end(), [&](const LintIssue& i) {
    return i.to_string().find(text) != std::string::npos;
  });
}

TEST(Lint, CleanDesignsPass) {
  EXPECT_TRUE(lint_design(workloads::lu3x3_design()).empty());
  EXPECT_TRUE(lint_design(workloads::montecarlo_design(3, 10)).empty());
  EXPECT_TRUE(lint_design(workloads::signal_pipeline_design(2)).empty());
  EXPECT_TRUE(lint_design(workloads::polyeval_design(2)).empty());
}

TEST(Lint, UndeclaredReadIsError) {
  Design d("bad");
  d.root_graph().add_node(
      task_node("t", {}, {"r"}, "r := mystery + 1\n"));
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_errors(issues));
  EXPECT_TRUE(mentions(issues, "reads `mystery`"));
}

TEST(Lint, UnusedInputIsWarning) {
  Design d("warn");
  auto& g = d.root_graph();
  g.add_node(store_node("a"));
  g.add_node(store_node("b"));
  g.add_node(task_node("t", {"a", "b"}, {"r"}, "r := a\n"));
  g.connect("a", "t", "a");
  g.connect("b", "t", "b");
  const auto issues = lint_design(d);
  EXPECT_FALSE(has_errors(issues));
  EXPECT_TRUE(mentions(issues, "input `b` is never read"));
}

TEST(Lint, UnassignedOutputIsError) {
  Design d("bad");
  d.root_graph().add_node(task_node("t", {}, {"r"}, "x := 1\n"));
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_errors(issues));
  EXPECT_TRUE(mentions(issues, "output `r` is never assigned"));
}

TEST(Lint, ParseFailureIsError) {
  Design d("bad");
  d.root_graph().add_node(task_node("t", {}, {"r"}, "r := := 1\n"));
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_errors(issues));
  EXPECT_TRUE(mentions(issues, "does not parse"));
}

TEST(Lint, SkeletonTaskWarnsOnlyWhenAsked) {
  Design d("sketch");
  d.root_graph().add_node(task_node("todo", {}, {}, ""));
  LintOptions strict;
  strict.require_pits = true;
  EXPECT_TRUE(mentions(lint_design(d, strict), "skeleton"));
  LintOptions lax;
  lax.require_pits = false;
  EXPECT_FALSE(mentions(lint_design(d, lax), "skeleton"));
}

TEST(Lint, EmptyBodyWithOutputsIsErrorRegardless) {
  Design d("bad");
  d.root_graph().add_node(task_node("hollow", {}, {"r"}, ""));
  LintOptions lax;
  lax.require_pits = false;
  EXPECT_TRUE(has_errors(lint_design(d, lax)));
}

TEST(Lint, DeadStoreWarned) {
  Design d("warn");
  auto& g = d.root_graph();
  g.add_node(store_node("orphan"));
  g.add_node(task_node("t", {}, {"r"}, "r := 1\n"));
  const auto issues = lint_design(d);
  EXPECT_TRUE(mentions(issues, "dead store"));
}

TEST(Lint, UnboundInputIsError) {
  Design d("bad");
  auto& g = d.root_graph();
  // Input `a` has neither a producer edge nor an input store.
  g.add_node(task_node("t", {"a"}, {"r"}, "r := a\n"));
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_errors(issues));
  EXPECT_TRUE(mentions(issues, "bound to nothing"));
}

TEST(Lint, UnobservableWorkWarned) {
  Design d("warn");
  auto& g = d.root_graph();
  g.add_node(store_node("out"));
  g.add_node(task_node("useful", {}, {"out"}, "out := 1\n"));
  g.add_node(task_node("wasted", {}, {}, "x := 1\n"));
  g.connect("useful", "out", "out");
  const auto issues = lint_design(d);
  EXPECT_TRUE(mentions(issues, "`wasted`"));
  EXPECT_FALSE(mentions(issues, "`useful`:"));
}

TEST(Lint, ErrorsSortBeforeWarnings) {
  Design d("mixed");
  auto& g = d.root_graph();
  g.add_node(store_node("dead1"));
  g.add_node(task_node("zz_bad", {}, {"r"}, "r := oops\n"));
  const auto issues = lint_design(d);
  ASSERT_GE(issues.size(), 2u);
  EXPECT_EQ(issues.front().severity, LintSeverity::Error);
}

TEST(Lint, WorkEstimateHeuristic) {
  Design d("warn");
  auto& g = d.root_graph();
  Node t = task_node("t", {}, {"r"}, "r := 1\n");
  t.work = 5000.0;  // one-line task claiming enormous work
  g.add_node(std::move(t));
  LintOptions opts;
  opts.work_estimate_factor = 100.0;
  EXPECT_TRUE(mentions(lint_design(d, opts), "work estimate"));
  opts.work_estimate_factor = 0.0;
  EXPECT_FALSE(mentions(lint_design(d, opts), "work estimate"));
}

}  // namespace
}  // namespace banger
