// Differential tests for batched trial runs: run_trials must produce,
// for every input set in the batch, exactly what run_sequential produces
// for the same input — same outputs, same stores, same transcript, same
// task order, same error text — across engines, step limits, error
// inputs mid-batch, and every --jobs value. The batch path reuses
// compiled programs and VM frames; these tests are what keep that
// reuse observationally invisible.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger::exec {
namespace {

using pits::Value;
using pits::Vector;

std::map<std::string, Value> lu_inputs(double scale) {
  // Same system as exec_test's lu_inputs, with b scaled so each trial
  // solves for a different (still exact) x.
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{scale * 16, scale * 39, scale * 45})}};
}

std::vector<std::map<std::string, Value>> lu_batch(int n) {
  std::vector<std::map<std::string, Value>> batch;
  batch.reserve(n);
  for (int i = 0; i < n; ++i) {
    batch.push_back(lu_inputs(1.0 + 0.5 * i));
  }
  return batch;
}

/// Every observable field except wall-clock times.
void expect_same_run(const RunResult& got, const RunResult& want,
                     const std::string& label) {
  EXPECT_EQ(got.outputs, want.outputs) << label;
  EXPECT_EQ(got.stores, want.stores) << label;
  EXPECT_EQ(got.transcript, want.transcript) << label;
  ASSERT_EQ(got.runs.size(), want.runs.size()) << label;
  for (std::size_t i = 0; i < got.runs.size(); ++i) {
    EXPECT_EQ(got.runs[i].task, want.runs[i].task) << label << " run " << i;
  }
}

RunOptions engine_options(pits::ExecOptions::Engine engine) {
  RunOptions options;
  options.pits.engine = engine;
  return options;
}

TEST(Batch, MatchesOneShotOnBothEngines) {
  const auto flat = workloads::lu3x3_design().flatten();
  const auto batch = lu_batch(8);
  for (const auto engine : {pits::ExecOptions::Engine::Vm,
                            pits::ExecOptions::Engine::Walk}) {
    const RunOptions options = engine_options(engine);
    const auto outcomes = run_trials(flat, batch, options);
    ASSERT_EQ(outcomes.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
      expect_same_run(outcomes[i].result,
                      run_sequential(flat, batch[i], options),
                      "trial " + std::to_string(i));
    }
  }
}

TEST(Batch, VmAndWalkerAgreeTrialByTrial) {
  const auto flat = workloads::heat_design(3, 6, 8).flatten();
  std::vector<std::map<std::string, Value>> batch;
  for (int t = 0; t < 6; ++t) {
    Vector rod(3 * 8, 0.0);
    rod[static_cast<std::size_t>(t) * 4] = 100.0;
    batch.push_back({{"rod", Value(rod)}});
  }
  const auto vm =
      run_trials(flat, batch, engine_options(pits::ExecOptions::Engine::Vm));
  const auto walk =
      run_trials(flat, batch, engine_options(pits::ExecOptions::Engine::Walk));
  ASSERT_EQ(vm.size(), walk.size());
  for (std::size_t i = 0; i < vm.size(); ++i) {
    ASSERT_TRUE(vm[i].ok) << vm[i].error;
    ASSERT_TRUE(walk[i].ok) << walk[i].error;
    expect_same_run(vm[i].result, walk[i].result,
                    "trial " + std::to_string(i));
  }
}

TEST(Batch, ErrorMidBatchDoesNotPoisonNeighbours) {
  const auto flat = workloads::lu3x3_design().flatten();
  auto batch = lu_batch(5);
  batch[2]["A"] = Value(Vector{0, 3, 2, 8, 8, 5, 4, 7, 9});  // zero pivot
  for (const auto engine : {pits::ExecOptions::Engine::Vm,
                            pits::ExecOptions::Engine::Walk}) {
    const RunOptions options = engine_options(engine);
    const auto outcomes = run_trials(flat, batch, options);
    ASSERT_EQ(outcomes.size(), 5u);
    for (const std::size_t i : {0u, 1u, 3u, 4u}) {
      ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
      expect_same_run(outcomes[i].result,
                      run_sequential(flat, batch[i], options),
                      "trial " + std::to_string(i));
    }
    // The failed trial reports exactly what the one-shot run throws.
    EXPECT_FALSE(outcomes[2].ok);
    try {
      (void)run_sequential(flat, batch[2], options);
      FAIL() << "expected division by zero";
    } catch (const Error& e) {
      EXPECT_EQ(outcomes[2].error_code, e.code());
      EXPECT_EQ(outcomes[2].error, e.message());
      EXPECT_EQ(outcomes[2].error_pos.line, e.pos().line);
      EXPECT_EQ(outcomes[2].error_pos.column, e.pos().column);
    }
  }
}

TEST(Batch, MissingExternalInputMatchesOneShotError) {
  const auto flat = workloads::lu3x3_design().flatten();
  std::vector<std::map<std::string, Value>> batch = {
      lu_inputs(1.0), {{"A", Value(Vector{1})}}};
  const auto outcomes = run_trials(flat, batch);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[1].ok);
  try {
    (void)run_sequential(flat, batch[1]);
    FAIL() << "expected missing-input error";
  } catch (const Error& e) {
    EXPECT_EQ(outcomes[1].error_code, e.code());
    EXPECT_EQ(outcomes[1].error, e.message());
  }
}

TEST(Batch, StepLimitMatchesOneShotAtEveryThreshold) {
  // Sweep limits from "everything aborts" to "everything fits": at each
  // threshold the batched outcome — success or the Limit error with the
  // task name — must be exactly the one-shot outcome. step_limit=2 must
  // abort (every LU task body has >2 statements).
  const auto flat = workloads::lu3x3_design().flatten();
  const auto batch = lu_batch(3);
  bool saw_abort = false;
  for (const std::uint64_t limit : {1u, 2u, 5u, 10u, 200000u}) {
    RunOptions options;
    options.pits.step_limit = limit;
    const auto outcomes = run_trials(flat, batch, options);
    ASSERT_EQ(outcomes.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string label =
          "limit " + std::to_string(limit) + " trial " + std::to_string(i);
      try {
        const auto one = run_sequential(flat, batch[i], options);
        ASSERT_TRUE(outcomes[i].ok) << label << ": " << outcomes[i].error;
        expect_same_run(outcomes[i].result, one, label);
      } catch (const Error& e) {
        saw_abort = true;
        ASSERT_FALSE(outcomes[i].ok) << label;
        EXPECT_EQ(outcomes[i].error_code, e.code()) << label;
        EXPECT_EQ(outcomes[i].error, e.message()) << label;
      }
    }
  }
  EXPECT_TRUE(saw_abort) << "no limit in the sweep aborted anything";
}

TEST(Batch, JobsValueNeverChangesResults) {
  const auto flat = workloads::lu3x3_design().flatten();
  auto batch = lu_batch(16);
  batch[7]["A"] = Value(Vector{0, 3, 2, 8, 8, 5, 4, 7, 9});  // one failure
  const auto reference = run_trials(flat, batch, {}, /*jobs=*/1);
  for (const int jobs : {2, 3, 8, 0}) {  // 0 = all cores
    const auto outcomes = run_trials(flat, batch, {}, jobs);
    ASSERT_EQ(outcomes.size(), reference.size()) << "jobs " << jobs;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const std::string label =
          "jobs " + std::to_string(jobs) + " trial " + std::to_string(i);
      ASSERT_EQ(outcomes[i].ok, reference[i].ok) << label;
      if (outcomes[i].ok) {
        expect_same_run(outcomes[i].result, reference[i].result, label);
      } else {
        EXPECT_EQ(outcomes[i].error, reference[i].error) << label;
        EXPECT_EQ(outcomes[i].error_code, reference[i].error_code) << label;
      }
    }
  }
}

TEST(Batch, EmptyBatchIsEmpty) {
  const auto flat = workloads::lu3x3_design().flatten();
  EXPECT_TRUE(run_trials(flat, {}).empty());
}

TEST(Batch, TranscriptsStayPerTrial) {
  // montecarlo prints per-task seeds into the transcript; batched runs
  // reuse one transcript buffer per worker, which must never leak text
  // across trials. Identical inputs -> identical transcripts.
  const auto flat = workloads::montecarlo_design(3, 200).flatten();
  const std::vector<std::map<std::string, Value>> batch(4);
  const auto outcomes = run_trials(flat, batch, {}, /*jobs=*/2);
  const auto one = run_sequential(flat, {});
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result.transcript, one.transcript)
        << "trial " << i;
    EXPECT_EQ(outcomes[i].result.outputs, one.outputs) << "trial " << i;
  }
}

}  // namespace
}  // namespace banger::exec
