// DesignBuilder: IO inference from PITS, auto-wiring, hierarchy.
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "graph/builder.hpp"
#include "sched/heuristics.hpp"
#include "util/error.hpp"

namespace banger::graph {
namespace {

TEST(Builder, QuickstartInSixStatements) {
  auto design = DesignBuilder("quadratic")
                    .store("xs", 256)
                    .store("ys", 256)
                    .task("square_term", "sq := 3 * xs * xs\n", 4)
                    .task("linear_term", "lin := 2 * xs\n", 2)
                    .task("combine", "ys := sq + lin\n", 1)
                    .build();
  const auto flat = design.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 3u);
  // combine depends on both term tasks.
  const auto combine = flat.graph.require("combine");
  EXPECT_EQ(flat.graph.preds(combine).size(), 2u);
  // ...and the whole thing actually runs.
  pits::Vector xs{0, 1, 2};
  const auto result = exec::run_sequential(flat, {{"xs", pits::Value(xs)}});
  EXPECT_EQ(result.outputs.at("ys").as_vector(), (pits::Vector{0, 5, 16}));
}

TEST(Builder, IoInferenceIgnoresLocalsAndConstants) {
  auto design = DesignBuilder("d")
                    .store("a")
                    .task("t",
                          "tmp := a * pi\n"
                          "formula f(x) := x + 1\n"
                          "out := f(tmp)\n")
                    .build();
  const auto& node =
      design.root_graph().node(design.root_graph().require("t"));
  EXPECT_EQ(node.inputs, (std::vector<std::string>{"a"}));
  // tmp, out, and the formula's bookkeeping all count as assigned; only
  // `a` is free (pi is a constant, x a parameter).
  EXPECT_NE(std::find(node.outputs.begin(), node.outputs.end(), "out"),
            node.outputs.end());
}

TEST(Builder, ExplicitInterfaceOverridesInference) {
  auto design = DesignBuilder("d")
                    .store("a")
                    .task("t", "out := a\nscratch := 1\n", 1.0, {"a"},
                          {"out"})
                    .build();
  const auto& node =
      design.root_graph().node(design.root_graph().require("t"));
  EXPECT_EQ(node.outputs, (std::vector<std::string>{"out"}));
}

TEST(Builder, TaskToTaskWiringWithoutStores) {
  auto design = DesignBuilder("d")
                    .task("producer", "v := 42\n")
                    .task("consumer", "w := v * 2\n")
                    .var_bytes("v", 128)
                    .build();
  const auto flat = design.flatten();
  ASSERT_EQ(flat.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(flat.graph.edge(0).bytes, 128.0);
  EXPECT_EQ(flat.graph.edge(0).var, "v");
}

TEST(Builder, ExplicitArcsNotDuplicated) {
  auto design = DesignBuilder("d")
                    .store("a", 64)
                    .task("t", "out := a\n")
                    .arc("a", "t", "a", 64)
                    .build();
  // One arc a->t, not two.
  std::size_t arcs_into_t = 0;
  const auto& g = design.root_graph();
  for (const Arc& arc : g.arcs()) {
    if (g.node(arc.to).name == "t") ++arcs_into_t;
  }
  EXPECT_EQ(arcs_into_t, 1u);
}

TEST(Builder, HierarchyViaSuperAndGraph) {
  auto design = DesignBuilder("top")
                    .store("in_data", 64)
                    .store("out_data", 64)
                    .super("stage", "inner", {"in_data"}, {"out_data"})
                    .graph("inner")
                    .task("work", "out_data := in_data * 2\n", 3)
                    .build();
  EXPECT_EQ(design.depth(), 2);
  const auto flat = design.flatten();
  EXPECT_TRUE(flat.graph.find("stage.work").has_value());
  const auto result = exec::run_sequential(
      flat, {{"in_data", pits::Value(pits::Vector{1, 2})}});
  EXPECT_EQ(result.outputs.at("out_data").as_vector(), (pits::Vector{2, 4}));
}

TEST(Builder, BuildValidates) {
  DesignBuilder bad("d");
  bad.task("a", "x := y\n", 1.0, {"y"}, {"x"});
  bad.task("b", "y := x\n", 1.0, {"x"}, {"y"});
  // a and b feed each other: auto-wiring creates a cycle.
  EXPECT_THROW((void)bad.build(), Error);
}

TEST(Builder, BuildUncheckedSkipsValidation) {
  DesignBuilder bad("d");
  bad.task("a", "x := y\n", 1.0, {"y"}, {"x"});
  bad.task("b", "y := x\n", 1.0, {"x"}, {"y"});
  const auto design = bad.build_unchecked();
  EXPECT_FALSE(design.root_graph().is_acyclic());
}

TEST(Builder, RejectsBadPitsAtTaskTime) {
  DesignBuilder b("d");
  EXPECT_THROW(b.task("t", "x := := 1\n"), Error);
}

TEST(Builder, WholeWorkflowThroughProjectStack) {
  auto design = DesignBuilder("dotprod")
                    .store("u", 128)
                    .store("v", 128)
                    .store("d", 8)
                    .task("multiply", "w := u * v\n", 4)
                    .task("reduce", "d := sum(w)\n", 2)
                    .var_bytes("w", 128)
                    .build();
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e5;
  machine::Machine m(machine::Topology::fully_connected(2), p);
  const auto flat = design.flatten();
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  schedule.validate(flat.graph, m);
  exec::Executor executor(flat, m);
  const auto result = executor.run(
      schedule, {{"u", pits::Value(pits::Vector{1, 2, 3})},
                 {"v", pits::Value(pits::Vector{4, 5, 6})}});
  EXPECT_DOUBLE_EQ(result.outputs.at("d").as_scalar(), 32.0);
}

}  // namespace
}  // namespace banger::graph
