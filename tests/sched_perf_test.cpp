// Golden determinism suite guarding the scheduler hot-path work: every
// heuristic must emit byte-identical schedules to the straightforward
// seed implementation (pinned in tests/golden/sched/ — small cases as
// full text, large cases as FNV-1a hashes), and every batch entry point
// (compare_schedulers, fault Monte Carlo, multi-restart annealing,
// speedup prediction) must return bit-identical results for any worker
// count. A brute-force Timeline reference cross-checks the gap-indexed
// earliest_slot on random occupancy patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/recovery.hpp"
#include "fault/fault.hpp"
#include "sched/anneal.hpp"
#include "sched/compare.hpp"
#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "sched/serialize.hpp"
#include "sched/speedup.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

#include "reference_dsh.hpp"

namespace banger::sched {
namespace {

namespace fs = std::filesystem;

// --- corpus (must match the generator that produced tests/golden/sched) ---

Machine cube8() {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.1;
  p.bytes_per_second = 1e3;
  return Machine(machine::Topology::hypercube(3), p);
}

graph::TaskGraph sized_graph(int n) {
  workloads::RandomGraphSpec spec;
  spec.layers = n / 8;
  spec.width = 8;
  spec.seed = 7;
  return workloads::random_layered(spec);
}

/// Tests run from build/; the goldens live next to the sources. Walk up
/// until tests/golden/sched appears (same idiom as samples_test).
std::string golden_dir() {
  fs::path dir = fs::current_path();
  for (int i = 0; i < 8 && !dir.empty(); ++i) {
    if (fs::exists(dir / "tests" / "golden" / "sched" / "hashes.txt")) {
      return (dir / "tests" / "golden" / "sched").string();
    }
    if (dir == dir.parent_path()) break;
    dir = dir.parent_path();
  }
  return {};
}

/// With BANGER_UPDATE_GOLDEN=1 the golden tests rewrite the corpus from
/// the current implementation instead of comparing against it — for
/// changes that are *meant* to alter schedules. Diff the result before
/// committing it.
bool update_golden() {
  const char* env = std::getenv("BANGER_UPDATE_GOLDEN");
  return env != nullptr && env[0] == '1';
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open()) << "cannot write " << path;
  f << data;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

/// FNV-1a 64-bit — matches the hash manifest generator (now the shared
/// util implementation the serve artifact cache keys with).
std::string fnv1a_hex(const std::string& data) {
  return util::fnv1a64_hex(data);
}

class SchedGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = golden_dir();
    if (dir_.empty()) GTEST_SKIP() << "tests/golden/sched not found from cwd";
  }
  std::string dir_;
};

TEST_F(SchedGolden, SmallCasesMatchSeedTextByteForByte) {
  const auto m = cube8();
  const std::vector<std::pair<std::string, graph::TaskGraph>> cases = {
      {"lu8", workloads::lu_taskgraph(8, 8.0)}, {"rand64", sized_graph(64)}};
  for (const auto& [label, graph] : cases) {
    for (const std::string& name : scheduler_names()) {
      const auto s = make_scheduler(name)->run(graph, m);
      s.validate(graph, m);
      const std::string path = dir_ + "/" + label + "_" + name + ".sched";
      if (update_golden()) {
        write_file(path, to_text(s, graph));
        continue;
      }
      EXPECT_EQ(to_text(s, graph), read_file(path))
          << name << " diverged from the seed on " << label;
    }
  }
}

TEST_F(SchedGolden, LargeCasesMatchSeedHashes) {
  const auto m = cube8();
  std::map<std::string, graph::TaskGraph> graphs;
  graphs.emplace("rand256", sized_graph(256));
  graphs.emplace("rand1024", sized_graph(1024));

  if (update_golden()) {
    std::ostringstream out;
    for (const auto& [label, graph] : graphs) {
      for (const std::string& name : scheduler_names()) {
        const auto s = make_scheduler(name)->run(graph, m);
        out << label << '_' << name << ' ' << fnv1a_hex(to_text(s, graph))
            << '\n';
      }
    }
    write_file(dir_ + "/hashes.txt", out.str());
    return;
  }

  std::ifstream manifest(dir_ + "/hashes.txt");
  ASSERT_TRUE(manifest.is_open());
  std::string entry, expected;
  int checked = 0;
  while (manifest >> entry >> expected) {
    const auto underscore = entry.rfind('_');
    ASSERT_NE(underscore, std::string::npos) << entry;
    const std::string label = entry.substr(0, underscore);
    const std::string scheduler = entry.substr(underscore + 1);
    const auto it = graphs.find(label);
    ASSERT_NE(it, graphs.end()) << label;
    const auto s = make_scheduler(scheduler)->run(it->second, m);
    EXPECT_EQ(fnv1a_hex(to_text(s, it->second)), expected)
        << scheduler << " diverged from the seed on " << label;
    ++checked;
  }
  EXPECT_EQ(checked, 20);  // 10 heuristics x {rand256, rand1024}
}

TEST_F(SchedGolden, FaultRepairScheduleMatchesSeed) {
  const auto m = cube8();
  const auto g = workloads::lu_taskgraph(8, 8.0);
  const auto s = MhScheduler().run(g, m);
  const auto plan = fault::plan_crash_busiest(s, 0.5);
  const auto report = core::run_with_faults(g, m, s, plan);
  ASSERT_TRUE(report.crashed);
  if (update_golden()) {
    write_file(dir_ + "/lu8_mh_repair.sched",
               to_text(report.repair.schedule, g));
    return;
  }
  EXPECT_EQ(to_text(report.repair.schedule, g),
            read_file(dir_ + "/lu8_mh_repair.sched"));
}

// --- cross-jobs determinism of the batch layer ---

TEST(SchedParallel, CompareSchedulersIsIdenticalForAnyJobs) {
  const auto g = sized_graph(256);
  const auto m = cube8();
  const auto names = scheduler_names();
  const auto baseline = compare_schedulers(g, m, names, {}, 1);
  ASSERT_EQ(baseline.size(), names.size());
  for (int jobs : {2, 8}) {
    const auto entries = compare_schedulers(g, m, names, {}, jobs);
    ASSERT_EQ(entries.size(), baseline.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].scheduler, baseline[i].scheduler);
      EXPECT_EQ(to_text(entries[i].schedule, g),
                to_text(baseline[i].schedule, g))
          << baseline[i].scheduler << " differs at jobs=" << jobs;
      EXPECT_EQ(entries[i].metrics.makespan, baseline[i].metrics.makespan);
    }
  }
}

TEST(SchedParallel, FaultMonteCarloIsIdenticalForAnyJobs) {
  const auto g = sized_graph(64);
  const auto m = cube8();
  const auto s = MhScheduler().run(g, m);
  fault::FaultPlan plan = fault::plan_crash_busiest(s, 0.5);
  plan.set_msg_loss({0.2, 3, 0.05});
  plan.set_msg_delay({0.25});

  core::FaultMonteCarloOptions mc;
  mc.trials = 16;
  mc.jobs = 1;
  const auto baseline = core::fault_monte_carlo(g, m, s, plan, mc);
  EXPECT_EQ(baseline.trials, 16);
  EXPECT_GT(baseline.worst_degraded, 0.0);
  EXPECT_GE(baseline.p95_degraded, baseline.p50_degraded);
  for (int jobs : {2, 8}) {
    mc.jobs = jobs;
    const auto stats = core::fault_monte_carlo(g, m, s, plan, mc);
    EXPECT_EQ(stats.crashed_runs, baseline.crashed_runs);
    EXPECT_EQ(stats.mean_degraded, baseline.mean_degraded);
    EXPECT_EQ(stats.p50_degraded, baseline.p50_degraded);
    EXPECT_EQ(stats.p95_degraded, baseline.p95_degraded);
    EXPECT_EQ(stats.worst_degraded, baseline.worst_degraded);
    EXPECT_EQ(stats.mean_overhead, baseline.mean_overhead);
  }
}

TEST(SchedParallel, AnnealRestartsAreIdenticalForAnyJobs) {
  const auto g = sized_graph(64);
  const auto m = cube8();
  AnnealOptions opts;
  opts.iterations = 200;
  opts.seed = 5;
  opts.restarts = 4;

  opts.jobs = 1;
  const auto baseline = AnnealScheduler(opts).run(g, m);
  for (int jobs : {2, 8}) {
    opts.jobs = jobs;
    const auto s = AnnealScheduler(opts).run(g, m);
    EXPECT_EQ(to_text(s, g), to_text(baseline, g)) << "jobs=" << jobs;
  }
}

TEST(SchedParallel, SingleRestartMatchesPlainAnnealing) {
  // restarts=1 must reproduce the original single-chain annealer: the
  // chain seed is exactly opts.seed.
  const auto g = sized_graph(64);
  const auto m = cube8();
  AnnealOptions multi;
  multi.iterations = 150;
  multi.seed = 9;
  multi.restarts = 1;
  multi.jobs = 8;  // jobs must not matter for a single chain
  AnnealOptions plain = multi;
  plain.jobs = 1;
  EXPECT_EQ(to_text(AnnealScheduler(multi).run(g, m), g),
            to_text(AnnealScheduler(plain).run(g, m), g));
}

TEST(SchedParallel, SpeedupCurveIsIdenticalForAnyJobs) {
  const auto g = workloads::lu_taskgraph(8, 8.0);
  MhScheduler mh;
  auto factory = [](int procs) {
    machine::MachineParams p;
    p.processor_speed = 1.0;
    p.message_startup = 0.1;
    p.bytes_per_second = 1e3;
    int dim = 0;
    while ((1 << dim) < procs) ++dim;
    return Machine(machine::Topology::hypercube(dim), p);
  };
  const std::vector<int> sizes{1, 2, 4, 8};
  const auto baseline = predict_speedup(g, mh, factory, sizes, 1);
  for (int jobs : {2, 8}) {
    const auto curve = predict_speedup(g, mh, factory, sizes, jobs);
    ASSERT_EQ(curve.points.size(), baseline.points.size());
    EXPECT_EQ(curve.machine_family, baseline.machine_family);
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      EXPECT_EQ(curve.points[i].procs, baseline.points[i].procs);
      EXPECT_EQ(curve.points[i].makespan, baseline.points[i].makespan);
      EXPECT_EQ(curve.points[i].speedup, baseline.points[i].speedup);
    }
  }
}

// --- Timeline gap index vs brute-force reference ---

/// The seed implementation's earliest_slot: linear left-to-right scan.
double reference_slot(const std::vector<std::pair<double, double>>& lane,
                      double ready, double duration, bool insertion) {
  double candidate = std::max(0.0, ready);
  if (!insertion) {
    for (const auto& [s, f] : lane) candidate = std::max(candidate, f);
    return candidate;
  }
  for (const auto& [s, f] : lane) {
    if (candidate + duration <= s + 1e-12) return candidate;
    candidate = std::max(candidate, f);
  }
  return candidate;
}

TEST(TimelineGapIndex, MatchesBruteForceOnRandomPatterns) {
  util::Rng rng(123);
  for (int round = 0; round < 50; ++round) {
    Timeline timeline(1);
    std::vector<std::pair<double, double>> reference_lane;
    for (int step = 0; step < 60; ++step) {
      const double ready =
          static_cast<double>(rng.next_below(200)) / 10.0;
      const double duration =
          0.1 + static_cast<double>(rng.next_below(40)) / 10.0;
      const bool insertion = rng.chance(0.7);
      const double expected =
          reference_slot(reference_lane, ready, duration, insertion);
      const double got =
          timeline.earliest_slot(0, ready, duration, insertion);
      ASSERT_EQ(got, expected)
          << "round " << round << " step " << step << " ready " << ready
          << " duration " << duration << " insertion " << insertion;
      // Occupy roughly half the probes so lanes grow fragmented.
      if (rng.chance(0.5)) {
        timeline.occupy(0, got, duration);
        reference_lane.emplace_back(got, got + duration);
        std::sort(reference_lane.begin(), reference_lane.end());
      }
    }
  }
}

// --- fast DSH vs the seed implementation (differential oracle) ---

/// Randomized property test: the rebuilt DSH (undo log, epoch stamps,
/// shared timeline) must produce byte-identical schedules to the seed
/// implementation (tests/reference_dsh.hpp) across graph shapes,
/// duplication depths 0-3, homogeneous and heterogeneous machines, and
/// both routing models.
TEST(DshDifferential, MatchesReferenceOnRandomGraphsAndMachines) {
  util::Rng rng(20240807);
  for (int round = 0; round < 16; ++round) {
    workloads::RandomGraphSpec spec;
    spec.layers = 2 + static_cast<int>(rng.next_below(8));
    spec.width = 2 + static_cast<int>(rng.next_below(7));
    spec.edge_probability = 0.15 + 0.15 * static_cast<double>(rng.next_below(5));
    spec.work_hi = 1.0 + static_cast<double>(rng.next_below(12));
    spec.bytes_hi = 8.0 + static_cast<double>(rng.next_below(2000));
    spec.seed = 1000 + static_cast<std::uint64_t>(round);
    const auto g = workloads::random_layered(spec);

    machine::MachineParams params;
    params.processor_speed = 1.0;
    params.process_startup = rng.chance(0.5) ? 0.0 : 0.05;
    params.message_startup = 0.05 + 0.05 * static_cast<double>(rng.next_below(4));
    params.bytes_per_second = rng.chance(0.5) ? 1e3 : 250.0;
    if (rng.chance(0.4)) {
      params.routing = machine::Routing::CutThrough;
      params.per_hop_latency = 0.02;
    }
    Machine m = rng.chance(0.5)
                    ? Machine(machine::Topology::hypercube(3), params)
                    : Machine(machine::Topology::ring(4), params);
    if (rng.chance(0.5)) {
      // Heterogeneous: spread speed factors across the processors.
      for (ProcId p = 0; p < m.num_procs(); ++p) {
        m.set_speed_factor(p, 0.5 + 0.25 * static_cast<double>(p % 4));
      }
    }

    SchedulerOptions opts;
    opts.duplication_depth = round % 4;  // exercise depths 0-3

    const auto fast = DshScheduler(opts).run(g, m);
    const auto ref = reference::reference_dsh(g, m, opts);
    EXPECT_EQ(to_text(fast, g), to_text(ref, g))
        << "round " << round << " layers " << spec.layers << " width "
        << spec.width << " depth " << opts.duplication_depth;
    fast.validate(g, m);
  }
}

// --- scheduler scale: ~65k tasks must stay allocator-churn free ---

TEST(SchedScale, EtfSchedules65kTaskGraphUnderWallBudget) {
  workloads::RandomGraphSpec spec;
  spec.layers = 8192;
  spec.width = 8;
  spec.seed = 7;
  const auto g = workloads::random_layered(spec);
  ASSERT_GE(g.num_tasks(), 65536u);  // layers x width plus source/sink glue
  const auto m = cube8();

  const auto t0 = std::chrono::steady_clock::now();
  const auto s = EtfScheduler().run(g, m);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  // Generous budget (CI machines vary widely); catching an accidental
  // O(n^2) reintroduction, which overshoots it by orders of magnitude.
  EXPECT_LT(elapsed.count(), 120) << "ETF on 65536 tasks took " <<
      elapsed.count() << "s";

  s.validate(g, m);
  EXPECT_EQ(s.placements().size(), g.num_tasks());
}

}  // namespace
}  // namespace banger::sched
