// Golden tests for the static-analysis engine: every diagnostic code
// fires on a minimal fixture and stays silent on the clean variant,
// the emitters produce well-shaped output, and the lint wrapper stays
// deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analyze/analyze.hpp"
#include "cli/cli.hpp"
#include "core/lint.hpp"
#include "graph/serialize.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger::analyze {
namespace {

std::vector<Diagnostic> check(std::string_view pitl,
                              const AnalyzeOptions& options = {}) {
  return analyze_design(graph::parse_design(pitl), options);
}

bool fires(const std::vector<Diagnostic>& diags, std::string_view code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& get(const std::vector<Diagnostic>& diags,
                      std::string_view code) {
  auto it = std::find_if(diags.begin(), diags.end(),
                         [&](const Diagnostic& d) { return d.code == code; });
  EXPECT_NE(it, diags.end()) << "expected " << code << " to fire";
  return *it;
}

// ---------------------------------------------------------------- catalog

TEST(Catalog, CodesAreSortedUniqueAndResolvable) {
  const auto& rules = diagnostic_rules();
  ASSERT_FALSE(rules.empty());
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].code, rules[i].code);
  }
  for (const auto& rule : rules) {
    const DiagnosticRule* found = find_rule(rule.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, rule.title);
  }
  EXPECT_EQ(find_rule("BAN999"), nullptr);
}

TEST(Catalog, SortAndDedupeIsDeterministic) {
  Diagnostic err{"BAN104", Severity::Error, "task", "b", "boom", "", {3, 1}};
  Diagnostic warn{"BAN102", Severity::Warning, "task", "a", "dead", "", {1, 1}};
  std::vector<Diagnostic> diags{warn, err, warn};  // duplicate warning
  sort_and_dedupe(diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].code, "BAN104");  // errors first
  EXPECT_EQ(diags[1].code, "BAN102");
}

// ------------------------------------------------------- interface layer

TEST(InterfaceRules, Ban001OutputsWithoutRoutine) {
  const auto diags = check("design d\ngraph g\n  task t out=r\n  store r\n"
                           "  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN001"));
  EXPECT_EQ(get(diags, "BAN001").pos.line, 3);  // the task directive
  const auto clean = check(
      "design d\ngraph g\n  task t out=r\n  pits {\n    r := 1\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  EXPECT_FALSE(fires(clean, "BAN001"));
}

TEST(InterfaceRules, Ban002SkeletonTask) {
  const std::string pitl = "design d\ngraph g\n  task todo\n";
  EXPECT_TRUE(fires(check(pitl), "BAN002"));
  AnalyzeOptions lax;
  lax.require_pits = false;
  EXPECT_FALSE(fires(check(pitl, lax), "BAN002"));
}

TEST(InterfaceRules, Ban003ParseFailureCarriesPosition) {
  const auto diags = check(
      "design d\ngraph g\n  task t out=r\n  pits {\n    r := := 1\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  const Diagnostic& d = get(diags, "BAN003");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.pos.line, 5);  // file line of the broken PITS statement
  EXPECT_FALSE(fires(check("design d\ngraph g\n  task t out=r\n  pits {\n"
                           "    r := 1\n  }\n  store r\n  arc t -> r var=r\n"),
                     "BAN003"));
}

TEST(InterfaceRules, Ban004UndeclaredRead) {
  const auto diags = check(
      "design d\ngraph g\n  task t out=r\n  pits {\n    r := mystery\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN004"));
  EXPECT_NE(get(diags, "BAN004").hint.find("in= list"), std::string::npos);
}

TEST(InterfaceRules, Ban005UnreadInput) {
  const auto diags = check(
      "design d\ngraph g\n  store a\n  task t in=a out=r\n  pits {\n"
      "    r := 1\n  }\n  store r\n  arc a -> t var=a\n  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN005"));
}

TEST(InterfaceRules, Ban006UnassignedOutput) {
  const auto diags = check(
      "design d\ngraph g\n  task t out=r\n  pits {\n    x := 1\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN006"));
}

TEST(InterfaceRules, Ban007WorkEstimate) {
  const std::string pitl =
      "design d\ngraph g\n  task t work=5000 out=r\n  pits {\n    r := 1\n"
      "  }\n  store r\n  arc t -> r var=r\n";
  AnalyzeOptions opts;
  opts.work_estimate_factor = 100.0;
  EXPECT_TRUE(fires(check(pitl, opts), "BAN007"));
  EXPECT_FALSE(fires(check(pitl), "BAN007"));  // off by default
}

TEST(InterfaceRules, Ban008DeadStore) {
  const auto diags = check(
      "design d\ngraph g\n  store orphan\n  task t out=r\n  pits {\n"
      "    r := 1\n  }\n  store r\n  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN008"));
  EXPECT_EQ(get(diags, "BAN008").pos.line, 3);  // the store directive
}

TEST(InterfaceRules, Ban009UnboundInput) {
  const auto diags = check(
      "design d\ngraph g\n  task t in=a out=r\n  pits {\n    r := a\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN009"));
}

TEST(InterfaceRules, Ban010UnobservableWork) {
  const auto diags = check(
      "design d\ngraph g\n  task useful out=r\n  pits {\n    r := 1\n  }\n"
      "  task wasted\n  pits {\n    x := 1\n  }\n"
      "  store r\n  arc useful -> r var=r\n");
  EXPECT_TRUE(fires(diags, "BAN010"));
  EXPECT_EQ(get(diags, "BAN010").subject, "wasted");
}

// ------------------------------------------------------ PITS dataflow layer

std::string routine_design(const std::string& body,
                           const std::string& io = "in=a out=r") {
  std::string pitl = "design d\ngraph g\n  store a\n  task t " + io +
                     "\n  pits {\n";
  std::istringstream lines(body);
  for (std::string line; std::getline(lines, line);) {
    pitl += "    " + line + "\n";
  }
  pitl += "  }\n  store r\n  arc a -> t var=a\n  arc t -> r var=r\n";
  return pitl;
}

TEST(PitsRules, Ban101UseBeforeDef) {
  const auto diags = check(routine_design(
      "if a > 0 then\n  s := 1\nend\nr := s"));
  const Diagnostic& d = get(diags, "BAN101");
  EXPECT_NE(d.message.find("`s`"), std::string::npos);
  EXPECT_EQ(d.pos.line, 9);  // `r := s` is file line 9
  EXPECT_FALSE(fires(check(routine_design(
                   "s := 0\nif a > 0 then\n  s := 1\nend\nr := s")),
               "BAN101"));
}

TEST(PitsRules, Ban101BothBranchesAssignIsClean) {
  EXPECT_FALSE(fires(check(routine_design(
                   "if a > 0 then\n  s := 1\nelse\n  s := 2\nend\nr := s")),
               "BAN101"));
}

TEST(PitsRules, Ban101ForLoopVarMayNotBeAssigned) {
  // Zero-iteration loops leave the loop variable unassigned afterwards.
  EXPECT_TRUE(fires(check(routine_design(
                  "for i := 1 to sum(a) do\n  x := i\nend\nr := i")),
              "BAN101"));
  EXPECT_FALSE(fires(check(routine_design(
                   "r := 0\nfor i := 1 to sum(a) do\n  r := r + i\nend")),
               "BAN101"));
}

TEST(PitsRules, Ban102DeadStore) {
  const auto diags = check(routine_design("unused := a\nr := 1"));
  EXPECT_TRUE(fires(diags, "BAN102"));
  EXPECT_NE(get(diags, "BAN102").message.find("`unused`"),
            std::string::npos);
  // Outputs are never dead.
  EXPECT_FALSE(fires(check(routine_design("r := a")), "BAN102"));
}

TEST(PitsRules, Ban103UnreachableAfterReturn) {
  const auto diags = check(routine_design("r := a\nreturn\nr := 0"));
  EXPECT_TRUE(fires(diags, "BAN103"));
  // A return guarded by `if` does not cut the rest of the block.
  EXPECT_FALSE(fires(check(routine_design(
                   "r := a\nif sum(a) > 0 then\n  return\nend\nr := 0")),
               "BAN103"));
}

TEST(PitsRules, Ban104DivisionByConstantZero) {
  EXPECT_TRUE(fires(check(routine_design("r := 1 / 0")), "BAN104"));
  // Constant propagation reaches the divisor through assignments.
  const auto diags = check(routine_design("n := 2 - 2\nr := a[0] mod n"));
  EXPECT_TRUE(fires(diags, "BAN104"));
  // A loop reassigning the divisor kills the constant.
  EXPECT_FALSE(fires(check(routine_design(
                   "n := 0\nfor i := 1 to 3 do\n  n := n + i\nend\n"
                   "r := 1 / n")),
               "BAN104"));
}

TEST(PitsRules, Ban105ConstantIndexOutOfRange) {
  const auto diags = check(routine_design("v := [1, 2, 3]\nr := v[3]"));
  const Diagnostic& d = get(diags, "BAN105");
  EXPECT_NE(d.message.find("[0,3)"), std::string::npos);
  EXPECT_FALSE(fires(check(routine_design("v := [1, 2, 3]\nr := v[2]")),
               "BAN105"));
}

TEST(PitsRules, Ban106UnknownFunctionSuggests) {
  const auto diags = check(routine_design("r := sqrtt(a)"));
  const Diagnostic& d = get(diags, "BAN106");
  EXPECT_NE(d.hint.find("sqrt"), std::string::npos);
  EXPECT_FALSE(fires(check(routine_design("r := sqrt(sum(a))")), "BAN106"));
}

TEST(PitsRules, Ban107ArityMismatch) {
  // Builtin, formula, and the `when` special form.
  EXPECT_TRUE(fires(check(routine_design("r := sqrt(a, 2)")), "BAN107"));
  EXPECT_TRUE(fires(check(routine_design(
                  "formula f(x, y) := x + y\nr := f(a)")),
              "BAN107"));
  EXPECT_TRUE(fires(check(routine_design("r := when(a)")), "BAN107"));
  EXPECT_FALSE(fires(check(routine_design(
                   "formula f(x, y) := x + y\n"
                   "r := when(sum(a) > 0, f(1, 2), sqrt(4))")),
               "BAN107"));
}

TEST(PitsRules, Ban108NonTerminatingWhile) {
  EXPECT_TRUE(fires(check(routine_design(
                  "x := 1\nwhile x > 0 do\n  r := x\nend")),
              "BAN108"));
  // Assigning a condition variable in the body is progress.
  EXPECT_FALSE(fires(check(routine_design(
                   "x := 1\nr := 0\nwhile x > 0 do\n  x := x - 1\n"
                   "  r := r + 1\nend")),
               "BAN108"));
  // A `return` inside the loop is also an exit.
  EXPECT_FALSE(fires(check(routine_design(
                   "x := 1\nr := 0\nwhile x > 0 do\n  return\nend")),
               "BAN108"));
}

// ------------------------------------------------------ determinacy layer

const char* kRaceDesign =
    "design race\n"
    "graph main\n"
    "  task w1 out=x\n"
    "  pits {\n"
    "    x := 1\n"
    "  }\n"
    "  task w2 out=x\n"
    "  pits {\n"
    "    x := 2\n"
    "  }\n"
    "  task r in=x out=y\n"
    "  pits {\n"
    "    y := x + 1\n"
    "  }\n"
    "  store x\n"
    "  store y\n"
    "  arc w1 -> x var=x\n"
    "  arc w2 -> x var=x\n"
    "  arc x -> r var=x\n"
    "  arc r -> y var=y\n";

TEST(DeterminacyRules, Ban201UnorderedWritersToReadStore) {
  const auto diags = check(kRaceDesign);
  const Diagnostic& d = get(diags, "BAN201");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("`w1`"), std::string::npos);
  EXPECT_NE(d.message.find("`w2`"), std::string::npos);
  EXPECT_EQ(d.pos.line, 15);  // the store directive has a source span
}

TEST(DeterminacyRules, Ban201SilentWhenWritersOrdered) {
  // w1 -> m -> w2 orders the two writers of x.
  const auto diags = check(
      "design ordered\ngraph main\n"
      "  task w1 out=x,m\n  pits {\n    x := 1\n    m := 0\n  }\n"
      "  store m\n"
      "  task w2 in=m out=x\n  pits {\n    x := m + 1\n  }\n"
      "  task r in=x out=y\n  pits {\n    y := x\n  }\n"
      "  store x\n  store y\n"
      "  arc w1 -> m var=m\n  arc m -> w2 var=m\n"
      "  arc w1 -> x var=x\n  arc w2 -> x var=x\n"
      "  arc x -> r var=x\n  arc r -> y var=y\n");
  EXPECT_FALSE(fires(diags, "BAN201"));
  EXPECT_FALSE(fires(diags, "BAN203"));
}

TEST(DeterminacyRules, Ban203ScheduleDependentOutputMerge) {
  const auto diags = check(
      "design merge\ngraph main\n"
      "  task w1 out=x\n  pits {\n    x := 1\n  }\n"
      "  task w2 out=x\n  pits {\n    x := 2\n  }\n"
      "  store x\n"
      "  arc w1 -> x var=x\n  arc w2 -> x var=x\n");
  const Diagnostic& d = get(diags, "BAN203");
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_FALSE(fires(diags, "BAN201"));  // nobody reads x
}

TEST(DeterminacyRules, Ban202VarAliasedStores) {
  // Root store `x` and child store `x` alias one variable name; the root
  // reader is unordered with the child writer.
  const auto diags = check(
      "design alias\ngraph main\n"
      "  task w1 out=x\n  pits {\n    x := 1\n  }\n"
      "  store x\n"
      "  task r in=x out=y\n  pits {\n    y := x\n  }\n"
      "  store y\n"
      "  super sup graph=child\n"
      "  arc w1 -> x var=x\n  arc x -> r var=x\n  arc r -> y var=y\n"
      "graph child\n"
      "  task w2 out=x\n  pits {\n    x := 2\n  }\n"
      "  store x\n"
      "  arc w2 -> x var=x\n");
  EXPECT_TRUE(fires(diags, "BAN202"));
  // Distinct variable names: no aliasing, no conflict.
  const auto clean = check(
      "design alias\ngraph main\n"
      "  task w1 out=x\n  pits {\n    x := 1\n  }\n"
      "  store x\n"
      "  task r in=x out=y\n  pits {\n    y := x\n  }\n"
      "  store y\n"
      "  super sup graph=child\n"
      "  arc w1 -> x var=x\n  arc x -> r var=x\n  arc r -> y var=y\n"
      "graph child\n"
      "  task w2 out=z\n  pits {\n    z := 2\n  }\n"
      "  store z\n"
      "  arc w2 -> z var=z\n");
  EXPECT_FALSE(fires(clean, "BAN202"));
}

// -------------------------------------------------------------- emitters

TEST(Emitters, TextFormat) {
  const auto diags = check(kRaceDesign);
  EmitOptions opts;
  opts.file = "race.pitl";
  const std::string text = emit_text(diags, opts);
  EXPECT_NE(text.find("race.pitl:15:1: error[BAN201]"), std::string::npos);
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
  EXPECT_NE(emit_text({}, opts).find("clean"), std::string::npos);
}

TEST(Emitters, JsonFormat) {
  const auto diags = check(kRaceDesign);
  EmitOptions opts;
  opts.file = "race.pitl";
  const std::string json = emit_json(diags, opts);
  EXPECT_NE(json.find("\"file\": \"race.pitl\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"BAN201\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 15"), std::string::npos);
  // Escaping: backticks are fine, but quotes/newlines must be escaped.
  Diagnostic tricky{"BAN104", Severity::Error, "task", "t",
                    "a \"quoted\"\nmessage", "", {1, 1}};
  const std::string escaped = emit_json({tricky}, {});
  EXPECT_NE(escaped.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);
}

TEST(Emitters, SarifShape) {
  const auto diags = check(kRaceDesign);
  EmitOptions opts;
  opts.file = "race.pitl";
  const std::string sarif = emit_sarif(diags, opts);
  for (const char* needle :
       {"\"$schema\"", "sarif-2.1.0", "\"version\": \"2.1.0\"", "\"runs\"",
        "\"tool\"", "\"driver\"", "\"name\": \"banger\"", "\"rules\"",
        "\"results\"", "\"ruleId\": \"BAN201\"", "\"level\": \"error\"",
        "\"physicalLocation\"", "\"artifactLocation\"",
        "\"uri\": \"race.pitl\"", "\"startLine\": 15", "\"startColumn\": 1"}) {
    EXPECT_NE(sarif.find(needle), std::string::npos) << needle;
  }
  // The rules array carries the whole catalog, fired or not.
  EXPECT_NE(sarif.find("\"id\": \"BAN108\""), std::string::npos);
  // Empty runs still have the tool block and an empty results array.
  const std::string empty = emit_sarif({}, opts);
  EXPECT_NE(empty.find("\"results\": []"), std::string::npos);
}

// -------------------------------------------------- clean designs + wrapper

TEST(CleanDesigns, WorkloadsPassAllLayers) {
  using banger::workloads::lu3x3_design;
  using banger::workloads::montecarlo_design;
  using banger::workloads::polyeval_design;
  using banger::workloads::signal_pipeline_design;
  EXPECT_TRUE(analyze_design(lu3x3_design()).empty());
  EXPECT_TRUE(analyze_design(montecarlo_design(3, 10)).empty());
  EXPECT_TRUE(analyze_design(signal_pipeline_design(2)).empty());
  EXPECT_TRUE(analyze_design(polyeval_design(2)).empty());
}

TEST(LintWrapper, MatchesInterfaceLayerAndStaysDeterministic) {
  const std::string pitl =
      "design d\ngraph g\n  store dead1\n  store dead2\n"
      "  task t out=r\n  pits {\n    r := oops\n  }\n"
      "  store r\n  arc t -> r var=r\n";
  const auto design = graph::parse_design(pitl);
  const auto issues1 = lint_design(design);
  const auto issues2 = lint_design(design);
  ASSERT_EQ(issues1.size(), issues2.size());
  for (std::size_t i = 0; i < issues1.size(); ++i) {
    EXPECT_EQ(issues1[i].to_string(), issues2[i].to_string());
  }
  EXPECT_TRUE(has_errors(issues1));
  EXPECT_EQ(issues1.front().severity, LintSeverity::Error);
  // Same rules as the engine's interface layer.
  AnalyzeOptions iface;
  iface.pits_rules = false;
  iface.determinacy_rules = false;
  EXPECT_EQ(issues1.size(), analyze_design(design, iface).size());
}

// ------------------------------------------------------------------- CLI

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path =
      ::testing::TempDir() + "analyze_cli_" + name + ".pitl";
  std::ofstream out(path);
  out << text;
  return path;
}

int run_cli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run(args, out, err);
  if (stdout_text != nullptr) *stdout_text = out.str();
  return code;
}

TEST(CheckCommand, RaceFailsAndCleanPassesInAllFormats) {
  const std::string race = write_temp("race", kRaceDesign);
  const std::string clean = write_temp(
      "clean",
      "design ok\ngraph g\n  store a\n  task t in=a out=r\n  pits {\n"
      "    r := sum(a)\n  }\n  store r\n  arc a -> t var=a\n"
      "  arc t -> r var=r\n");
  std::string out;
  EXPECT_EQ(run_cli({"check", race}, &out), 1);
  EXPECT_NE(out.find("BAN201"), std::string::npos);
  for (const char* format : {"text", "json", "sarif"}) {
    EXPECT_EQ(run_cli({"check", clean, "--format", format}, &out), 0)
        << format;
  }
}

TEST(CheckCommand, FailOnWarningTightensExit) {
  const std::string warn = write_temp(
      "warn",
      "design w\ngraph g\n  store a\n  task t in=a out=r\n  pits {\n"
      "    unused := a\n    r := 1\n  }\n  store r\n  arc a -> t var=a\n"
      "  arc t -> r var=r\n");
  std::string out;
  EXPECT_EQ(run_cli({"check", warn}, &out), 0);  // warnings pass by default
  EXPECT_NE(out.find("BAN102"), std::string::npos);
  EXPECT_EQ(run_cli({"check", warn, "--fail-on", "warning"}, &out), 1);
}

TEST(LintCommand, JsonOutput) {
  const std::string bad = write_temp(
      "lintjson",
      "design b\ngraph g\n  task t out=r\n  pits {\n    x := 1\n  }\n"
      "  store r\n  arc t -> r var=r\n");
  std::string out;
  EXPECT_EQ(run_cli({"lint", bad, "--json"}, &out), 1);
  EXPECT_NE(out.find("\"code\": \"BAN006\""), std::string::npos);
  EXPECT_NE(out.find("\"diagnostics\""), std::string::npos);
  // Interface layer only: no PITS dataflow codes in lint output.
  EXPECT_EQ(out.find("BAN102"), std::string::npos);
}

}  // namespace
}  // namespace banger::analyze
