// Round-trip and error tests for the .pitl and .machine text formats.
#include <gtest/gtest.h>

#include "graph/serialize.hpp"
#include "machine/serialize.hpp"
#include "util/error.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger {
namespace {

constexpr const char* kSample = R"(# a two-level design
design demo
graph demo
  store A bytes=64
  task load work=2 in=A out=v
  pits {
    v := [A[0], A[1]]
  }
  super crunch graph=inner in=v out=w
  store result bytes=8
  task finish work=1 in=w out=result
  pits {
    result := sum(w)
  }
  arc A -> load var=A bytes=64
  arc load -> crunch var=v bytes=16
  arc crunch -> finish var=w bytes=16
  arc finish -> result var=result bytes=8
graph inner
  task square work=3 in=v out=w
  pits {
    w := v * v
  }
)";

TEST(PitlParse, ParsesSampleDesign) {
  auto design = graph::parse_design(kSample);
  EXPECT_EQ(design.name(), "demo");
  EXPECT_EQ(design.num_graphs(), 2u);
  const auto& root = design.root_graph();
  EXPECT_EQ(root.num_nodes(), 5u);
  EXPECT_EQ(root.num_arcs(), 4u);
  const auto super_id = root.require("crunch");
  EXPECT_EQ(root.node(super_id).kind, graph::NodeKind::Super);
  EXPECT_EQ(root.node(super_id).subgraph, 1);
  design.validate();
}

TEST(PitlParse, PitsBlockAttachedToTask) {
  auto design = graph::parse_design(kSample);
  const auto& root = design.root_graph();
  const auto& load = root.node(root.require("load"));
  EXPECT_NE(load.pits.find("v := [A[0], A[1]]"), std::string::npos);
}

TEST(PitlParse, RoundTripPreservesStructure) {
  auto design = graph::parse_design(kSample);
  const std::string text = graph::to_pitl(design);
  auto again = graph::parse_design(text);
  EXPECT_EQ(again.num_graphs(), design.num_graphs());
  EXPECT_EQ(graph::to_pitl(again), text);  // fixpoint after one round
  again.validate();
  auto flat1 = design.flatten();
  auto flat2 = again.flatten();
  EXPECT_EQ(flat1.graph.num_tasks(), flat2.graph.num_tasks());
  EXPECT_EQ(flat1.graph.num_edges(), flat2.graph.num_edges());
}

TEST(PitlParse, LuDesignRoundTrips) {
  auto design = workloads::lu3x3_design();
  auto again = graph::parse_design(graph::to_pitl(design));
  again.validate();
  EXPECT_EQ(again.flatten().graph.num_tasks(), 9u);
  EXPECT_EQ(graph::to_pitl(again), graph::to_pitl(design));
}

TEST(PitlParse, ErrorsCarryLineNumbers) {
  try {
    (void)graph::parse_design("design d\ngraph g\n  bogus x\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.pos().line, 3);
  }
}

TEST(PitlParse, RejectsUnknownChildGraph) {
  EXPECT_THROW(
      (void)graph::parse_design("graph g\n  super s graph=missing\n"), Error);
}

TEST(PitlParse, RejectsUnterminatedPits) {
  EXPECT_THROW(
      (void)graph::parse_design("graph g\n  task t\n  pits {\n  x := 1\n"),
      Error);
}

TEST(PitlParse, RejectsDuplicateGraphNames) {
  EXPECT_THROW((void)graph::parse_design("graph g\ngraph g\n"), Error);
}

TEST(PitlParse, RejectsNodeBeforeGraph) {
  EXPECT_THROW((void)graph::parse_design("task t\n"), Error);
}

TEST(PitlParse, RejectsBadNumbers) {
  EXPECT_THROW((void)graph::parse_design("graph g\n  task t work=abc\n"),
               Error);
}

TEST(PitlParse, CommentsAndBlankLinesIgnored)
{
  auto design = graph::parse_design(
      "# leading comment\n\ngraph g  # trailing\n  task t work=2\n\n");
  EXPECT_EQ(design.root_graph().num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(design.root_graph().node(0).work, 2.0);
}

TEST(PitlFiles, SaveAndLoad) {
  auto design = workloads::montecarlo_design(3, 100);
  const std::string path = testing::TempDir() + "/mc.pitl";
  graph::save_design(design, path);
  auto loaded = graph::load_design(path);
  loaded.validate();
  EXPECT_EQ(loaded.flatten().graph.num_tasks(),
            design.flatten().graph.num_tasks());
}

TEST(PitlFiles, LoadMissingFileFails) {
  EXPECT_THROW((void)graph::load_design("/nonexistent/x.pitl"), Error);
}

// ---- .machine ----

constexpr const char* kMachine = R"(machine testbox
topology hypercube dim=3
speed 2
process_startup 0.125
message_startup 0.5
bandwidth 1000
routing store-and-forward
speed_factor 2 1.5
)";

TEST(MachineParse, ParsesSample) {
  auto m = machine::parse_machine(kMachine);
  EXPECT_EQ(m.name(), "testbox");
  EXPECT_EQ(m.num_procs(), 8);
  EXPECT_EQ(m.topology().kind(), machine::TopologyKind::Hypercube);
  EXPECT_DOUBLE_EQ(m.params().processor_speed, 2.0);
  EXPECT_DOUBLE_EQ(m.params().process_startup, 0.125);
  EXPECT_DOUBLE_EQ(m.speed_factor(2), 1.5);
  EXPECT_DOUBLE_EQ(m.speed_factor(0), 1.0);
}

TEST(MachineParse, RoundTrip) {
  auto m = machine::parse_machine(kMachine);
  auto again = machine::parse_machine(machine::to_text(m));
  EXPECT_EQ(again.num_procs(), m.num_procs());
  EXPECT_EQ(machine::to_text(again), machine::to_text(m));
  EXPECT_DOUBLE_EQ(again.comm_time(100, 0, 7), m.comm_time(100, 0, 7));
}

TEST(MachineParse, MeshRoundTripsThroughCustomLinks) {
  machine::MachineParams p;
  p.processor_speed = 1;
  auto m = machine::Machine(machine::Topology::mesh(2, 3), p);
  auto again = machine::parse_machine(machine::to_text(m));
  EXPECT_EQ(again.num_procs(), 6);
  for (machine::ProcId a = 0; a < 6; ++a)
    for (machine::ProcId b = 0; b < 6; ++b)
      EXPECT_EQ(again.topology().hops(a, b), m.topology().hops(a, b));
}

TEST(MachineParse, AllTopologyKeywords) {
  EXPECT_EQ(machine::parse_machine("topology star procs=5\n").num_procs(), 5);
  EXPECT_EQ(machine::parse_machine("topology ring procs=6\n").num_procs(), 6);
  EXPECT_EQ(machine::parse_machine("topology chain procs=4\n").num_procs(), 4);
  EXPECT_EQ(machine::parse_machine("topology full procs=3\n").num_procs(), 3);
  EXPECT_EQ(
      machine::parse_machine("topology mesh rows=2 cols=2\n").num_procs(), 4);
  EXPECT_EQ(
      machine::parse_machine("topology tree arity=2 procs=7\n").num_procs(),
      7);
  EXPECT_EQ(machine::parse_machine(
                "topology custom procs=3 links=0-1,1-2\n")
                .num_procs(),
            3);
}

TEST(MachineParse, RejectsMissingTopology) {
  EXPECT_THROW((void)machine::parse_machine("speed 2\n"), Error);
}

TEST(MachineParse, RejectsUnknownDirective) {
  EXPECT_THROW((void)machine::parse_machine("topology star procs=3\nbogus 1\n"),
               Error);
}

TEST(MachineParse, RejectsOutOfRangeSpeedFactor) {
  EXPECT_THROW((void)machine::parse_machine(
                   "topology star procs=3\nspeed_factor 9 2\n"),
               Error);
}

TEST(MachineParse, CutThroughRouting) {
  auto m = machine::parse_machine(
      "topology chain procs=4\nrouting cut-through\nmessage_startup 1\n"
      "per_hop_latency 0.25\nbandwidth 0\n");
  // 3 hops: startup + 2 extra hops * 0.25
  EXPECT_DOUBLE_EQ(m.comm_time(100, 0, 3), 1.0 + 2 * 0.25);
}

}  // namespace
}  // namespace banger
