// The calculator panel: keystroke program construction, variable
// windows, lint, trial runs — the Figure 4 interaction model.
#include <gtest/gtest.h>

#include <cmath>

#include "calc/panel.hpp"
#include "util/error.hpp"

namespace banger::calc {
namespace {

TEST(Panel, DeclaresVariables) {
  CalculatorPanel panel("SquareRoot");
  panel.declare_input("a");
  panel.declare_output("x");
  panel.declare_local("guess");
  EXPECT_EQ(panel.inputs(), (std::vector<std::string>{"a"}));
  EXPECT_EQ(panel.outputs(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(panel.locals(), (std::vector<std::string>{"guess"}));
  EXPECT_THROW(panel.declare_input("a"), banger::Error);
  EXPECT_THROW(panel.declare_local("bad name"), banger::Error);
}

TEST(Panel, KeystrokesBuildProgramText) {
  CalculatorPanel panel;
  panel.declare_input("a");
  panel.declare_local("g");
  panel.press_variable("g");
  panel.press(Key::Assign);
  panel.press_variable("a");
  panel.press(Key::Divide);
  panel.press(Key::D2);
  panel.press(Key::Enter);
  EXPECT_EQ(panel.program_text(), "g := a / 2\n");
}

TEST(Panel, DigitsChainWithoutSpaces) {
  CalculatorPanel panel;
  panel.declare_local("x");
  panel.press_variable("x");
  panel.press(Key::Assign);
  panel.press(Key::D1);
  panel.press(Key::D2);
  panel.press(Key::Dot);
  panel.press(Key::D5);
  EXPECT_EQ(panel.program_text(), "x := 12.5");
}

TEST(Panel, FunctionAndConstantButtons) {
  CalculatorPanel panel;
  panel.declare_local("y");
  panel.press_variable("y");
  panel.press(Key::Assign);
  panel.press_function("sin");
  panel.press_constant("pi");
  panel.press(Key::RParen);
  EXPECT_EQ(panel.program_text(), "y := sin(pi)");
  // And it parses and runs.
  const auto result = panel.trial_run({});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NEAR(result.env.at("y").as_scalar(), 0.0, 1e-12);
}

TEST(Panel, RejectsUnknownButtons) {
  CalculatorPanel panel;
  EXPECT_THROW(panel.press_function("frobnicate"), banger::Error);
  EXPECT_THROW(panel.press_constant("tau"), banger::Error);
  EXPECT_THROW(panel.press_variable("undeclared"), banger::Error);
}

TEST(Panel, BackspaceUndoesKeystrokes) {
  CalculatorPanel panel;
  panel.declare_local("x");
  panel.press_variable("x");
  panel.press(Key::Assign);
  panel.press(Key::D7);
  panel.backspace();
  panel.press(Key::D8);
  EXPECT_EQ(panel.program_text(), "x := 8");
  panel.clear();
  EXPECT_EQ(panel.program_text(), "");
}

TEST(Panel, KeycapsCoverLayout) {
  for (const auto& row : panel_layout()) {
    for (Key k : row) {
      EXPECT_FALSE(std::string(keycap(k)).empty());
    }
  }
}

TEST(Panel, TrialRunSquareRoot) {
  // The Figure 4 scenario: Newton-Raphson sqrt as a panel program.
  CalculatorPanel panel("SquareRoot");
  panel.declare_input("a");
  panel.declare_output("x");
  panel.declare_local("guess");
  panel.declare_local("i");
  panel.set_program_text(
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + a / guess)\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n");
  EXPECT_TRUE(panel.lint().empty());
  const auto result = panel.trial_run({{"a", pits::Value(2.0)}});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NEAR(result.env.at("x").as_scalar(), std::sqrt(2.0), 1e-12);
}

TEST(Panel, TrialSweepMatchesPerTrialRuns) {
  // The parameter-sweep gesture: many "=" presses over different inputs,
  // parsed once, each element exactly what trial_run would return.
  CalculatorPanel panel("SquareRoot");
  panel.declare_input("a");
  panel.declare_output("x");
  panel.set_program_text(
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + a / guess)\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n"
      "print(x)\n");
  std::vector<pits::Env> sweep;
  for (double a : {2.0, 9.0, 0.0, 144.0}) {
    sweep.push_back({{"a", pits::Value(a)}});
  }
  const auto results = panel.trial_sweep(sweep);
  ASSERT_EQ(results.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto one = panel.trial_run(sweep[i]);
    EXPECT_EQ(results[i].ok, one.ok) << i;
    EXPECT_EQ(results[i].error, one.error) << i;
    EXPECT_EQ(results[i].transcript, one.transcript) << i;
    EXPECT_EQ(results[i].env, one.env) << i;
  }
}

TEST(Panel, TrialSweepErrorsStayPerTrial) {
  CalculatorPanel panel;
  panel.declare_input("d");
  panel.declare_output("y");
  panel.set_program_text("y := 1 / d\n");
  const std::vector<pits::Env> sweep = {{{"d", pits::Value(2.0)}},
                                        {{"d", pits::Value(0.0)}},
                                        {{"d", pits::Value(4.0)}}};
  const auto results = panel.trial_sweep(sweep);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("division by zero"), std::string::npos);
  EXPECT_TRUE(results[2].ok);
  EXPECT_EQ(results[2].env.at("y"), pits::Value(0.25));
}

TEST(Panel, TrialSweepParseErrorFailsEveryTrial) {
  CalculatorPanel panel;
  panel.set_program_text("x := (\n");
  const auto results = panel.trial_sweep({{}, {}});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Panel, TrialRunReportsErrorsInsteadOfThrowing) {
  CalculatorPanel panel;
  panel.set_program_text("x := 1 / 0\n");
  const auto result = panel.trial_run({});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("division by zero"), std::string::npos);
}

TEST(Panel, TrialRunCapturesTranscript) {
  CalculatorPanel panel;
  panel.set_program_text("print(\"hello\", 1 + 1)\n");
  const auto result = panel.trial_run({});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.transcript, "hello 2\n");
}

TEST(Panel, LintFindsUndeclaredReads) {
  CalculatorPanel panel;
  panel.declare_output("y");
  panel.set_program_text("y := mystery + 1\n");
  const auto issues = panel.lint();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("mystery"), std::string::npos);
}

TEST(Panel, LintFindsUnassignedOutputs) {
  CalculatorPanel panel;
  panel.declare_output("result");
  panel.set_program_text("tmp := 1\n");
  const auto issues = panel.lint();
  // tmp is undeclared AND result never assigned.
  EXPECT_EQ(issues.size(), 1u);  // tmp is assigned, not read -> only output issue
  EXPECT_NE(issues[0].find("result"), std::string::npos);
}

TEST(Panel, LintReportsParseErrors) {
  CalculatorPanel panel;
  panel.set_program_text("x := := 1\n");
  const auto issues = panel.lint();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("parse"), std::string::npos);
}

TEST(Panel, ToNodeAndBack) {
  CalculatorPanel panel("compute");
  panel.declare_input("a");
  panel.declare_output("b");
  panel.set_program_text("b := a * 2\n");
  const auto node = panel.to_node(5.0);
  EXPECT_EQ(node.kind, graph::NodeKind::Task);
  EXPECT_EQ(node.name, "compute");
  EXPECT_DOUBLE_EQ(node.work, 5.0);
  EXPECT_EQ(node.inputs, (std::vector<std::string>{"a"}));
  EXPECT_EQ(node.outputs, (std::vector<std::string>{"b"}));

  const auto panel2 = CalculatorPanel::from_node(node);
  EXPECT_EQ(panel2.task_name(), "compute");
  EXPECT_EQ(panel2.program_text(), panel.program_text());
  EXPECT_EQ(panel2.inputs(), panel.inputs());
  EXPECT_EQ(panel2.outputs(), panel.outputs());
}

TEST(Panel, FromNodeRejectsNonTasks) {
  graph::Node store;
  store.kind = graph::NodeKind::Storage;
  store.name = "s";
  EXPECT_THROW((void)CalculatorPanel::from_node(store), banger::Error);
}

TEST(Panel, RenderShowsAllWindows) {
  CalculatorPanel panel("SquareRoot");
  panel.declare_input("a");
  panel.declare_output("x");
  panel.declare_local("guess");
  panel.set_program_text("guess := a / 2\nx := guess\n");
  const std::string view = panel.render();
  for (const char* needle :
       {"task SquareRoot", "inputs:", "outputs:", "locals:", "guess",
        "[while", "guess := a / 2"}) {
    EXPECT_NE(view.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace banger::calc
