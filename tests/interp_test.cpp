// Interpreter semantics: arithmetic, control flow, vectors, strings,
// errors, step limits, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "pits/interp.hpp"
#include "util/error.hpp"

namespace banger::pits {
namespace {

Value run_for(const std::string& src, const std::string& var, Env env = {}) {
  Program::parse(src).execute(env);
  auto it = env.find(var);
  if (it == env.end()) throw std::runtime_error("var not set: " + var);
  return it->second;
}

double num_for(const std::string& src, const std::string& var, Env env = {}) {
  return run_for(src, var, std::move(env)).as_scalar();
}

TEST(Interp, Arithmetic) {
  EXPECT_DOUBLE_EQ(num_for("x := 2 + 3 * 4", "x"), 14.0);
  EXPECT_DOUBLE_EQ(num_for("x := (2 + 3) * 4", "x"), 20.0);
  EXPECT_DOUBLE_EQ(num_for("x := 7 / 2", "x"), 3.5);
  EXPECT_DOUBLE_EQ(num_for("x := 7 mod 3", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := 2 ^ 10", "x"), 1024.0);
  EXPECT_DOUBLE_EQ(num_for("x := 2 ^ 3 ^ 2", "x"), 512.0);  // right assoc
  EXPECT_DOUBLE_EQ(num_for("x := -3 + 1", "x"), -2.0);
}

TEST(Interp, Comparisons) {
  EXPECT_DOUBLE_EQ(num_for("x := 3 < 4", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := 3 >= 4", "x"), 0.0);
  EXPECT_DOUBLE_EQ(num_for("x := 3 = 3", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := 3 <> 3", "x"), 0.0);
  EXPECT_DOUBLE_EQ(num_for("x := \"abc\" < \"abd\"", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := [1,2] = [1,2]", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := [1,2] = [1,3]", "x"), 0.0);
}

TEST(Interp, LogicalsShortCircuit) {
  EXPECT_DOUBLE_EQ(num_for("x := 1 and 0", "x"), 0.0);
  EXPECT_DOUBLE_EQ(num_for("x := 0 or 2", "x"), 1.0);
  EXPECT_DOUBLE_EQ(num_for("x := not 0", "x"), 1.0);
  // Short circuit: the division by zero on the rhs is never evaluated.
  EXPECT_DOUBLE_EQ(num_for("x := 0 and 1 / 0", "x"), 0.0);
  EXPECT_DOUBLE_EQ(num_for("x := 1 or 1 / 0", "x"), 1.0);
}

TEST(Interp, IfChain) {
  const char* src =
      "if a < 0 then\n r := -1\nelsif a = 0 then\n r := 0\nelse\n r := 1\nend";
  EXPECT_DOUBLE_EQ(num_for(src, "r", {{"a", Value(-5.0)}}), -1.0);
  EXPECT_DOUBLE_EQ(num_for(src, "r", {{"a", Value(0.0)}}), 0.0);
  EXPECT_DOUBLE_EQ(num_for(src, "r", {{"a", Value(9.0)}}), 1.0);
}

TEST(Interp, WhileLoop) {
  EXPECT_DOUBLE_EQ(
      num_for("s := 0\ni := 1\nwhile i <= 100 do\n s := s + i\n i := i + 1\nend",
              "s"),
      5050.0);
}

TEST(Interp, RepeatLoop) {
  EXPECT_DOUBLE_EQ(num_for("x := 1\nrepeat 10 times\n x := x * 2\nend", "x"),
                   1024.0);
  EXPECT_THROW(num_for("repeat -1 times\nx := 0\nend", "x"), Error);
  EXPECT_THROW(num_for("repeat 1.5 times\nx := 0\nend", "x"), Error);
}

TEST(Interp, ForLoop) {
  EXPECT_DOUBLE_EQ(
      num_for("s := 0\nfor i := 1 to 10 do\n s := s + i\nend", "s"), 55.0);
  EXPECT_DOUBLE_EQ(
      num_for("s := 0\nfor i := 10 to 1 step -1 do\n s := s + 1\nend", "s"),
      10.0);
  EXPECT_DOUBLE_EQ(
      num_for("s := 0\nfor i := 0 to 1 step 0.25 do\n s := s + 1\nend", "s"),
      5.0);
  EXPECT_THROW(num_for("for i := 1 to 2 step 0 do\nend", "s"), Error);
}

TEST(Interp, ReturnExitsEarly) {
  EXPECT_DOUBLE_EQ(num_for("x := 1\nreturn\nx := 2", "x"), 1.0);
  EXPECT_DOUBLE_EQ(
      num_for("x := 0\nwhile 1 do\n x := x + 1\n if x = 5 then\n return\n "
              "end\nend",
              "x"),
      5.0);
}

TEST(Interp, Vectors) {
  const Value v = run_for("v := [1, 2, 3] * 2 + 1", "v");
  EXPECT_EQ(v.as_vector(), (Vector{3, 5, 7}));
  EXPECT_DOUBLE_EQ(num_for("x := [10, 20, 30][1]", "x"), 20.0);
  const Value w = run_for("v := zeros(3)\nv[1] := 7\nv := v + [1,1,1]", "v");
  EXPECT_EQ(w.as_vector(), (Vector{1, 8, 1}));
}

TEST(Interp, VectorElementwiseAndBroadcast) {
  EXPECT_EQ(run_for("v := [1,2] + [10,20]", "v").as_vector(), (Vector{11, 22}));
  EXPECT_EQ(run_for("v := 10 - [1,2]", "v").as_vector(), (Vector{9, 8}));
  EXPECT_EQ(run_for("v := [4,9] ^ 0.5", "v").as_vector(), (Vector{2, 3}));
  EXPECT_THROW(num_for("v := [1,2] + [1,2,3]", "v"), Error);
}

TEST(Interp, Strings) {
  EXPECT_EQ(run_for("s := \"foo\" + \"bar\"", "s").as_string(), "foobar");
  EXPECT_THROW(num_for("s := \"a\" * 2", "s"), Error);
  EXPECT_THROW(num_for("s := -\"a\"", "s"), Error);
}

TEST(Interp, RuntimeErrors) {
  EXPECT_THROW(num_for("x := 1 / 0", "x"), Error);
  EXPECT_THROW(num_for("x := 1 mod 0", "x"), Error);
  EXPECT_THROW(num_for("x := [1][5]", "x"), Error);
  EXPECT_THROW(num_for("x := [1][0.5]", "x"), Error);
  EXPECT_THROW(num_for("x := y + 1", "x"), Error);       // undefined var
  EXPECT_THROW(num_for("x := 5\nx[0] := 1", "x"), Error); // index non-vector
  EXPECT_THROW(num_for("v[0] := 1", "v"), Error);         // undefined target
}

TEST(Interp, ErrorCarriesPosition) {
  try {
    num_for("x := 1\ny := 1 / 0", "y");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Runtime);
    EXPECT_EQ(e.pos().line, 2);
  }
}

TEST(Interp, StepLimitStopsInfiniteLoop) {
  Env env;
  ExecOptions opts;
  opts.step_limit = 1000;
  EXPECT_THROW(Program::parse("while 1 do\nx := 1\nend").execute(env, opts),
               Error);
  try {
    Program::parse("while 1 do\nx := 1\nend").execute(env, opts);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Limit);
  }
}

TEST(Interp, Constants) {
  EXPECT_NEAR(num_for("x := pi", "x"), 3.14159265, 1e-8);
  EXPECT_NEAR(num_for("x := e ^ 1", "x"), 2.71828182, 1e-8);
  // A user variable shadows a constant.
  EXPECT_DOUBLE_EQ(num_for("pi := 3\nx := pi", "x"), 3.0);
}

TEST(Interp, PrintWritesTranscript) {
  std::ostringstream out;
  Env env;
  ExecOptions opts;
  opts.out = &out;
  Program::parse("print(\"result:\", 42)\nprint([1,2])").execute(env, opts);
  EXPECT_EQ(out.str(), "result: 42\n[1, 2]\n");
}

TEST(Interp, RandDeterministicPerSeed) {
  ExecOptions a;
  a.seed = 5;
  Env env1;
  Program::parse("x := rand()\ny := rand()").execute(env1, a);
  Env env2;
  Program::parse("x := rand()\ny := rand()").execute(env2, a);
  EXPECT_EQ(env1.at("x").as_scalar(), env2.at("x").as_scalar());
  EXPECT_NE(env1.at("x").as_scalar(), env1.at("y").as_scalar());
  ExecOptions b;
  b.seed = 6;
  Env env3;
  Program::parse("x := rand()").execute(env3, b);
  EXPECT_NE(env1.at("x").as_scalar(), env3.at("x").as_scalar());
}

TEST(Interp, NewtonRaphsonSquareRoot) {
  // The paper's Figure 4 example task.
  const char* src =
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + a / guess)\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n";
  EXPECT_NEAR(num_for(src, "x", {{"a", Value(2.0)}}), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(num_for(src, "x", {{"a", Value(144.0)}}), 12.0, 1e-12);
}

TEST(Interp, ProgramInputsOutputsAnalysis) {
  auto p = Program::parse("y := x + pi\nz := y * 2");
  EXPECT_EQ(p.inputs(), (std::vector<std::string>{"x"}));  // pi is a constant
  EXPECT_EQ(p.outputs(), (std::vector<std::string>{"y", "z"}));
}

TEST(Interp, EvalExpressionHelper) {
  Env env{{"a", Value(4.0)}};
  EXPECT_DOUBLE_EQ(eval_expression("sqrt(a) + 1", env).as_scalar(), 3.0);
  // The original environment is untouched.
  EXPECT_EQ(env.size(), 1u);
}

TEST(Interp, TraceEchoesAssignments) {
  std::ostringstream trace;
  Env env;
  ExecOptions opts;
  opts.trace = &trace;
  Program::parse("x := 2 + 3\nrepeat 2 times\n  x := x * 10\nend")
      .execute(env, opts);
  EXPECT_EQ(trace.str(),
            "line 1: x = 5\n"
            "line 3: x = 50\n"
            "line 3: x = 500\n");
}

TEST(Interp, TraceOffByDefault) {
  Env env;
  EXPECT_NO_THROW(Program::parse("x := 1").execute(env));
}

TEST(Interp, EmptyProgramIsNoop) {
  Env env{{"x", Value(1.0)}};
  Program::parse("").execute(env);
  Program::parse("\n\n-- nothing\n").execute(env);
  EXPECT_DOUBLE_EQ(env.at("x").as_scalar(), 1.0);
}

}  // namespace
}  // namespace banger::pits
