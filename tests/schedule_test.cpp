// Tests for the Schedule model, validator, metrics, Timeline and
// BuildState machinery.
#include <gtest/gtest.h>

#include "sched/list_core.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace banger::sched {
namespace {

using graph::TaskGraph;

TaskGraph two_task_graph(double bytes = 100.0) {
  TaskGraph g;
  g.add_task({"a", 2, "", {}, {}});
  g.add_task({"b", 3, "", {}, {}});
  g.add_edge(0, 1, bytes);
  return g;
}

Machine simple_machine(int procs = 2) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 1.0;
  p.bytes_per_second = 100.0;
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(Schedule, MakespanAndBusy) {
  Schedule s(2, "test");
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 4.0, 7.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);
  EXPECT_DOUBLE_EQ(s.busy(0), 2.0);
  EXPECT_DOUBLE_EQ(s.busy(1), 3.0);
  EXPECT_EQ(s.procs_used(), 2);
  EXPECT_NEAR(s.utilization(), 5.0 / 14.0, 1e-12);
}

TEST(Schedule, LaneSortedByStart) {
  Schedule s(1, "test");
  s.place(1, 0, 5.0, 6.0);
  s.place(0, 0, 0.0, 2.0);
  const auto lane = s.lane(0);
  ASSERT_EQ(lane.size(), 2u);
  EXPECT_EQ(lane[0].task, 0u);
  EXPECT_EQ(lane[1].task, 1u);
}

TEST(Schedule, PlacementOfReturnsPrimary) {
  Schedule s(2, "test");
  s.place(0, 1, 1.0, 2.0, /*duplicate=*/true);
  s.place(0, 0, 0.0, 1.0, /*duplicate=*/false);
  const auto primary = s.placement_of(0);
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->proc, 0);
  EXPECT_EQ(s.copies_of(0).size(), 2u);
  EXPECT_FALSE(s.copies_of(0)[0].duplicate);  // primary first
  EXPECT_EQ(s.num_duplicates(), 1);
}

TEST(Schedule, RejectsBadPlacements) {
  Schedule s(2, "test");
  EXPECT_THROW(s.place(0, 5, 0, 1), Error);
  EXPECT_THROW(s.place(0, 0, 2, 1), Error);
  EXPECT_THROW(s.place(0, 0, -1, 1), Error);
  EXPECT_THROW(Schedule(0, "x"), Error);
}

TEST(ScheduleValidate, AcceptsFeasibleSchedule) {
  auto g = two_task_graph();
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  // comm = 1 + 100/100 = 2s; b may start at 4 on proc 1.
  s.place(1, 1, 4.0, 7.0);
  EXPECT_NO_THROW(s.validate(g, m));
}

TEST(ScheduleValidate, RejectsCommViolation) {
  auto g = two_task_graph();
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 3.0, 6.0);  // data arrives at 4, starts at 3: infeasible
  EXPECT_THROW(s.validate(g, m), Error);
}

TEST(ScheduleValidate, SameProcNeedsNoComm) {
  auto g = two_task_graph();
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 2.0, 5.0);
  EXPECT_NO_THROW(s.validate(g, m));
}

TEST(ScheduleValidate, RejectsOverlap) {
  auto g = two_task_graph(0);
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 1.0, 4.0);
  EXPECT_THROW(s.validate(g, m), Error);
}

TEST(ScheduleValidate, RejectsMissingTask) {
  auto g = two_task_graph();
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  EXPECT_THROW(s.validate(g, m), Error);
}

TEST(ScheduleValidate, RejectsWrongDuration) {
  auto g = two_task_graph();
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 1.0);  // work 2 at speed 1 must take 2s
  s.place(1, 0, 1.0, 4.0);
  EXPECT_THROW(s.validate(g, m), Error);
}

TEST(ScheduleValidate, DuplicateSatisfiesConsumer) {
  auto g = two_task_graph(1e6);  // huge message: remote copy useless
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);                     // primary of a
  s.place(0, 1, 0.0, 2.0, /*duplicate=*/true); // duplicate of a on proc 1
  s.place(1, 1, 2.0, 5.0);                     // b fed by local duplicate
  EXPECT_NO_THROW(s.validate(g, m));
}

TEST(Metrics, SpeedupAgainstSerialTime) {
  auto g = two_task_graph(0);
  auto m = simple_machine();
  Schedule s(2, "manual");
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 2.0, 5.0);
  const auto metrics = compute_metrics(s, g, m);
  EXPECT_DOUBLE_EQ(metrics.serial_time, 5.0);
  EXPECT_DOUBLE_EQ(metrics.makespan, 5.0);
  EXPECT_DOUBLE_EQ(metrics.speedup, 1.0);
  EXPECT_DOUBLE_EQ(metrics.efficiency, 0.5);
}

// ---- Timeline ----

TEST(Timeline, AppendsAfterReadyTime) {
  Timeline t(1);
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 3.0, 2.0, true), 3.0);
  t.occupy(0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(t.avail(0), 5.0);
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 0.0, 1.0, false), 5.0);
}

TEST(Timeline, InsertionFindsGap) {
  Timeline t(1);
  t.occupy(0, 0.0, 2.0);
  t.occupy(0, 5.0, 2.0);
  // Gap [2,5) fits a 3-unit task with insertion.
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 0.0, 3.0, true), 2.0);
  // Without insertion it must append at 7.
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 0.0, 3.0, false), 7.0);
  // A 4-unit task does not fit the gap.
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 0.0, 4.0, true), 7.0);
}

TEST(Timeline, GapRespectsReadyTime) {
  Timeline t(1);
  t.occupy(0, 0.0, 2.0);
  t.occupy(0, 10.0, 1.0);
  // Ready at 4: the gap [2,10) is usable from 4.
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 4.0, 3.0, true), 4.0);
  // Ready at 8: remaining gap too small for 3 units.
  EXPECT_DOUBLE_EQ(t.earliest_slot(0, 8.0, 3.0, true), 11.0);
}

// ---- BuildState ----

TEST(BuildState, DataReadyPicksBestCopyAndCriticalParent) {
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  g.add_task({"b", 1, "", {}, {}});
  g.add_task({"c", 1, "", {}, {}});
  g.add_edge(0, 2, 100);  // 2s across procs
  g.add_edge(1, 2, 400);  // 5s across procs
  auto m = simple_machine(2);
  BuildState state(g, m);
  state.commit(0, 0, 0.0, false);  // a: [0,1) on p0
  state.commit(1, 0, 1.0, false);  // b: [1,2) on p0
  graph::TaskId critical = graph::kNoTask;
  // On p0 everything is local: ready = max finish = 2.
  EXPECT_DOUBLE_EQ(state.data_ready(2, 0, &critical), 2.0);
  // On p1: a arrives at 1+2=3, b arrives at 2+5=7.
  EXPECT_DOUBLE_EQ(state.data_ready(2, 1, &critical), 7.0);
  EXPECT_EQ(critical, 1u);
}

TEST(BuildState, FinishEmitsMessagesForRemoteEdges) {
  auto g = two_task_graph();
  auto m = simple_machine();
  BuildState state(g, m);
  state.commit(0, 0, 0.0, false);
  state.commit(1, 1, 4.0, false);
  const Schedule s = state.finish("x");
  ASSERT_EQ(s.messages().size(), 1u);
  EXPECT_EQ(s.messages()[0].from, 0);
  EXPECT_EQ(s.messages()[0].to, 1);
  EXPECT_DOUBLE_EQ(s.messages()[0].send, 2.0);
  EXPECT_DOUBLE_EQ(s.messages()[0].arrive, 4.0);
}

TEST(FixedAssignment, ProducesFeasibleSchedule) {
  auto g = two_task_graph();
  auto m = simple_machine();
  const auto s =
      schedule_fixed_assignment(g, m, {0, 1}, /*insertion=*/true, "fixed");
  EXPECT_NO_THROW(s.validate(g, m));
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);  // 2 + comm 2 + 3
}

TEST(FixedAssignment, RejectsBadProcessor) {
  auto g = two_task_graph();
  auto m = simple_machine();
  EXPECT_THROW(
      (void)schedule_fixed_assignment(g, m, {0, 9}, true, "fixed"), Error);
}

}  // namespace
}  // namespace banger::sched
