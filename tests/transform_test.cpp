// Graph transformations: grain packing and data-parallel splitting.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "sched/heuristics.hpp"
#include "transform/transform.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::transform {
namespace {

machine::Machine unit_machine(double speed = 1.0) {
  machine::MachineParams p;
  p.processor_speed = speed;
  p.message_startup = 0.5;
  p.bytes_per_second = 16.0;
  return machine::Machine(machine::Topology::fully_connected(4), p);
}

TEST(GrainPack, MergesTinyChainTasks) {
  // Ten 0.1-work tasks in a chain, threshold 1s: should pack into a few
  // grains with total work preserved.
  auto g = workloads::chain_graph(10, 0.1, 64.0);
  GrainPackOptions opts;
  opts.min_grain_seconds = 1.0;
  opts.max_grain_seconds = 2.0;
  const auto packed = pack_grains(g, unit_machine(), opts);
  EXPECT_LT(packed.graph.num_tasks(), g.num_tasks());
  EXPECT_NEAR(packed.graph.total_work(), g.total_work(), 1e-9);
  EXPECT_TRUE(packed.graph.is_acyclic());
}

TEST(GrainPack, PreservesMembership) {
  auto g = workloads::chain_graph(6, 0.2, 8.0);
  const auto packed = pack_grains(g, unit_machine());
  // Every original appears exactly once.
  std::vector<int> seen(g.num_tasks(), 0);
  for (const auto& members : packed.origin) {
    for (graph::TaskId m : members) ++seen[m];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // find_origin agrees.
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_NE(packed.find_origin(t), graph::kNoTask);
  }
}

TEST(GrainPack, LeavesBigTasksAlone) {
  auto g = workloads::fork_join(5, 10.0, 8.0);  // workers already 10s
  GrainPackOptions opts;
  opts.min_grain_seconds = 1.0;
  const auto packed = pack_grains(g, unit_machine(), opts);
  // fork (1s) and join (1s) may merge with a worker, but workers stay
  // distinct from each other (merging two would exceed max_grain 16).
  EXPECT_GE(packed.graph.num_tasks(), 4u);
}

TEST(GrainPack, RespectsMaxGrain) {
  auto g = workloads::chain_graph(20, 0.5, 8.0);
  GrainPackOptions opts;
  opts.min_grain_seconds = 10.0;  // everything is "small"
  opts.max_grain_seconds = 2.0;   // ...but grains cap at 2s
  const auto packed = pack_grains(g, unit_machine(), opts);
  for (const auto& t : packed.graph.tasks()) {
    EXPECT_LE(t.work, 2.0 + 1e-9);
  }
}

TEST(GrainPack, NeverCreatesCycles) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    workloads::RandomGraphSpec spec;
    spec.seed = seed;
    spec.work_lo = 0.1;
    spec.work_hi = 2.0;
    auto g = workloads::random_layered(spec);
    GrainPackOptions opts;
    opts.min_grain_seconds = 1.5;
    opts.max_grain_seconds = 6.0;
    const auto packed = pack_grains(g, unit_machine(), opts);
    EXPECT_TRUE(packed.graph.is_acyclic()) << seed;
    EXPECT_NEAR(packed.graph.total_work(), g.total_work(), 1e-9) << seed;
  }
}

TEST(GrainPack, ImprovesScheduleOnFineGrainGraph) {
  // Fine-grained diamond with costly messages: packing should not hurt
  // and usually helps the scheduled makespan.
  auto g = workloads::diamond(6, 6, 0.2, 64.0);
  const auto m = unit_machine();
  const auto before = sched::MhScheduler().run(g, m);
  GrainPackOptions opts;
  opts.min_grain_seconds = 1.0;
  opts.max_grain_seconds = 4.0;
  const auto packed = pack_grains(g, m, opts);
  const auto after = sched::MhScheduler().run(packed.graph, m);
  after.validate(packed.graph, m);
  EXPECT_LT(after.makespan(), before.makespan());
}

TEST(Split, ShardsWorkAndTraffic) {
  auto g = workloads::fork_join(1, 8.0, 64.0);  // fork -> work0 -> join
  const auto work0 = g.require("work0");
  const auto split = split_data_parallel(g, work0, 4);
  EXPECT_EQ(split.graph.num_tasks(), 6u);  // fork, join, 4 shards
  EXPECT_NEAR(split.graph.total_work(), g.total_work(), 1e-9);
  for (int k = 0; k < 4; ++k) {
    const auto shard = split.graph.require("work0#" + std::to_string(k));
    EXPECT_DOUBLE_EQ(split.graph.task(shard).work, 2.0);
    EXPECT_EQ(split.graph.preds(shard).size(), 1u);
    EXPECT_EQ(split.graph.succs(shard).size(), 1u);
  }
  // Total traffic preserved: each shard edge carries bytes/4.
  EXPECT_NEAR(split.graph.total_bytes(), g.total_bytes(), 1e-9);
}

TEST(Split, OriginTracksShards) {
  auto g = workloads::fork_join(2, 4.0, 8.0);
  const auto target = g.require("work1");
  const auto split = split_data_parallel(g, target, 3);
  int shards = 0;
  for (graph::TaskId t = 0; t < split.graph.num_tasks(); ++t) {
    if (split.origin[t] == std::vector<graph::TaskId>{target}) ++shards;
  }
  EXPECT_EQ(shards, 3 + 0);  // the three shards only... plus none others
}

TEST(Split, WaysOneIsIdentityShaped) {
  auto g = workloads::chain_graph(3, 2.0, 8.0);
  const auto split = split_data_parallel(g, 1, 1);
  EXPECT_EQ(split.graph.num_tasks(), 3u);
  EXPECT_EQ(split.graph.num_edges(), 2u);
}

TEST(Split, RejectsBadArguments) {
  auto g = workloads::chain_graph(3, 2.0, 8.0);
  EXPECT_THROW((void)split_data_parallel(g, 99, 2), Error);
  EXPECT_THROW((void)split_data_parallel(g, 0, 0), Error);
  EXPECT_THROW((void)split_data_parallel(g, 0, 5000), Error);
}

TEST(Split, UnlocksSpeedupOnSerialBottleneck) {
  // One heavy task dominates: splitting it 4 ways lets 4 processors
  // help — the paper's fine-grained extension in action.
  graph::TaskGraph g;
  const auto pre = g.add_task({"pre", 1, "", {}, {}});
  const auto heavy = g.add_task({"heavy", 16, "", {}, {}});
  const auto post = g.add_task({"post", 1, "", {}, {}});
  g.add_edge(pre, heavy, 8);
  g.add_edge(heavy, post, 8);

  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.05;
  p.bytes_per_second = 1e4;
  machine::Machine m(machine::Topology::fully_connected(4), p);

  const auto before = sched::MhScheduler().run(g, m);
  const auto split = split_data_parallel(g, heavy, 4);
  const auto after = sched::MhScheduler().run(split.graph, m);
  after.validate(split.graph, m);
  EXPECT_LT(after.makespan(), before.makespan() * 0.5);
}

TEST(SplitHeavy, SweepsAllOversizedTasks) {
  auto g = workloads::lu_taskgraph(6, 8.0);
  const auto m = unit_machine();
  const auto split = split_heavy_tasks(g, m, 2.0, 4);
  EXPECT_GT(split.graph.num_tasks(), g.num_tasks());
  EXPECT_NEAR(split.graph.total_work(), g.total_work(), 1e-9);
  for (const auto& t : split.graph.tasks()) {
    // No unsplit task above threshold remains (shards may still exceed
    // it when capped at max_ways).
    if (t.name.find('#') == std::string::npos) {
      EXPECT_LE(t.work, 2.0 + 1e-9) << t.name;
    }
  }
  EXPECT_TRUE(split.graph.is_acyclic());
}

TEST(SplitHeavy, ComposedOriginsCoverOriginals) {
  auto g = workloads::lu_taskgraph(5, 8.0);
  const auto split = split_heavy_tasks(g, unit_machine(), 2.0, 4);
  std::vector<bool> covered(g.num_tasks(), false);
  for (const auto& members : split.origin) {
    for (graph::TaskId m : members) covered[m] = true;
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

}  // namespace
}  // namespace banger::transform
