// Keeps the shipped samples/ files working forever: every sample design
// validates, lints clean, and runs end to end on every sample machine.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/lint.hpp"
#include "core/project.hpp"
#include "fault/fault.hpp"
#include "graph/serialize.hpp"
#include "machine/serialize.hpp"

namespace banger {
namespace {

std::string samples_dir() {
  // Tests run from build/; samples live next to the sources. Walk up
  // from the current directory until a `samples` folder appears.
  namespace fs = std::filesystem;
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (fs::exists(dir / "samples" / "sqrt_fanout.pitl")) {
      return (dir / "samples").string();
    }
    dir = dir.parent_path();
  }
  return {};
}

class Samples : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = samples_dir();
    if (dir_.empty()) GTEST_SKIP() << "samples/ not found from cwd";
  }
  std::string dir_;
};

TEST_F(Samples, AllMachinesParse) {
  for (const char* name :
       {"ipsc_hypercube8.machine", "lan_star5.machine",
        "mixed_mesh6.machine"}) {
    const auto m = machine::load_machine(dir_ + "/" + name);
    EXPECT_GE(m.num_procs(), 5) << name;
    // Round trip.
    const auto again = machine::parse_machine(machine::to_text(m));
    EXPECT_EQ(again.num_procs(), m.num_procs()) << name;
  }
}

TEST_F(Samples, MixedMeshIsHeterogeneous) {
  const auto m = machine::load_machine(dir_ + "/mixed_mesh6.machine");
  EXPECT_FALSE(m.homogeneous());
  EXPECT_DOUBLE_EQ(m.speed_factor(0), 2.0);
  EXPECT_DOUBLE_EQ(m.speed_factor(5), 1.0);
}

TEST_F(Samples, SqrtFanoutValidatesAndLintsClean) {
  Project project = Project::load(dir_ + "/sqrt_fanout.pitl");
  EXPECT_EQ(project.summary().leaf_tasks, 6u);
  EXPECT_TRUE(lint_design(project.design()).empty());
}

TEST_F(Samples, SqrtFanoutRunsOnEveryMachine) {
  Project project = Project::load(dir_ + "/sqrt_fanout.pitl");
  pits::Vector xs{4, 9, 16, 25, 36, 49, 64, 81};
  const pits::Vector expect{2, 3, 4, 5, 6, 7, 8, 9};
  for (const char* name :
       {"ipsc_hypercube8.machine", "lan_star5.machine",
        "mixed_mesh6.machine"}) {
    project.set_machine(machine::load_machine(dir_ + "/" + name));
    const auto result = project.run({{"xs", pits::Value(xs)}});
    EXPECT_EQ(result.outputs.at("roots").as_vector(), expect) << name;
  }
}

TEST_F(Samples, DemoFaultPlanLoadsAndRoundTrips) {
  const auto plan = fault::FaultPlan::load(dir_ + "/demo.fault");
  EXPECT_EQ(plan.name(), "demo");
  EXPECT_EQ(plan.seed(), 7u);
  ASSERT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.crashes()[0].proc, 1);
  ASSERT_EQ(plan.slowdowns().size(), 1u);
  EXPECT_DOUBLE_EQ(plan.msg_loss().prob, 0.2);
  EXPECT_DOUBLE_EQ(plan.msg_delay().jitter, 0.25);
  const auto again = fault::FaultPlan::parse(plan.to_text());
  EXPECT_EQ(again.to_text(), plan.to_text());
  // Valid for every shipped sample machine (all have >= 5 processors).
  plan.validate(5);
}

TEST_F(Samples, LanCommunicationCostsBite) {
  Project project = Project::load(dir_ + "/sqrt_fanout.pitl");
  // Cheap network first.
  project.set_machine(
      machine::load_machine(dir_ + "/ipsc_hypercube8.machine"));
  const double fast_net = project.metrics("mh").speedup;
  // Expensive LAN: the same design parallelises, but the 2 s message
  // startups eat a visible share of the win — and MH must still never
  // lose to serial placement.
  project.set_machine(machine::load_machine(dir_ + "/lan_star5.machine"));
  const auto lan = project.metrics("mh");
  EXPECT_LT(lan.speedup, fast_net);
  EXPECT_LE(lan.makespan, project.metrics("serial").makespan + 1e-9);
}

TEST(Tutorial, StatsProgramFromDocsWorks) {
  // Mirrors docs/tutorial.md; if this breaks, update the tutorial.
  const char* pitl = R"(design stats
graph stats
  store samples bytes=512
  store summary bytes=16
  task sum_task work=4 in=samples out=s
  pits {
    s := sum(samples)
  }
  task sumsq_task work=4 in=samples out=q
  pits {
    q := dot(samples, samples)
  }
  task finish work=1 in=samples,s,q out=summary
  pits {
    n := len(samples)
    mean := s / n
    summary := [mean, q / n - mean * mean]
  }
  arc samples -> sum_task var=samples bytes=512
  arc samples -> sumsq_task var=samples bytes=512
  arc samples -> finish var=samples bytes=512
  arc sum_task -> finish var=s bytes=8
  arc sumsq_task -> finish var=q bytes=8
  arc finish -> summary var=summary bytes=16
)";
  Project project(graph::parse_design(pitl));
  EXPECT_TRUE(lint_design(project.design()).empty());
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.1;
  p.bytes_per_second = 4096;
  project.set_machine(
      machine::Machine(machine::Topology::fully_connected(4), p));
  const auto result = project.run(
      {{"samples", pits::Value(pits::Vector{2, 4, 4, 4, 5, 5, 7, 9})}});
  EXPECT_EQ(result.outputs.at("summary").as_vector(), (pits::Vector{5, 4}));
  // The two reduction tasks overlap: speedup above 1.
  EXPECT_GT(project.metrics("mh").speedup, 1.0);
}

}  // namespace
}  // namespace banger
