// Discrete-event simulator tests: agreement with the analytic schedule,
// contention effects, event logs.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sim {
namespace {

using sched::MhScheduler;
using sched::SerialScheduler;

Machine make_machine(int procs, double ccr,
                     const std::string& kind = "full") {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  if (kind == "chain") return Machine(machine::Topology::chain(procs), p);
  if (kind == "star") return Machine(machine::Topology::star(procs), p);
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(Simulator, MatchesScheduleOnSerialPlan) {
  auto g = workloads::fork_join(5, 2.0, 16.0);
  auto m = make_machine(2, 0.5);
  const auto s = SerialScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  EXPECT_NEAR(result.makespan, s.makespan(), 1e-9);
  EXPECT_EQ(result.num_messages, 0u);  // everything local
}

TEST(Simulator, NeverSlowerThanScheduleWithoutContention) {
  // Replaying lane order with as-early-as-possible starts can only keep
  // or compact the analytic schedule, never exceed it.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    workloads::RandomGraphSpec spec;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    auto m = make_machine(4, 0.5);
    const auto s = MhScheduler().run(g, m);
    const auto result = simulate(g, m, s);
    EXPECT_LE(result.makespan, s.makespan() + 1e-9) << "seed " << seed;
    EXPECT_GT(result.makespan, 0.0);
  }
}

TEST(Simulator, TaskTimingsConsistent) {
  auto g = workloads::diamond(3, 3, 2.0, 16.0);
  auto m = make_machine(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  ASSERT_EQ(result.tasks.size(), g.num_tasks());
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto& timing = result.tasks[t];
    EXPECT_NEAR(timing.finish - timing.start,
                m.task_time(g.task(t).work, timing.proc), 1e-9);
    // Precedence respected with actual times.
    for (graph::EdgeId e : g.in_edges(t)) {
      EXPECT_LE(result.tasks[g.edge(e).from].finish, timing.start + 1e-9);
    }
  }
}

TEST(Simulator, BusyTimeMatchesWork) {
  auto g = workloads::fork_join(6, 3.0, 8.0);
  auto m = make_machine(3, 0.2);
  const auto s = MhScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  double busy = 0;
  for (double b : result.proc_busy) busy += b;
  EXPECT_NEAR(busy, g.total_work(), 1e-9);  // speed 1, no startup
}

TEST(Simulator, ContentionDelaysSharedLinks) {
  // Star topology: all traffic crosses the hub; many simultaneous
  // messages must queue when contention is on.
  auto g = workloads::fork_join(8, 1.0, 64.0);
  auto m = make_machine(5, 2.0, "star");
  const auto s = sched::RoundRobinScheduler().run(g, m);
  SimOptions off;
  off.link_contention = false;
  SimOptions on;
  on.link_contention = true;
  const auto free_run = simulate(g, m, s, off);
  const auto contended = simulate(g, m, s, on);
  EXPECT_GT(contended.makespan, free_run.makespan);
  EXPECT_GT(contended.max_queue_delay, 0.0);
  EXPECT_DOUBLE_EQ(free_run.max_queue_delay, 0.0);
}

TEST(Simulator, EventLogOrderedAndComplete) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  ASSERT_FALSE(result.events.empty());
  std::size_t starts = 0;
  std::size_t finishes = 0;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(result.events[i].time, result.events[i - 1].time);
    }
    starts += result.events[i].kind == EventKind::TaskStart;
    finishes += result.events[i].kind == EventKind::TaskFinish;
  }
  EXPECT_EQ(starts, g.num_tasks());
  EXPECT_EQ(finishes, g.num_tasks());
}

TEST(Simulator, RecordEventsOffKeepsResultsSmall) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  SimOptions opts;
  opts.record_events = false;
  const auto result = simulate(g, m, s, opts);
  EXPECT_TRUE(result.events.empty());
  EXPECT_GT(result.makespan, 0.0);
}

TEST(Simulator, RecordEventsOffStillPopulatesTimings) {
  // record_events only suppresses the animation log; per-task timings,
  // busy time, and the scalar metrics must be identical either way.
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto with_events = simulate(g, m, s);
  SimOptions opts;
  opts.record_events = false;
  const auto without = simulate(g, m, s, opts);
  EXPECT_DOUBLE_EQ(without.makespan, with_events.makespan);
  EXPECT_EQ(without.num_messages, with_events.num_messages);
  ASSERT_EQ(without.tasks.size(), with_events.tasks.size());
  for (std::size_t t = 0; t < without.tasks.size(); ++t) {
    EXPECT_DOUBLE_EQ(without.tasks[t].start, with_events.tasks[t].start);
    EXPECT_DOUBLE_EQ(without.tasks[t].finish, with_events.tasks[t].finish);
    EXPECT_EQ(without.tasks[t].proc, with_events.tasks[t].proc);
  }
  ASSERT_EQ(without.proc_busy.size(), with_events.proc_busy.size());
  for (std::size_t p = 0; p < without.proc_busy.size(); ++p) {
    EXPECT_DOUBLE_EQ(without.proc_busy[p], with_events.proc_busy[p]);
  }
}

TEST(Simulator, AnimationRendersEvents) {
  auto g = workloads::fork_join(3, 1.0, 8.0);
  auto m = make_machine(2, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  const std::string anim = result.animation(5);
  EXPECT_NE(anim.find("start"), std::string::npos);
  EXPECT_NE(anim.find("t="), std::string::npos);
}

TEST(Simulator, CountsMessages) {
  auto g = workloads::fork_join(4, 1.0, 8.0);
  auto m = make_machine(4, 0.1);
  const auto s = sched::RoundRobinScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  // Round-robin spreads workers off the fork/join processor: messages
  // must flow.
  EXPECT_GT(result.num_messages, 0u);
  EXPECT_GT(result.total_link_time, 0.0);
}

TEST(Simulator, MultiHopMessagesTraverseRoutes) {
  auto g = workloads::chain_graph(2, 1.0, 16.0);
  auto m = make_machine(4, 1.0, "chain");
  // Force the two tasks to opposite ends of the chain.
  sched::Schedule s(4, "manual");
  s.place(0, 0, 0.0, 1.0);
  const double comm = m.comm_time(16.0, 0, 3);
  s.place(1, 3, 1.0 + comm, 2.0 + comm);
  s.validate(g, m);
  SimOptions opts;
  opts.link_contention = true;
  const auto result = simulate(g, m, s, opts);
  // Hop events at each intermediate processor.
  std::size_t hops = 0;
  for (const auto& e : result.events) hops += e.kind == EventKind::MsgHop;
  EXPECT_EQ(hops, 3u);
  EXPECT_NEAR(result.makespan, s.makespan(), 1e-9);
}

TEST(Simulator, DuplicateCopiesRun) {
  auto g = workloads::fork_join(6, 1.0, 8.0);
  auto m = make_machine(4, 4.0);
  const auto s = sched::DshScheduler().run(g, m);
  if (s.num_duplicates() == 0) GTEST_SKIP() << "no duplicates generated";
  const auto result = simulate(g, m, s);
  EXPECT_LE(result.makespan, s.makespan() + 1e-9);
}

TEST(Simulator, AsScheduleRoundTripsTimings) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto result = simulate(g, m, s);
  const auto replay = as_schedule(result, m.num_procs());
  EXPECT_EQ(replay.scheduler_name(), "simulated");
  EXPECT_NEAR(replay.makespan(), result.makespan, 1e-12);
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto pl = replay.placement_of(t);
    ASSERT_TRUE(pl.has_value());
    EXPECT_DOUBLE_EQ(pl->start, result.tasks[t].start);
    EXPECT_EQ(pl->proc, result.tasks[t].proc);
  }
}

TEST(Simulator, RejectsIncompleteSchedule) {
  auto g = workloads::fork_join(2, 1.0, 8.0);
  auto m = make_machine(2, 0.5);
  sched::Schedule s(2, "broken");
  s.place(0, 0, 0.0, 1.0);  // other tasks missing
  EXPECT_THROW((void)simulate(g, m, s), Error);
}

}  // namespace
}  // namespace banger::sim
