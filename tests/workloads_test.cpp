// Workload generator tests: structural invariants of every canonical
// graph family.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "workloads/designs.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"
#include "workloads/synth.hpp"

namespace banger::workloads {
namespace {

using graph::TaskGraph;

TEST(Lu, TaskGraphCounts) {
  // Steps k = 0..n-2: 1 fan + (n-1-k) updates.
  for (int n : {2, 3, 5, 8}) {
    const auto g = lu_taskgraph(n);
    std::size_t expect = 0;
    for (int k = 0; k + 1 < n; ++k)
      expect += 1 + static_cast<std::size_t>(n - 1 - k);
    EXPECT_EQ(g.num_tasks(), expect) << n;
    EXPECT_TRUE(g.is_acyclic());
  }
  EXPECT_THROW((void)lu_taskgraph(1), Error);
}

TEST(Lu, DependenceStructure) {
  const auto g = lu_taskgraph(4);
  // fan1 depends on upd0_1; upd1_2 depends on fan1 and upd0_2.
  const auto fan1 = g.require("fan1");
  const auto upd0_1 = g.require("upd0_1");
  const auto preds = g.preds(fan1);
  EXPECT_EQ(preds, std::vector<graph::TaskId>{upd0_1});
  const auto upd1_2 = g.require("upd1_2");
  EXPECT_EQ(g.preds(upd1_2).size(), 2u);
}

TEST(Lu, ParallelismShrinksWithSteps) {
  const auto g = lu_taskgraph(8);
  const auto profile = graph::level_profile(g);
  EXPECT_GE(profile.levels[1].size(), profile.levels.back().size());
}

TEST(Fft, ButterflyStructure) {
  const auto g = fft_taskgraph(8);
  EXPECT_EQ(g.num_tasks(), 8u * 4);  // (log2(8)+1) stages of 8
  EXPECT_TRUE(g.is_acyclic());
  // Every non-first-stage task has exactly two parents.
  for (graph::TaskId t = 8; t < g.num_tasks(); ++t) {
    EXPECT_EQ(g.in_edges(t).size(), 2u);
  }
  EXPECT_THROW((void)fft_taskgraph(6), Error);
  EXPECT_THROW((void)fft_taskgraph(1), Error);
}

TEST(ForkJoin, Structure) {
  const auto g = fork_join(5, 2.0);
  EXPECT_EQ(g.num_tasks(), 7u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(graph::level_profile(g).max_width(), 5u);
}

TEST(Pipeline, CoupledAddsStencilEdges) {
  const auto plain = pipeline(3, 4, false);
  const auto coupled = pipeline(3, 4, true);
  EXPECT_EQ(plain.num_tasks(), coupled.num_tasks());
  EXPECT_GT(coupled.num_edges(), plain.num_edges());
}

TEST(Diamond, WavefrontDepth) {
  const auto g = diamond(3, 4);
  EXPECT_EQ(g.num_tasks(), 12u);
  // Longest path has rows+cols-1 levels.
  EXPECT_EQ(graph::level_profile(g).depth(), 6u);
}

TEST(ReductionTree, Structure) {
  const auto g = reduction_tree(8);
  EXPECT_EQ(g.num_tasks(), 15u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.sources().size(), 8u);
}

TEST(DivideConquer, DiamondShape) {
  const auto g = divide_conquer(3);
  // Out-tree: 1+2+4+8 = 15; in-tree: 4+2+1 = 7.
  EXPECT_EQ(g.num_tasks(), 22u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Chain, NoParallelism) {
  const auto g = chain_graph(5);
  EXPECT_DOUBLE_EQ(graph::average_parallelism(g), 1.0);
}

TEST(RandomLayered, SeededAndConnected) {
  RandomGraphSpec spec;
  spec.seed = 11;
  const auto g1 = random_layered(spec);
  const auto g2 = random_layered(spec);
  EXPECT_EQ(g1.num_tasks(), g2.num_tasks());
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_TRUE(g1.is_acyclic());
  // Every non-source task has at least one parent by construction.
  std::size_t sources = g1.sources().size();
  EXPECT_LE(sources, static_cast<std::size_t>(spec.width * 2));

  spec.seed = 12;
  const auto g3 = random_layered(spec);
  EXPECT_TRUE(g1.num_edges() != g3.num_edges() ||
              g1.num_tasks() != g3.num_tasks());
}

TEST(RandomLayered, RespectsWorkBounds) {
  RandomGraphSpec spec;
  spec.work_lo = 2.0;
  spec.work_hi = 3.0;
  const auto g = random_layered(spec);
  for (const auto& t : g.tasks()) {
    EXPECT_GE(t.work, 2.0);
    EXPECT_LT(t.work, 3.0);
  }
}

TEST(Designs, MontecarloShape) {
  const auto d = montecarlo_design(5, 100);
  const auto flat = d.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 6u);  // 5 samplers + reduce
  EXPECT_EQ(flat.output_stores().size(), 1u);
}

TEST(Designs, SignalPipelineHierarchy) {
  const auto d = signal_pipeline_design(4);
  EXPECT_EQ(d.depth(), 2);
  const auto flat = d.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 4u * 3 + 1);
  EXPECT_TRUE(flat.graph.find("chan2.bandpass").has_value());
}

TEST(Designs, PolyevalShape) {
  const auto flat = polyeval_design(4).flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 5u);
  EXPECT_EQ(flat.input_stores().size(), 2u);  // coeffs, xs
}

TEST(Designs, HeatDesignShape) {
  const auto d = heat_design(3, 4, 8);
  const auto flat = d.flatten();
  // 3 init + 3*4 stencil + 1 gather.
  EXPECT_EQ(flat.graph.num_tasks(), 3u + 12u + 1u);
  EXPECT_TRUE(flat.graph.is_acyclic());
  EXPECT_EQ(flat.input_stores().size(), 1u);
  EXPECT_EQ(flat.output_stores().size(), 1u);
  // Interior stencil tasks have 3 predecessors (own chunk + 2 ghosts).
  const auto mid = flat.graph.require("st2_1");
  EXPECT_EQ(flat.graph.preds(mid).size(), 3u);
  // Edge segments only 2.
  const auto edge = flat.graph.require("st2_0");
  EXPECT_EQ(flat.graph.preds(edge).size(), 2u);
}

TEST(Designs, HeatDesignRejectsBadParams) {
  EXPECT_THROW((void)heat_design(0, 1, 4), Error);
  EXPECT_THROW((void)heat_design(2, 2, 1), Error);
  EXPECT_THROW((void)heat_design(2, 2, 4, 0.9), Error);
}

TEST(Synth, FillsProgramsAndInterfaces) {
  auto g = fork_join(3, 0.1);
  synthesize_pits(g);
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_FALSE(g.task(t).pits.empty());
    EXPECT_EQ(g.task(t).outputs.size(), 1u);
    EXPECT_EQ(g.task(t).inputs.size(), g.preds(t).size());
  }
}

TEST(Synth, WorkScalesIterations) {
  auto g = chain_graph(2);
  g.task(0).work = 1.0;
  g.task(1).work = 10.0;
  synthesize_pits(g);
  EXPECT_NE(g.task(0).pits.find("repeat 200 times"), std::string::npos);
  EXPECT_NE(g.task(1).pits.find("repeat 2000 times"), std::string::npos);
}

}  // namespace
}  // namespace banger::workloads
