// Serve subsystem tests: the JSON wire format, the content-hashed
// artifact cache (single-flight, LRU eviction, hit/miss byte-identity),
// admission control (overload shedding, deadlines with an injected
// clock), response ordering, TCP transport, and — the service's core
// contract — byte-identity between serve responses and the equivalent
// one-shot CLI invocations. A committed request corpus with golden
// responses pins the wire format (BANGER_UPDATE_GOLDEN=1 regenerates).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "graph/serialize.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/error.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"
#include "workloads/lu.hpp"

namespace banger::serve {
namespace {

namespace fs = std::filesystem;

const char* kMachineText =
    "machine cube4\n"
    "topology hypercube dim=2\n"
    "speed 1\n"
    "message_startup 0.05\n"
    "bandwidth 512\n";

std::string lu_design_text() {
  return graph::to_pitl(workloads::lu3x3_design());
}

std::string request(Json::Object fields) {
  return Json::object(std::move(fields)).dump();
}

/// Extracts a member from a response line, failing the test on a
/// malformed envelope.
const Json& field(const Json& resp, const std::string& key) {
  const Json* found = resp.find(key);
  EXPECT_NE(found, nullptr) << "response missing `" << key
                            << "`: " << resp.dump();
  static const Json null;
  return found != nullptr ? *found : null;
}

// ---------------------------------------------------------------- JSON

TEST(ServeJson, RoundTripPreservesOrderAndTypes) {
  const std::string text =
      R"({"id":7,"op":"x","flag":true,"none":null,"vals":[1,2.5,"a\nb"]})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);
  EXPECT_EQ(field(doc, "id").as_number(), 7.0);
  EXPECT_TRUE(field(doc, "flag").as_bool());
  EXPECT_TRUE(field(doc, "none").is_null());
  EXPECT_EQ(field(doc, "vals").as_array()[2].as_string(), "a\nb");
}

TEST(ServeJson, ParseErrorCarriesPosition) {
  try {
    Json::parse("{\n  \"a\": }");
    FAIL() << "expected Error{Parse}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.pos().line, 2);
  }
}

TEST(ServeJson, RejectsTrailingJunkAndUnterminatedStrings) {
  EXPECT_THROW(Json::parse("{} x"), Error);
  EXPECT_THROW(Json::parse("\"abc"), Error);
  EXPECT_THROW(Json::parse("[1, 2"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
}

TEST(ServeJson, UnicodeEscapes) {
  const Json doc = Json::parse(R"("tab\tandA")");
  EXPECT_EQ(doc.as_string(), "tab\tandA");
}

// ------------------------------------------------------------- hashing

TEST(ServeHash, ContentHashIsStableAcrossRunsAndProcesses) {
  // Pinned FNV-1a 64 values: if these move, every cache key, session
  // hash, and schedule-golden manifest moves with them.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(util::fnv1a64("hello"), 0xa430d84680aabd0bull);
  EXPECT_EQ(util::fnv1a64_hex("hello"), "a430d84680aabd0b");
  // Seeded form feeds chained keys (kind + payload digests).
  EXPECT_EQ(util::fnv1a64("b", util::fnv1a64("a")),
            util::fnv1a64("ab"));
}

// --------------------------------------------------------------- cache

TEST(ServeCache, BuildsOnceThenHits) {
  ArtifactCache cache(8);
  std::atomic<int> builds{0};
  const CacheKey key{"unit", util::fnv1a64("payload")};
  auto build = [&]() -> std::shared_ptr<const int> {
    ++builds;
    return std::make_shared<const int>(41);
  };
  const auto a = cache.get_or_build<int>(key, build);
  const auto b = cache.get_or_build<int>(key, build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(a.get(), b.get());  // the artifact itself is shared
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeCache, EvictsLeastRecentlyUsedAtCapacity) {
  ArtifactCache cache(2);
  auto put = [&](const char* name, int v) {
    return cache.get_or_build<int>(
        {"unit", util::fnv1a64(name)},
        [v]() { return std::make_shared<const int>(v); });
  };
  put("a", 1);
  put("b", 2);
  put("a", 1);  // refresh a; b is now coldest
  put("c", 3);  // evicts b
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  std::atomic<int> rebuilds{0};
  cache.get_or_build<int>({"unit", util::fnv1a64("a")}, [&]() {
    ++rebuilds;
    return std::make_shared<const int>(1);
  });
  cache.get_or_build<int>({"unit", util::fnv1a64("b")}, [&]() {
    ++rebuilds;
    return std::make_shared<const int>(2);
  });
  EXPECT_EQ(rebuilds.load(), 1) << "a should have survived, b not";
}

TEST(ServeCache, SingleFlightUnderConcurrency) {
  ArtifactCache cache(8);
  std::atomic<int> builds{0};
  const CacheKey key{"unit", util::fnv1a64("shared")};
  std::vector<std::thread> threads;
  std::vector<int> results(16, 0);
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&, i] {
      const auto v = cache.get_or_build<int>(key, [&]() {
        ++builds;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return std::make_shared<const int>(7);
      });
      results[static_cast<std::size_t>(i)] = *v;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1) << "concurrent lookups must share one build";
  for (int v : results) EXPECT_EQ(v, 7);
}

TEST(ServeCache, FailedBuildIsNotCached) {
  ArtifactCache cache(8);
  const CacheKey key{"unit", util::fnv1a64("flaky")};
  EXPECT_THROW(cache.get_or_build<int>(
                   key,
                   []() -> std::shared_ptr<const int> {
                     fail(ErrorCode::Parse, "boom");
                   }),
               Error);
  const auto v = cache.get_or_build<int>(
      key, []() { return std::make_shared<const int>(5); });
  EXPECT_EQ(*v, 5) << "a later request must retry after a failed build";
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ------------------------------------------------------------ sessions

TEST(ServeSession, MissingNameAndWrongKind) {
  SessionStore store;
  store.put("lu", "design", "design text");
  EXPECT_EQ(store.get("lu", "design").text, "design text");
  try {
    (void)store.get("nope", "design");
    FAIL() << "expected Error{Name}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Name);
  }
  try {
    (void)store.get("lu", "machine");
    FAIL() << "expected Error{Type}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Type);
  }
}

// ------------------------------------------------------------ protocol

TEST(ServeProtocol, UnknownFieldIsUsageError) {
  const Json doc = Json::parse(R"({"op":"ping","bogus":1})");
  try {
    parse_request(doc);
    FAIL() << "expected Error{Usage}";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Usage);
    EXPECT_NE(e.message().find("bogus"), std::string::npos);
  }
}

TEST(ServeProtocol, InlineAndRefAreMutuallyExclusive) {
  const Json doc =
      Json::parse(R"({"op":"check","design":"x","design_ref":"y"})");
  EXPECT_THROW(parse_request(doc), Error);
}

// -------------------------------------------------------------- server

TEST(ServeServer, PingAndUnknownOp) {
  Server server;
  const Json pong =
      Json::parse(server.handle_line(request({{"id", Json::number(1)},
                                              {"op", Json::string("ping")}})));
  EXPECT_TRUE(field(pong, "ok").as_bool());
  EXPECT_EQ(field(pong, "output").as_string(), "pong");
  EXPECT_EQ(field(pong, "exit").as_number(), 0.0);

  const Json bad = Json::parse(
      server.handle_line(request({{"op", Json::string("frobnicate")}})));
  EXPECT_FALSE(field(bad, "ok").as_bool());
  EXPECT_EQ(field(bad, "exit").as_number(), 2.0);
  EXPECT_EQ(field(field(bad, "error"), "code").as_string(), "usage");
}

TEST(ServeServer, MalformedLineGetsParseEnvelope) {
  Server server;
  const Json resp = Json::parse(server.handle_line("{nope"));
  EXPECT_FALSE(field(resp, "ok").as_bool());
  EXPECT_EQ(field(field(resp, "error"), "code").as_string(), "parse");
  EXPECT_TRUE(field(resp, "id").is_null());
}

TEST(ServeServer, CacheHitIsByteIdenticalToMiss) {
  Server server;
  auto line = [&](int id) {
    return request({{"id", Json::number(id)},
                    {"op", Json::string("schedule")},
                    {"design", Json::string(lu_design_text())},
                    {"machine", Json::string(kMachineText)}});
  };
  const Json cold = Json::parse(server.handle_line(line(1)));
  const Json warm = Json::parse(server.handle_line(line(2)));
  EXPECT_EQ(field(cold, "output").as_string(),
            field(warm, "output").as_string());
  const auto stats = server.cache_stats();
  EXPECT_GE(stats.hits, 1u) << "second request must hit the response cache";
}

TEST(ServeServer, UploadedRefMatchesInlineByteForByte) {
  Server server;
  const Json up = Json::parse(server.handle_line(
      request({{"op", Json::string("upload")},
               {"name", Json::string("lu")},
               {"kind", Json::string("design")},
               {"text", Json::string(lu_design_text())}})));
  ASSERT_TRUE(field(up, "ok").as_bool()) << up.dump();
  EXPECT_EQ(field(up, "hash").as_string(),
            util::fnv1a64_hex(lu_design_text()));

  const Json inline_resp = Json::parse(server.handle_line(
      request({{"op", Json::string("check")},
               {"design", Json::string(lu_design_text())},
               {"file", Json::string("lu.pitl")}})));
  const Json ref_resp = Json::parse(server.handle_line(
      request({{"op", Json::string("check")},
               {"design_ref", Json::string("lu")},
               {"file", Json::string("lu.pitl")}})));
  EXPECT_EQ(field(inline_resp, "output").as_string(),
            field(ref_resp, "output").as_string());

  const Json missing = Json::parse(server.handle_line(
      request({{"op", Json::string("check")},
               {"design_ref", Json::string("unknown")}})));
  EXPECT_EQ(field(field(missing, "error"), "code").as_string(), "name");
}

TEST(ServeServer, BadUploadNeverBecomesReferenceable) {
  Server server;
  const Json up = Json::parse(server.handle_line(
      request({{"op", Json::string("upload")},
               {"name", Json::string("broken")},
               {"kind", Json::string("design")},
               {"text", Json::string("this is not a design")}})));
  EXPECT_FALSE(field(up, "ok").as_bool());
  const Json use = Json::parse(server.handle_line(
      request({{"op", Json::string("check")},
               {"design_ref", Json::string("broken")}})));
  EXPECT_EQ(field(field(use, "error"), "code").as_string(), "name");
}

TEST(ServeServer, DeadlineShedsStaleRequests) {
  ServeOptions opts;
  opts.deadline_ms = 50;
  opts.clock = [] { return 10.0; };  // frozen service clock
  Server server(opts);
  const std::string ping = request({{"op", Json::string("ping")}});
  // Arrived just now: runs.
  const Json fresh = Json::parse(server.handle_line(ping, /*arrival=*/10.0));
  EXPECT_TRUE(field(fresh, "ok").as_bool());
  // Arrived 100ms (of service-clock time) ago: shed.
  const Json stale = Json::parse(server.handle_line(ping, /*arrival=*/9.9));
  EXPECT_FALSE(field(stale, "ok").as_bool());
  EXPECT_EQ(field(field(stale, "error"), "code").as_string(), "limit");
  EXPECT_GE(server.recorder().metric("serve.shed"), 1.0);
}

TEST(ServeServer, OverloadShedsWithLimitEnvelope) {
  ServeOptions opts;
  opts.max_inflight = 1;
  opts.jobs = 1;
  Server server(opts);
  ASSERT_TRUE(server.try_acquire_slot());  // soak the only slot
  std::istringstream in(
      request({{"id", Json::number(9)}, {"op", Json::string("ping")}}) +
      "\n");
  std::ostringstream out;
  server.serve_stream(in, out);
  server.release_slot();
  const Json resp = Json::parse(out.str());
  EXPECT_FALSE(field(resp, "ok").as_bool());
  EXPECT_EQ(field(resp, "id").as_number(), 9.0);
  EXPECT_EQ(field(field(resp, "error"), "code").as_string(), "limit");
}

TEST(ServeServer, StreamAnswersInRequestOrder) {
  ServeOptions opts;
  opts.jobs = 4;
  Server server(opts);
  std::ostringstream requests;
  for (int i = 0; i < 12; ++i) {
    // Alternate cheap pings and real scheduling work so completion
    // order scrambles when the pool races.
    if (i % 2 == 0) {
      requests << request({{"id", Json::number(i)},
                           {"op", Json::string("ping")}})
               << "\n";
    } else {
      requests << request({{"id", Json::number(i)},
                           {"op", Json::string("schedule")},
                           {"design", Json::string(lu_design_text())},
                           {"machine", Json::string(kMachineText)},
                           {"scheduler",
                            Json::string(i % 4 == 1 ? "mh" : "mcp")}})
               << "\n";
    }
  }
  std::istringstream in(requests.str());
  std::ostringstream out;
  server.serve_stream(in, out);
  std::istringstream lines(out.str());
  std::string line;
  int expected = 0;
  while (std::getline(lines, line)) {
    const Json resp = Json::parse(line);
    EXPECT_EQ(field(resp, "id").as_number(), expected) << line;
    ++expected;
  }
  EXPECT_EQ(expected, 12);
}

TEST(ServeServer, ShutdownStopsTheStream) {
  Server server;
  std::istringstream in(
      request({{"op", Json::string("ping")}}) + "\n" +
      request({{"op", Json::string("shutdown")}}) + "\n" +
      request({{"op", Json::string("ping")}}) + "\n");
  std::ostringstream out;
  server.serve_stream(in, out);
  EXPECT_TRUE(server.shutdown_requested());
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 2) << "requests after shutdown must not be answered";
}

// ------------------------------------------- CLI byte-identity contract

class ServeVsCli : public ::testing::Test {
 protected:
  void SetUp() override {
    design_path_ = testing::TempDir() + "/serve_lu.pitl";
    machine_path_ = testing::TempDir() + "/serve_cube.machine";
    std::ofstream(design_path_) << lu_design_text();
    std::ofstream(machine_path_) << kMachineText;
  }

  std::string cli(std::vector<std::string> args, int* exit_code = nullptr) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(args, out, err);
    if (exit_code != nullptr) {
      *exit_code = code;
    } else {
      EXPECT_EQ(code, 0) << err.str();
    }
    return out.str();
  }

  std::string design_path_;
  std::string machine_path_;
};

TEST_F(ServeVsCli, ScheduleMatchesCliByteForByte) {
  Server server;
  for (const char* format : {"gantt", "table", "svg", "trace"}) {
    const std::string expected =
        cli({"schedule", design_path_, machine_path_, "--format", format});
    const Json resp = Json::parse(server.handle_line(
        request({{"op", Json::string("schedule")},
                 {"design", Json::string(lu_design_text())},
                 {"machine", Json::string(kMachineText)},
                 {"format", Json::string(format)}})));
    ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
    EXPECT_EQ(field(resp, "output").as_string(), expected) << format;
  }
}

TEST_F(ServeVsCli, ScheduleMatchesCliForEveryHeuristic) {
  Server server;
  for (const char* scheduler : {"mh", "mcp", "etf", "cluster", "serial"}) {
    const std::string expected = cli(
        {"schedule", design_path_, machine_path_, "--scheduler", scheduler});
    const Json resp = Json::parse(server.handle_line(
        request({{"op", Json::string("schedule")},
                 {"design", Json::string(lu_design_text())},
                 {"machine", Json::string(kMachineText)},
                 {"scheduler", Json::string(scheduler)}})));
    ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
    EXPECT_EQ(field(resp, "output").as_string(), expected) << scheduler;
  }
}

TEST_F(ServeVsCli, TrialMatchesCliByteForByte) {
  Server server;
  const std::string expected =
      cli({"trial", design_path_, "--input", "A=[4,3,2,8,8,5,4,7,9]",
           "--input", "b=[16,39,45]"});
  Json inputs = Json::object();
  inputs.add("A", Json::string("[4,3,2,8,8,5,4,7,9]"));
  inputs.add("b", Json::string("[16,39,45]"));
  const Json resp = Json::parse(server.handle_line(
      request({{"op", Json::string("trial")},
               {"design", Json::string(lu_design_text())},
               {"inputs", std::move(inputs)}})));
  ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
  EXPECT_EQ(field(resp, "output").as_string(), expected);
  EXPECT_NE(field(resp, "output").as_string().find("x = [1, 2, 3]"),
            std::string::npos);
}

TEST_F(ServeVsCli, TrialBatchMatchesCliByteForByte) {
  // Three trials — two solvable, one zero-pivot failure in the middle —
  // through `banger trial --inputs FILE` and the serve `inputs_batch`
  // envelope. Output text AND exit code (1: a trial failed) must match.
  const std::string inputs_path = testing::TempDir() + "/serve_trials.txt";
  std::ofstream(inputs_path)
      << "# batch corpus\n"
      << "A=[4,3,2,8,8,5,4,7,9]; b=[16,39,45]\n"
      << "A=[0,3,2,8,8,5,4,7,9]; b=[16,39,45]\n"
      << "A=[4,3,2,8,8,5,4,7,9]; b=[32,78,90]\n";
  int cli_exit = -1;
  const std::string expected =
      cli({"trial", design_path_, "--inputs", inputs_path}, &cli_exit);
  EXPECT_EQ(cli_exit, 1);

  // The same three trials as the file, in the same order.
  const auto make_batch = [] {
    const std::pair<const char*, const char*> trials[] = {
        {"[4,3,2,8,8,5,4,7,9]", "[16,39,45]"},
        {"[0,3,2,8,8,5,4,7,9]", "[16,39,45]"},
        {"[4,3,2,8,8,5,4,7,9]", "[32,78,90]"},
    };
    Json batch = Json::array();
    for (const auto& [a, b] : trials) {
      Json inputs = Json::object();
      inputs.add("A", Json::string(a));
      inputs.add("b", Json::string(b));
      batch.push(std::move(inputs));
    }
    return batch;
  };
  Server server;
  const Json resp = Json::parse(server.handle_line(
      request({{"op", Json::string("trial")},
               {"design", Json::string(lu_design_text())},
               {"inputs_batch", make_batch()}})));
  // The request itself succeeded; the nonzero exit mirrors the CLI
  // (same contract as `check` with diagnostics).
  ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
  EXPECT_EQ(field(resp, "exit").as_number(), 1);
  EXPECT_EQ(field(resp, "output").as_string(), expected);
  EXPECT_NE(field(resp, "output").as_string().find("=== trial 1 of 3 ==="),
            std::string::npos);

  // Replay: a batch is one cache entry, so the hit returns the same
  // bytes (and still the batch exit code).
  const Json again = Json::parse(server.handle_line(
      request({{"op", Json::string("trial")},
               {"design", Json::string(lu_design_text())},
               {"inputs_batch", make_batch()}})));
  EXPECT_EQ(field(again, "output").as_string(), expected);
  EXPECT_EQ(field(again, "exit").as_number(), 1);
}

TEST_F(ServeVsCli, StreamMatchesCliByteForByte) {
  // The serve `stream` op mirrors `banger stream --inputs FILE`: same
  // batches, same stdout bytes (the execution report goes to stderr in
  // the CLI and is omitted from the response for cache determinism).
  const std::string inputs_path = testing::TempDir() + "/serve_stream.txt";
  std::ofstream(inputs_path)
      << "A=[4,3,2,8,8,5,4,7,9]; b=[16,39,45]\n"
      << "A=[4,3,2,8,8,5,4,7,9]; b=[32,78,90]\n";
  const std::string expected =
      cli({"stream", design_path_, machine_path_, "--inputs", inputs_path});

  const auto make_stream = [] {
    const char* rhs[] = {"[16,39,45]", "[32,78,90]"};
    Json stream = Json::array();
    for (const char* b : rhs) {
      Json inputs = Json::object();
      inputs.add("A", Json::string("[4,3,2,8,8,5,4,7,9]"));
      inputs.add("b", Json::string(b));
      stream.push(std::move(inputs));
    }
    return stream;
  };
  Server server;
  const Json resp = Json::parse(server.handle_line(
      request({{"op", Json::string("stream")},
               {"design", Json::string(lu_design_text())},
               {"machine", Json::string(kMachineText)},
               {"inputs_stream", make_stream()}})));
  ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
  EXPECT_EQ(field(resp, "output").as_string(), expected);
  EXPECT_NE(field(resp, "output").as_string().find("=== batch 1 of 2 ==="),
            std::string::npos);

  // Replay hits the cache and returns the same bytes.
  const Json again = Json::parse(server.handle_line(
      request({{"op", Json::string("stream")},
               {"design", Json::string(lu_design_text())},
               {"machine", Json::string(kMachineText)},
               {"inputs_stream", make_stream()}})));
  EXPECT_EQ(field(again, "output").as_string(), expected);
}

TEST(ServeProtocol, InputsAndBatchAreMutuallyExclusive) {
  Json inputs = Json::object();
  inputs.add("x", Json::string("1"));
  Json batch = Json::array();
  Json trial = Json::object();
  trial.add("x", Json::string("2"));
  batch.push(std::move(trial));
  Json doc = Json::object();
  doc.add("op", Json::string("trial"));
  doc.add("design", Json::string("design d\ntask t\nend\n"));
  doc.add("inputs", std::move(inputs));
  doc.add("inputs_batch", std::move(batch));
  try {
    (void)parse_request(doc);
    FAIL() << "expected usage error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Usage);
    EXPECT_NE(std::string(e.what()).find("inputs_batch"), std::string::npos);
  }
}

TEST(ServeProtocol, BatchEntriesMustBeObjects) {
  Json batch = Json::array();
  batch.push(Json::string("x=1"));
  Json doc = Json::object();
  doc.add("op", Json::string("trial"));
  doc.add("inputs_batch", std::move(batch));
  EXPECT_THROW((void)parse_request(doc), Error);
}

TEST_F(ServeVsCli, CheckMatchesCliIncludingExitCode) {
  Server server;
  for (const char* format : {"text", "json", "sarif"}) {
    int cli_exit = -1;
    const std::string expected =
        cli({"check", design_path_, "--format", format}, &cli_exit);
    const Json resp = Json::parse(server.handle_line(
        request({{"op", Json::string("check")},
                 {"design", Json::string(lu_design_text())},
                 {"format", Json::string(format)},
                 {"file", Json::string(design_path_)}})));
    ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
    EXPECT_EQ(field(resp, "output").as_string(), expected) << format;
    EXPECT_EQ(field(resp, "exit").as_number(), cli_exit) << format;
  }
}

TEST_F(ServeVsCli, TraceMatchesCliByteForByte) {
  Server server;
  const std::string expected = cli({"trace", design_path_, machine_path_});
  const Json resp = Json::parse(server.handle_line(
      request({{"op", Json::string("trace")},
               {"design", Json::string(lu_design_text())},
               {"machine", Json::string(kMachineText)}})));
  ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
  EXPECT_EQ(field(resp, "output").as_string(), expected);
  // And a second (cache-hit) trace returns the same bytes again.
  const Json again = Json::parse(server.handle_line(
      request({{"op", Json::string("trace")},
               {"design", Json::string(lu_design_text())},
               {"machine", Json::string(kMachineText)}})));
  EXPECT_EQ(field(again, "output").as_string(), expected);
}

TEST_F(ServeVsCli, SixtyFourConcurrentMixedRequests) {
  // The acceptance bar: one server, >= 64 concurrent mixed requests,
  // every response identical to the equivalent one-shot CLI run.
  const std::string expect_schedule =
      cli({"schedule", design_path_, machine_path_});
  int check_exit = -1;
  const std::string expect_check =
      cli({"check", design_path_, "--format", "json", "--fail-on", "warning"},
          &check_exit);
  const std::string expect_trial =
      cli({"trial", design_path_, "--input", "A=[4,3,2,8,8,5,4,7,9]",
           "--input", "b=[16,39,45]"});

  Server server;
  const int kThreads = 64;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::string line;
      switch (i % 3) {
        case 0:
          line = request({{"id", Json::number(i)},
                          {"op", Json::string("schedule")},
                          {"design", Json::string(lu_design_text())},
                          {"machine", Json::string(kMachineText)}});
          break;
        case 1:
          line = request({{"id", Json::number(i)},
                          {"op", Json::string("check")},
                          {"design", Json::string(lu_design_text())},
                          {"format", Json::string("json")},
                          {"fail_on", Json::string("warning")},
                          {"file", Json::string(design_path_)}});
          break;
        default: {
          Json inputs = Json::object();
          inputs.add("A", Json::string("[4,3,2,8,8,5,4,7,9]"));
          inputs.add("b", Json::string("[16,39,45]"));
          line = request({{"id", Json::number(i)},
                          {"op", Json::string("trial")},
                          {"design", Json::string(lu_design_text())},
                          {"inputs", std::move(inputs)}});
          break;
        }
      }
      responses[static_cast<std::size_t>(i)] = server.handle_line(line);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    const Json resp = Json::parse(responses[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(field(resp, "ok").as_bool()) << resp.dump();
    EXPECT_EQ(field(resp, "id").as_number(), i);
    const std::string& output = field(resp, "output").as_string();
    switch (i % 3) {
      case 0: EXPECT_EQ(output, expect_schedule); break;
      case 1:
        EXPECT_EQ(output, expect_check);
        EXPECT_EQ(field(resp, "exit").as_number(), check_exit);
        break;
      default: EXPECT_EQ(output, expect_trial); break;
    }
  }
  const auto stats = server.cache_stats();
  EXPECT_GE(stats.hits, static_cast<std::uint64_t>(kThreads - 6))
      << "identical concurrent requests must coalesce in the cache";
}

// ----------------------------------------------------------------- TCP

TEST(ServeTcp, RoundTripOverLocalSocket) {
  ServeOptions opts;
  opts.jobs = 2;
  Server server(opts);
  std::ostringstream log;
  std::thread listener([&] { server.serve_tcp(0, log); });
  while (server.bound_port() < 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const int fd = util::tcp_connect("127.0.0.1", server.bound_port());
  {
    util::FdStreamBuf buf(fd);
    std::iostream io(&buf);
    io << request({{"id", Json::number(1)}, {"op", Json::string("ping")}})
       << "\n"
       << request({{"id", Json::number(2)},
                   {"op", Json::string("schedule")},
                   {"design", Json::string(lu_design_text())},
                   {"machine", Json::string(kMachineText)}})
       << "\n";
    io.flush();
    std::string line;
    ASSERT_TRUE(std::getline(io, line));
    const Json pong = Json::parse(line);
    EXPECT_EQ(field(pong, "output").as_string(), "pong");
    ASSERT_TRUE(std::getline(io, line));
    const Json sched = Json::parse(line);
    EXPECT_TRUE(field(sched, "ok").as_bool()) << line;
    EXPECT_NE(field(sched, "output").as_string().find("makespan"),
              std::string::npos);
  }
  util::close_fd(fd);
  server.request_shutdown();
  listener.join();
  EXPECT_NE(log.str().find("listening on 127.0.0.1:"), std::string::npos);
}

// ----------------------------------------------------- golden corpus

/// The committed request corpus; regenerated (requests and responses)
/// with BANGER_UPDATE_GOLDEN=1. CI replays the same corpus through the
/// `banger serve` binary and diffs the same golden responses.
std::vector<std::string> corpus_requests() {
  std::vector<std::string> lines;
  lines.push_back(request({{"id", Json::number(1)},
                           {"op", Json::string("ping")}}));
  lines.push_back(request({{"id", Json::number(2)},
                           {"op", Json::string("upload")},
                           {"name", Json::string("lu")},
                           {"kind", Json::string("design")},
                           {"text", Json::string(lu_design_text())}}));
  lines.push_back(request({{"id", Json::number(3)},
                           {"op", Json::string("upload")},
                           {"name", Json::string("cube4")},
                           {"kind", Json::string("machine")},
                           {"text", Json::string(kMachineText)}}));
  lines.push_back(request({{"id", Json::number(4)},
                           {"op", Json::string("schedule")},
                           {"design_ref", Json::string("lu")},
                           {"machine_ref", Json::string("cube4")}}));
  lines.push_back(request({{"id", Json::number(5)},
                           {"op", Json::string("schedule")},
                           {"design_ref", Json::string("lu")},
                           {"machine_ref", Json::string("cube4")},
                           {"format", Json::string("table")},
                           {"scheduler", Json::string("mcp")}}));
  lines.push_back(request({{"id", Json::number(6)},
                           {"op", Json::string("check")},
                           {"design_ref", Json::string("lu")},
                           {"format", Json::string("json")},
                           {"file", Json::string("lu.pitl")}}));
  Json inputs = Json::object();
  inputs.add("A", Json::string("[4,3,2,8,8,5,4,7,9]"));
  inputs.add("b", Json::string("[16,39,45]"));
  lines.push_back(request({{"id", Json::number(7)},
                           {"op", Json::string("trial")},
                           {"design_ref", Json::string("lu")},
                           {"inputs", std::move(inputs)}}));
  lines.push_back(request({{"id", Json::number(8)},
                           {"op", Json::string("trace")},
                           {"design_ref", Json::string("lu")},
                           {"machine_ref", Json::string("cube4")}}));
  lines.push_back(request({{"id", Json::number(9)},
                           {"op", Json::string("schedule")},
                           {"design_ref", Json::string("nope")},
                           {"machine_ref", Json::string("cube4")}}));
  lines.push_back(request({{"id", Json::number(10)},
                           {"op", Json::string("bogus")}}));
  return lines;
}

std::string corpus_dir() {
  fs::path dir = fs::current_path();
  for (int i = 0; i < 8 && !dir.empty(); ++i) {
    if (fs::exists(dir / "tests" / "golden" / "serve")) {
      return (dir / "tests" / "golden" / "serve").string();
    }
    if (dir == dir.parent_path()) break;
    dir = dir.parent_path();
  }
  return {};
}

bool update_golden() {
  const char* env = std::getenv("BANGER_UPDATE_GOLDEN");
  return env != nullptr && env[0] == '1';
}

TEST(ServeCorpus, GoldenResponses) {
  const std::string dir = corpus_dir();
  ASSERT_FALSE(dir.empty()) << "tests/golden/serve not found from cwd";
  const std::string req_path = dir + "/corpus_requests.jsonl";
  const std::string resp_path = dir + "/corpus_responses.jsonl";

  if (update_golden()) {
    std::ofstream req(req_path, std::ios::binary);
    for (const auto& line : corpus_requests()) req << line << "\n";
  }

  // Replay the committed requests (not the in-code list) so the corpus
  // on disk is what is actually pinned.
  std::ifstream req(req_path, std::ios::binary);
  ASSERT_TRUE(req.is_open()) << req_path;
  Server server;
  std::ostringstream got;
  server.serve_stream(req, got);

  if (update_golden()) {
    std::ofstream resp(resp_path, std::ios::binary);
    resp << got.str();
    SUCCEED() << "golden corpus rewritten";
    return;
  }

  std::ifstream resp(resp_path, std::ios::binary);
  ASSERT_TRUE(resp.is_open()) << resp_path;
  std::ostringstream want;
  want << resp.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "serve responses drifted from the golden corpus; run with "
         "BANGER_UPDATE_GOLDEN=1 and diff before committing";
}

}  // namespace
}  // namespace banger::serve
