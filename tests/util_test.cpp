// Unit tests for banger::util — strings, rng, table, error.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace banger::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleFieldWhenNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("banger", "ban"));
  EXPECT_FALSE(starts_with("ban", "banger"));
  EXPECT_TRUE(ends_with("banger", "ger"));
  EXPECT_FALSE(ends_with("ger", "banger"));
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_123"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a.b"));
}

TEST(Strings, FormatDoubleCompact) {
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(3.5), "3.5");
  EXPECT_EQ(format_double(-0.25), "-0.25");
  EXPECT_EQ(format_double(std::nan("")), "nan");
  EXPECT_EQ(format_double(1.0 / 0.0), "inf");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Table, AlignsColumnsAndRightAlignsNumbers) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "3.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Numeric column right-aligned: "10" should be padded left.
  EXPECT_NE(s.find("    10"), std::string::npos);
}

TEST(Table, NumericRowHelper) {
  Table t;
  t.add_row_numeric("row", {1.0, 2.5});
  EXPECT_EQ(t.num_rows(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Error, CarriesCodeAndPosition) {
  try {
    fail(ErrorCode::Parse, "bad token", {3, 7});
    FAIL() << "fail() must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.pos().line, 3);
    EXPECT_EQ(e.pos().column, 7);
    EXPECT_NE(std::string(e.what()).find("parse error at 3:7"),
              std::string::npos);
    EXPECT_EQ(e.message(), "bad token");
  }
}

TEST(Error, CodeNames) {
  EXPECT_EQ(to_string(ErrorCode::Graph), "graph");
  EXPECT_EQ(to_string(ErrorCode::Machine), "machine");
  EXPECT_EQ(to_string(ErrorCode::Runtime), "runtime");
}

}  // namespace
}  // namespace banger::util
