// Unit tests for banger::util — strings, rng, table, error, parallel.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace banger::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleFieldWhenNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("banger", "ban"));
  EXPECT_FALSE(starts_with("ban", "banger"));
  EXPECT_TRUE(ends_with("banger", "ger"));
  EXPECT_FALSE(ends_with("ger", "banger"));
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc_123"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a.b"));
}

TEST(Strings, FormatDoubleCompact) {
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(3.5), "3.5");
  EXPECT_EQ(format_double(-0.25), "-0.25");
  EXPECT_EQ(format_double(std::nan("")), "nan");
  EXPECT_EQ(format_double(1.0 / 0.0), "inf");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Table, AlignsColumnsAndRightAlignsNumbers) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "3.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Numeric column right-aligned: "10" should be padded left.
  EXPECT_NE(s.find("    10"), std::string::npos);
}

TEST(Table, NumericRowHelper) {
  Table t;
  t.add_row_numeric("row", {1.0, 2.5});
  EXPECT_EQ(t.num_rows(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Error, CarriesCodeAndPosition) {
  try {
    fail(ErrorCode::Parse, "bad token", {3, 7});
    FAIL() << "fail() must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.pos().line, 3);
    EXPECT_EQ(e.pos().column, 7);
    EXPECT_NE(std::string(e.what()).find("parse error at 3:7"),
              std::string::npos);
    EXPECT_EQ(e.message(), "bad token");
  }
}

TEST(Error, CodeNames) {
  EXPECT_EQ(to_string(ErrorCode::Graph), "graph");
  EXPECT_EQ(to_string(ErrorCode::Machine), "machine");
  EXPECT_EQ(to_string(ErrorCode::Runtime), "runtime");
}

TEST(Parallel, DefaultJobsIsPositiveAndHonoursEnv) {
  EXPECT_GE(default_jobs(), 1);
  ::setenv("BANGER_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3);
  ::setenv("BANGER_JOBS", "not-a-number", 1);
  EXPECT_GE(default_jobs(), 1);  // ignored, falls back to hw concurrency
  ::unsetenv("BANGER_JOBS");
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(-7), default_jobs());
}

TEST(Parallel, ThreadPoolRunsEverySubmittedClosure) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after an idle wait.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(Parallel, ParallelMapPreservesInputOrder) {
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  for (int jobs : {1, 3, 16}) {
    const auto squares =
        parallel_map(items, jobs, [](int v) { return v * v; });
    ASSERT_EQ(squares.size(), items.size());
    for (int v : items) {
      EXPECT_EQ(squares[static_cast<std::size_t>(v)], v * v);
    }
  }
}

TEST(Parallel, ParallelMapHandlesEmptyAndSingleItem) {
  const std::vector<int> empty;
  EXPECT_TRUE(parallel_map(empty, 8, [](int v) { return v; }).empty());
  const std::vector<int> one{42};
  EXPECT_EQ(parallel_map(one, 8, [](int v) { return v + 1; }).front(), 43);
}

TEST(Parallel, ExceptionFromLowestIndexWinsDeterministically) {
  // Items 100 and 700 both throw; the lowest index's exception must be
  // the one rethrown, for every worker count.
  for (int jobs : {1, 2, 8}) {
    try {
      parallel_for(1000, jobs, [](std::size_t i) {
        if (i == 100 || i == 700) {
          throw std::runtime_error("item " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 100") << "jobs=" << jobs;
    }
  }
}

TEST(Parallel, ItemsBelowThrowingIndexAllRun) {
  // Guarantee: an exception at index k never suppresses items < k.
  std::vector<std::atomic<int>> hits(400);
  try {
    parallel_for(hits.size(), 8, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 399) throw std::runtime_error("tail");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 0; i < 399; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace banger::util
