// Branch-and-bound optimal scheduler and MCP: correctness on instances
// with known optima, dominance over heuristics, limit handling.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/optimal.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

Machine full(int procs, double ccr = 0.0) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(Optimal, IndependentTasksPackPerfectly) {
  // Works {3,3,2,2,1,1} on 2 procs, no comm: optimum = 6 (LPT-perfect).
  graph::TaskGraph g;
  for (double w : {3.0, 3.0, 2.0, 2.0, 1.0, 1.0}) {
    g.add_task({"t" + std::to_string(g.num_tasks()), w, "", {}, {}});
  }
  const auto s = OptimalScheduler().run(g, full(2));
  s.validate(g, full(2));
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(Optimal, RespectsPrecedenceChains) {
  // A chain has no parallel slack: optimum = total work.
  auto g = workloads::chain_graph(6, 2.0, 8.0);
  const auto s = OptimalScheduler().run(g, full(3, 1.0));
  s.validate(g, full(3, 1.0));
  EXPECT_DOUBLE_EQ(s.makespan(), 12.0);
}

TEST(Optimal, KnowsWhenCommMakesSerialOptimal) {
  // Fork-join with brutal communication: staying on one processor wins.
  auto g = workloads::fork_join(4, 1.0, 8.0);
  const auto m = full(4, 50.0);
  const auto s = OptimalScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);  // 1 + 4 + 1 serial
  EXPECT_EQ(s.procs_used(), 1);
}

TEST(Optimal, NeverWorseThanAnyHeuristic) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    workloads::RandomGraphSpec spec;
    spec.layers = 3;
    spec.width = 4;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    if (g.num_tasks() > 12) continue;
    const auto m = full(3, 1.0);
    const auto opt = OptimalScheduler().run(g, m);
    opt.validate(g, m);
    for (const char* name : {"mh", "mcp", "etf", "dls", "cluster"}) {
      const auto h = make_scheduler(name)->run(g, m);
      EXPECT_LE(opt.makespan(), h.makespan() + 1e-9)
          << name << " seed " << seed;
    }
  }
}

TEST(Optimal, BeatsGreedyOnAdversarialInstance) {
  // Two heavy independent chains + light fill: greedy EFT can misplace.
  graph::TaskGraph g;
  const auto a0 = g.add_task({"a0", 4, "", {}, {}});
  const auto a1 = g.add_task({"a1", 4, "", {}, {}});
  const auto b0 = g.add_task({"b0", 3, "", {}, {}});
  const auto b1 = g.add_task({"b1", 3, "", {}, {}});
  g.add_task({"c", 2, "", {}, {}});
  g.add_task({"d", 2, "", {}, {}});
  g.add_edge(a0, a1, 64);
  g.add_edge(b0, b1, 64);
  const auto m = full(2, 2.0);
  const auto opt = OptimalScheduler().run(g, m);
  opt.validate(g, m);
  const auto mh = MhScheduler().run(g, m);
  EXPECT_LE(opt.makespan(), mh.makespan() + 1e-9);
  // Chains must stay local under this comm cost, so perfect balance (9)
  // is unattainable; the best split is 8+2 vs 6+2: makespan 10.
  EXPECT_DOUBLE_EQ(opt.makespan(), 10.0);
}

TEST(Optimal, RejectsOversizedInstances) {
  auto g = workloads::lu_taskgraph(8);  // 35 tasks
  EXPECT_THROW((void)OptimalScheduler().run(g, full(2)), Error);
}

TEST(Optimal, CustomLimitsHonored) {
  OptimalScheduler::Limits limits;
  limits.max_tasks = 4;
  auto g = workloads::fork_join(4, 1.0, 8.0);  // 6 tasks
  EXPECT_THROW((void)OptimalScheduler(limits, {}).run(g, full(2)), Error);
}

TEST(Optimal, EmptyGraph) {
  graph::TaskGraph g;
  const auto s = OptimalScheduler().run(g, full(2));
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(Optimal, ReportsNodesExplored) {
  auto g = workloads::fork_join(4, 1.0, 8.0);
  OptimalScheduler opt;
  (void)opt.run(g, full(2, 0.5));
  EXPECT_GT(opt.nodes_explored(), 0u);
}

TEST(Optimal, ResolvableViaFactory) {
  auto s = make_scheduler("optimal");
  EXPECT_EQ(s->name(), "optimal");
  // And excluded from the production list.
  for (const auto& n : scheduler_names()) EXPECT_NE(n, "optimal");
}

TEST(Mcp, FeasibleAndCompetitive) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    workloads::RandomGraphSpec spec;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    const auto m = full(4, 0.5);
    const auto s = McpScheduler().run(g, m);
    s.validate(g, m);
    const auto rr = RoundRobinScheduler().run(g, m);
    EXPECT_LE(s.makespan(), rr.makespan() * 1.05) << seed;
  }
}

TEST(Mcp, MatchesOptimumOnEasyInstances) {
  auto g = workloads::fork_join(6, 2.0, 8.0);
  const auto m = full(3, 0.1);
  const auto mcp = McpScheduler().run(g, m);
  const auto opt = OptimalScheduler().run(g, m);
  mcp.validate(g, m);
  EXPECT_NEAR(mcp.makespan(), opt.makespan(), 1e-9);
}

TEST(Mcp, InFactoryList) {
  const auto names = scheduler_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "mcp"), names.end());
}

}  // namespace
}  // namespace banger::sched
