// Fault-injection subsystem tests: FaultPlan models and serialisation,
// faulty simulation, repair rescheduling, the detect→repair→resume
// pipeline, fault overlays, and executor-level crash rescue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/recovery.hpp"
#include "exec/executor.hpp"
#include "fault/fault.hpp"
#include "sched/heuristics.hpp"
#include "sched/repair.hpp"
#include "sched/serialize.hpp"
#include "sim/simulator.hpp"
#include "viz/gantt.hpp"
#include "workloads/designs.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"
#include "workloads/synth.hpp"

namespace banger {
namespace {

using machine::Machine;
using machine::ProcId;

Machine make_machine(int procs, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return Machine(machine::Topology::fully_connected(procs), p);
}

bool events_equal(const std::vector<sim::SimEvent>& a,
                  const std::vector<sim::SimEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].kind != b[i].kind ||
        a[i].task != b[i].task || a[i].edge != b[i].edge ||
        a[i].proc != b[i].proc) {
      return false;
    }
  }
  return true;
}

bool has_event(const std::vector<sim::SimEvent>& events, sim::EventKind kind) {
  return std::any_of(events.begin(), events.end(),
                     [kind](const sim::SimEvent& e) { return e.kind == kind; });
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, TextRoundTrip) {
  fault::FaultPlan plan("demo", 7);
  plan.add_crash(2, 3.5);
  plan.add_crash(0, 9.25);
  plan.add_slowdown(1, 1.0, 4.0, 2.5);
  plan.set_msg_loss({0.2, 3, 0.1});
  plan.set_msg_delay({0.25});

  const auto copy = fault::FaultPlan::parse(plan.to_text());
  EXPECT_EQ(copy.name(), "demo");
  EXPECT_EQ(copy.seed(), 7u);
  ASSERT_EQ(copy.crashes().size(), 2u);
  EXPECT_EQ(copy.crashes()[0].proc, 2);
  EXPECT_DOUBLE_EQ(copy.crashes()[0].at, 3.5);
  ASSERT_EQ(copy.slowdowns().size(), 1u);
  EXPECT_DOUBLE_EQ(copy.slowdowns()[0].factor, 2.5);
  EXPECT_DOUBLE_EQ(copy.msg_loss().prob, 0.2);
  EXPECT_EQ(copy.msg_loss().retries, 3);
  EXPECT_DOUBLE_EQ(copy.msg_delay().jitter, 0.25);
  EXPECT_EQ(copy.to_text(), plan.to_text());
}

TEST(FaultPlan, EmptyPlanIsEmpty) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.perturbs_messages());
  plan.add_crash(0, 1.0);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ParseRejectsMalformedText) {
  EXPECT_THROW((void)fault::FaultPlan::parse("crash proc=0 at=1\n"), Error);
  EXPECT_THROW(
      (void)fault::FaultPlan::parse("faultplan x seed=1\nwobble proc=0\n"),
      Error);
  EXPECT_THROW((void)fault::FaultPlan::parse("faultplan x seed=1\ncrash at=1\n"),
               Error);
  EXPECT_THROW(
      (void)fault::FaultPlan::parse("faultplan x seed=1\ncrash proc=0 at=1 z=2\n"),
      Error);
}

TEST(FaultPlan, RejectsMalformedFaults) {
  fault::FaultPlan plan;
  EXPECT_THROW(plan.add_crash(0, -1.0), Error);
  plan.add_crash(0, 1.0);
  EXPECT_THROW(plan.add_crash(0, 2.0), Error);  // one crash per processor
  EXPECT_THROW(plan.add_slowdown(1, 2.0, 1.0, 2.0), Error);  // to < from
  EXPECT_THROW(plan.add_slowdown(1, 0.0, 1.0, 0.5), Error);  // factor < 1
  EXPECT_THROW(plan.set_msg_loss({1.0, 3, 0.0}), Error);     // prob must be < 1
  // Out-of-range processor caught by validate().
  fault::FaultPlan bad;
  bad.add_crash(5, 1.0);
  EXPECT_THROW(bad.validate(2), Error);
  EXPECT_NO_THROW(bad.validate(6));
}

TEST(FaultPlan, SlowdownStretchesTasks) {
  fault::FaultPlan plan;
  plan.add_slowdown(0, 2.0, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 3.9), 2.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(1, 3.0), 1.0);

  // 1s at nominal speed up to t=2, the remaining 1s runs 2x slower.
  EXPECT_DOUBLE_EQ(plan.task_finish(0, 1.0, 2.0), 4.0);
  // Entirely outside the window: unchanged.
  EXPECT_DOUBLE_EQ(plan.task_finish(0, 5.0, 2.0), 7.0);
  // Other processors: unchanged.
  EXPECT_DOUBLE_EQ(plan.task_finish(1, 1.0, 2.0), 3.0);
  // Entirely inside the window: doubled.
  EXPECT_DOUBLE_EQ(plan.task_finish(0, 2.0, 0.5), 3.0);
  // Overlapping windows take the max factor.
  plan.add_slowdown(0, 3.0, 5.0, 4.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_factor(0, 3.5), 4.0);
}

TEST(FaultPlan, MsgFateDeterministicAndBounded) {
  fault::FaultPlan plan("loss", 11);
  plan.set_msg_loss({0.5, 3, 0.1});
  plan.set_msg_delay({0.5});
  bool saw_retry = false;
  for (graph::EdgeId e = 0; e < 64; ++e) {
    const auto fate = plan.msg_fate(e, 0, 1);
    const auto again = plan.msg_fate(e, 0, 1);
    EXPECT_EQ(fate.attempts, again.attempts);
    EXPECT_DOUBLE_EQ(fate.jitter_fraction, again.jitter_fraction);
    EXPECT_GE(fate.attempts, 1);
    EXPECT_LE(fate.attempts, 4);  // retries=3 => at most 4 attempts
    EXPECT_GE(fate.jitter_fraction, 0.0);
    EXPECT_LT(fate.jitter_fraction, 1.0);
    saw_retry = saw_retry || fate.attempts > 1;
  }
  EXPECT_TRUE(saw_retry);  // prob=0.5 over 64 edges

  // The fate depends on the seed.
  fault::FaultPlan other("loss", 12);
  other.set_msg_loss({0.5, 3, 0.1});
  other.set_msg_delay({0.5});
  bool differs = false;
  for (graph::EdgeId e = 0; e < 64 && !differs; ++e) {
    differs = plan.msg_fate(e, 0, 1).attempts != other.msg_fate(e, 0, 1).attempts;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, CrashQueries) {
  const auto plan = fault::plan_crash(1, 2.5, 3);
  EXPECT_EQ(plan.seed(), 3u);
  ASSERT_TRUE(plan.crash_time(1).has_value());
  EXPECT_DOUBLE_EQ(*plan.crash_time(1), 2.5);
  EXPECT_FALSE(plan.crash_time(0).has_value());
  EXPECT_EQ(plan.crashed_procs(), std::vector<ProcId>{1});
  EXPECT_FALSE(plan.latest_crash_before(2.0).has_value());
  ASSERT_TRUE(plan.latest_crash_before(3.0).has_value());
  EXPECT_DOUBLE_EQ(*plan.latest_crash_before(3.0), 2.5);
}

TEST(FaultPlan, BusiestProcessorTargeted) {
  sched::Schedule s(2, "manual");
  s.place(0, 0, 0.0, 5.0);
  s.place(1, 1, 0.0, 1.0);
  s.place(2, 1, 5.0, 6.0);
  const auto plan = fault::plan_crash_busiest(s, 0.5);
  ASSERT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.crashes()[0].proc, 0);  // 5s busy beats 2s
  EXPECT_DOUBLE_EQ(plan.crashes()[0].at, 3.0);  // half the makespan
}

// ----------------------------------------------------------- faulty replay

TEST(FaultSim, EmptyPlanReplaysExactly) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);
  fault::FaultPlan empty;
  sim::SimOptions opts;
  opts.faults = &empty;
  const auto faulted = sim::simulate(g, m, s, opts);
  EXPECT_DOUBLE_EQ(faulted.makespan, plain.makespan);
  EXPECT_TRUE(events_equal(faulted.events, plain.events));
  EXPECT_TRUE(faulted.complete);
  EXPECT_TRUE(faulted.killed.empty());
}

TEST(FaultSim, CrashStrandsDownstreamWork) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);

  // Crash the processor of the latest-starting task exactly at its actual
  // start: the copy can never begin, so the replay cannot complete.
  graph::TaskId victim = 0;
  for (graph::TaskId t = 1; t < g.num_tasks(); ++t) {
    if (plain.tasks[t].start > plain.tasks[victim].start) victim = t;
  }
  const auto plan =
      fault::plan_crash(plain.tasks[victim].proc, plain.tasks[victim].start);
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto faulted = sim::simulate(g, m, s, opts);

  EXPECT_FALSE(faulted.complete);
  ASSERT_EQ(faulted.task_finished.size(), g.num_tasks());
  EXPECT_EQ(faulted.task_finished[victim], 0);
  EXPECT_LT(faulted.finished_copies.size(), s.placements().size());
  EXPECT_TRUE(has_event(faulted.events, sim::EventKind::ProcCrash));
}

TEST(FaultSim, MidTaskCrashKillsTheCopy) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);

  // Longest-running task, killed halfway through its actual interval.
  graph::TaskId victim = 0;
  for (graph::TaskId t = 1; t < g.num_tasks(); ++t) {
    const auto& a = plain.tasks[t];
    const auto& b = plain.tasks[victim];
    if (a.finish - a.start > b.finish - b.start) victim = t;
  }
  const double mid =
      0.5 * (plain.tasks[victim].start + plain.tasks[victim].finish);
  const auto plan = fault::plan_crash(plain.tasks[victim].proc, mid);
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto faulted = sim::simulate(g, m, s, opts);

  EXPECT_FALSE(faulted.complete);
  ASSERT_FALSE(faulted.killed.empty());
  const auto killed =
      std::find_if(faulted.killed.begin(), faulted.killed.end(),
                   [victim](const sim::SimResult::Killed& k) {
                     return k.task == victim;
                   });
  ASSERT_NE(killed, faulted.killed.end());
  EXPECT_DOUBLE_EQ(killed->at, mid);
  EXPECT_TRUE(has_event(faulted.events, sim::EventKind::TaskKill));
}

TEST(FaultSim, SlowdownDelaysMakespan) {
  auto g = workloads::fork_join(4, 2.0, 8.0);
  auto m = make_machine(2, 0.2);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);
  fault::FaultPlan plan("slow");
  plan.add_slowdown(0, 0.0, plain.makespan, 3.0);
  plan.add_slowdown(1, 0.0, plain.makespan, 3.0);
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto slowed = sim::simulate(g, m, s, opts);
  EXPECT_TRUE(slowed.complete);
  EXPECT_GT(slowed.makespan, plain.makespan + 1e-9);
}

TEST(FaultSim, MessageLossDropsAndRetries) {
  auto g = workloads::fork_join(6, 1.0, 8.0);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);
  ASSERT_GT(plain.num_messages, 0u);

  // Heavy loss: some remote message almost surely needs a retransmission.
  bool saw_drop = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_drop; ++seed) {
    fault::FaultPlan plan("lossy", seed);
    plan.set_msg_loss({0.8, 3, 0.25});
    sim::SimOptions opts;
    opts.faults = &plan;
    const auto lossy = sim::simulate(g, m, s, opts);
    EXPECT_TRUE(lossy.complete);  // bounded retry always delivers
    if (has_event(lossy.events, sim::EventKind::MsgDrop)) {
      saw_drop = true;
      EXPECT_TRUE(has_event(lossy.events, sim::EventKind::MsgRetry));
      EXPECT_GE(lossy.makespan, plain.makespan - 1e-9);
      EXPECT_GT(lossy.total_link_time, plain.total_link_time + 1e-12);
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(FaultSim, JitterDelaysWithoutDropping) {
  auto g = workloads::fork_join(6, 1.0, 8.0);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);
  fault::FaultPlan plan("jittery", 5);
  plan.set_msg_delay({0.9});
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto jittered = sim::simulate(g, m, s, opts);
  EXPECT_TRUE(jittered.complete);
  EXPECT_FALSE(has_event(jittered.events, sim::EventKind::MsgDrop));
  EXPECT_GE(jittered.makespan, plain.makespan - 1e-9);
}

TEST(FaultSim, EventLogIsDeterministic) {
  auto g = workloads::lu_taskgraph(5);
  auto m = make_machine(4, 1.0);
  const auto s = sched::MhScheduler().run(g, m);
  fault::FaultPlan plan("everything", 9);
  plan.add_crash(2, 4.0);
  plan.add_slowdown(0, 0.0, 3.0, 1.5);
  plan.set_msg_loss({0.4, 2, 0.2});
  plan.set_msg_delay({0.3});
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto a = sim::simulate(g, m, s, opts);
  const auto b = sim::simulate(g, m, s, opts);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(events_equal(a.events, b.events));
  ASSERT_EQ(a.finished_copies.size(), b.finished_copies.size());
  for (std::size_t i = 0; i < a.finished_copies.size(); ++i) {
    EXPECT_EQ(a.finished_copies[i].task, b.finished_copies[i].task);
    EXPECT_EQ(a.finished_copies[i].proc, b.finished_copies[i].proc);
    EXPECT_DOUBLE_EQ(a.finished_copies[i].finish, b.finished_copies[i].finish);
  }
}

// ------------------------------------------------------------------ repair

TEST(Repair, ReschedulesFrontierOnSurvivors) {
  auto g = workloads::chain_graph(3, 1.0, 8.0);
  auto m = make_machine(2, 0.5);
  sched::RepairRequest req;
  // Task 0 finished on p0, then p0 died: its data died with it, so the
  // whole chain re-runs on the survivor.
  req.completed = {{0, 0, 0.0, 1.0, false}};
  req.dead = {0};
  req.now = 1.5;
  const auto r = sched::repair_schedule(g, m, req);

  EXPECT_EQ(r.reexecuted, std::vector<graph::TaskId>{0});
  ASSERT_EQ(r.new_placements.size(), 3u);
  for (const auto& pl : r.new_placements) {
    EXPECT_EQ(pl.proc, 1);
    EXPECT_GE(pl.start, req.now - 1e-12);
  }
  EXPECT_NEAR(r.lost_seconds, m.task_time(g.task(0).work, 1), 1e-9);
  EXPECT_NEAR(r.reexec_seconds, 3.0 * m.task_time(1.0, 1), 1e-9);
  r.schedule.validate(g, m);
  EXPECT_GE(r.makespan, req.now);
}

TEST(Repair, SurvivingDuplicateAvoidsReexecution) {
  auto g = workloads::chain_graph(3, 1.0, 8.0);
  auto m = make_machine(2, 0.5);
  sched::RepairRequest req;
  // Task 0 also finished as a duplicate on the survivor: only the truly
  // lost work (task 1) re-runs, and the surviving copy becomes primary.
  req.completed = {{0, 0, 0.0, 1.0, false},
                   {0, 1, 0.0, 1.0, true},
                   {1, 0, 1.0, 2.0, false}};
  req.dead = {0};
  req.now = 2.0;
  const auto r = sched::repair_schedule(g, m, req);

  EXPECT_EQ(r.reexecuted, std::vector<graph::TaskId>{1});
  ASSERT_EQ(r.new_placements.size(), 2u);  // task 1 again, task 2 fresh
  const auto primary0 = r.schedule.placement_of(0);
  ASSERT_TRUE(primary0.has_value());
  EXPECT_EQ(primary0->proc, 1);
  r.schedule.validate(g, m);
}

TEST(Repair, NoSurvivorsThrows) {
  auto g = workloads::chain_graph(2, 1.0, 8.0);
  auto m = make_machine(2, 0.5);
  sched::RepairRequest req;
  req.dead = {0, 1};
  EXPECT_THROW((void)sched::repair_schedule(g, m, req), Error);
}

TEST(Repair, DeterministicOutput) {
  auto g = workloads::lu_taskgraph(5);
  auto m = make_machine(4, 1.0);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);
  const auto plan = fault::plan_crash_busiest(s, 0.4);
  sim::SimOptions opts;
  opts.faults = &plan;
  const auto faulted = sim::simulate(g, m, s, opts);
  ASSERT_FALSE(faulted.complete);

  sched::RepairRequest req;
  req.completed = faulted.finished_copies;
  req.dead = plan.crashed_procs();
  req.now = plan.crashes()[0].at;
  const auto r1 = sched::repair_schedule(g, m, req);
  const auto r2 = sched::repair_schedule(g, m, req);
  EXPECT_EQ(sched::to_text(r1.schedule, g), sched::to_text(r2.schedule, g));
}

// ---------------------------------------------- detect → repair → resume

TEST(Recovery, EmptyPlanHasNoOverhead) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto report = core::run_with_faults(g, m, s, fault::FaultPlan{});
  EXPECT_FALSE(report.crashed);
  EXPECT_DOUBLE_EQ(report.recovery_overhead, 0.0);
  EXPECT_DOUBLE_EQ(report.degraded_makespan, report.baseline_makespan);
}

TEST(Recovery, CrashTriggersRepairAndReexecution) {
  auto g = workloads::lu_taskgraph(4);
  auto m = make_machine(3, 0.5);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plain = sim::simulate(g, m, s);

  // Kill the longest task halfway: guaranteed mid-flight loss.
  graph::TaskId victim = 0;
  for (graph::TaskId t = 1; t < g.num_tasks(); ++t) {
    const auto& a = plain.tasks[t];
    const auto& b = plain.tasks[victim];
    if (a.finish - a.start > b.finish - b.start) victim = t;
  }
  const double mid =
      0.5 * (plain.tasks[victim].start + plain.tasks[victim].finish);
  const auto plan = fault::plan_crash(plain.tasks[victim].proc, mid);

  const auto report = core::run_with_faults(g, m, s, plan);
  EXPECT_TRUE(report.crashed);
  EXPECT_GT(report.lost_seconds, 0.0);
  EXPECT_GT(report.reexec_seconds, 0.0);
  EXPECT_GE(report.degraded_makespan, report.faulty.makespan - 1e-12);
  EXPECT_NEAR(report.recovery_overhead,
              report.degraded_makespan - report.baseline_makespan, 1e-12);
  EXPECT_TRUE(has_event(report.events, sim::EventKind::ProcCrash));
  EXPECT_TRUE(has_event(report.events, sim::EventKind::TaskReexec));
  EXPECT_TRUE(std::is_sorted(report.events.begin(), report.events.end(),
                             [](const sim::SimEvent& a, const sim::SimEvent& b) {
                               return a.time < b.time;
                             }));
  // New placements avoid the dead processor; the repaired schedule is
  // feasible under the ordinary validator.
  for (const auto& pl : report.repair.new_placements) {
    EXPECT_NE(pl.proc, plan.crashes()[0].proc);
  }
  report.repair.schedule.validate(g, m);

  const auto text = report.summary();
  EXPECT_NE(text.find("fault recovery report"), std::string::npos);
  EXPECT_NE(text.find("recovery overhead"), std::string::npos);
}

TEST(Recovery, ReportIsDeterministic) {
  auto g = workloads::lu_taskgraph(5);
  auto m = make_machine(4, 1.0);
  const auto s = sched::MhScheduler().run(g, m);
  const auto plan = fault::plan_crash_busiest(s, 0.4);
  const auto a = core::run_with_faults(g, m, s, plan);
  const auto b = core::run_with_faults(g, m, s, plan);
  EXPECT_DOUBLE_EQ(a.degraded_makespan, b.degraded_makespan);
  EXPECT_TRUE(events_equal(a.events, b.events));
  EXPECT_EQ(sched::to_text(a.repair.schedule, g),
            sched::to_text(b.repair.schedule, g));
}

TEST(Recovery, DuplicationLosesLessThanListScheduling) {
  // ABL10's headline: DSH's duplicated ancestors double as redundancy.
  // When the busiest processor dies halfway through, surviving duplicate
  // copies feed the repair pass for free, so DSH gives up less makespan
  // than single-copy MH. Config pinned from the abl10 sweep (CCR 2).
  auto g = workloads::fork_join(12, 1.0, 8.0);
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 1.0;
  p.bytes_per_second = 8.0;
  Machine m(machine::Topology::fully_connected(4), p);

  const auto mh = sched::MhScheduler().run(g, m);
  const auto dsh = sched::DshScheduler().run(g, m);
  ASSERT_GT(dsh.num_duplicates(), 0);

  const auto mh_report =
      core::run_with_faults(g, m, mh, fault::plan_crash_busiest(mh, 0.5));
  const auto dsh_report =
      core::run_with_faults(g, m, dsh, fault::plan_crash_busiest(dsh, 0.5));
  EXPECT_GE(mh_report.recovery_overhead, 0.0);
  EXPECT_GE(dsh_report.recovery_overhead, 0.0);
  EXPECT_LT(dsh_report.recovery_overhead, mh_report.recovery_overhead);
}

// -------------------------------------------------------------- overlays

TEST(Viz, OverlayMarksCrashesAndReexecutions) {
  auto g = workloads::chain_graph(2, 1.0, 8.0);
  sched::Schedule s(2, "manual");
  s.place(0, 0, 0.0, 1.0);
  s.place(1, 1, 2.0, 3.0);
  viz::FaultOverlay overlay;
  overlay.crashes.push_back({0, 1.5});
  overlay.reexecuted.push_back(1);

  const auto ascii = viz::render_gantt(s, g, overlay);
  EXPECT_NE(ascii.find('X'), std::string::npos);
  EXPECT_NE(ascii.find("processor crash"), std::string::npos);
  EXPECT_NE(ascii.find("re-executed after crash"), std::string::npos);

  const auto svg = viz::render_gantt_svg(s, g, overlay);
  EXPECT_NE(svg.find("#cc0000"), std::string::npos);
  EXPECT_NE(svg.find("crashed at t="), std::string::npos);
}

// ----------------------------------------------------- executor rescue

Machine exec_machine(int procs) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e6;
  return Machine(machine::Topology::fully_connected(procs), p);
}

std::map<std::string, pits::Value> lu_inputs() {
  using pits::Value;
  using pits::Vector;
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{16, 39, 45})}};
}

TEST(ExecFault, SurvivorsRescueACrashedWorker) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = exec_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);

  // Crash the processor owning the latest-starting placement right at
  // that scheduled start: the placement is guaranteed to be orphaned.
  const auto& pls = schedule.placements();
  const auto last = std::max_element(
      pls.begin(), pls.end(),
      [](const sched::Placement& a, const sched::Placement& b) {
        return a.start < b.start;
      });
  const auto plan = fault::plan_crash(last->proc, last->start);

  exec::Executor executor(flat, m);
  exec::RunOptions opts;
  opts.faults = &plan;
  opts.rescue_poll_seconds = 0.001;
  const auto par = executor.run(schedule, lu_inputs(), opts);
  const auto seq = exec::run_sequential(flat, lu_inputs());

  EXPECT_EQ(par.outputs.at("x"), seq.outputs.at("x"));
  EXPECT_EQ(par.stores.at("U"), seq.stores.at("U"));
  EXPECT_EQ(par.workers_died, 1);
  EXPECT_GE(par.tasks_rescued, 1u);
  EXPECT_GT(par.recovery_overhead_seconds, 0.0);
  const bool any_rescued =
      std::any_of(par.runs.begin(), par.runs.end(),
                  [](const exec::TaskRun& r) { return r.rescued; });
  EXPECT_TRUE(any_rescued);
}

TEST(ExecFault, AllWorkersDeadFails) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = exec_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  fault::FaultPlan plan("total");
  for (ProcId p = 0; p < 3; ++p) plan.add_crash(p, 0.0);
  exec::Executor executor(flat, m);
  exec::RunOptions opts;
  opts.faults = &plan;
  EXPECT_THROW((void)executor.run(schedule, lu_inputs(), opts), Error);
}

TEST(ExecFault, EmptyPlanChangesNothing) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = exec_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  exec::Executor executor(flat, m);
  fault::FaultPlan empty;
  exec::RunOptions opts;
  opts.faults = &empty;
  const auto par = executor.run(schedule, lu_inputs(), opts);
  const auto seq = exec::run_sequential(flat, lu_inputs());
  EXPECT_EQ(par.outputs.at("x"), seq.outputs.at("x"));
  EXPECT_EQ(par.workers_died, 0);
  EXPECT_EQ(par.tasks_rescued, 0u);
}

}  // namespace
}  // namespace banger
