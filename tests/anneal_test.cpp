// Simulated-annealing scheduler: improvement over its seed, determinism
// per seed, feasibility.
#include <gtest/gtest.h>

#include "sched/anneal.hpp"
#include "sched/heuristics.hpp"
#include "sched/optimal.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

Machine full(int procs, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(Anneal, NeverWorseThanItsSeed) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    workloads::RandomGraphSpec spec;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    const auto m = full(4, 1.0);
    const double mh = MhScheduler().run(g, m).makespan();
    AnnealOptions opts;
    opts.iterations = 800;
    const auto s = AnnealScheduler(opts, {}).run(g, m);
    s.validate(g, m);
    EXPECT_LE(s.makespan(), mh + 1e-9) << seed;
  }
}

TEST(Anneal, DeterministicPerSeed) {
  auto g = workloads::lu_taskgraph(6, 8.0);
  const auto m = full(3, 1.0);
  AnnealOptions opts;
  opts.iterations = 300;
  opts.seed = 7;
  const double a = AnnealScheduler(opts, {}).run(g, m).makespan();
  const double b = AnnealScheduler(opts, {}).run(g, m).makespan();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Anneal, FindsOptimumOnSmallInstance) {
  // Independent works {3,3,2,2,1,1} on 2 procs: optimum 6.
  graph::TaskGraph g;
  for (double w : {3.0, 3.0, 2.0, 2.0, 1.0, 1.0}) {
    g.add_task({"t" + std::to_string(g.num_tasks()), w, "", {}, {}});
  }
  const auto m = full(2, 0.0);
  AnnealOptions opts;
  opts.iterations = 2000;
  const auto s = AnnealScheduler(opts, {}).run(g, m);
  s.validate(g, m);
  const auto opt = OptimalScheduler().run(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), opt.makespan());
}

TEST(Anneal, AcceptsMovesAndReports) {
  auto g = workloads::diamond(4, 4, 2.0, 16.0);
  const auto m = full(4, 0.5);
  AnnealOptions opts;
  opts.iterations = 500;
  AnnealScheduler scheduler(opts, {});
  (void)scheduler.run(g, m);
  EXPECT_GT(scheduler.accepted_moves(), 0);
}

TEST(Anneal, SingleProcessorDegenerate) {
  auto g = workloads::chain_graph(4, 1.0, 8.0);
  const auto m = full(1, 1.0);
  AnnealOptions opts;
  opts.iterations = 50;
  const auto s = AnnealScheduler(opts, {}).run(g, m);
  s.validate(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
}

TEST(Anneal, EmptyGraph) {
  graph::TaskGraph g;
  const auto s = AnnealScheduler().run(g, full(2, 0.5));
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(Anneal, ResolvableViaFactoryButNotListed) {
  auto s = make_scheduler("anneal");
  EXPECT_EQ(s->name(), "anneal");
  for (const auto& n : scheduler_names()) EXPECT_NE(n, "anneal");
}

}  // namespace
}  // namespace banger::sched
