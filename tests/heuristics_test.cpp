// Behavioural and property tests for all scheduling heuristics: every
// heuristic must produce feasible schedules on every workload/machine
// combination (TEST_P sweep), plus targeted checks of each heuristic's
// characteristic behaviour.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/scheduler.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

using graph::TaskGraph;
using workloads::RandomGraphSpec;

Machine make_machine(const std::string& kind, int procs, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  if (kind == "hypercube") {
    int dim = 0;
    while ((1 << dim) < procs) ++dim;
    return Machine(machine::Topology::hypercube(dim), p);
  }
  if (kind == "mesh") {
    return Machine(machine::Topology::mesh(2, (procs + 1) / 2), p);
  }
  if (kind == "star") return Machine(machine::Topology::star(procs), p);
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(MakeScheduler, AllNamesResolve) {
  for (const auto& name : scheduler_names()) {
    auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW((void)make_scheduler("nope"), Error);
}

TEST(SerialScheduler, UsesOneProcessor) {
  auto g = workloads::fork_join(6, 2.0);
  auto m = make_machine("full", 4, 0.5);
  const auto s = SerialScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.procs_used(), 1);
  EXPECT_DOUBLE_EQ(s.makespan(), g.total_work());
}

TEST(RoundRobin, SpreadsTasks) {
  auto g = workloads::fork_join(7, 2.0);
  auto m = make_machine("full", 3, 0.01);
  const auto s = RoundRobinScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.procs_used(), 3);
}

TEST(RandomScheduler, SeedReproducible) {
  auto g = workloads::random_layered({});
  auto m = make_machine("full", 4, 0.2);
  SchedulerOptions opts;
  opts.seed = 99;
  const auto s1 = RandomScheduler(opts).run(g, m);
  const auto s2 = RandomScheduler(opts).run(g, m);
  ASSERT_EQ(s1.placements().size(), s2.placements().size());
  for (std::size_t i = 0; i < s1.placements().size(); ++i) {
    EXPECT_EQ(s1.placements()[i].proc, s2.placements()[i].proc);
    EXPECT_DOUBLE_EQ(s1.placements()[i].start, s2.placements()[i].start);
  }
  opts.seed = 100;
  const auto s3 = RandomScheduler(opts).run(g, m);
  bool differs = false;
  for (std::size_t i = 0; i < s1.placements().size(); ++i) {
    differs |= s1.placements()[i].proc != s3.placements()[i].proc;
  }
  EXPECT_TRUE(differs);
}

TEST(MhScheduler, ParallelizesForkJoin) {
  auto g = workloads::fork_join(8, 4.0, 8.0);
  auto m = make_machine("full", 4, 0.1);
  const auto s = MhScheduler().run(g, m);
  s.validate(g, m);
  // 8 workers of 4s over 4 procs: roughly 2 rounds; far below serial 34s.
  EXPECT_LT(s.makespan(), 34.0 / 2);
  EXPECT_EQ(s.procs_used(), 4);
}

TEST(MhScheduler, KeepsChainOnOneProcessor) {
  auto g = workloads::chain_graph(10, 1.0, 64.0);
  auto m = make_machine("full", 4, 2.0);  // expensive communication
  const auto s = MhScheduler().run(g, m);
  s.validate(g, m);
  // A chain gains nothing from extra processors when comm is costly.
  EXPECT_EQ(s.procs_used(), 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(MhScheduler, BeatsSerialWhenParallelismExists) {
  auto g = workloads::fft_taskgraph(8, 4.0, 8.0);
  auto m = make_machine("hypercube", 8, 0.2);
  const auto mh = MhScheduler().run(g, m);
  const auto serial = SerialScheduler().run(g, m);
  mh.validate(g, m);
  EXPECT_LT(mh.makespan(), serial.makespan() * 0.6);
}

TEST(EtfScheduler, FeasibleAndCompetitive) {
  auto g = workloads::diamond(5, 5, 2.0, 16.0);
  auto m = make_machine("mesh", 4, 0.3);
  const auto etf = EtfScheduler().run(g, m);
  etf.validate(g, m);
  const auto serial = SerialScheduler().run(g, m);
  EXPECT_LE(etf.makespan(), serial.makespan() + 1e-9);
}

TEST(HlfetScheduler, PrioritizesCriticalPath) {
  // Two chains: heavy (3x work 5) and light (3x work 1), independent.
  TaskGraph g;
  for (int i = 0; i < 3; ++i)
    g.add_task({"h" + std::to_string(i), 5, "", {}, {}});
  for (int i = 0; i < 3; ++i)
    g.add_task({"l" + std::to_string(i), 1, "", {}, {}});
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(3, 4, 0);
  g.add_edge(4, 5, 0);
  auto m = make_machine("full", 2, 0.0);
  const auto s = HlfetScheduler().run(g, m);
  s.validate(g, m);
  // Optimal: heavy chain on one proc (15), light on the other (3).
  EXPECT_DOUBLE_EQ(s.makespan(), 15.0);
}

TEST(DlsScheduler, FeasibleOnRandomGraphs) {
  RandomGraphSpec spec;
  spec.seed = 5;
  auto g = workloads::random_layered(spec);
  auto m = make_machine("hypercube", 4, 0.5);
  const auto s = DlsScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.placements().size(), g.num_tasks());
}

TEST(DshScheduler, DuplicatesUnderExpensiveComm) {
  // One producer feeding many consumers with costly messages: DSH should
  // duplicate the producer and beat plain MH.
  TaskGraph g;
  g.add_task({"src", 1, "", {}, {}});
  for (int i = 0; i < 6; ++i) {
    g.add_task({"c" + std::to_string(i), 1, "", {}, {}});
    g.add_edge(0, static_cast<graph::TaskId>(i + 1), 8.0);
  }
  auto m = make_machine("full", 4, 4.0);  // comm 4x task cost
  const auto dsh = DshScheduler().run(g, m);
  dsh.validate(g, m);
  const auto mh = MhScheduler().run(g, m);
  EXPECT_GT(dsh.num_duplicates(), 0);
  EXPECT_LE(dsh.makespan(), mh.makespan() + 1e-9);
}

TEST(DshScheduler, NoDuplicationWhenCommFree) {
  auto g = workloads::fork_join(6, 2.0, 8.0);
  auto m = make_machine("full", 3, 0.0);
  const auto s = DshScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.num_duplicates(), 0);
}

TEST(DshScheduler, DuplicatesAncestorChains) {
  // chain a->b->c->sink plus heavy comm: duplication should copy the
  // chain rather than pay three messages.
  auto g = workloads::chain_graph(3, 1.0, 8.0);
  graph::TaskId extra = g.add_task({"side", 1, "", {}, {}});
  g.add_edge(extra, 2, 8.0);
  auto m = make_machine("full", 2, 3.0);
  SchedulerOptions opts;
  opts.duplication_depth = 4;
  const auto s = DshScheduler(opts).run(g, m);
  s.validate(g, m);
}

TEST(ClusterScheduler, ZeroesHeavyEdges) {
  // Heavy chain + light independent task.
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  g.add_task({"b", 1, "", {}, {}});
  g.add_task({"c", 1, "", {}, {}});
  g.add_edge(0, 1, 1000.0);
  g.add_edge(1, 2, 1000.0);
  auto m = make_machine("full", 2, 1.0);
  ClusterScheduler scheduler;
  const auto clusters = scheduler.clusters_of(g, m);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
  const auto s = scheduler.run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.procs_used(), 1);
}

TEST(ClusterScheduler, KeepsIndependentTasksApart) {
  TaskGraph g;
  g.add_task({"a", 5, "", {}, {}});
  g.add_task({"b", 5, "", {}, {}});
  auto m = make_machine("full", 2, 0.5);
  const auto s = ClusterScheduler().run(g, m);
  s.validate(g, m);
  EXPECT_EQ(s.procs_used(), 2);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

// ---- property sweep: feasibility + sanity for every heuristic ----

struct SweepCase {
  std::string scheduler;
  std::string workload;
  std::string topology;
  int procs;
  double ccr;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << c.scheduler << "_" << c.workload << "_" << c.topology << c.procs;
}

TaskGraph workload_by_name(const std::string& name) {
  if (name == "lu8") return workloads::lu_taskgraph(8);
  if (name == "fft8") return workloads::fft_taskgraph(8, 2.0, 64.0);
  if (name == "forkjoin") return workloads::fork_join(12, 3.0, 32.0);
  if (name == "diamond") return workloads::diamond(4, 6, 1.5, 16.0);
  if (name == "chain") return workloads::chain_graph(9, 2.0, 8.0);
  if (name == "random") {
    RandomGraphSpec spec;
    spec.seed = 17;
    return workloads::random_layered(spec);
  }
  if (name == "single") {
    TaskGraph g;
    g.add_task({"only", 3, "", {}, {}});
    return g;
  }
  throw std::runtime_error("unknown workload " + name);
}

class SchedulerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerSweep, ProducesFeasibleSchedule) {
  const SweepCase& c = GetParam();
  const TaskGraph g = workload_by_name(c.workload);
  const Machine m = make_machine(c.topology, c.procs, c.ccr);
  const auto scheduler = make_scheduler(c.scheduler);
  const Schedule s = scheduler->run(g, m);

  // The heart of the property: every schedule passes full validation.
  ASSERT_NO_THROW(s.validate(g, m));

  // Makespan is bounded below by the critical path with no comm and
  // above by the serial time (all list schedulers, incl. baselines,
  // never idle *every* processor while work is ready).
  const auto metrics = compute_metrics(s, g, m);
  EXPECT_GT(metrics.makespan, 0.0);
  EXPECT_GE(metrics.speedup, 0.0);

  // Primary copies exactly cover the task set.
  std::size_t primaries = 0;
  for (const auto& p : s.placements()) primaries += !p.duplicate;
  EXPECT_EQ(primaries, g.num_tasks());
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* sched :
       {"mh", "etf", "hlfet", "dls", "dsh", "cluster", "serial",
        "roundrobin", "random"}) {
    for (const char* wl :
         {"lu8", "fft8", "forkjoin", "diamond", "chain", "random", "single"}) {
      cases.push_back({sched, wl, "hypercube", 4, 0.5});
    }
    cases.push_back({sched, "fft8", "star", 5, 1.0});
    cases.push_back({sched, "diamond", "mesh", 6, 0.25});
    cases.push_back({sched, "forkjoin", "full", 1, 0.5});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           const SweepCase& c = info.param;
                           return c.scheduler + "_" + c.workload + "_" +
                                  c.topology + std::to_string(c.procs);
                         });

// MH should never lose badly to the naive baselines on parallel graphs.
TEST(SchedulerQuality, MhNotWorseThanRoundRobin) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomGraphSpec spec;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    auto m = make_machine("hypercube", 8, 0.5);
    const double mh = MhScheduler().run(g, m).makespan();
    const double rr = RoundRobinScheduler().run(g, m).makespan();
    EXPECT_LE(mh, rr * 1.05) << "seed " << seed;
  }
}

TEST(SchedulerQuality, InsertionNeverHurtsMh) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    RandomGraphSpec spec;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    auto m = make_machine("hypercube", 4, 1.0);
    SchedulerOptions with;
    with.insertion = true;
    SchedulerOptions without;
    without.insertion = false;
    const double a = MhScheduler(with).run(g, m).makespan();
    const double b = MhScheduler(without).run(g, m).makespan();
    EXPECT_LE(a, b + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace banger::sched
