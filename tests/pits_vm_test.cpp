// Differential testing of the PITS bytecode VM against the tree-walking
// reference interpreter. The two engines must be observably identical:
// same final environments, same print/trace transcripts, same error
// codes, messages, and positions, same step-limit aborts — for random
// programs, for the shipped design corpus, and under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/absint.hpp"
#include "calc/panel.hpp"
#include "graph/serialize.hpp"
#include "obs/trace.hpp"
#include "pits/bytecode.hpp"
#include "pits/interp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger::pits {
namespace {

/// Everything observable about one execution.
struct Outcome {
  bool ok = false;
  std::string error;       ///< full what() — code, message, position
  std::string env;         ///< "name=value;" for every binding
  std::string transcript;  ///< print() output
  std::string trace;       ///< single-step trace lines
};

Outcome run_with(const std::string& src, ExecOptions::Engine engine,
                 const Env& inputs, std::uint64_t step_limit = 200000,
                 bool with_facts = false) {
  Outcome out;
  std::ostringstream transcript;
  std::ostringstream trace;
  ExecOptions opts;
  opts.engine = engine;
  opts.step_limit = step_limit;
  opts.out = &transcript;
  opts.trace = &trace;
  Env env = inputs;
  try {
    const Program program = Program::parse(src);
    if (with_facts) analyze::precompile_optimized(program);
    program.execute(env, opts);
    out.ok = true;
  } catch (const Error& e) {
    out.ok = false;
    out.error = e.what();
  }
  for (const auto& [name, value] : env) {
    out.env += name + "=" + value.to_display() + ";";
  }
  out.transcript = transcript.str();
  out.trace = trace.str();
  return out;
}

/// EXPECT all three executions observe exactly the same thing: the
/// tree-walker (reference), the plain VM, and the VM compiled with
/// abstract-interpretation facts (check elision + tick batching). Any
/// unsound analysis fact shows up here as a three-way divergence.
void expect_identical(const std::string& src, const Env& inputs = {},
                      std::uint64_t step_limit = 200000) {
  const Outcome walk =
      run_with(src, ExecOptions::Engine::Walk, inputs, step_limit);
  const Outcome vm = run_with(src, ExecOptions::Engine::Vm, inputs, step_limit);
  const Outcome elided = run_with(src, ExecOptions::Engine::Vm, inputs,
                                  step_limit, /*with_facts=*/true);
  for (const Outcome* got : {&vm, &elided}) {
    const char* label = got == &vm ? "vm" : "vm+facts";
    EXPECT_EQ(got->ok, walk.ok) << label << ": " << src;
    EXPECT_EQ(got->error, walk.error) << label << ": " << src;
    EXPECT_EQ(got->env, walk.env) << label << ": " << src;
    EXPECT_EQ(got->transcript, walk.transcript) << label << ": " << src;
    EXPECT_EQ(got->trace, walk.trace) << label << ": " << src;
  }
}

// ---------------------------------------------------------------------------
// Hand-picked semantics: each case exercises a VM path whose error text,
// evaluation order, or value flow could plausibly drift from the walker.

TEST(PitsVmDifferential, CoreSemantics) {
  const char* cases[] = {
      // Slot read/write, self-referential assignment, constant shadowing.
      "x := 1\nx := x + x\ny := x * x\n",
      "pi := 10\narea := pi * 4\n",
      "e := 0\nwhile e < 3 do\n  e := e + 1\nend\n",
      // Vectors: literals, indexing, indexed assignment, broadcasting.
      "v := [1, 2, 3]\nv[1] := v[0] + v[2]\ns := sum(v)\n",
      "v := [1, 2, 3]\nw := v * 2 + [10, 20, 30]\n",
      "v := zeros(4)\nfor i := 0 to 3 do\n  v[i] := i * i\nend\n",
      // Strings: concat, print, display.
      "s := \"a\" + \"b\"\nprint(s)\nprint(1 + 1)\n",
      // Formulas: nesting, recursion, duplicate params, attribution.
      "formula sq(x) := x * x\nformula hy(a, b) := sqrt(sq(a) + sq(b))\n"
      "h := hy(3, 4)\n",
      "formula fib(n) := when(n <= 1, n, fib(n - 1) + fib(n - 2))\n"
      "f := fib(10)\n",
      "formula bad(x) := 1 / (x - x)\ny := bad(3)\n",
      // when: lazy arms (only the selected side runs).
      "x := 0\ny := when(1 < 2, 5, 1 / x)\n",
      "x := 0\ny := when(1 > 2, 1 / x, 7)\n",
      // rand() stream must be reproduced exactly by both engines.
      "a := rand()\nb := rand()\nrepeat 3 times\n  c := rand()\nend\n",
      // Errors: undefined names, bad index, type mismatch, div by zero.
      "y := nope + 1\n",
      "v := [1, 2]\nx := v[5]\n",
      "v := [1, 2]\nv[0.5] := 1\n",
      "x := 3\nx[0] := 1\n",
      "y := 1 / 0\n",
      "y := 5 mod 0\n",
      "y := (0 - 2) ^ 0.5\n",
      "y := \"a\" * 2\n",
      "y := [1] < [2]\n",
      // Builtin arity + error wrapping.
      "y := sqrt()\n",
      "y := sqrt(1, 2)\n",
      "y := unknown_fn(1)\n",
      "y := sqrt(0 - 1)\n",
      // for loops: fractional steps, negative steps, zero step error.
      "s := 0\nfor x := 0 to 1 step 0.25 do\n  s := s + x\nend\n",
      "s := 0\nfor x := 5 to 1 step 0 - 1 do\n  s := s + x\nend\n",
      "for x := 0 to 1 step 0 do\n  y := 1\nend\n",
      // repeat: non-integer and negative counts are errors.
      "repeat 2.5 times\n  x := 1\nend\n",
      "repeat 0 - 1 times\n  x := 1\nend\n",
      // return stops the routine mid-way.
      "x := 1\nif x > 0 then\n  return\nend\nx := 99\n",
  };
  for (const char* src : cases) expect_identical(src);
}

TEST(PitsVmDifferential, ElisionCandidates) {
  // Programs where the abstract interpreter proves enough to elide
  // checks or batch ticks — and near-misses where it must not. The
  // facts-compiled VM has to stay byte-identical either way.
  const char* cases[] = {
      // Proven in-bounds loop over a known-length vector (kNoCheck).
      "v := zeros(4)\nfor i := 0 to 3 do\n  v[i] := v[i] + i\nend\ns := "
      "sum(v)\n",
      // Near miss: the last iteration is out of range; the error text
      // and position must match the walker exactly.
      "v := zeros(3)\nfor i := 0 to 3 do\n  v[i] := 1\nend\n",
      // Proven-bound reads (CheckVar elision) across branches.
      "x := 1\nif x > 0 then\n  y := x\nelse\n  y := 0 - x\nend\nz := y\n",
      // Straight-line scalar chain: fully tick-batched.
      "a := 1\nb := a + 1\nc := b * 2\nd := c - a\ne := d / 2\n",
      // A user formula shadowing a builtin: calls must not be treated
      // as the builtin model.
      "formula sqrt(x) := x + 100\ny := sqrt(4)\n",
      // Formula defined conditionally: registration is path-dependent.
      "x := 1\nif x > 0 then\n  formula g(a) := a * 2\nend\ny := g(3)\n",
      // NaN flows through ordering (NaN orders as equal in compare).
      "x := ln(0 - 1)\nif x <= 5 then\n  y := 1\nelse\n  y := 2\nend\n",
      "x := ln(0 - 1)\nif x < 5 then\n  y := 1\nelse\n  y := 2\nend\n",
      // Indexed store with non-integer index must keep its check.
      "v := zeros(4)\ni := 1.5\nv[i * 2] := 7\n",
      // repeat over a proven count batches; error counts must not.
      "s := 0\nrepeat 5 times\n  s := s + 1\nend\n",
      "n := 2.5\nrepeat n times\n  s := 1\nend\n",
      // while with a proven-true condition plus return still terminates.
      "s := 0\nwhile 1 do\n  s := s + 1\n  if s > 3 then\n    return\n  "
      "end\nend\n",
  };
  for (const char* src : cases) expect_identical(src);
}

TEST(PitsVmDifferential, InputsFlowThrough) {
  Env inputs;
  inputs["a"] = 3.0;
  inputs["v"] = Vector{1.0, 2.0, 3.0};
  inputs["label"] = Str("run");
  expect_identical("b := a * 2\nw := v + 1\nprint(label)\n", inputs);
  // An input may shadow a constant: the VM must not fold `pi` here.
  Env shadow;
  shadow["pi"] = 100.0;
  expect_identical("x := pi + 1\n", shadow);
}

TEST(PitsVmDifferential, StepLimitAbortsIdentically) {
  // Loop-heavy program; sweep tight limits so the abort lands on every
  // kind of tick site (statement, loop back-edge, formula call).
  const std::string src =
      "formula inc(x) := x + 1\n"
      "s := 0\n"
      "for i := 1 to 6 do\n"
      "  repeat 3 times\n"
      "    s := inc(s)\n"
      "  end\n"
      "end\n"
      "while s > 0 do\n"
      "  s := s - 1\n"
      "end\n";
  for (std::uint64_t limit = 1; limit <= 120; ++limit) {
    expect_identical(src, {}, limit);
  }
}

// ---------------------------------------------------------------------------
// Randomized differential fuzzing. A richer generator than the
// robustness fuzzer: strings, vectors, builtins, formulas, print — every
// program is run on both engines and all observables compared.

class DiffGen {
 public:
  explicit DiffGen(std::uint64_t seed) : rng_(seed) {}

  std::string program(int statements) {
    std::string out =
        "v0 := 1\nv1 := 2.5\nv2 := -3\nv3 := 0.5\nw := [1, 2, 3, 4]\n"
        "formula fa(x) := x * 2 + 1\n"
        "formula fb(a, b) := when(a > b, a - b, b - a)\n";
    for (int i = 0; i < statements; ++i) out += statement(2);
    return out;
  }

 private:
  std::string scalar_expr(int depth) {
    if (depth <= 0 || rng_.chance(0.25)) {
      switch (rng_.next_below(5)) {
        case 0: return std::to_string(rng_.uniform_int(1, 9));
        case 1: return "v" + std::to_string(rng_.next_below(4));
        case 2: return "w[" + std::to_string(rng_.next_below(4)) + "]";
        case 3: return "pi";
        default: return "rand()";
      }
    }
    switch (rng_.next_below(10)) {
      case 0:
        return "(" + scalar_expr(depth - 1) + " + " + scalar_expr(depth - 1) +
               ")";
      case 1:
        return "(" + scalar_expr(depth - 1) + " * " + scalar_expr(depth - 1) +
               ")";
      case 2:
        // Division is sometimes by zero: a legal typed error, and both
        // engines must report it identically.
        return "(" + scalar_expr(depth - 1) + " / (" +
               scalar_expr(depth - 1) + " - 2))";
      case 3: return "abs(" + scalar_expr(depth - 1) + ")";
      case 4:
        return "min(" + scalar_expr(depth - 1) + ", " +
               scalar_expr(depth - 1) + ")";
      case 5:
        return "when(" + scalar_expr(depth - 1) + " > 0, " +
               scalar_expr(depth - 1) + ", " + scalar_expr(depth - 1) + ")";
      case 6: return "fa(" + scalar_expr(depth - 1) + ")";
      case 7:
        return "fb(" + scalar_expr(depth - 1) + ", " +
               scalar_expr(depth - 1) + ")";
      case 8: return "sum(w)";
      default:
        return "(" + scalar_expr(depth - 1) + " - " + scalar_expr(depth - 1) +
               ")";
    }
  }

  std::string statement(int depth) {
    switch (rng_.next_below(depth > 0 ? 9 : 3)) {
      case 0:
        return "v" + std::to_string(rng_.next_below(4)) + " := " +
               scalar_expr(2) + "\n";
      case 1:
        return "w[" + std::to_string(rng_.next_below(4)) + "] := " +
               scalar_expr(2) + "\n";
      case 2:
        return "print(" + scalar_expr(1) + ")\n";
      case 3: {
        std::string body;
        const int n = 1 + static_cast<int>(rng_.next_below(2));
        for (int i = 0; i < n; ++i) body += "  " + statement(depth - 1);
        return "if " + scalar_expr(1) + " > " + scalar_expr(1) + " then\n" +
               body + "end\n";
      }
      case 4: {
        std::string body = "  " + statement(depth - 1);
        return "repeat " + std::to_string(rng_.next_below(4)) + " times\n" +
               body + "end\n";
      }
      case 5: {
        std::string body = "  " + statement(depth - 1);
        return "for it := 0 to " + std::to_string(rng_.next_below(5)) +
               " do\n" + body + "end\n";
      }
      case 6:
        return "w := w " + std::string(rng_.chance(0.5) ? "+" : "*") + " " +
               scalar_expr(1) + "\n";
      case 7:
        return "msg := \"s\" + str(" + scalar_expr(1) + ")\n";
      default: {
        return "cnt := " + std::to_string(rng_.next_below(4)) +
               "\nwhile cnt > 0 do\n  cnt := cnt - 1\n  " +
               statement(depth - 1) + "end\n";
      }
    }
  }

  util::Rng rng_;
};

class PitsVmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PitsVmFuzz, EnginesObservablyIdentical) {
  DiffGen gen(GetParam());
  expect_identical(gen.program(8));
}

TEST_P(PitsVmFuzz, EnginesIdenticalUnderTightStepLimits) {
  DiffGen gen(GetParam() ^ 0x11f7ull);
  const std::string src = gen.program(6);
  for (std::uint64_t limit : {1U, 3U, 10U, 31U, 100U}) {
    expect_identical(src, {}, limit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PitsVmFuzz,
                         ::testing::Range<std::uint64_t>(1, 81));

// ---------------------------------------------------------------------------
// Shipped corpus: every PITS routine of every bundled design must behave
// identically on both engines, with scalar and with vector inputs.

void expect_corpus_identical(const graph::Design& design) {
  const auto flat = design.flatten();
  for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    if (task.pits.empty()) continue;
    Program program;
    ASSERT_NO_THROW(program = Program::parse(task.pits)) << task.name;
    Env scalars;
    Env vectors;
    double k = 2.0;
    for (const std::string& in : program.inputs()) {
      scalars[in] = k;
      vectors[in] = Vector{k, k + 1, k + 2};
      k += 0.5;
    }
    expect_identical(task.pits, scalars);
    expect_identical(task.pits, vectors);
  }
}

TEST(PitsVmCorpus, WorkloadDesigns) {
  expect_corpus_identical(workloads::lu3x3_design());
  expect_corpus_identical(workloads::montecarlo_design(3, 64));
  expect_corpus_identical(workloads::signal_pipeline_design(2));
  expect_corpus_identical(workloads::polyeval_design(3));
  expect_corpus_identical(workloads::heat_design(2, 3, 4, 0.1));
}

TEST(PitsVmCorpus, SampleDesigns) {
  namespace fs = std::filesystem;
  fs::path dir = fs::current_path();
  fs::path found;
  while (true) {
    if (fs::exists(dir / "samples" / "sqrt_fanout.pitl")) {
      found = dir / "samples";
      break;
    }
    if (dir == dir.parent_path()) break;
    dir = dir.parent_path();
  }
  if (found.empty()) GTEST_SKIP() << "samples/ not found from cwd";
  for (const auto& entry : fs::directory_iterator(found)) {
    if (entry.path().extension() != ".pitl") continue;
    expect_corpus_identical(graph::load_design(entry.path().string()));
  }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion: the peephole pass is always on, so every
// differential test above already runs fused code — these tests pin that
// the fusion actually fires on the patterns it was built for, and that
// the fused programs stay observably identical to the walker.

std::size_t count_ops(const bc::Code& code, bc::Op lo, bc::Op hi) {
  std::size_t n = 0;
  for (const auto& instr : code.ins) {
    if (instr.op >= lo && instr.op <= hi) ++n;
  }
  return n;
}

TEST(PitsVmFusion, ConstOperandsFuseToKForms) {
  // x * 1.01 + 2: both constants should fold into AddK/MulK operands
  // rather than LoadConst + Add/Mul pairs.
  const std::string src =
      "x := 1\n"
      "repeat 10 times\n"
      "  x := x * 1.01 + 2\n"
      "end\n";
  const Program program = Program::parse(src);
  const auto chunk = program.compiled_chunk();
  ASSERT_NE(chunk, nullptr);
  EXPECT_GT(chunk->fused, 0u);
  EXPECT_GT(count_ops(chunk->main, bc::Op::AddK, bc::Op::PowK), 0u);
  expect_identical(src);
}

TEST(PitsVmFusion, CompareBranchFusesInLoopHeads) {
  // `while i < 100` compiles to compare + JumpIfFalsy; the peephole
  // merges them into a single const-compare-branch.
  const std::string src =
      "i := 0\n"
      "s := 0\n"
      "while i < 100 do\n"
      "  s := s + i\n"
      "  i := i + 1\n"
      "end\n";
  const Program program = Program::parse(src);
  const auto chunk = program.compiled_chunk();
  ASSERT_NE(chunk, nullptr);
  EXPECT_GT(chunk->fused, 0u);
  EXPECT_GT(count_ops(chunk->main, bc::Op::LtBr, bc::Op::NeKBr), 0u);
  expect_identical(src);
}

TEST(PitsVmFusion, CorpusRoutinesFuse) {
  // Every LU task body should give the peephole something to merge;
  // the differential corpus test already proves the results agree.
  std::size_t total = 0;
  const auto flat = workloads::lu3x3_design().flatten();
  for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    if (task.pits.empty()) continue;
    const Program program = Program::parse(task.pits);
    const auto chunk = program.compiled_chunk();
    if (chunk != nullptr) total += chunk->fused;
  }
  EXPECT_GT(total, 0u);
}

TEST(PitsVmFusion, TraceAndErrorsSurviveFusion) {
  // kFinish epilogues must echo assignments in trace mode exactly as
  // the walker does, and faulting fused ops must keep the walker's
  // message and position.
  const char* cases[] = {
      "x := 2\ny := x + 1\nz := y * 3\n",
      "i := 0\nwhile i < 3 do\n  i := i + 1\nend\n",
      "x := 0\ny := 1 / (x + 0)\n",         // DivK by zero mid-fusion
      "v := [1, 2]\ni := 5\nx := v[i]\n",   // fused index feed
      "x := 1\ny := x mod 0\n",             // ModK error text
  };
  for (const char* src : cases) expect_identical(src);
}

// ---------------------------------------------------------------------------
// Concurrency: one shared Program executed from many threads must give
// every thread the sequential answer (the compiled-chunk cache is
// once-init and read-only after publication; run under TSan in CI).

TEST(PitsVmConcurrency, SharedProgramAcrossThreads) {
  const std::string src =
      "formula sq(x) := x * x\n"
      "s := 0\n"
      "for i := 1 to 32 do\n"
      "  s := s + sq(i) + rand()\n"
      "end\n"
      "v := [1, 2, 3] * s\n";
  const Program program = Program::parse(src);

  const Outcome expected =
      run_with(src, ExecOptions::Engine::Vm, {});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 32; ++i) {
        Env env;
        ExecOptions opts;
        opts.engine = ExecOptions::Engine::Vm;
        program.execute(env, opts);
        std::string state;
        for (const auto& [name, value] : env) {
          state += name + "=" + value.to_display() + ";";
        }
        if (state != expected.env) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// The calculator panel caches its parsed program: repeated trial runs and
// lints of unchanged text must not re-parse; any edit must invalidate.

TEST(PanelParseCache, TrialRunsReuseOneParse) {
  obs::TraceRecorder rec;
  obs::ScopedRecorder scope(rec);

  calc::CalculatorPanel panel("cache");
  panel.declare_input("x");
  panel.declare_output("y");
  panel.type("y := x * 2\n");

  Env inputs;
  inputs["x"] = 4.0;
  const double before = rec.metric("pits.parse");
  for (int i = 0; i < 5; ++i) {
    const auto result = panel.trial_run(inputs);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.env.at("y"), Value(8.0));
  }
  (void)panel.lint();
  EXPECT_EQ(rec.metric("pits.parse") - before, 1.0)
      << "unchanged text must parse exactly once";

  // Every text mutation path invalidates.
  panel.press(calc::Key::Enter);
  (void)panel.trial_run(inputs);
  panel.backspace();
  (void)panel.trial_run(inputs);
  panel.type("y := x + 1\n");
  const auto edited = panel.trial_run(inputs);
  ASSERT_TRUE(edited.ok) << edited.error;
  EXPECT_EQ(edited.env.at("y"), Value(5.0));
  EXPECT_EQ(rec.metric("pits.parse") - before, 4.0)
      << "each edit re-parses once";
}

}  // namespace
}  // namespace banger::pits
