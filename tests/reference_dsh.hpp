// tests/reference_dsh.hpp
//
// The seed DSH implementation, kept verbatim as a differential oracle for
// the fast scheduler in src/sched/dsh.cpp — the same role the PITS tree
// walker plays for the bytecode VM. It is deliberately naive: every
// (task, processor) trial copies the candidate lane and snapshots a
// std::map of local duplicate finishes around each speculative
// duplication. Compiled only into test targets; never link it into the
// product libraries.
//
// The randomized property test in sched_perf_test.cpp byte-compares the
// schedules of both implementations across random graphs, duplication
// depths, and heterogeneous machines.
#pragma once

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "sched/list_core.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"

namespace banger::sched::reference {

namespace detail {

using Lane = std::vector<std::pair<double, double>>;

inline double lane_slot(const Lane& lane, double ready, double duration) {
  double candidate = std::max(0.0, ready);
  for (const auto& [s, f] : lane) {
    if (candidate + duration <= s + 1e-12) return candidate;
    candidate = std::max(candidate, f);
  }
  return candidate;
}

inline void lane_occupy(Lane& lane, double start, double duration) {
  const std::pair<double, double> iv{start, start + duration};
  lane.insert(std::lower_bound(lane.begin(), lane.end(), iv), iv);
}

/// Tentative evaluation of task `t` on processor `p`, with duplication.
struct Evaluation {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  /// Duplicated ancestor copies, in the order they must be committed.
  std::vector<std::pair<graph::TaskId, double>> dups;
};

class DupEvaluator {
 public:
  DupEvaluator(const BuildState& state, ProcId proc, int max_depth)
      : state_(state),
        proc_(proc),
        max_depth_(max_depth),
        lane_(state.timeline().lane(proc)) {}

  Evaluation evaluate(TaskId t) {
    // Walk up from t: while a remote critical parent delays us and
    // duplicating it helps, keep duplicating.
    for (int round = 0; round < max_depth_; ++round) {
      auto [ready, crit] = data_ready(t);
      const double dur = state_.duration(t, proc_);
      const double start = lane_slot(lane_, ready, dur);
      if (crit == graph::kNoTask || has_local_copy(crit)) break;

      // Snapshot, try the duplication, keep only if t starts earlier.
      const auto saved_lane = lane_;
      const auto saved_local = local_finish_;
      const auto saved_dups = dups_;
      duplicate(crit, max_depth_ - 1);
      auto [new_ready, new_crit] = data_ready(t);
      (void)new_crit;
      const double new_start = lane_slot(lane_, new_ready, dur);
      if (new_start + 1e-12 >= start) {
        lane_ = saved_lane;
        local_finish_ = saved_local;
        dups_ = saved_dups;
        break;
      }
    }
    auto [ready, crit] = data_ready(t);
    (void)crit;
    const double dur = state_.duration(t, proc_);
    const double start = lane_slot(lane_, ready, dur);
    return {proc_, start, start + dur, dups_};
  }

 private:
  [[nodiscard]] bool has_local_copy(TaskId u) const {
    if (local_finish_.contains(u)) return true;
    for (const Copy& c : state_.copies(u)) {
      if (c.proc == proc_) return true;
    }
    return false;
  }

  /// Best arrival on proc_ of edge data, considering committed copies and
  /// tentative local duplicates.
  [[nodiscard]] double arrival(graph::EdgeId e) const {
    const graph::Edge& edge = state_.graph().edge(e);
    double best = kInf;
    if (auto it = local_finish_.find(edge.from); it != local_finish_.end()) {
      best = it->second;  // same processor: no communication
    }
    for (const Copy& c : state_.copies(edge.from)) {
      best = std::min(best, c.finish + state_.machine().comm_time(
                                           edge.bytes, c.proc, proc_));
    }
    return best;
  }

  [[nodiscard]] std::pair<double, TaskId> data_ready(TaskId t) const {
    double ready = 0.0;
    TaskId crit = graph::kNoTask;
    for (graph::EdgeId e : state_.graph().in_edges(t)) {
      const double a = arrival(e);
      if (a > ready) {
        ready = a;
        crit = state_.graph().edge(e).from;
      }
    }
    return {ready, crit};
  }

  /// Places a tentative duplicate of `u` on proc_, recursively duplicating
  /// its own critical ancestors first when that lets `u` start earlier.
  void duplicate(TaskId u, int depth) {
    if (depth > 0) {
      auto [ready, crit] = data_ready(u);
      if (crit != graph::kNoTask && !has_local_copy(crit)) {
        const auto saved_lane = lane_;
        const auto saved_local = local_finish_;
        const auto saved_dups = dups_;
        duplicate(crit, depth - 1);
        auto [new_ready, nc] = data_ready(u);
        (void)nc;
        if (new_ready + 1e-12 >= ready) {
          lane_ = saved_lane;
          local_finish_ = saved_local;
          dups_ = saved_dups;
        }
      }
    }
    auto [ready, crit] = data_ready(u);
    (void)crit;
    const double dur = state_.duration(u, proc_);
    const double start = lane_slot(lane_, ready, dur);
    lane_occupy(lane_, start, dur);
    local_finish_.emplace(u, start + dur);
    dups_.emplace_back(u, start);
  }

  const BuildState& state_;
  ProcId proc_;
  int max_depth_;
  Lane lane_;
  std::map<TaskId, double> local_finish_;
  std::vector<std::pair<TaskId, double>> dups_;
};

}  // namespace detail

/// Runs the seed DSH. `scheduler_name` defaults to the production name so
/// the rendered text (which embeds it) is directly comparable.
inline Schedule reference_dsh(const TaskGraph& graph, const Machine& machine,
                              const SchedulerOptions& opts = {},
                              const std::string& scheduler_name = "dsh") {
  BuildState state(graph, machine);
  const auto priority = comm_b_levels(graph, machine);

  std::vector<std::size_t> remaining(graph.num_tasks());
  ReadyQueue ready(priority);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push(t);
  }

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId t = ready.pop();

    detail::Evaluation best;
    best.finish = kInf;
    for (ProcId p = 0; p < machine.num_procs(); ++p) {
      detail::DupEvaluator eval(state, p, opts.duplication_depth);
      detail::Evaluation cand = eval.evaluate(t);
      if (cand.finish < best.finish - 1e-12) best = std::move(cand);
    }
    BANGER_ASSERT(best.proc >= 0, "no processor chosen");

    for (auto [dup_task, dup_start] : best.dups) {
      state.commit(dup_task, best.proc, dup_start, /*duplicate=*/true);
    }
    state.commit(t, best.proc, best.start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(scheduler_name);
}

}  // namespace banger::sched::reference
