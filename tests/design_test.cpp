// Tests of the hierarchical Design: supernode expansion, storage
// elimination, boundary binding, validation.
#include <gtest/gtest.h>

#include "graph/design.hpp"
#include "util/error.hpp"
#include "workloads/lu.hpp"

namespace banger::graph {
namespace {

Node task_node(std::string name, double work = 1.0,
               std::vector<std::string> in = {},
               std::vector<std::string> out = {}) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = std::move(name);
  n.work = work;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  return n;
}

Node store_node(std::string name, double bytes = 8.0) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = std::move(name);
  n.bytes = bytes;
  return n;
}

/// producer -> store d -> consumer, plus an input store a feeding the
/// producer and an output store r written by the consumer.
Design flat_design() {
  Design d("flat");
  auto& g = d.root_graph();
  g.add_node(store_node("a", 16));
  g.add_node(store_node("dd", 32));
  g.add_node(store_node("r", 8));
  g.add_node(task_node("produce", 2, {"a"}, {"dd"}));
  g.add_node(task_node("consume", 3, {"dd"}, {"r"}));
  g.connect("a", "produce", "a", 16);
  g.connect("produce", "dd", "dd", 32);
  g.connect("dd", "consume", "dd", 32);
  g.connect("consume", "r", "r", 8);
  return d;
}

TEST(Design, FlattenEliminatesStores) {
  auto flat = flat_design().flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 2u);
  ASSERT_EQ(flat.graph.num_edges(), 1u);
  const Edge& e = flat.graph.edge(0);
  EXPECT_EQ(flat.graph.task(e.from).name, "produce");
  EXPECT_EQ(flat.graph.task(e.to).name, "consume");
  EXPECT_DOUBLE_EQ(e.bytes, 32.0);  // the store's size
  EXPECT_EQ(e.var, "dd");
}

TEST(Design, FlattenClassifiesStores) {
  auto flat = flat_design().flatten();
  ASSERT_EQ(flat.stores.size(), 3u);
  const auto ins = flat.input_stores();
  const auto outs = flat.output_stores();
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(flat.stores[ins[0]].var, "a");
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(flat.stores[outs[0]].var, "r");
  EXPECT_NE(flat.find_store("dd"), nullptr);
  EXPECT_EQ(flat.find_store("nosuch"), nullptr);
}

Design hierarchical_design() {
  Design d("hier");
  const GraphId child = d.add_graph("inner");
  auto& sub = d.graph(child);
  sub.add_node(task_node("first", 1, {"in"}, {"mid"}));
  sub.add_node(task_node("second", 1, {"mid"}, {"out"}));
  sub.connect("first", "second", "mid", 4);

  auto& root = d.root_graph();
  root.add_node(task_node("pre", 1, {}, {"in"}));
  Node super;
  super.kind = NodeKind::Super;
  super.name = "stage";
  super.subgraph = child;
  super.inputs = {"in"};
  super.outputs = {"out"};
  root.add_node(std::move(super));
  root.add_node(task_node("post", 1, {"out"}, {}));
  root.connect("pre", "stage", "in", 8);
  root.connect("stage", "post", "out", 8);
  return d;
}

TEST(Design, SupernodeExpansionQualifiesNames) {
  auto flat = hierarchical_design().flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 4u);
  EXPECT_TRUE(flat.graph.find("stage.first").has_value());
  EXPECT_TRUE(flat.graph.find("stage.second").has_value());
  EXPECT_TRUE(flat.graph.find("pre").has_value());
  EXPECT_TRUE(flat.graph.find("post").has_value());
}

TEST(Design, SupernodeExpansionRebindsArcs) {
  auto flat = hierarchical_design().flatten();
  const TaskId pre = flat.graph.require("pre");
  const TaskId first = flat.graph.require("stage.first");
  const TaskId second = flat.graph.require("stage.second");
  const TaskId post = flat.graph.require("post");
  EXPECT_EQ(flat.graph.succs(pre), std::vector<TaskId>{first});
  EXPECT_EQ(flat.graph.succs(first), std::vector<TaskId>{second});
  EXPECT_EQ(flat.graph.succs(second), std::vector<TaskId>{post});
}

TEST(Design, DepthOfHierarchy) {
  EXPECT_EQ(flat_design().depth(), 1);
  EXPECT_EQ(hierarchical_design().depth(), 2);
}

TEST(Design, UnboundSupernodeInputFails) {
  Design d("bad");
  const GraphId child = d.add_graph("inner");
  d.graph(child).add_node(task_node("t", 1, {"other"}, {"out"}));
  auto& root = d.root_graph();
  root.add_node(task_node("pre", 1, {}, {"in"}));
  Node super;
  super.kind = NodeKind::Super;
  super.name = "stage";
  super.subgraph = child;
  super.inputs = {"in"};
  super.outputs = {"out"};
  root.add_node(std::move(super));
  root.connect("pre", "stage", "in", 8);
  EXPECT_THROW((void)d.flatten(), Error);
}

TEST(Design, UnboundSupernodeOutputFails) {
  Design d("bad");
  const GraphId child = d.add_graph("inner");
  d.graph(child).add_node(task_node("t", 1, {}, {"other"}));
  auto& root = d.root_graph();
  Node super;
  super.kind = NodeKind::Super;
  super.name = "stage";
  super.subgraph = child;
  super.outputs = {"out"};
  root.add_node(std::move(super));
  root.add_node(task_node("post", 1, {"out"}, {}));
  root.connect("stage", "post", "out", 8);
  EXPECT_THROW((void)d.flatten(), Error);
}

TEST(Design, RecursiveHierarchyRejected) {
  Design d("rec");
  const GraphId a = d.add_graph("a");
  const GraphId b = d.add_graph("b");
  Node sa;
  sa.kind = NodeKind::Super;
  sa.name = "to_b";
  sa.subgraph = b;
  d.graph(a).add_node(std::move(sa));
  Node sb;
  sb.kind = NodeKind::Super;
  sb.name = "to_a";
  sb.subgraph = a;
  d.graph(b).add_node(std::move(sb));
  Node sr;
  sr.kind = NodeKind::Super;
  sr.name = "start";
  sr.subgraph = a;
  d.root_graph().add_node(std::move(sr));
  EXPECT_THROW(d.validate(), Error);
}

TEST(Design, SupernodeReferencingRootRejected) {
  Design d("selfroot");
  Node s;
  s.kind = NodeKind::Super;
  s.name = "loop";
  s.subgraph = 0;
  d.root_graph().add_node(std::move(s));
  EXPECT_THROW(d.validate(), Error);
}

TEST(Design, SharedChildGraphExpandsTwice) {
  Design d("shared");
  const GraphId child = d.add_graph("inner");
  d.graph(child).add_node(task_node("work", 1, {"in"}, {"out"}));
  auto& root = d.root_graph();
  root.add_node(task_node("pre", 1, {}, {"in"}));
  for (int i = 0; i < 2; ++i) {
    Node super;
    super.kind = NodeKind::Super;
    super.name = "stage" + std::to_string(i);
    super.subgraph = child;
    super.inputs = {"in"};
    super.outputs = {"out"};
    root.add_node(std::move(super));
    root.connect("pre", "stage" + std::to_string(i), "in", 8);
  }
  auto flat = d.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 3u);
  EXPECT_TRUE(flat.graph.find("stage0.work").has_value());
  EXPECT_TRUE(flat.graph.find("stage1.work").has_value());
}

TEST(Design, MultiWriterMultiReaderStore) {
  Design d("multi");
  auto& g = d.root_graph();
  g.add_node(store_node("s", 64));
  g.add_node(task_node("w1", 1, {}, {"s"}));
  g.add_node(task_node("w2", 1, {}, {"s"}));
  g.add_node(task_node("r1", 1, {"s"}, {}));
  g.add_node(task_node("r2", 1, {"s"}, {}));
  g.connect("w1", "s", "s", 64);
  g.connect("w2", "s", "s", 64);
  g.connect("s", "r1", "s", 64);
  g.connect("s", "r2", "s", 64);
  auto flat = d.flatten();
  // 2 writers x 2 readers = 4 dependences.
  EXPECT_EQ(flat.graph.num_edges(), 4u);
}

TEST(Design, LuFigure1Shape) {
  // The paper's Fig. 1 design: 9 leaf tasks (7 elimination + fwd + back),
  // depth 2, stores A b L U x y.
  auto design = workloads::lu3x3_design();
  EXPECT_EQ(design.depth(), 2);
  auto flat = design.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 9u);
  EXPECT_EQ(flat.stores.size(), 6u);
  const auto ins = flat.input_stores();
  ASSERT_EQ(ins.size(), 2u);  // A and b
  EXPECT_TRUE(flat.graph.find("solve.fwd").has_value());
  EXPECT_TRUE(flat.graph.find("solve.back").has_value());
  EXPECT_TRUE(flat.graph.is_acyclic());
}

TEST(Design, ThreeLevelNestingFlattens) {
  Design d("deep");
  const GraphId mid = d.add_graph("mid");
  const GraphId leaf = d.add_graph("leaf");

  // Leaf level: one real task.
  d.graph(leaf).add_node(task_node("work", 2, {"in"}, {"out"}));

  // Mid level: a store sandwiched between the boundary and a supernode.
  {
    Node inner;
    inner.kind = NodeKind::Super;
    inner.name = "inner";
    inner.subgraph = leaf;
    inner.inputs = {"in"};
    inner.outputs = {"out"};
    d.graph(mid).add_node(std::move(inner));
  }

  // Root: pre -> super(mid) -> post.
  auto& root = d.root_graph();
  root.add_node(task_node("pre", 1, {}, {"in"}));
  Node outer;
  outer.kind = NodeKind::Super;
  outer.name = "outer";
  outer.subgraph = mid;
  outer.inputs = {"in"};
  outer.outputs = {"out"};
  root.add_node(std::move(outer));
  root.add_node(task_node("post", 1, {"out"}, {}));
  root.connect("pre", "outer", "in", 8);
  root.connect("outer", "post", "out", 8);

  EXPECT_EQ(d.depth(), 3);
  const auto flat = d.flatten();
  EXPECT_EQ(flat.graph.num_tasks(), 3u);
  // Names nest: outer.inner.work.
  const TaskId deep = flat.graph.require("outer.inner.work");
  EXPECT_EQ(flat.graph.preds(deep),
            std::vector<TaskId>{flat.graph.require("pre")});
  EXPECT_EQ(flat.graph.succs(deep),
            std::vector<TaskId>{flat.graph.require("post")});
}

TEST(Design, NumLeafTasksMatchesFlatten) {
  auto design = workloads::lu3x3_design();
  EXPECT_EQ(design.num_leaf_tasks(), design.flatten().graph.num_tasks());
}

}  // namespace
}  // namespace banger::graph
