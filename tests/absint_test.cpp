// Tests for the abstract-interpretation engine: interval/value lattice
// laws, widening termination, one golden fixture per BAN3xx code (plus
// its clean variant), BAN101 false-positive pruning, and the analysis
// facts the bytecode compiler consumes for check elision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/absint.hpp"
#include "analyze/analyze.hpp"
#include "graph/serialize.hpp"
#include "pits/interp.hpp"

namespace banger::analyze {
namespace {

std::vector<Diagnostic> check(std::string_view pitl,
                              const AnalyzeOptions& options = {}) {
  return analyze_design(graph::parse_design(pitl), options);
}

bool fires(const std::vector<Diagnostic>& diags, std::string_view code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& get(const std::vector<Diagnostic>& diags,
                      std::string_view code) {
  auto it = std::find_if(diags.begin(), diags.end(),
                         [&](const Diagnostic& d) { return d.code == code; });
  EXPECT_NE(it, diags.end()) << "expected " << code << " to fire";
  static const Diagnostic none{};
  return it == diags.end() ? none : *it;
}

// Wraps a PITS body in a minimal runnable one-task design.
std::string one_task(std::string_view body) {
  std::string pitl = "design d\ngraph g\n  store xs bytes=8\n"
                     "  store out bytes=8\n  task work in=xs out=ys\n"
                     "  pits {\n";
  pitl += body;
  pitl += "  }\n  task sink in=ys out=out\n  pits {\n    out := ys\n  }\n"
          "  arc xs -> work var=xs bytes=8\n"
          "  arc work -> sink var=ys bytes=8\n"
          "  arc sink -> out var=out bytes=8\n";
  return pitl;
}

// --------------------------------------------------------------- lattice

TEST(IntervalDomain, ExactAndRangeConstructors) {
  const Interval x = iv_exact(3.0);
  EXPECT_EQ(x.lo, 3.0);
  EXPECT_EQ(x.hi, 3.0);
  EXPECT_TRUE(x.integer);
  EXPECT_FALSE(x.maybe_nan);
  EXPECT_TRUE(x.is_exact());

  EXPECT_FALSE(iv_exact(2.5).integer);
  EXPECT_TRUE(iv_exact(std::nan("")).is_top());   // NaN widens to top
  EXPECT_TRUE(iv_range(5, 2).is_top());           // inverted bounds too
  EXPECT_TRUE(iv_top().is_top());
}

TEST(IntervalDomain, JoinIsHullAndCommutative) {
  const Interval a = iv_range(0, 4, /*integer=*/true);
  const Interval b = iv_range(2, 9, /*integer=*/true);
  const Interval j = join(a, b);
  EXPECT_EQ(j.lo, 0.0);
  EXPECT_EQ(j.hi, 9.0);
  EXPECT_TRUE(j.integer);
  EXPECT_FALSE(j.maybe_nan);
  EXPECT_EQ(join(b, a), j);

  // Integrality is conjoined, NaN possibility disjoined.
  const Interval frac = iv_range(0.5, 0.5);
  EXPECT_FALSE(join(a, frac).integer);
  Interval nanny = iv_range(1, 1);
  nanny.maybe_nan = true;
  EXPECT_TRUE(join(a, nanny).maybe_nan);
}

TEST(IntervalDomain, JoinUpperBoundsBothSides) {
  const Interval a = iv_range(-3, 1, true);
  const Interval b = iv_range(0, 7);
  const Interval j = join(a, b);
  EXPECT_LE(j.lo, std::min(a.lo, b.lo));
  EXPECT_GE(j.hi, std::max(a.hi, b.hi));
}

TEST(IntervalDomain, WideningJumpsGrownBoundsToInfinity) {
  const Interval prev = iv_range(0, 4, true);
  const Interval grown_hi = iv_range(0, 5, true);
  const Interval w = widen(prev, grown_hi);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, kAbsInf);

  const Interval grown_lo = iv_range(-1, 4, true);
  const Interval w2 = widen(prev, grown_lo);
  EXPECT_EQ(w2.lo, -kAbsInf);
  EXPECT_EQ(w2.hi, 4.0);

  // Stable input is a fixpoint: widen(prev, prev) == prev.
  EXPECT_EQ(widen(prev, prev), prev);
}

TEST(IntervalDomain, WideningTerminates) {
  // Repeatedly widening against ever-growing inputs must reach a
  // fixpoint in a bounded number of steps (each bound widens at most
  // once, the two bits are monotone).
  Interval acc = iv_exact(0.0);
  int changes = 0;
  for (int i = 1; i <= 100; ++i) {
    Interval next = iv_range(-i, i * i);
    next.maybe_nan = (i > 50);
    const Interval w = widen(acc, join(acc, next));
    if (!(w == acc)) ++changes;
    acc = w;
  }
  EXPECT_LE(changes, 4);  // lo, hi, integer, maybe_nan
  EXPECT_EQ(acc.lo, -kAbsInf);
  EXPECT_EQ(acc.hi, kAbsInf);
}

TEST(AbsValDomain, JoinMergesKindsAndRefinements) {
  const AbsVal s = AbsVal::scalar(iv_range(1, 2, true));
  const AbsVal v = AbsVal::vector(iv_exact(3.0), iv_range(0, 1, true));
  const AbsVal j = join(s, v);
  EXPECT_TRUE(j.may_scalar);
  EXPECT_TRUE(j.may_vector);
  EXPECT_FALSE(j.may_string);
  EXPECT_FALSE(j.may_unbound);
  EXPECT_FALSE(j.proven_scalar());
  EXPECT_FALSE(j.proven_vector());
  // The scalar interval comes only from the side that could be scalar.
  EXPECT_EQ(j.num, s.num);
  EXPECT_EQ(j.len, v.len);
  EXPECT_EQ(join(v, s), j);
}

TEST(AbsValDomain, WidenReachesFixpointOnRepeatedGrowth) {
  AbsVal acc = AbsVal::scalar(iv_exact(0.0));
  acc.must_assigned = true;
  int changes = 0;
  for (int i = 1; i <= 50; ++i) {
    AbsVal next = AbsVal::scalar(iv_range(0, i, true));
    next.must_assigned = true;
    const AbsVal w = widen(acc, join(acc, next));
    if (!(w == acc)) ++changes;
    acc = w;
  }
  EXPECT_LE(changes, 2);
  EXPECT_TRUE(acc.proven_scalar());
  EXPECT_EQ(acc.num.hi, kAbsInf);
  EXPECT_EQ(acc.num.lo, 0.0);
}

// ------------------------------------------------------ BAN3xx fixtures

TEST(AbsintRules, Ban301ProvenDivisionByZero) {
  // Zero survives the loop (0 * i stays 0), which the syntactic
  // constant folder cannot see but the fixpoint proves.
  const auto diags = check(one_task(
      "    m := 0\n    for i := 1 to 3 do\n      m := m * i\n    end\n"
      "    q := 10 / m\n    ys := q + len(xs)\n"));
  EXPECT_TRUE(fires(diags, "BAN301"));
  EXPECT_EQ(get(diags, "BAN301").severity, Severity::Error);
  const auto clean = check(one_task(
      "    m := 0\n    for i := 1 to 3 do\n      m := m + i\n    end\n"
      "    q := 10 / m\n    ys := q + len(xs)\n"));
  EXPECT_FALSE(fires(clean, "BAN301"));
  // `n - n` of an untyped input is no proof: len() of a non-vector may
  // not even evaluate, and a NaN divisor does not raise.
  const auto unknown = check(one_task(
      "    n := len(xs)\n    m := n - n\n    q := 10 / m\n    ys := q\n"));
  EXPECT_FALSE(fires(unknown, "BAN301"));
}

TEST(AbsintRules, Ban301DoesNotDuplicateConstantFoldedBan104) {
  // A literal `1 / 0` is already BAN104 (constant-derived error); the
  // interval rule must stay silent at the same spot.
  const auto diags = check(one_task("    q := 1 / 0\n    ys := q\n"));
  EXPECT_TRUE(fires(diags, "BAN104"));
  EXPECT_FALSE(fires(diags, "BAN301"));
}

TEST(AbsintRules, Ban302IntervalProvenOutOfBounds) {
  // Every index the loop produces is >= the vector length.
  const auto diags = check(one_task(
      "    w := zeros(4)\n    s := 0\n    for j := 4 to 9 do\n"
      "      s := s + w[j]\n    end\n    ys := s\n"));
  EXPECT_TRUE(fires(diags, "BAN302"));
  const Diagnostic& d = get(diags, "BAN302");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("[4, 9]"), std::string::npos) << d.message;

  // Partially out of range is not a proof: some iterations are fine.
  const auto partial = check(one_task(
      "    w := zeros(4)\n    s := 0\n    for j := 0 to 9 do\n"
      "      s := s + w[j]\n    end\n    ys := s\n"));
  EXPECT_FALSE(fires(partial, "BAN302"));

  const auto clean = check(one_task(
      "    w := zeros(4)\n    s := 0\n    for j := 0 to 3 do\n"
      "      s := s + w[j]\n    end\n    ys := s\n"));
  EXPECT_FALSE(fires(clean, "BAN302"));
}

TEST(AbsintRules, Ban303ProvenConstantBranch) {
  const auto diags = check(one_task(
      "    if 1 < 0 then\n      dead := 1\n    end\n    ys := 1\n"));
  EXPECT_TRUE(fires(diags, "BAN303"));
  EXPECT_EQ(get(diags, "BAN303").severity, Severity::Warning);

  // Interval-proven, not just constant-folded: len(xs) >= 0 always.
  const auto interval = check(one_task(
      "    n := len(xs)\n    if n >= 0 then\n      ys := n\n"
      "    else\n      ys := 0\n    end\n"));
  EXPECT_TRUE(fires(interval, "BAN303"));

  const auto clean = check(one_task(
      "    n := len(xs)\n    if n > 2 then\n      ys := n\n"
      "    else\n      ys := 0\n    end\n"));
  EXPECT_FALSE(fires(clean, "BAN303"));
}

TEST(AbsintRules, Ban304ProvenNonTerminatingLoop) {
  // The body changes `s`, so the syntactic BAN108 stays quiet — but the
  // fixpoint proves s only grows and the condition stays true.
  const auto diags = check(one_task(
      "    s := 1\n    while s > 0 do\n      s := s + 1\n    end\n"
      "    ys := s\n"));
  EXPECT_TRUE(fires(diags, "BAN304"));
  EXPECT_FALSE(fires(diags, "BAN108"));
  // A literal-constant condition is already the syntactic BAN108; the
  // proof rule defers to it rather than double-reporting.
  const auto constant = check(one_task(
      "    s := 0\n    while 1 do\n      s := s + 1\n    end\n    ys := s\n"));
  EXPECT_TRUE(fires(constant, "BAN108"));
  EXPECT_FALSE(fires(constant, "BAN304"));
  // A loop that decrements toward the bound terminates for all the
  // analysis knows.
  const auto clean = check(one_task(
      "    s := len(xs)\n    while s > 0 do\n      s := s - 1\n    end\n"
      "    ys := s\n"));
  EXPECT_FALSE(fires(clean, "BAN304"));
  // A `return` inside the proven-true loop is an exit: no report.
  const auto escapes = check(one_task(
      "    ys := 1\n    s := 1\n    while s > 0 do\n      s := s + 1\n"
      "      if s > 10 then\n        return\n      end\n    end\n"));
  EXPECT_FALSE(fires(escapes, "BAN304"));
}

TEST(AbsintRules, Ban305ElementwiseLengthMismatch) {
  const auto diags = check(one_task(
      "    a := [1, 2]\n    b := [1, 2, 3]\n    c := a + b\n    ys := c\n"));
  EXPECT_TRUE(fires(diags, "BAN305"));
  EXPECT_EQ(get(diags, "BAN305").severity, Severity::Error);
  const auto clean = check(one_task(
      "    a := [1, 2]\n    b := [3, 4]\n    c := a + b\n    ys := c\n"));
  EXPECT_FALSE(fires(clean, "BAN305"));
  // Unknown-length operand: no proof, no report.
  const auto unknown = check(one_task(
      "    a := [1, 2]\n    c := a + xs\n    ys := c\n"));
  EXPECT_FALSE(fires(unknown, "BAN305"));
}

TEST(AbsintRules, Ban306CrossTaskShapeMismatch) {
  // Producer writes a scalar into store `v`; the consumer indexes it.
  const std::string pitl =
      "design d\ngraph g\n  store xs bytes=8\n  store v bytes=8\n"
      "  store out bytes=8\n  task maker in=xs out=v\n  pits {\n"
      "    v := 7\n  }\n  task user in=v out=ys\n  pits {\n"
      "    s := 0\n    for i := 0 to 2 do\n      s := s + v[i]\n    end\n"
      "    ys := s\n  }\n  task sink in=ys out=out\n  pits {\n"
      "    out := ys\n  }\n"
      "  arc xs -> maker var=xs bytes=8\n  arc maker -> v var=v bytes=8\n"
      "  arc v -> user var=v bytes=8\n  arc user -> sink var=ys bytes=8\n"
      "  arc sink -> out var=out bytes=8\n";
  const auto diags = check(pitl);
  EXPECT_TRUE(fires(diags, "BAN306"));
  EXPECT_EQ(get(diags, "BAN306").severity, Severity::Warning);

  // Producing a long-enough vector satisfies the demand.
  std::string clean = pitl;
  const auto at = clean.find("v := 7");
  ASSERT_NE(at, std::string::npos);
  clean.replace(at, 6, "v := zeros(3)");
  EXPECT_FALSE(fires(check(clean), "BAN306"));
}

TEST(AbsintRules, OptOutSuppressesProofRules) {
  AnalyzeOptions options;
  options.absint_rules = false;
  const auto diags = check(
      one_task("    q := 10 / (1 - 1)\n    ys := q\n"), options);
  EXPECT_FALSE(fires(diags, "BAN301"));
}

TEST(AbsintRules, PrunesBan101FalsePositives) {
  // The syntactic must-assign pass cannot see that a `repeat 3 times`
  // body always runs; the interpreter proves the read is bound.
  const std::string pitl = one_task(
      "    repeat 3 times\n      y := 1\n    end\n    ys := y\n");
  AnalyzeOptions syntactic;
  syntactic.absint_rules = false;
  EXPECT_TRUE(fires(check(pitl, syntactic), "BAN101"));
  EXPECT_FALSE(fires(check(pitl), "BAN101"));

  // A genuinely conditional assignment keeps its warning.
  const std::string conditional = one_task(
      "    if len(xs) > 2 then\n      y := 1\n    end\n    ys := y\n");
  EXPECT_TRUE(fires(check(conditional), "BAN101"));
}

TEST(AbsintRules, UnreachableCodeIsNotReported) {
  // Everything after a proven-infinite loop is dead; proofs in dead
  // code would be vacuous noise.
  const auto diags = check(one_task(
      "    s := 1\n    while s > 0 do\n      s := s + 1\n    end\n"
      "    a := [1, 2]\n    b := [1, 2, 3]\n    c := a + b\n"
      "    ys := s + c + len(xs)\n"));
  EXPECT_TRUE(fires(diags, "BAN304"));
  EXPECT_FALSE(fires(diags, "BAN305"));
}

TEST(AbsintRules, CleanLoopsStayQuiet) {
  // Representative well-formed numeric code: no BAN3xx false positives.
  const auto diags = check(one_task(
      "    n := len(xs)\n    acc := 0\n    v := zeros(8)\n"
      "    for i := 0 to 7 do\n      v[i] := i * i\n    end\n"
      "    for i := 0 to 7 do\n      acc := acc + v[i]\n    end\n"
      "    j := 0\n    while j < n do\n      acc := acc + j\n"
      "      j := j + 1\n    end\n    ys := acc\n"));
  for (const auto& d : diags) {
    EXPECT_NE(d.code.substr(0, 4), "BAN3") << d.code << ": " << d.message;
  }
}

// ------------------------------------------------------- compiler facts

TEST(AnalysisFacts, ProvenSafeProgramYieldsElisions) {
  const auto program = pits::Program::parse(
      "v := zeros(8)\n"
      "for i := 0 to 7 do\n"
      "  v[i] := i * 2\n"
      "end\n"
      "s := 0\n"
      "for i := 0 to 7 do\n"
      "  s := s + v[i]\n"
      "end\n");
  const auto facts = compute_facts(program.body());
  EXPECT_FALSE(facts.safe_index.empty());
  EXPECT_FALSE(facts.safe_indexed_store.empty());
  EXPECT_FALSE(facts.bound_reads.empty());
  EXPECT_FALSE(facts.single_tick.empty());
}

TEST(AnalysisFacts, ContextFreeProofsIgnoreNothingAboutInputs) {
  // `xs` is free — it could be unbound, a string, or a short vector in
  // some environment, so nothing about it may be elided.
  const auto program = pits::Program::parse("y := xs[2]\nz := y + 1\n");
  const auto facts = compute_facts(program.body());
  EXPECT_TRUE(facts.safe_index.empty());
  // But `y`'s read on the last line is still proven bound.
  EXPECT_FALSE(facts.bound_reads.empty());
}

TEST(AnalysisFacts, FormulaCallsAreNeverSingleTick) {
  const auto program = pits::Program::parse(
      "formula f(a) := a * 2\n"
      "x := f(3)\n"
      "y := 1 + 1\n");
  const auto facts = compute_facts(program.body());
  // `x := f(3)` ticks dynamically inside the formula; `y := 1 + 1`
  // stays a single tick.
  const pits::Block& body = program.body();
  ASSERT_EQ(body.size(), 3u);
  EXPECT_FALSE(facts.single_tick.contains(body[1].get()));
  EXPECT_TRUE(facts.single_tick.contains(body[2].get()));
}

TEST(AnalysisFacts, PrecompileOptimizedIsIdempotentAndRunnable) {
  const auto program = pits::Program::parse(
      "v := zeros(4)\nfor i := 0 to 3 do\n  v[i] := i\nend\ns := sum(v)\n");
  precompile_optimized(program);
  precompile_optimized(program);  // second call is a no-op
  pits::Env env;
  pits::ExecOptions options;
  options.engine = pits::ExecOptions::Engine::Vm;
  program.execute(env, options);
  ASSERT_TRUE(env.contains("s"));
  EXPECT_EQ(env.at("s").as_scalar(), 0 + 1 + 2 + 3);
}

// ------------------------------------------------- golden SARIF corpus

namespace fs = std::filesystem;

/// Walks up from the build directory to the repo root.
std::string repo_root() {
  fs::path dir = fs::current_path();
  for (int i = 0; i < 8 && !dir.empty(); ++i) {
    if (fs::exists(dir / "samples" / "analysis") &&
        fs::exists(dir / "tests" / "golden")) {
      return dir.string();
    }
    if (dir == dir.parent_path()) break;
    dir = dir.parent_path();
  }
  return {};
}

bool update_golden() {
  const char* env = std::getenv("BANGER_UPDATE_GOLDEN");
  return env != nullptr && env[0] == '1';
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every analysis sample's SARIF log is pinned byte-for-byte: the
/// corpus is the analyzer's regression oracle (CI runs the CLI over the
/// same files and diffs the same goldens). BANGER_UPDATE_GOLDEN=1
/// regenerates after an intentional diagnostic change.
TEST(AnalysisCorpus, GoldenSarif) {
  const std::string root = repo_root();
  ASSERT_FALSE(root.empty()) << "repo root not found from cwd";
  const std::string golden_dir = root + "/tests/golden/analyze";
  fs::create_directories(golden_dir);

  for (const char* name :
       {"absint_showcase", "shape_mismatch", "clean_loops"}) {
    const std::string rel = std::string("samples/analysis/") + name + ".pitl";
    const auto design = graph::load_design(root + "/" + rel);
    const auto diags = analyze_design(design);
    EmitOptions options;
    options.file = rel;  // relative URI keeps the log machine-independent
    const std::string sarif = emit_sarif(diags, options);

    const std::string golden_path = golden_dir + "/" + name + ".sarif";
    if (update_golden()) {
      std::ofstream(golden_path, std::ios::binary) << sarif;
    }
    EXPECT_EQ(sarif, slurp(golden_path))
        << name << ": SARIF drifted from the golden corpus; run with "
        << "BANGER_UPDATE_GOLDEN=1 if the change is intentional";
  }
}

/// The showcase fires every single-routine proof rule; the negative
/// control is completely quiet.
TEST(AnalysisCorpus, ShowcaseCoversEveryCode) {
  const std::string root = repo_root();
  ASSERT_FALSE(root.empty()) << "repo root not found from cwd";
  const auto showcase = analyze_design(
      graph::load_design(root + "/samples/analysis/absint_showcase.pitl"));
  for (const char* code :
       {"BAN301", "BAN302", "BAN303", "BAN304", "BAN305"}) {
    EXPECT_TRUE(fires(showcase, code)) << code;
  }
  const auto shape = analyze_design(
      graph::load_design(root + "/samples/analysis/shape_mismatch.pitl"));
  EXPECT_TRUE(fires(shape, "BAN306"));
  const auto clean = analyze_design(
      graph::load_design(root + "/samples/analysis/clean_loops.pitl"));
  EXPECT_TRUE(clean.empty()) << emit_text(clean);
}

}  // namespace
}  // namespace banger::analyze
