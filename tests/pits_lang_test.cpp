// Lexer, parser, pretty-printer, and static-analysis tests for PITS.
#include <gtest/gtest.h>

#include "pits/ast.hpp"
#include "pits/token.hpp"
#include "util/error.hpp"

namespace banger::pits {
namespace {

TEST(Lexer, NumbersIdentsOperators) {
  auto toks = lex("x := 3.5 + y2 * 2e3");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, Tok::Assign);
  EXPECT_EQ(toks[2].kind, Tok::Number);
  EXPECT_DOUBLE_EQ(toks[2].number, 3.5);
  EXPECT_EQ(toks[3].kind, Tok::Plus);
  EXPECT_EQ(toks[4].text, "y2");
  EXPECT_EQ(toks[5].kind, Tok::Star);
  EXPECT_DOUBLE_EQ(toks[6].number, 2000.0);
}

TEST(Lexer, KeywordsRecognized) {
  auto toks = lex("if while do end repeat times for to step and or not mod");
  const Tok expected[] = {Tok::KwIf,    Tok::KwWhile, Tok::KwDo,
                          Tok::KwEnd,   Tok::KwRepeat, Tok::KwTimes,
                          Tok::KwFor,   Tok::KwTo,    Tok::KwStep,
                          Tok::KwAnd,   Tok::KwOr,    Tok::KwNot,
                          Tok::KwMod};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, CommentsStripped) {
  auto toks = lex("x := 1 -- the answer\ny := 2");
  // x := 1 NEWLINE y := 2 NEWLINE EOF
  EXPECT_EQ(toks[3].kind, Tok::Newline);
  EXPECT_EQ(toks[4].text, "y");
}

TEST(Lexer, StringEscapes) {
  auto toks = lex(R"(s := "a\nb\"c")");
  EXPECT_EQ(toks[2].kind, Tok::String);
  EXPECT_EQ(toks[2].text, "a\nb\"c");
}

TEST(Lexer, PositionsTracked) {
  auto toks = lex("x := 1\n  y := 2");
  EXPECT_EQ(toks[0].pos.line, 1);
  EXPECT_EQ(toks[4].pos.line, 2);
  EXPECT_EQ(toks[4].pos.column, 3);
}

TEST(Lexer, ComparisonOperators) {
  auto toks = lex("< <= > >= = <>");
  EXPECT_EQ(toks[0].kind, Tok::Lt);
  EXPECT_EQ(toks[1].kind, Tok::Le);
  EXPECT_EQ(toks[2].kind, Tok::Gt);
  EXPECT_EQ(toks[3].kind, Tok::Ge);
  EXPECT_EQ(toks[4].kind, Tok::Eq);
  EXPECT_EQ(toks[5].kind, Tok::Ne);
}

TEST(Lexer, Errors) {
  EXPECT_THROW((void)lex("x : 1"), Error);       // lone colon
  EXPECT_THROW((void)lex("s := \"open"), Error);  // unterminated string
  EXPECT_THROW((void)lex("x := @"), Error);       // illegal char
}

TEST(Lexer, SemicolonActsAsNewline) {
  auto toks = lex("x := 1; y := 2");
  EXPECT_EQ(toks[3].kind, Tok::Newline);
}

// ---- parser ----

TEST(Parser, SimpleAssignment) {
  auto block = parse_block("x := 1 + 2 * 3");
  ASSERT_EQ(block.size(), 1u);
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  EXPECT_EQ(assign.target, "x");
  // Precedence: 1 + (2*3)
  const auto& add = std::get<Binary>(assign.value->node);
  EXPECT_EQ(add.op, BinOp::Add);
  const auto& mul = std::get<Binary>(add.rhs->node);
  EXPECT_EQ(mul.op, BinOp::Mul);
}

TEST(Parser, PowerIsRightAssociative) {
  auto block = parse_block("x := 2 ^ 3 ^ 2");
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  const auto& outer = std::get<Binary>(assign.value->node);
  EXPECT_EQ(outer.op, BinOp::Pow);
  EXPECT_TRUE(std::holds_alternative<NumberLit>(outer.lhs->node));
  EXPECT_TRUE(std::holds_alternative<Binary>(outer.rhs->node));
}

TEST(Parser, IfElsifElse) {
  auto block = parse_block(
      "if x < 0 then\n y := 1\nelsif x = 0 then\n y := 2\nelse\n y := 3\nend");
  const auto& ifs = std::get<IfStmt>(block[0]->node);
  EXPECT_EQ(ifs.arms.size(), 2u);
  EXPECT_EQ(ifs.else_body.size(), 1u);
}

TEST(Parser, WhileRepeatFor) {
  auto block = parse_block(
      "while x > 0 do\n x := x - 1\nend\n"
      "repeat 3 times\n y := y + 1\nend\n"
      "for i := 1 to 10 step 2 do\n s := s + i\nend");
  ASSERT_EQ(block.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<WhileStmt>(block[0]->node));
  EXPECT_TRUE(std::holds_alternative<RepeatStmt>(block[1]->node));
  const auto& loop = std::get<ForStmt>(block[2]->node);
  EXPECT_EQ(loop.var, "i");
  EXPECT_NE(loop.step, nullptr);
}

TEST(Parser, IndexedAssignment) {
  auto block = parse_block("v[i + 1] := 2");
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  EXPECT_EQ(assign.target, "v");
  ASSERT_NE(assign.index, nullptr);
  EXPECT_TRUE(std::holds_alternative<Binary>(assign.index->node));
}

TEST(Parser, VectorLiteralAndIndexing) {
  auto block = parse_block("x := [1, 2, 3][1]");
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  const auto& ix = std::get<Index>(assign.value->node);
  EXPECT_TRUE(std::holds_alternative<VectorLit>(ix.base->node));
}

TEST(Parser, CallStatement) {
  auto block = parse_block("print(\"hello\", 42)");
  const auto& stmt = std::get<ExprStmt>(block[0]->node);
  const auto& call = std::get<Call>(stmt.expr->node);
  EXPECT_EQ(call.callee, "print");
  EXPECT_EQ(call.args.size(), 2u);
}

TEST(Parser, ReturnStatement) {
  auto block = parse_block("if x then\n return\nend\ny := 1");
  EXPECT_EQ(block.size(), 2u);
}

TEST(Parser, LogicalPrecedence) {
  // a or b and not c < d  ==  a or (b and (not (c < d)))
  auto block = parse_block("x := a or b and not c < d");
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  const auto& orx = std::get<Binary>(assign.value->node);
  EXPECT_EQ(orx.op, BinOp::Or);
  const auto& andx = std::get<Binary>(orx.rhs->node);
  EXPECT_EQ(andx.op, BinOp::And);
  EXPECT_TRUE(std::holds_alternative<Unary>(andx.rhs->node));
}

TEST(Parser, UnaryMinusBindsTighterThanMul) {
  // -2 ^ 2 parses as -(2^2) per the unary->power chain.
  auto block = parse_block("x := -2 ^ 2");
  const auto& assign = std::get<AssignStmt>(block[0]->node);
  EXPECT_TRUE(std::holds_alternative<Unary>(assign.value->node));
}

TEST(Parser, ErrorsWithPositions) {
  try {
    (void)parse_block("x := ");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.pos().line, 1);
  }
  EXPECT_THROW((void)parse_block("if x then"), Error);   // missing end
  EXPECT_THROW((void)parse_block("x + 1"), Error);       // not a statement
  EXPECT_THROW((void)parse_block("while do end"), Error);
  EXPECT_THROW((void)parse_block("x := (1"), Error);
  EXPECT_THROW((void)parse_block("x := [1, "), Error);
}

TEST(Printer, RoundTripFixpoint) {
  const char* src =
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + (a / guess))\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n";
  const std::string once = to_source(parse_block(src));
  const std::string twice = to_source(parse_block(once));
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("while i < 20 do"), std::string::npos);
}

TEST(Printer, RendersAllConstructs) {
  const char* src =
      "if a then\nx := 1\nelsif b then\nx := 2\nelse\nx := 3\nend\n"
      "repeat 2 times\nprint(\"hi\")\nend\n"
      "for i := 0 to 5 do\nv[i] := -i\nend\n"
      "return";
  const std::string out = to_source(parse_block(src));
  for (const char* needle :
       {"elsif", "else", "repeat 2 times", "for i := 0 to 5 do", "v[i] :=",
        "return", "print(\"hi\")"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
  // And the printed form re-parses.
  EXPECT_NO_THROW((void)parse_block(out));
}

TEST(Analysis, FreeAndAssignedVariables) {
  auto block = parse_block(
      "y := x + 1\n"
      "z := y * w\n"
      "v[k] := 0\n");
  const auto free = free_variables(block);
  // x, w read before assignment; v read (element update), k read.
  EXPECT_EQ(free, (std::vector<std::string>{"k", "v", "w", "x"}));
  const auto assigned = assigned_variables(block);
  EXPECT_EQ(assigned, (std::vector<std::string>{"v", "y", "z"}));
}

TEST(Analysis, ForLoopVarIsAssigned) {
  auto block = parse_block("for i := 0 to n do\ns := s + i\nend");
  const auto free = free_variables(block);
  EXPECT_EQ(free, (std::vector<std::string>{"n", "s"}));
}

}  // namespace
}  // namespace banger::pits
