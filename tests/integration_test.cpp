// End-to-end tests of the Project facade: the full four-step Banger
// workflow on the paper's LU example and the other designs.
#include <gtest/gtest.h>

#include "core/project.hpp"
#include "graph/serialize.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger {
namespace {

using pits::Value;
using pits::Vector;

machine::Machine cube(int dim, double startup = 0.05,
                      double bandwidth = 1e4) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = startup;
  p.bytes_per_second = bandwidth;
  return machine::Machine(machine::Topology::hypercube(dim), p);
}

std::map<std::string, Value> lu_inputs() {
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{16, 39, 45})}};
}

TEST(Project, SummaryOfLuDesign) {
  Project project(workloads::lu3x3_design());
  const auto s = project.summary();
  EXPECT_EQ(s.leaf_tasks, 9u);
  EXPECT_EQ(s.depth, 2);
  EXPECT_EQ(s.stores, 6u);
  EXPECT_GT(s.average_parallelism, 1.0);
  EXPECT_LT(s.average_parallelism, 4.0);
  EXPECT_DOUBLE_EQ(s.total_work, 34.0);
}

TEST(Project, RequiresMachineForScheduling) {
  Project project(workloads::lu3x3_design());
  EXPECT_FALSE(project.has_machine());
  EXPECT_THROW((void)project.schedule(), Error);
  project.set_machine(cube(2));
  EXPECT_TRUE(project.has_machine());
  EXPECT_NO_THROW((void)project.schedule());
}

TEST(Project, SchedulesAreCachedPerHeuristic) {
  Project project(workloads::lu3x3_design());
  project.set_machine(cube(2));
  const auto& s1 = project.schedule("mh");
  const auto& s2 = project.schedule("mh");
  EXPECT_EQ(&s1, &s2);
  const auto& etf = project.schedule("etf");
  EXPECT_NE(&s1, &etf);
  // Changing the machine invalidates the cache.
  project.set_machine(cube(3));
  const auto& s3 = project.schedule("mh");
  EXPECT_EQ(s3.num_procs(), 8);
}

TEST(Project, MetricsAndSpeedup) {
  Project project(workloads::lu3x3_design());
  project.set_machine(cube(3));
  const auto metrics = project.metrics();
  EXPECT_GT(metrics.speedup, 1.0);
  EXPECT_LE(metrics.speedup, 8.0);

  const auto curve = project.speedup({1, 2, 4, 8});
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_NEAR(curve.points[0].speedup, 1.0, 1e-9);
  EXPECT_GE(curve.points[2].speedup, curve.points[0].speedup);
}

TEST(Project, SimulationAgreesWithSchedule) {
  Project project(workloads::lu3x3_design());
  project.set_machine(cube(2));
  const auto sim = project.simulate();
  EXPECT_LE(sim.makespan, project.schedule().makespan() + 1e-9);
  EXPECT_GT(sim.makespan, 0.0);
}

TEST(Project, TrialRunAndParallelRunAgree) {
  Project project(workloads::lu3x3_design());
  project.set_machine(cube(2));
  const auto trial = project.trial_run(lu_inputs());
  const auto parallel = project.run(lu_inputs());
  ASSERT_TRUE(trial.outputs.contains("x"));
  EXPECT_EQ(trial.outputs.at("x"), parallel.outputs.at("x"));
  const auto& x = trial.outputs.at("x").as_vector();
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
  EXPECT_NEAR(x[2], 3.0, 1e-9);
}

TEST(Project, GenerateCodeContainsProgram) {
  Project project(workloads::lu3x3_design());
  project.set_machine(cube(2));
  const std::string src = project.generate_code(lu_inputs());
  EXPECT_NE(src.find("int main()"), std::string::npos);
  EXPECT_NE(src.find("task_0"), std::string::npos);
}

TEST(Project, LoadFromPitlFile) {
  const std::string path = testing::TempDir() + "/project.pitl";
  graph::save_design(workloads::lu3x3_design(), path);
  Project project = Project::load(path);
  EXPECT_EQ(project.summary().leaf_tasks, 9u);
}

TEST(Project, RejectsInvalidDesigns) {
  graph::Design bad("bad");
  auto& g = bad.root_graph();
  graph::Node a;
  a.name = "a";
  graph::Node b;
  b.name = "b";
  g.add_node(std::move(a));
  g.add_node(std::move(b));
  g.connect("a", "b");
  g.connect("b", "a");
  EXPECT_THROW(Project{std::move(bad)}, Error);
}

TEST(Project, MontecarloWorkflow) {
  Project project(workloads::montecarlo_design(6, 300));
  project.set_machine(cube(2, 0.01, 1e6));
  const auto metrics = project.metrics();
  EXPECT_GT(metrics.speedup, 1.5);  // samplers are independent
  const auto result = project.run({});
  EXPECT_NEAR(result.outputs.at("pi_est").as_scalar(), 3.14159, 0.4);
}

TEST(Project, SignalPipelineAcrossHeuristics) {
  Project project(workloads::signal_pipeline_design(4));
  project.set_machine(cube(2, 0.01, 1e6));
  pits::Vector signal;
  for (int i = 0; i < 16; ++i) signal.push_back(1.0);
  const auto seq = project.trial_run({{"signal", Value(signal)}});
  for (const char* h : {"mh", "dsh", "cluster"}) {
    const auto par = project.run({{"signal", Value(signal)}}, h);
    EXPECT_EQ(par.outputs.at("energy"), seq.outputs.at("energy")) << h;
  }
}

TEST(Project, SpeedupFamiliesForOtherTopologies) {
  Project project(workloads::montecarlo_design(8, 50));
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e6;
  project.set_machine(
      machine::Machine(machine::Topology::mesh(2, 2), p));
  const auto curve = project.speedup({1, 4, 8});
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_GT(curve.points.back().speedup, curve.points.front().speedup);
}

}  // namespace
}  // namespace banger
