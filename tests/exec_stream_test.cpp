// Streaming executor tests: differential byte-identity against
// per-batch Executor::run on both engines, mid-stream error isolation,
// bounded-queue backpressure, duplicate schedules, and the incremental
// push/drain API.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/executor.hpp"
#include "exec/stream.hpp"
#include "obs/trace.hpp"
#include "sched/heuristics.hpp"
#include "workloads/designs.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"
#include "workloads/synth.hpp"

namespace banger::exec {
namespace {

using pits::Value;
using pits::Vector;

Machine make_machine(int procs) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e6;
  return Machine(machine::Topology::fully_connected(procs), p);
}

std::map<std::string, Value> lu_inputs(double scale) {
  // Scaled variant of the exec_test system: x = [s, 2s, 3s].
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{scale * 16, scale * 39, scale * 45})}};
}

std::vector<std::map<std::string, Value>> lu_batches(int n) {
  std::vector<std::map<std::string, Value>> batches;
  for (int i = 0; i < n; ++i) {
    batches.push_back(lu_inputs(1.0 + i));
  }
  return batches;
}

/// The acceptance contract: every per-batch result must match what one
/// Executor::run on the same schedule produces, field by field.
void expect_same_result(const RunResult& stream, const RunResult& ref,
                        const std::string& label) {
  EXPECT_EQ(stream.outputs, ref.outputs) << label;
  EXPECT_EQ(stream.stores, ref.stores) << label;
  EXPECT_EQ(stream.transcript, ref.transcript) << label;
  EXPECT_EQ(stream.runs.size(), ref.runs.size()) << label;
}

TEST(Stream, MatchesPerBatchRunBothEnginesAllJobCounts) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto batches = lu_batches(6);

  for (const auto engine :
       {pits::ExecOptions::Engine::Vm, pits::ExecOptions::Engine::Walk}) {
    RunOptions run_opts;
    run_opts.pits.engine = engine;
    std::vector<RunResult> refs;
    for (const auto& b : batches) {
      refs.push_back(executor.run(schedule, b, run_opts));
    }
    for (const int jobs : {1, 2, 8, 0}) {
      StreamOptions opts;
      opts.run = run_opts;
      opts.jobs = jobs;
      const StreamResult sr = run_stream(flat, schedule, m, batches, opts);
      ASSERT_EQ(sr.outcomes.size(), batches.size());
      for (std::size_t i = 0; i < batches.size(); ++i) {
        ASSERT_TRUE(sr.outcomes[i].ok);
        expect_same_result(
            sr.outcomes[i].result, refs[i],
            "engine=" + std::to_string(static_cast<int>(engine)) +
                " jobs=" + std::to_string(jobs) + " batch=" +
                std::to_string(i));
      }
      EXPECT_EQ(sr.report.batches, batches.size());
    }
  }
}

TEST(Stream, TranscriptsMatchAcrossProcessors) {
  // A 3-task chain with prints, split over two processors: streaming
  // must stitch the transcript exactly like Executor::run (a chain has
  // a deterministic completion order, so the bytes are well-defined).
  graph::TaskGraph g;
  graph::Task a;
  a.name = "first";
  a.work = 1;
  a.pits = "print(\"one\")\nx := 1\n";
  a.outputs = {"x"};
  const graph::TaskId ta = g.add_task(std::move(a));
  graph::Task b;
  b.name = "second";
  b.work = 1;
  b.inputs = {"x"};
  b.pits = "print(\"two\")\ny := x + 1\n";
  b.outputs = {"y"};
  const graph::TaskId tb = g.add_task(std::move(b));
  graph::Task c;
  c.name = "third";
  c.work = 1;
  c.inputs = {"y"};
  c.pits = "print(\"three\")\nz := y + 1\n";
  c.outputs = {"z"};
  const graph::TaskId tc = g.add_task(std::move(c));
  g.add_edge(ta, tb, 8.0, "x");
  g.add_edge(tb, tc, 8.0, "y");
  auto flat = workloads::as_flatten(std::move(g));

  auto m = make_machine(2);
  const double d = m.task_time(1.0, 0);
  const double gap = 0.02;
  sched::Schedule schedule(2, "manual");
  schedule.place(ta, 0, 0.0, d);
  schedule.place(tb, 1, d + gap, 2 * d + gap);
  schedule.place(tc, 0, 2 * d + 2 * gap, 3 * d + 2 * gap);
  schedule.validate(flat.graph, m);

  Executor executor(flat, m);
  const auto ref = executor.run(schedule, {});
  EXPECT_EQ(ref.transcript, "[first]\none\n[second]\ntwo\n[third]\nthree\n");

  const StreamResult sr = run_stream(flat, schedule, m,
                                     {{}, {}, {}}, StreamOptions{});
  ASSERT_EQ(sr.outcomes.size(), 3u);
  for (const TrialOutcome& out : sr.outcomes) {
    ASSERT_TRUE(out.ok);
    expect_same_result(out.result, ref, "chain");
  }
}

TEST(Stream, MidStreamErrorMatchesExecutorAndIsolatesNeighbours) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);

  auto bad = lu_inputs(1.0);
  bad["A"] = Value(Vector{0, 3, 2, 8, 8, 5, 4, 7, 9});  // zero pivot
  ErrorCode ref_code{};
  std::string ref_message;
  SourcePos ref_pos;
  try {
    (void)executor.run(schedule, bad);
    FAIL() << "expected the zero-pivot run to throw";
  } catch (const Error& e) {
    ref_code = e.code();
    ref_message = e.message();
    ref_pos = e.pos();
  }

  for (const auto engine :
       {pits::ExecOptions::Engine::Vm, pits::ExecOptions::Engine::Walk}) {
    StreamOptions opts;
    opts.run.pits.engine = engine;
    std::vector<std::map<std::string, Value>> batches = {
        lu_inputs(1.0), bad, lu_inputs(3.0)};
    const StreamResult sr = run_stream(flat, schedule, m, batches, opts);
    ASSERT_EQ(sr.outcomes.size(), 3u);
    // The failing batch carries exactly the error Executor::run threw.
    EXPECT_FALSE(sr.outcomes[1].ok);
    EXPECT_EQ(sr.outcomes[1].error_code, ref_code);
    EXPECT_EQ(sr.outcomes[1].error, ref_message);
    EXPECT_EQ(sr.outcomes[1].error_pos.line, ref_pos.line);
    EXPECT_EQ(sr.outcomes[1].error_pos.column, ref_pos.column);
    // Its neighbours are untouched.
    ASSERT_TRUE(sr.outcomes[0].ok);
    ASSERT_TRUE(sr.outcomes[2].ok);
    const auto ref0 = executor.run(schedule, batches[0]);
    const auto ref2 = executor.run(schedule, batches[2]);
    expect_same_result(sr.outcomes[0].result, ref0, "before error");
    expect_same_result(sr.outcomes[2].result, ref2, "after error");
  }
}

TEST(Stream, MissingExternalInputFailsPerBatch) {
  // A batch with bad external inputs fails with exactly the error the
  // one-shot executor raises for the same inputs.
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const std::map<std::string, Value> bad = {{"A", Value(Vector{1})}};

  Executor executor(flat, m);
  ErrorCode ref_code{};
  std::string ref_message;
  try {
    (void)executor.run(schedule, bad);
    FAIL() << "expected the under-supplied run to throw";
  } catch (const Error& e) {
    ref_code = e.code();
    ref_message = e.message();
  }

  const StreamResult sr = run_stream(flat, schedule, m, {bad}, StreamOptions{});
  ASSERT_EQ(sr.outcomes.size(), 1u);
  EXPECT_FALSE(sr.outcomes[0].ok);
  EXPECT_EQ(sr.outcomes[0].error_code, ref_code);
  EXPECT_EQ(sr.outcomes[0].error, ref_message);
}

TEST(Stream, BoundedQueueBackpressureNeverOverflowsOrDeadlocks) {
  // Fast producer, slow consumer, queue capacity 1: the producer must
  // stall instead of overflowing, and the pipeline must still drain
  // every batch.
  graph::TaskGraph g;
  graph::Task prod;
  prod.name = "prod";
  prod.work = 1;
  prod.inputs = {"x"};
  prod.pits = "v := x * 2\n";
  prod.outputs = {"v"};
  const graph::TaskId tp = g.add_task(std::move(prod));
  graph::Task cons;
  cons.name = "cons";
  cons.work = 4;
  cons.inputs = {"v"};
  cons.pits =
      "s := 0\nfor i := 1 to 2000 do\n  s := s + i\nend\nr := v + s - s\n";
  cons.outputs = {"r"};
  const graph::TaskId tc = g.add_task(std::move(cons));
  g.add_edge(tp, tc, 8.0, "v");
  auto flat = workloads::as_flatten(std::move(g));
  graph::FlatStore in_store;
  in_store.name = "x";
  in_store.var = "x";
  in_store.readers = {tp};
  flat.stores.push_back(std::move(in_store));
  graph::FlatStore out_store;
  out_store.name = "r";
  out_store.var = "r";
  out_store.writers = {tc};
  flat.stores.push_back(std::move(out_store));

  auto m = make_machine(2);
  const double dp = m.task_time(1.0, 0);
  const double dc = m.task_time(4.0, 1);
  sched::Schedule schedule(2, "manual");
  schedule.place(tp, 0, 0.0, dp);
  schedule.place(tc, 1, dp + 0.02, dp + 0.02 + dc);
  schedule.validate(flat.graph, m);

  StreamOptions opts;
  opts.queue_capacity = 1;
  opts.window = 16;
  opts.jobs = 2;
  std::vector<std::map<std::string, Value>> batches;
  for (int i = 0; i < 32; ++i) {
    batches.push_back({{"x", Value(static_cast<double>(i))}});
  }
  const StreamResult sr = run_stream(flat, schedule, m, batches, opts);
  ASSERT_EQ(sr.outcomes.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(sr.outcomes[i].ok);
    EXPECT_EQ(sr.outcomes[i].result.outputs.at("r").as_scalar(),
              2.0 * static_cast<double>(i));
  }
  ASSERT_EQ(sr.report.queues.size(), 1u);
  EXPECT_EQ(sr.report.queues[0].capacity, 1u);
  EXPECT_LE(sr.report.queues[0].max_occupancy, 1u);
  EXPECT_EQ(sr.report.queues[0].pushes, batches.size());
}

TEST(Stream, DuplicateScheduleStreams) {
  // A hand-built schedule with an explicit duplicate copy (the
  // exec_test idiom): the consumer reads its local copy, outputs still
  // match the reference run per batch.
  auto g = workloads::chain_graph(2, 1.0, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(2);
  const double dur = m.task_time(1.0, 0);
  sched::Schedule schedule(2, "manual");
  schedule.place(0, 0, 0.0, dur);
  schedule.place(0, 1, 0.0, dur, /*duplicate=*/true);
  schedule.place(1, 1, dur, 2.0 * dur);
  schedule.validate(flat.graph, m);
  ASSERT_EQ(schedule.num_duplicates(), 1);

  Executor executor(flat, m);
  const auto ref = executor.run(schedule, {});
  const StreamResult sr =
      run_stream(flat, schedule, m, {{}, {}, {}, {}}, StreamOptions{});
  ASSERT_EQ(sr.outcomes.size(), 4u);
  for (const TrialOutcome& out : sr.outcomes) {
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.result.outputs, ref.outputs);
    EXPECT_EQ(out.result.runs.size(), 3u);  // both copies plus the chain tail
  }
  // Duplicate stages appear as their own pipeline blocks.
  bool saw_duplicate_block = false;
  for (const BlockStats& b : sr.report.blocks) {
    saw_duplicate_block = saw_duplicate_block || b.duplicate;
  }
  EXPECT_TRUE(saw_duplicate_block);
}

TEST(Stream, IncrementalPushDrainApi) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);

  StreamExecutor ex(flat, schedule, m, StreamOptions{});
  std::vector<TrialOutcome> outcomes;
  for (int i = 0; i < 5; ++i) {
    ex.push(lu_inputs(1.0 + i));
    while (auto out = ex.try_pop()) outcomes.push_back(std::move(*out));
  }
  while (ex.outstanding() > 0) outcomes.push_back(ex.pop());
  const StreamReport report = ex.finish();

  ASSERT_EQ(outcomes.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(i)].ok);
    const auto ref = executor.run(schedule, lu_inputs(1.0 + i));
    expect_same_result(outcomes[static_cast<std::size_t>(i)].result, ref,
                       "push " + std::to_string(i));
  }
  EXPECT_EQ(report.batches, 5u);
  EXPECT_GT(report.threads, 0u);
  ASSERT_FALSE(report.blocks.empty());
  for (const BlockStats& b : report.blocks) {
    EXPECT_EQ(b.processed, 5u) << b.name;
    EXPECT_EQ(b.skipped, 0u) << b.name;
  }
  // finish() is idempotent and outcomes arrive strictly in push order.
  EXPECT_EQ(ex.finish().batches, 5u);
  EXPECT_THROW((void)ex.pop(), Error);
}

TEST(Stream, RejectsFaultPlans) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  fault::FaultPlan plan;
  plan.add_crash(0, 0.0);
  StreamOptions opts;
  opts.run.faults = &plan;
  EXPECT_THROW(StreamExecutor(flat, schedule, m, opts), Error);
}

TEST(Stream, ReportRendersAndPublishesMetrics) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  obs::TraceRecorder rec;
  StreamReport report;
  {
    obs::ScopedRecorder scope(rec);
    report = run_stream(flat, schedule, m, lu_batches(4), StreamOptions{})
                 .report;
  }
  const std::string text = report.render();
  EXPECT_NE(text.find("streaming execution report: 4 batches"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("processed"), std::string::npos);
  EXPECT_EQ(rec.metric("stream.batches"), 4.0);
  EXPECT_EQ(rec.metric("exec.stream_batches"), 4.0);
  EXPECT_GT(rec.metric("stream.threads"), 0.0);
}

TEST(Stream, ManyBatchesStressBothDirections) {
  // Larger sweep shaking out lane multiplexing races: every batch must
  // agree with the reference for a thread-starved (1) and an
  // oversubscribed (8) worker count.
  auto flat = workloads::montecarlo_design(4, 100).flatten();
  auto m = make_machine(4);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto ref = executor.run(schedule, {});
  std::vector<std::map<std::string, Value>> batches(24);
  for (const int jobs : {1, 8}) {
    StreamOptions opts;
    opts.jobs = jobs;
    opts.queue_capacity = 2;
    const StreamResult sr = run_stream(flat, schedule, m, batches, opts);
    ASSERT_EQ(sr.outcomes.size(), batches.size());
    for (const TrialOutcome& out : sr.outcomes) {
      ASSERT_TRUE(out.ok);
      EXPECT_EQ(out.result.outputs.at("pi_est"), ref.outputs.at("pi_est"));
    }
  }
}

}  // namespace
}  // namespace banger::exec
