// Unit tests for DataflowGraph, TaskGraph, and the DAG analyses.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/graph.hpp"
#include "graph/task_graph.hpp"
#include "util/error.hpp"

namespace banger::graph {
namespace {

Node task_node(std::string name, double work = 1.0) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = std::move(name);
  n.work = work;
  return n;
}

Node store_node(std::string name, double bytes = 8.0) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = std::move(name);
  n.bytes = bytes;
  return n;
}

TEST(DataflowGraph, AddAndLookup) {
  DataflowGraph g("g");
  const NodeId a = g.add_node(task_node("a"));
  const NodeId b = g.add_node(task_node("b"));
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.find("a"), a);
  EXPECT_EQ(g.find("b"), b);
  EXPECT_EQ(g.find("c"), std::nullopt);
  EXPECT_THROW((void)g.require("c"), Error);
}

TEST(DataflowGraph, RejectsDuplicateNames) {
  DataflowGraph g("g");
  g.add_node(task_node("a"));
  EXPECT_THROW(g.add_node(task_node("a")), Error);
}

TEST(DataflowGraph, RejectsInvalidIdentifiers) {
  DataflowGraph g("g");
  EXPECT_THROW(g.add_node(task_node("1bad")), Error);
  EXPECT_THROW(g.add_node(task_node("has space")), Error);
  EXPECT_THROW(g.add_node(task_node("")), Error);
}

TEST(DataflowGraph, RejectsNegativeWork) {
  DataflowGraph g("g");
  EXPECT_THROW(g.add_node(task_node("a", -1.0)), Error);
}

TEST(DataflowGraph, RejectsSelfLoop) {
  DataflowGraph g("g");
  g.add_node(task_node("a"));
  EXPECT_THROW(g.connect("a", "a"), Error);
}

TEST(DataflowGraph, RejectsStoreToStoreArc) {
  DataflowGraph g("g");
  g.add_node(store_node("s"));
  g.add_node(store_node("t"));
  g.connect("s", "t");
  EXPECT_THROW(g.validate(), Error);
}

TEST(DataflowGraph, ValidatesArcVariableDeclarations) {
  DataflowGraph g("g");
  Node a = task_node("a");
  a.outputs = {"x"};
  Node b = task_node("b");
  b.inputs = {"x"};
  g.add_node(std::move(a));
  g.add_node(std::move(b));
  g.connect("a", "b", "x");
  EXPECT_NO_THROW(g.validate());

  DataflowGraph bad("bad");
  Node c = task_node("c");
  c.outputs = {"y"};
  bad.add_node(std::move(c));
  bad.add_node(task_node("d"));
  bad.connect("c", "d", "z");  // c does not output z
  EXPECT_THROW(bad.validate(), Error);
}

TEST(DataflowGraph, DetectsCycle) {
  DataflowGraph g("g");
  g.add_node(task_node("a"));
  g.add_node(task_node("b"));
  g.add_node(task_node("c"));
  g.connect("a", "b");
  g.connect("b", "c");
  g.connect("c", "a");
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.validate(), Error);
  EXPECT_THROW((void)g.topo_order(), Error);
}

TEST(DataflowGraph, TopoOrderDeterministicSmallestFirst) {
  DataflowGraph g("g");
  g.add_node(task_node("a"));  // 0
  g.add_node(task_node("b"));  // 1
  g.add_node(task_node("c"));  // 2
  g.connect("b", "c");
  const auto order = g.topo_order();
  // Both a (0) and b (1) are sources; smallest id comes first.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(DataflowGraph, CountByKind) {
  DataflowGraph g("g");
  g.add_node(task_node("a"));
  g.add_node(store_node("s"));
  g.add_node(store_node("t"));
  EXPECT_EQ(g.count(NodeKind::Task), 1u);
  EXPECT_EQ(g.count(NodeKind::Storage), 2u);
  EXPECT_EQ(g.count(NodeKind::Super), 0u);
}

// ---- TaskGraph ----

TaskGraph chain3() {
  TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    t.work = i + 1.0;
    g.add_task(std::move(t));
  }
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 20);
  return g;
}

TEST(TaskGraph, BasicAccounting) {
  auto g = chain3();
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_work(), 6.0);
  EXPECT_DOUBLE_EQ(g.total_bytes(), 30.0);
  EXPECT_EQ(g.sources(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{2});
  EXPECT_EQ(g.preds(2), std::vector<TaskId>{1});
  EXPECT_EQ(g.succs(0), std::vector<TaskId>{1});
}

TEST(TaskGraph, ParallelEdgesMergeAndSumBytes) {
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  g.add_task({"b", 1, "", {}, {}});
  const EdgeId e1 = g.add_edge(0, 1, 8, "x");
  const EdgeId e2 = g.add_edge(0, 1, 24, "y");
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(e1).bytes, 32.0);
  EXPECT_EQ(g.edge(e1).var, "x,y");
}

TEST(TaskGraph, RejectsDuplicateTaskNames) {
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  EXPECT_THROW(g.add_task({"a", 1, "", {}, {}}), Error);
}

TEST(TaskGraph, RejectsSelfEdge) {
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  EXPECT_THROW(g.add_edge(0, 0, 1), Error);
}

TEST(TaskGraph, TopoDetectsCycle) {
  TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  g.add_task({"b", 1, "", {}, {}});
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  EXPECT_FALSE(g.is_acyclic());
}

// ---- analyses ----

TEST(Analysis, TLevelsAndBLevelsOnChain) {
  auto g = chain3();  // works 1,2,3; edges 10,20 bytes
  graph::CostModel cost = CostModel::from_work(g);  // comm free
  const auto tl = t_levels(g, cost);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 1.0);
  EXPECT_DOUBLE_EQ(tl[2], 3.0);
  const auto bl = b_levels(g, cost);
  EXPECT_DOUBLE_EQ(bl[0], 6.0);
  EXPECT_DOUBLE_EQ(bl[1], 5.0);
  EXPECT_DOUBLE_EQ(bl[2], 3.0);
  EXPECT_DOUBLE_EQ(critical_path_length(g, cost), 6.0);
}

TEST(Analysis, CommAwareCostModel) {
  auto g = chain3();
  // speed 2 units/s, startup 1s per message, 10 bytes/s
  const auto cost = CostModel::uniform(g, 2.0, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(cost.task_time[0], 0.5);
  EXPECT_DOUBLE_EQ(cost.edge_time[0], 1.0 + 1.0);  // 10 bytes / 10 Bps
  const auto tl = t_levels(g, cost);
  EXPECT_DOUBLE_EQ(tl[1], 0.5 + 2.0);
}

TEST(Analysis, CriticalPathTasksOnDiamond) {
  TaskGraph g;
  g.add_task({"s", 1, "", {}, {}});
  g.add_task({"heavy", 10, "", {}, {}});
  g.add_task({"light", 1, "", {}, {}});
  g.add_task({"t", 1, "", {}, {}});
  g.add_edge(0, 1, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(1, 3, 0);
  g.add_edge(2, 3, 0);
  const auto cost = CostModel::from_work(g);
  const auto path = critical_path(g, cost);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);  // through the heavy branch
  EXPECT_EQ(path[2], 3u);
  EXPECT_DOUBLE_EQ(critical_path_length(g, cost), 12.0);
}

TEST(Analysis, LevelProfileWidths) {
  TaskGraph g;
  g.add_task({"s", 1, "", {}, {}});
  g.add_task({"a", 1, "", {}, {}});
  g.add_task({"b", 1, "", {}, {}});
  g.add_task({"t", 1, "", {}, {}});
  g.add_edge(0, 1, 0);
  g.add_edge(0, 2, 0);
  g.add_edge(1, 3, 0);
  g.add_edge(2, 3, 0);
  const auto profile = level_profile(g);
  ASSERT_EQ(profile.depth(), 3u);
  EXPECT_EQ(profile.levels[0].size(), 1u);
  EXPECT_EQ(profile.levels[1].size(), 2u);
  EXPECT_EQ(profile.levels[2].size(), 1u);
  EXPECT_EQ(profile.max_width(), 2u);
}

TEST(Analysis, AverageParallelism) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task({"t" + std::to_string(i), 1, "", {}, {}});
  }
  // Four independent unit tasks: parallelism 4.
  EXPECT_DOUBLE_EQ(average_parallelism(g), 4.0);
}

TEST(Analysis, EmptyGraphEdgeCases) {
  TaskGraph g;
  const auto cost = CostModel::from_work(g);
  EXPECT_DOUBLE_EQ(critical_path_length(g, cost), 0.0);
  EXPECT_TRUE(critical_path(g, cost).empty());
  EXPECT_DOUBLE_EQ(average_parallelism(g), 0.0);
}

}  // namespace
}  // namespace banger::graph
