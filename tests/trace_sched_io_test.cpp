// Chrome-trace export and .sched serialisation round trips.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/serialize.hpp"
#include "sim/simulator.hpp"
#include "viz/trace.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger {
namespace {

machine::Machine cube(int dim) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.1;
  p.bytes_per_second = 256;
  return machine::Machine(machine::Topology::hypercube(dim), p);
}

TEST(ChromeTrace, ScheduleExportsDurationEvents) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = cube(2);
  const auto s = sched::MhScheduler().run(g, m);
  const std::string json = viz::to_chrome_trace(s, g);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // One X event per placement.
  std::size_t count = 0;
  for (auto pos = json.find("\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, s.placements().size());
  // Flow arrows for remote messages.
  if (!s.messages().empty()) {
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  }
}

TEST(ChromeTrace, DuplicatesAnnotated) {
  auto g = workloads::fork_join(6, 1.0, 8.0);
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 3.0;
  machine::Machine m(machine::Topology::fully_connected(4), p);
  const auto s = sched::DshScheduler().run(g, m);
  if (s.num_duplicates() == 0) GTEST_SKIP() << "no duplicates";
  const std::string json = viz::to_chrome_trace(s, g);
  EXPECT_NE(json.find("\"duplicate\": true"), std::string::npos);
}

TEST(ChromeTrace, SimulationExport) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = cube(2);
  const auto s = sched::MhScheduler().run(g, m);
  const auto result = sim::simulate(g, m, s);
  const std::string json = viz::to_chrome_trace(result, g);
  EXPECT_NE(json.find("fan0"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"task\""), std::string::npos);
}

TEST(SchedIo, RoundTrip) {
  const auto g = workloads::lu_taskgraph(5);
  const auto m = cube(2);
  const auto s = sched::MhScheduler().run(g, m);
  const std::string text = sched::to_text(s, g);
  const auto again = sched::parse_schedule(text, g);
  EXPECT_EQ(again.num_procs(), s.num_procs());
  EXPECT_EQ(again.scheduler_name(), s.scheduler_name());
  ASSERT_EQ(again.placements().size(), s.placements().size());
  again.validate(g, m);  // still feasible after the round trip
  EXPECT_DOUBLE_EQ(again.makespan(), s.makespan());
}

TEST(SchedIo, DuplicatesSurvive) {
  auto g = workloads::fork_join(6, 1.0, 8.0);
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 3.0;
  machine::Machine m(machine::Topology::fully_connected(4), p);
  const auto s = sched::DshScheduler().run(g, m);
  const auto again = sched::parse_schedule(sched::to_text(s, g), g);
  EXPECT_EQ(again.num_duplicates(), s.num_duplicates());
  again.validate(g, m);
}

TEST(SchedIo, FilesSaveLoad) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = cube(2);
  const auto s = sched::MhScheduler().run(g, m);
  const std::string path = testing::TempDir() + "/test.sched";
  sched::save_schedule(s, g, path);
  const auto loaded = sched::load_schedule(path, g);
  EXPECT_DOUBLE_EQ(loaded.makespan(), s.makespan());
}

TEST(SchedIo, HandEditedScheduleValidates) {
  // The workflow the format enables: a user edits a placement and the
  // validator tells them whether it is still feasible.
  graph::TaskGraph g;
  g.add_task({"a", 2, "", {}, {}});
  g.add_task({"b", 3, "", {}, {}});
  g.add_edge(0, 1, 0);
  const auto m = cube(1);
  const auto ok = sched::parse_schedule(
      "schedule handmade procs=2\n"
      "place a proc=0 start=0 finish=2\n"
      "place b proc=0 start=2 finish=5\n",
      g);
  EXPECT_NO_THROW(ok.validate(g, m));
  const auto bad = sched::parse_schedule(
      "schedule handmade procs=2\n"
      "place a proc=0 start=0 finish=2\n"
      "place b proc=0 start=1 finish=4\n",  // overlaps a
      g);
  EXPECT_THROW(bad.validate(g, m), Error);
}

TEST(SchedIo, ParseErrors) {
  graph::TaskGraph g;
  g.add_task({"a", 1, "", {}, {}});
  EXPECT_THROW((void)sched::parse_schedule("place a proc=0\n", g), Error);
  EXPECT_THROW(
      (void)sched::parse_schedule(
          "schedule x procs=2\nplace nosuch proc=0 start=0 finish=1\n", g),
      Error);
  EXPECT_THROW(
      (void)sched::parse_schedule("schedule x procs=2\nbogus\n", g), Error);
  EXPECT_THROW((void)sched::parse_schedule("", g), Error);
  EXPECT_THROW(
      (void)sched::parse_schedule(
          "schedule x procs=2\nplace a proc=0 start=zz finish=1\n", g),
      Error);
}

}  // namespace
}  // namespace banger
