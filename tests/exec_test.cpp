// Runtime executor tests: sequential trial runs, parallel execution on
// real threads, value routing, determinism, error propagation.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/executor.hpp"
#include "exec/plan.hpp"
#include "sched/heuristics.hpp"
#include "workloads/designs.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"
#include "workloads/synth.hpp"

namespace banger::exec {
namespace {

using pits::Value;
using pits::Vector;

Machine make_machine(int procs) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e6;
  return Machine(machine::Topology::fully_connected(procs), p);
}

std::map<std::string, Value> lu_inputs() {
  // A = [[4,3,2],[8,8,5],[4,7,9]]  (no pivoting needed), b chosen so x = [1,2,3].
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{4 + 6 + 6, 8 + 16 + 15, 4 + 14 + 27})}};
}

TEST(Sequential, LuSolvesSystem) {
  auto flat = workloads::lu3x3_design().flatten();
  const auto result = run_sequential(flat, lu_inputs());
  ASSERT_TRUE(result.outputs.contains("x"));
  const auto& x = result.outputs.at("x").as_vector();
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
  EXPECT_NEAR(x[2], 3.0, 1e-9);
}

TEST(Sequential, StoresEchoInputsAndIntermediates) {
  auto flat = workloads::lu3x3_design().flatten();
  const auto result = run_sequential(flat, lu_inputs());
  EXPECT_TRUE(result.stores.contains("A"));
  EXPECT_TRUE(result.stores.contains("L"));
  EXPECT_TRUE(result.stores.contains("U"));
  // L's diagonal is ones.
  const auto& L = result.stores.at("L").as_vector();
  EXPECT_DOUBLE_EQ(L[0], 1.0);
  EXPECT_DOUBLE_EQ(L[4], 1.0);
  EXPECT_DOUBLE_EQ(L[8], 1.0);
}

TEST(Sequential, RunsRecordTopologicalOrder) {
  auto flat = workloads::lu3x3_design().flatten();
  const auto result = run_sequential(flat, lu_inputs());
  ASSERT_EQ(result.runs.size(), flat.graph.num_tasks());
  // fan1 precedes upd2 and solve.back comes last-ish: check precedence.
  std::map<graph::TaskId, std::size_t> position;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    position[result.runs[i].task] = i;
  }
  for (const auto& e : flat.graph.edges()) {
    EXPECT_LT(position.at(e.from), position.at(e.to));
  }
}

TEST(Sequential, MissingInputStoreValueFails) {
  auto flat = workloads::lu3x3_design().flatten();
  EXPECT_THROW((void)run_sequential(flat, {{"A", Value(Vector{1})}}), Error);
}

TEST(Sequential, TaskErrorNamesTheTask) {
  auto flat = workloads::lu3x3_design().flatten();
  auto inputs = lu_inputs();
  inputs["A"] = Value(Vector{0, 3, 2, 8, 8, 5, 4, 7, 9});  // zero pivot
  try {
    (void)run_sequential(flat, inputs);
    FAIL() << "expected division by zero";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Runtime);
    EXPECT_NE(std::string(e.what()).find("fan1"), std::string::npos);
  }
}

TEST(Parallel, MatchesSequentialOnLu) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto par = executor.run(schedule, lu_inputs());
  const auto seq = run_sequential(flat, lu_inputs());
  ASSERT_TRUE(par.outputs.contains("x"));
  EXPECT_EQ(par.outputs.at("x"), seq.outputs.at("x"));
  EXPECT_EQ(par.stores.at("U"), seq.stores.at("U"));
}

TEST(Parallel, EveryScheduleGivesSameAnswer) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(4);
  const auto seq = run_sequential(flat, lu_inputs());
  for (const char* heuristic :
       {"mh", "etf", "hlfet", "dls", "dsh", "cluster", "serial",
        "roundrobin"}) {
    const auto scheduler = sched::make_scheduler(heuristic);
    const auto schedule = scheduler->run(flat.graph, m);
    Executor executor(flat, m);
    const auto par = executor.run(schedule, lu_inputs());
    EXPECT_EQ(par.outputs.at("x"), seq.outputs.at("x")) << heuristic;
  }
}

TEST(Parallel, MontecarloDeterministicAcrossModes) {
  auto flat = workloads::montecarlo_design(4, 500).flatten();
  auto m = make_machine(4);
  const auto seq = run_sequential(flat, {});
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto par = executor.run(schedule, {});
  // rand() streams are task-seeded: parallel == sequential exactly.
  EXPECT_EQ(par.outputs.at("pi_est"), seq.outputs.at("pi_est"));
  const double pi_est = seq.outputs.at("pi_est").as_scalar();
  EXPECT_NEAR(pi_est, 3.14159, 0.3);
}

TEST(Parallel, SignalPipelineRuns) {
  auto flat = workloads::signal_pipeline_design(3).flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  pits::Vector signal;
  for (int i = 0; i < 32; ++i) signal.push_back(std::sin(i * 0.3));
  const auto result =
      executor.run(schedule, {{"signal", Value(signal)}});
  ASSERT_TRUE(result.outputs.contains("energy"));
  const auto& energy = result.outputs.at("energy").as_vector();
  ASSERT_EQ(energy.size(), 3u);
  // Channel scales are 1, 2, 3: energies must increase quadratically.
  EXPECT_NEAR(energy[1] / energy[0], 4.0, 1e-9);
  EXPECT_NEAR(energy[2] / energy[0], 9.0, 1e-9);
}

TEST(Parallel, PolyevalConcatenatesSlices) {
  auto flat = workloads::polyeval_design(3).flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  // p(x) = 1 + 2x + x^2 over xs = 0..7
  pits::Vector xs;
  for (int i = 0; i < 8; ++i) xs.push_back(i);
  const auto result = executor.run(
      schedule, {{"coeffs", Value(Vector{1, 2, 1})}, {"xs", Value(xs)}});
  const auto& ys = result.outputs.at("ys").as_vector();
  ASSERT_EQ(ys.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(ys[static_cast<std::size_t>(i)], (i + 1.0) * (i + 1.0), 1e-9);
  }
}

TEST(Parallel, HeatDiffusionConservesAndSpreads) {
  auto flat = workloads::heat_design(3, 6, 8).flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  pits::Vector rod(24, 0.0);
  rod[12] = 60.0;
  const auto result = executor.run(schedule, {{"rod", pits::Value(rod)}});
  const auto& out = result.outputs.at("result").as_vector();
  ASSERT_EQ(out.size(), 24u);
  double total = 0;
  double peak = 0;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    total += v;
    peak = std::max(peak, v);
  }
  // Interior spike: no boundary loss yet, heat conserved, peak flattened.
  EXPECT_NEAR(total, 60.0, 1e-9);
  EXPECT_LT(peak, 60.0);
  EXPECT_GT(out[11], 0.0);  // spread to the neighbours across segments
  EXPECT_GT(out[13], 0.0);
  // Agreement with the sequential trial run.
  const auto seq = run_sequential(flat, {{"rod", pits::Value(rod)}});
  EXPECT_EQ(seq.outputs.at("result"), result.outputs.at("result"));
}

TEST(Parallel, SynthesizedGraphExecutes) {
  auto g = workloads::fft_taskgraph(4, 0.05, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(4);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto result = executor.run(schedule, {});
  EXPECT_EQ(result.runs.size(), flat.graph.num_tasks());
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Parallel, ErrorPropagatesFromWorkerThread) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  auto inputs = lu_inputs();
  inputs["A"] = Value(Vector{0, 3, 2, 8, 8, 5, 4, 7, 9});
  EXPECT_THROW((void)executor.run(schedule, inputs), Error);
}

TEST(Parallel, DuplicateCopiesAgree) {
  auto g = workloads::fork_join(6, 0.05, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 2.0;  // force DSH to duplicate
  Machine m(machine::Topology::fully_connected(4), p);
  const auto schedule = sched::DshScheduler().run(flat.graph, m);
  // The whole point is exercising duplicate copies: fail loudly if the
  // machine params stop forcing DSH to duplicate.
  ASSERT_GT(schedule.num_duplicates(), 0);
  Executor executor(flat, m);
  const auto result = executor.run(schedule, {});
  // Runs include duplicates, all successfully cross-checked.
  EXPECT_GT(result.runs.size(), flat.graph.num_tasks());
  std::size_t duplicates = 0;
  for (const auto& r : result.runs) duplicates += r.duplicate;
  EXPECT_EQ(duplicates,
            static_cast<std::size_t>(schedule.num_duplicates()));
  // Values still agree with the one-thread reference.
  const auto seq = run_sequential(flat, {});
  for (const auto& [name, value] : seq.outputs) {
    EXPECT_EQ(result.outputs.at(name), value) << name;
  }
}

TEST(Parallel, ManualDuplicateScheduleCrossChecks) {
  // A hand-built schedule with an explicit duplicate copy: the producer
  // runs on both processors, the consumer reads the local copy, and the
  // executor cross-checks that both copies computed the same value.
  auto g = workloads::chain_graph(2, 1.0, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(2);
  const double dur = m.task_time(1.0, 0);
  sched::Schedule schedule(2, "manual");
  schedule.place(0, 0, 0.0, dur);
  schedule.place(0, 1, 0.0, dur, /*duplicate=*/true);
  schedule.place(1, 1, dur, 2.0 * dur);
  schedule.validate(flat.graph, m);
  ASSERT_EQ(schedule.num_duplicates(), 1);

  Executor executor(flat, m);
  const auto par = executor.run(schedule, {});
  EXPECT_EQ(par.runs.size(), 3u);  // two copies of task 0 plus task 1
  const auto seq = run_sequential(flat, {});
  for (const auto& [name, value] : seq.outputs) {
    EXPECT_EQ(par.outputs.at(name), value) << name;
  }
}

TEST(Parallel, DuplicateCopiesDoNotMoveSharedVectorInputs) {
  // Regression: the sole-use move optimization must stay disabled in
  // scheduled runs. `mid` is the only consumer of `src`'s vector, so a
  // one-shot plan would mark the binding take=true — but here two
  // copies of `mid` bind it, and whichever binds second would read a
  // moved-from (empty) vector: an out-of-bounds error or a spurious
  // "duplicate copies produced different outputs" failure.
  graph::TaskGraph g;
  graph::Task src;
  src.name = "src";
  src.work = 1;
  src.pits = "v := zeros(3)\nfor i := 0 to 2 do\n  v[i] := i + 1\nend\n";
  src.outputs = {"v"};
  const graph::TaskId t_src = g.add_task(std::move(src));
  graph::Task mid;
  mid.name = "mid";
  mid.work = 1;
  mid.inputs = {"v"};
  mid.pits = "w := v[0] + v[1] + v[2]\n";
  mid.outputs = {"w"};
  const graph::TaskId t_mid = g.add_task(std::move(mid));
  graph::Task sink;
  sink.name = "sink";
  sink.work = 1;
  sink.inputs = {"w"};
  sink.pits = "r := w * 2\n";
  sink.outputs = {"r"};
  const graph::TaskId t_sink = g.add_task(std::move(sink));
  g.add_edge(t_src, t_mid, 8.0, "v");
  g.add_edge(t_mid, t_sink, 8.0, "w");
  auto flat = workloads::as_flatten(std::move(g));

  auto m = make_machine(2);
  const double d = m.task_time(1.0, 0);
  const double gap = 0.02;  // > cross-processor message time for 8 bytes
  sched::Schedule schedule(2, "manual");
  schedule.place(t_src, 0, 0.0, d);
  schedule.place(t_mid, 0, d + gap, 2 * d + gap);
  schedule.place(t_mid, 1, d + gap, 2 * d + gap, /*duplicate=*/true);
  schedule.place(t_sink, 1, 2 * d + gap, 3 * d + gap);
  schedule.validate(flat.graph, m);
  ASSERT_EQ(schedule.num_duplicates(), 1);

  Executor executor(flat, m);
  for (int round = 0; round < 10; ++round) {
    const auto result = executor.run(schedule, {});
    EXPECT_EQ(result.runs.size(), 4u);  // both copies of mid ran and agreed
  }
}

TEST(Parallel, TranscriptCapturedOnce) {
  graph::TaskGraph g;
  graph::Task t;
  t.name = "talker";
  t.work = 1;
  t.pits = "print(\"from task\")\nout := 1\n";
  t.outputs = {"out"};
  g.add_task(std::move(t));
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto result = executor.run(schedule, {});
  EXPECT_EQ(result.transcript, "[talker]\nfrom task\n");
}

TEST(Parallel, EmptyPitsWithOutputsRejected) {
  graph::TaskGraph g;
  graph::Task t;
  t.name = "hollow";
  t.outputs = {"x"};
  g.add_task(std::move(t));
  auto flat = workloads::as_flatten(std::move(g));
  EXPECT_THROW((void)run_sequential(flat, {}), Error);
}

TEST(Parallel, StressRepeatedRunsStayDeterministic) {
  // Shake out races: many parallel runs of the same program must agree
  // exactly with each other and with the sequential reference.
  auto flat = workloads::montecarlo_design(6, 200).flatten();
  auto m = make_machine(6);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  Executor executor(flat, m);
  const auto reference = run_sequential(flat, {});
  for (int round = 0; round < 25; ++round) {
    const auto result = executor.run(schedule, {});
    ASSERT_EQ(result.outputs.at("pi_est"), reference.outputs.at("pi_est"))
        << "round " << round;
  }
}

TEST(ProgramCache, HotEntrySurvivesCapPressure) {
  // Regression: the old policy cleared the ENTIRE cache at the cap, so
  // a long-lived serve/stream process recompiled its whole working set
  // the moment one design too many passed through. The segmented LRU
  // must keep an entry that stays in use across generation flips.
  ProgramCache cache(/*cap=*/4);
  const std::string hot = "x := 1\n";
  (void)cache.get(hot);  // compile once
  EXPECT_EQ(cache.stats().misses, 1u);
  // Flood with cold sources, re-touching the hot entry each round so it
  // keeps getting promoted back into the hot generation.
  for (int i = 0; i < 40; ++i) {
    (void)cache.get("x := " + std::to_string(i + 2) + "\n");
    (void)cache.get(hot);
  }
  const ProgramCache::Stats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);            // cap pressure really happened
  EXPECT_EQ(s.misses, 41u);              // hot was never recompiled
  (void)cache.get(hot);
  EXPECT_EQ(cache.stats().misses, 41u);  // still cached after the flood
}

TEST(ProgramCache, ColdEntryIsEvictedUnderPressure) {
  ProgramCache cache(/*cap=*/2);
  const std::string once = "y := 7\n";
  (void)cache.get(once);
  for (int i = 0; i < 10; ++i) {
    (void)cache.get("y := " + std::to_string(i + 100) + "\n");
  }
  const std::uint64_t before = cache.stats().misses;
  (void)cache.get(once);  // two generations later: gone, recompiles
  EXPECT_EQ(cache.stats().misses, before + 1);
}

TEST(TakePlan, SoleUseMoveReenabledWithoutDuplicates) {
  // Follow-up to the duplicated-consumer fix: disabling moves for every
  // scheduled run was overkill. With a schedule where each value is
  // bound exactly once, the sole-use binding must be a take again.
  auto g = workloads::chain_graph(3, 1.0, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  ASSERT_EQ(schedule.num_duplicates(), 0);

  const DesignPlan plan =
      build_plan(flat, RunOptions{}, TakePlan{true, &schedule, false});
  bool any_take = false;
  for (const TaskPlan& tp : plan.tasks) {
    for (const InputBinding& b : tp.inputs) {
      any_take = any_take || b.take;
    }
  }
  EXPECT_TRUE(any_take);
}

TEST(TakePlan, DuplicatedConsumerCountsEveryScheduledCopy) {
  // The 031c342 scenario, now asserted at the plan level: `mid` has a
  // duplicate placement, so src->mid is bound twice and must not be a
  // take — while a schedule without the duplicate may move it.
  auto g = workloads::chain_graph(3, 1.0, 8.0);
  workloads::synthesize_pits(g);
  auto flat = workloads::as_flatten(std::move(g));
  auto m = make_machine(2);
  const double d = m.task_time(1.0, 0);
  const double gap = 0.02;
  sched::Schedule schedule(2, "manual");
  schedule.place(0, 0, 0.0, d);
  schedule.place(1, 0, d + gap, 2 * d + gap);
  schedule.place(1, 1, d + gap, 2 * d + gap, /*duplicate=*/true);
  schedule.place(2, 1, 2 * d + 2 * gap, 3 * d + 2 * gap);
  schedule.validate(flat.graph, m);

  const DesignPlan plan =
      build_plan(flat, RunOptions{}, TakePlan{true, &schedule, false});
  // Task 1 (duplicated) reads task 0's value from two copies: no take.
  for (const InputBinding& b : plan.tasks[1].inputs) {
    if (b.kind == InputBinding::Kind::Producer) {
      EXPECT_FALSE(b.take);
    }
  }
  // A fault plan disables takes outright (rescue re-binds).
  const DesignPlan faulty =
      build_plan(flat, RunOptions{}, TakePlan{true, &schedule, true});
  for (const TaskPlan& tp : faulty.tasks) {
    for (const InputBinding& b : tp.inputs) {
      EXPECT_FALSE(b.take);
    }
  }
}

TEST(Parallel, PureSyncTasksAllowed) {
  graph::TaskGraph g;
  g.add_task({"barrier", 1, "", {}, {}});
  auto flat = workloads::as_flatten(std::move(g));
  const auto result = run_sequential(flat, {});
  EXPECT_EQ(result.runs.size(), 1u);
}

}  // namespace
}  // namespace banger::exec
