// User-defined formulas: the calculator's "formulas" feature across
// parser, printer, interpreter, and the code generator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hpp"
#include "pits/interp.hpp"
#include "sched/heuristics.hpp"
#include "util/error.hpp"
#include "workloads/synth.hpp"

namespace banger::pits {
namespace {

double num_for(const std::string& src, const std::string& var, Env env = {}) {
  Program::parse(src).execute(env);
  return env.at(var).as_scalar();
}

TEST(Formula, BasicDefinitionAndCall) {
  EXPECT_DOUBLE_EQ(
      num_for("formula f(x) := x * x + 1\ny := f(3)", "y"), 10.0);
}

TEST(Formula, MultipleParameters) {
  EXPECT_DOUBLE_EQ(
      num_for("formula area(w, h) := w * h\na := area(3, 4)", "a"), 12.0);
  EXPECT_DOUBLE_EQ(num_for("formula k() := 42\nx := k()", "x"), 42.0);
}

TEST(Formula, UsesConstants) {
  EXPECT_NEAR(num_for("formula circ(r) := 2 * pi * r\nc := circ(1)", "c"),
              6.283185307, 1e-8);
}

TEST(Formula, CallsOtherFormulas) {
  const char* src =
      "formula sq(x) := x * x\n"
      "formula sumsq(a, b) := sq(a) + sq(b)\n"
      "r := sumsq(3, 4)";
  EXPECT_DOUBLE_EQ(num_for(src, "r"), 25.0);
}

TEST(Formula, RecursionWorksViaWhen) {
  // when() evaluates only the selected branch, so recursion terminates.
  const char* src =
      "formula fib(n) := when(n <= 1, n, fib(n - 1) + fib(n - 2))\n"
      "r := fib(10)";
  EXPECT_DOUBLE_EQ(num_for(src, "r"), 55.0);
}

TEST(When, LazyBranches) {
  EXPECT_DOUBLE_EQ(num_for("x := when(1, 7, 1 / 0)", "x"), 7.0);
  EXPECT_DOUBLE_EQ(num_for("x := when(0, 1 / 0, 8)", "x"), 8.0);
  EXPECT_THROW(num_for("x := when(1, 2)", "x"), Error);
  // `when` cannot be redefined as a formula.
  EXPECT_THROW(num_for("formula when(a, b, c) := a\nx := 1", "x"), Error);
}

TEST(Formula, DeepRecursionLimited) {
  const char* src =
      "formula down(n) := down(n - 1)\n"
      "r := down(1)";
  try {
    num_for(src, "r");
    FAIL() << "expected recursion limit";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Limit);
  }
}

TEST(Formula, BodySeesOnlyParameters) {
  // `secret` exists in the caller scope but is invisible to the body.
  const char* src =
      "secret := 99\n"
      "formula leak(x) := x + secret\n"
      "r := leak(1)";
  try {
    num_for(src, "r");
    FAIL() << "expected name error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Name);
  }
}

TEST(Formula, ArgumentsEvaluateInCallerScope) {
  const char* src =
      "a := 7\n"
      "formula twice(x) := x * 2\n"
      "r := twice(a + 1)";
  EXPECT_DOUBLE_EQ(num_for(src, "r"), 16.0);
}

TEST(Formula, ArityChecked) {
  EXPECT_THROW(num_for("formula f(x) := x\ny := f(1, 2)", "y"), Error);
  EXPECT_THROW(num_for("formula f(x, y) := x\nz := f(1)", "z"), Error);
}

TEST(Formula, CannotShadowButtonsOrConstants) {
  EXPECT_THROW(num_for("formula sqrt(x) := x\ny := 1", "y"), Error);
  EXPECT_THROW(num_for("formula pi(x) := x\ny := 1", "y"), Error);
}

TEST(Formula, DuplicateParametersRejected) {
  EXPECT_THROW((void)Program::parse("formula f(x, x) := x"), Error);
}

TEST(Formula, RedefinitionTakesLastDefinition) {
  const char* src =
      "formula f(x) := x + 1\n"
      "formula f(x) := x + 2\n"
      "r := f(0)";
  EXPECT_DOUBLE_EQ(num_for(src, "r"), 2.0);
}

TEST(Formula, VectorsFlowThrough) {
  const char* src =
      "formula normalize(v) := v / norm(v)\n"
      "u := normalize([3, 4])";
  Env env;
  Program::parse(src).execute(env);
  const auto& u = env.at("u").as_vector();
  EXPECT_NEAR(u[0], 0.6, 1e-12);
  EXPECT_NEAR(u[1], 0.8, 1e-12);
}

TEST(Formula, PrinterRoundTrip) {
  const char* src = "formula f(a, b) := (a + b) / 2\nm := f(2, 4)\n";
  const std::string once = to_source(parse_block(src));
  EXPECT_NE(once.find("formula f(a, b) := "), std::string::npos);
  const std::string twice = to_source(parse_block(once));
  EXPECT_EQ(once, twice);
  EXPECT_DOUBLE_EQ(num_for(once, "m"), 3.0);
}

TEST(Formula, FreeVariableAnalysis) {
  auto block = parse_block("formula f(x) := x + w\ny := f(q)");
  const auto free = free_variables(block);
  // w (inside the body) and q (an argument) are free; x is a parameter.
  EXPECT_EQ(free, (std::vector<std::string>{"q", "w"}));
}

TEST(Formula, ParseErrors) {
  EXPECT_THROW((void)Program::parse("formula (x) := x"), Error);
  EXPECT_THROW((void)Program::parse("formula f x := x"), Error);
  EXPECT_THROW((void)Program::parse("formula f(x) = x"), Error);
}

}  // namespace
}  // namespace banger::pits

namespace banger::codegen {
namespace {

TEST(FormulaCodegen, EmitsStdFunction) {
  graph::TaskGraph g;
  graph::Task t;
  t.name = "calc";
  t.work = 1;
  t.outputs = {"r"};
  t.pits =
      "formula sq(x) := x * x\n"
      "formula hyp(a, b) := sqrt(sq(a) + sq(b))\n"
      "r := hyp(3, 4)\n";
  g.add_task(std::move(t));
  auto flat = workloads::as_flatten(std::move(g));
  // Give the program an output store so main() prints `r`.
  graph::FlatStore store;
  store.name = "r";
  store.var = "r";
  store.writers = {0};
  flat.stores.push_back(store);
  machine::MachineParams p;
  p.processor_speed = 1;
  machine::Machine m(machine::Topology::fully_connected(1), p);
  const auto schedule = sched::SerialScheduler().run(flat.graph, m);
  const std::string src = generate_cpp(flat, schedule, {});
  EXPECT_NE(src.find("std::function<rt::Val(rt::Val)> fx_sq;"),
            std::string::npos);
  EXPECT_NE(src.find("fx_hyp"), std::string::npos);

  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no host compiler";
  }
  const std::string dir = testing::TempDir();
  std::ofstream(dir + "/formula_gen.cpp") << src;
  ASSERT_EQ(std::system(("c++ -std=c++17 -pthread -o " + dir +
                         "/formula_gen " + dir + "/formula_gen.cpp 2> " +
                         dir + "/formula_gen.log")
                            .c_str()),
            0);
  ASSERT_EQ(std::system((dir + "/formula_gen > " + dir + "/formula_gen.out")
                            .c_str()),
            0);
  std::ifstream out(dir + "/formula_gen.out");
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "r = 5");
}

}  // namespace
}  // namespace banger::codegen
