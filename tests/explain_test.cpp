// Placement-rationale reporting (the "why is my task over there?"
// feedback).
#include <gtest/gtest.h>

#include "sched/explain.hpp"
#include "sched/heuristics.hpp"
#include "util/error.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

Machine full(int procs, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return Machine(machine::Topology::fully_connected(procs), p);
}

TEST(Explain, CoversEveryTaskInScheduleOrder) {
  const auto g = workloads::lu_taskgraph(5);
  const auto m = full(4, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto rationales = explain_schedule(s, g, m);
  ASSERT_EQ(rationales.size(), g.num_tasks());
  for (std::size_t i = 1; i < rationales.size(); ++i) {
    EXPECT_LE(rationales[i - 1].start, rationales[i].start + 1e-12);
  }
}

TEST(Explain, SourceTasksHaveNoCriticalParent) {
  const auto g = workloads::fork_join(4, 1.0, 8.0);
  const auto m = full(2, 0.5);
  const auto s = MhScheduler().run(g, m);
  const auto rationales = explain_schedule(s, g, m);
  for (const auto& r : rationales) {
    if (g.in_edges(r.task).empty()) {
      EXPECT_EQ(r.critical_parent, graph::kNoTask);
      for (double ready : r.data_ready) EXPECT_DOUBLE_EQ(ready, 0.0);
    } else {
      EXPECT_NE(r.critical_parent, graph::kNoTask);
    }
  }
}

TEST(Explain, DataReadyConsistentWithStart) {
  // A task can never start before its data is ready on its processor.
  const auto g = workloads::diamond(4, 4, 2.0, 16.0);
  const auto m = full(4, 1.0);
  for (const char* name : {"mh", "dsh", "roundrobin"}) {
    const auto s = make_scheduler(name)->run(g, m);
    for (const auto& r : explain_schedule(s, g, m)) {
      EXPECT_GE(r.start + 1e-9,
                r.data_ready[static_cast<std::size_t>(r.chosen)])
          << name;
      EXPECT_GE(r.arrival_penalty, -1e-12) << name;
    }
  }
}

TEST(Explain, SameProcessorPlacementHasZeroPenalty) {
  // Two-task chain: MH keeps the consumer beside its producer, so the
  // consumer's arrival penalty is zero.
  graph::TaskGraph g;
  g.add_task({"a", 2, "", {}, {}});
  g.add_task({"b", 2, "", {}, {}});
  g.add_edge(0, 1, 64);
  const auto m = full(3, 2.0);
  const auto s = MhScheduler().run(g, m);
  const auto rationales = explain_schedule(s, g, m);
  EXPECT_DOUBLE_EQ(rationales[1].arrival_penalty, 0.0);
  EXPECT_EQ(rationales[1].critical_parent, 0u);
}

TEST(Explain, ReportFiltersByTask) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = full(3, 0.5);
  const auto s = MhScheduler().run(g, m);
  const std::string all = explain_report(s, g, m);
  EXPECT_NE(all.find("fan0"), std::string::npos);
  EXPECT_NE(all.find("penalty"), std::string::npos);
  const std::string one = explain_report(s, g, m, "fan1");
  EXPECT_NE(one.find("fan1"), std::string::npos);
  EXPECT_EQ(one.find("upd0_1 "), std::string::npos);
  EXPECT_THROW((void)explain_report(s, g, m, "nosuch"), Error);
}

TEST(Explain, QueueWaitNonNegative) {
  const auto g = workloads::fft_taskgraph(8, 1.0, 32.0);
  const auto m = full(4, 1.0);
  const auto s = EtfScheduler().run(g, m);
  for (const auto& r : explain_schedule(s, g, m)) {
    EXPECT_GE(r.queue_wait, -1e-12);
  }
}

}  // namespace
}  // namespace banger::sched
