// CLI tests: every command driven through cli::run with captured
// streams, exercising the tool exactly as a shell user would.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "graph/serialize.hpp"
#include "machine/serialize.hpp"
#include "serve/json.hpp"
#include "workloads/lu.hpp"

namespace banger::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult r;
  r.code = run(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

class CliFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    design_path_ = testing::TempDir() + "/cli_lu.pitl";
    machine_path_ = testing::TempDir() + "/cli_cube.machine";
    graph::save_design(workloads::lu3x3_design(), design_path_);
    std::ofstream(machine_path_) << "machine cube4\n"
                                    "topology hypercube dim=2\n"
                                    "speed 1\n"
                                    "message_startup 0.05\n"
                                    "bandwidth 512\n";
  }
  std::string design_path_;
  std::string machine_path_;
};

TEST(Cli, NoArgsShowsUsageWithCode2) {
  const auto r = invoke({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage: banger"), std::string::npos);
}

TEST(Cli, HelpExitsZero) {
  const auto r = invoke({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
  const auto r = invoke({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MissingFileIsUserError) {
  const auto r = invoke({"info", "/no/such/file.pitl"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("banger:"), std::string::npos);
}

TEST_F(CliFiles, Info) {
  const auto r = invoke({"info", design_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("leaf tasks: 9"), std::string::npos);
  EXPECT_NE(r.out.find("input stores: A b"), std::string::npos);
  EXPECT_NE(r.out.find("output stores: x"), std::string::npos);
}

TEST_F(CliFiles, Validate) {
  const auto r = invoke({"validate", design_path_});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("ok:"), std::string::npos);
}

TEST_F(CliFiles, Flatten) {
  const auto r = invoke({"flatten", design_path_});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("solve.back"), std::string::npos);
  EXPECT_NE(r.out.find("fan1"), std::string::npos);
}

TEST_F(CliFiles, DotToStdoutAndFile) {
  const auto r = invoke({"dot", design_path_});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);

  const std::string path = testing::TempDir() + "/cli_out.dot";
  const auto r2 = invoke({"dot", design_path_, "-o", path});
  ASSERT_EQ(r2.code, 0);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("digraph"), std::string::npos);
}

TEST(Cli, Topo) {
  const auto r = invoke({"topo", "mesh", "rows=2", "cols=3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("6 processors"), std::string::npos);
  EXPECT_NE(r.out.find("7 links"), std::string::npos);
}

TEST_F(CliFiles, ScheduleGantt) {
  const auto r = invoke({"schedule", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Gantt chart"), std::string::npos);
  EXPECT_NE(r.out.find("makespan"), std::string::npos);
}

TEST_F(CliFiles, ScheduleTableAndSvg) {
  const auto table = invoke(
      {"schedule", design_path_, machine_path_, "--format", "table"});
  ASSERT_EQ(table.code, 0);
  EXPECT_NE(table.out.find("start"), std::string::npos);

  const auto svg = invoke(
      {"schedule", design_path_, machine_path_, "--format", "svg"});
  ASSERT_EQ(svg.code, 0);
  EXPECT_NE(svg.out.find("<svg"), std::string::npos);
}

TEST_F(CliFiles, ScheduleWithExplicitScheduler) {
  for (const char* name : {"mcp", "dsh", "cluster", "serial"}) {
    const auto r = invoke(
        {"schedule", design_path_, machine_path_, "--scheduler", name});
    EXPECT_EQ(r.code, 0) << name << ": " << r.err;
  }
  const auto bad = invoke(
      {"schedule", design_path_, machine_path_, "--scheduler", "nope"});
  EXPECT_EQ(bad.code, 1);
}

TEST_F(CliFiles, Speedup) {
  const auto r = invoke(
      {"speedup", design_path_, machine_path_, "--sizes", "1,2,4"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("procs"), std::string::npos);
  EXPECT_NE(r.out.find("ideal linear"), std::string::npos);
}

TEST_F(CliFiles, SpeedupRejectsBadSizes) {
  const auto r = invoke(
      {"speedup", design_path_, machine_path_, "--sizes", "1,zero"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--sizes"), std::string::npos);
  EXPECT_NE(r.err.find("zero"), std::string::npos);
}

TEST_F(CliFiles, Simulate) {
  const auto r = invoke(
      {"simulate", design_path_, machine_path_, "--events", "5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("simulated makespan"), std::string::npos);
  EXPECT_NE(r.out.find("t="), std::string::npos);
}

TEST_F(CliFiles, SimulateWithContention) {
  const auto r = invoke(
      {"simulate", design_path_, machine_path_, "--contention"});
  ASSERT_EQ(r.code, 0) << r.err;
}

TEST_F(CliFiles, TrialRunSolvesSystem) {
  const auto r = invoke({"trial", design_path_, "--input",
                         "A=[4,3,2,8,8,5,4,7,9]", "--input", "b=[16,39,45]"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("x = [1, 2, 3]"), std::string::npos);
}

TEST_F(CliFiles, RunMatchesTrial) {
  const auto r = invoke({"run", design_path_, machine_path_, "--input",
                         "A=[4,3,2,8,8,5,4,7,9]", "--input", "b=[16,39,45]"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("x = [1, 2, 3]"), std::string::npos);
}

TEST_F(CliFiles, InputsAreFullPitsExpressions) {
  const auto r = invoke({"trial", design_path_, "--input",
                         "A=[4,3,2,8,8,5,4,7,9]", "--input",
                         "b=[2^4, 39, 40+5]"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("x = [1, 2, 3]"), std::string::npos);
}

TEST_F(CliFiles, TrialBatchFromInputsFile) {
  const std::string inputs_path = testing::TempDir() + "/cli_trials.txt";
  std::ofstream(inputs_path)
      << "# one trial per line\n"
      << "A=[4,3,2,8,8,5,4,7,9]; b=[16,39,45]\n"
      << "\n"
      << "A=[4,3,2,8,8,5,4,7,9]; b=[32,78,90]\n";
  const auto r = invoke({"trial", design_path_, "--inputs", inputs_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("=== trial 1 of 2 ==="), std::string::npos);
  EXPECT_NE(r.out.find("=== trial 2 of 2 ==="), std::string::npos);
  EXPECT_NE(r.out.find("x = [1, 2, 3]"), std::string::npos);
  EXPECT_NE(r.out.find("x = [2, 4, 6]"), std::string::npos);

  // Each block is byte-identical to the equivalent one-shot run.
  const auto one = invoke({"trial", design_path_, "--input",
                           "A=[4,3,2,8,8,5,4,7,9]", "--input",
                           "b=[16,39,45]"});
  EXPECT_NE(r.out.find(one.out), std::string::npos);
}

TEST_F(CliFiles, TrialBatchFailingTrialExitsOne) {
  const std::string inputs_path = testing::TempDir() + "/cli_trials_err.txt";
  std::ofstream(inputs_path)
      << "A=[4,3,2,8,8,5,4,7,9]; b=[16,39,45]\n"
      << "A=[0,3,2,8,8,5,4,7,9]; b=[16,39,45]\n";  // zero pivot
  const auto r = invoke({"trial", design_path_, "--inputs", inputs_path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("x = [1, 2, 3]"), std::string::npos);
  EXPECT_NE(r.out.find("error[runtime]:"), std::string::npos);
}

TEST_F(CliFiles, TrialBatchRejectsMalformedLine) {
  const std::string inputs_path = testing::TempDir() + "/cli_trials_bad.txt";
  std::ofstream(inputs_path) << "A=[1]; nonsense\n";
  const auto r = invoke({"trial", design_path_, "--inputs", inputs_path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("VAR=EXPR"), std::string::npos);
  EXPECT_NE(r.err.find("line 1"), std::string::npos);
}

TEST_F(CliFiles, TrialInputAndInputsFileAreExclusive) {
  const std::string inputs_path = testing::TempDir() + "/cli_trials_x.txt";
  std::ofstream(inputs_path) << "A=[1]\n";
  const auto r = invoke({"trial", design_path_, "--input", "A=[1]",
                         "--inputs", inputs_path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("not both"), std::string::npos);
}

TEST_F(CliFiles, TrialMissingInputFails) {
  const auto r = invoke({"trial", design_path_});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("input store"), std::string::npos);
}

TEST_F(CliFiles, Codegen) {
  const auto r = invoke({"codegen", design_path_, machine_path_, "--input",
                         "A=[4,3,2,8,8,5,4,7,9]", "--input", "b=[16,39,45]"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("int main()"), std::string::npos);
  EXPECT_NE(r.out.find("task_0"), std::string::npos);
}

TEST_F(CliFiles, ScheduleTraceFormat) {
  const auto r = invoke(
      {"schedule", design_path_, machine_path_, "--format", "trace"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '[');
  EXPECT_NE(r.out.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(CliFiles, SimulateWritesTraceFile) {
  const std::string path = testing::TempDir() + "/cli_sim_trace.json";
  const auto r = invoke({"simulate", design_path_, machine_path_, "-o", path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "[");
}

TEST_F(CliFiles, LintCleanDesign) {
  const auto r = invoke({"lint", design_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("clean"), std::string::npos);
}

TEST(Cli, LintBrokenDesignExitsOne) {
  const std::string path = testing::TempDir() + "/cli_broken.pitl";
  std::ofstream(path) << "design broken\n"
                         "graph broken\n"
                         "  task t out=r\n"
                         "  pits {\n"
                         "    r := mystery\n"
                         "  }\n";
  const auto r = invoke({"lint", path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("error:"), std::string::npos);
}

TEST_F(CliFiles, CompareListsAllHeuristics) {
  const auto r = invoke({"compare", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* name : {"mh", "mcp", "etf", "dsh", "cluster", "serial"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST_F(CliFiles, GrainSweep) {
  const auto r = invoke({"grain", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("min grain"), std::string::npos);
  EXPECT_NE(r.out.find("(none)"), std::string::npos);
}

TEST_F(CliFiles, ScheduleShowsUtilization) {
  const auto r = invoke({"schedule", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("processor utilisation"), std::string::npos);
}

TEST_F(CliFiles, ExplainReport) {
  const auto r = invoke({"explain", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("critical parent"), std::string::npos);
  EXPECT_NE(r.out.find("fan1"), std::string::npos);
  const auto one = invoke(
      {"explain", design_path_, machine_path_, "--task", "solve.back"});
  ASSERT_EQ(one.code, 0) << one.err;
  EXPECT_NE(one.out.find("solve.back"), std::string::npos);
}

TEST_F(CliFiles, ReportIsSelfContainedMarkdown) {
  const auto r = invoke({"report", design_path_, machine_path_, "--sizes",
                         "1,2,4"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* needle :
       {"# banger report: lu3x3", "## Design", "## Lint", "clean",
        "## Schedule", "## Speedup prediction", "## Heuristic comparison",
        "Gantt chart"}) {
    EXPECT_NE(r.out.find(needle), std::string::npos) << needle;
  }
}

TEST_F(CliFiles, SplitSweep) {
  const auto r = invoke({"split", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("split threshold"), std::string::npos);
  EXPECT_NE(r.out.find("(none)"), std::string::npos);
}

TEST_F(CliFiles, HtmlReport) {
  const auto r = invoke({"report", design_path_, machine_path_, "--format",
                         "html", "--sizes", "1,2,4"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.rfind("<!DOCTYPE html>", 0), 0u);
  for (const char* needle :
       {"<svg", "Heuristic comparison", "Speedup prediction", "lu3x3",
        "</html>"}) {
    EXPECT_NE(r.out.find(needle), std::string::npos) << needle;
  }
  // Gantt SVG plus speedup SVG.
  std::size_t svgs = 0;
  for (auto pos = r.out.find("<svg"); pos != std::string::npos;
       pos = r.out.find("<svg", pos + 1)) {
    ++svgs;
  }
  EXPECT_EQ(svgs, 2u);
}

TEST_F(CliFiles, BadOptionIsUsageError) {
  const auto r = invoke({"info", design_path_, "--bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST_F(CliFiles, BadInputSyntax) {
  const auto r = invoke({"trial", design_path_, "--input", "no_equals"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ServeFlagValidationNamesFlagAndValue) {
  struct Case {
    std::vector<std::string> args;
    const char* flag;
    const char* value;
  };
  const Case cases[] = {
      {{"serve", "--port", "70000"}, "--port", "70000"},
      {{"serve", "--port", "abc"}, "--port", "abc"},
      {{"serve", "--max-inflight", "0"}, "--max-inflight", "0"},
      {{"serve", "--deadline-ms", "-1"}, "--deadline-ms", "-1"},
      {{"serve", "--cache-cap", "0"}, "--cache-cap", "0"},
  };
  for (const auto& c : cases) {
    const auto r = invoke(c.args);
    EXPECT_EQ(r.code, 2) << c.flag;
    EXPECT_NE(r.err.find(c.flag), std::string::npos) << r.err;
    EXPECT_NE(r.err.find(c.value), std::string::npos) << r.err;
  }
}

TEST(Cli, ServeOnceAnswersOneRequest) {
  std::istringstream in("{\"id\":1,\"op\":\"ping\"}\n");
  std::ostringstream out;
  std::ostringstream err;
  const int code = run({"serve", "--once"}, in, out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("\"output\":\"pong\""), std::string::npos)
      << out.str();
  EXPECT_EQ(out.str().back(), '\n');
}

TEST_F(CliFiles, ServeStdioStreamMatchesCli) {
  // End-to-end through the CLI entry point: a two-request stdio
  // session whose schedule response must carry the same bytes as the
  // one-shot `banger schedule` command.
  const auto one_shot = invoke({"schedule", design_path_, machine_path_});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  std::ifstream design(design_path_);
  std::stringstream design_text;
  design_text << design.rdbuf();
  std::ostringstream request;
  request << "{\"id\":1,\"op\":\"ping\"}\n"
          << "{\"id\":2,\"op\":\"schedule\",\"design\":";
  // Reuse the serve JSON writer for correct escaping.
  request << serve::Json::string(design_text.str()).dump()
          << ",\"machine\":"
          << serve::Json::string(
                 "machine cube4\n"
                 "topology hypercube dim=2\n"
                 "speed 1\n"
                 "message_startup 0.05\n"
                 "bandwidth 512\n")
                 .dump()
          << "}\n";
  std::istringstream in(request.str());
  std::ostringstream out;
  std::ostringstream err;
  const int code = run({"serve"}, in, out, err);
  EXPECT_EQ(code, 0) << err.str();
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("pong"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  const serve::Json resp = serve::Json::parse(line);
  const serve::Json* output = resp.find("output");
  ASSERT_NE(output, nullptr) << line;
  EXPECT_EQ(output->as_string(), one_shot.out);
}

}  // namespace
}  // namespace banger::cli
