// Code generator tests: structure of the emitted program, and (when a
// host compiler is available) compile-and-run agreement with the
// interpreter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hpp"
#include "codegen/runtime_preamble.hpp"
#include "exec/executor.hpp"
#include "sched/heuristics.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

namespace banger::codegen {
namespace {

using pits::Value;
using pits::Vector;

machine::Machine make_machine(int procs) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  p.bytes_per_second = 1e6;
  return machine::Machine(machine::Topology::fully_connected(procs), p);
}

std::map<std::string, Value> lu_inputs() {
  return {{"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
          {"b", Value(Vector{16, 39, 45})}};
}

TEST(Preamble, ContainsRuntimeEssentials) {
  const std::string pre = runtime_preamble();
  for (const char* needle :
       {"struct Val", "inline Val add", "struct Rng", "b_print", "b_dot",
        "set_idx", "division by zero"}) {
    EXPECT_NE(pre.find(needle), std::string::npos) << needle;
  }
}

TEST(Generate, LuProgramStructure) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const std::string src = generate_cpp(flat, schedule, lu_inputs());

  for (const char* needle :
       {"int main()", "static void task_0()", "publish(", "fetch(",
        "std::thread", "x = %s"}) {
    EXPECT_NE(src.find(needle), std::string::npos) << needle;
  }
  // One task function per task.
  for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    EXPECT_NE(src.find("static void task_" + std::to_string(t) + "()"),
              std::string::npos);
  }
  // Input store values are baked in.
  EXPECT_NE(src.find("rt::vecv({4"), std::string::npos);
}

TEST(Generate, TranslatesControlFlow) {
  graph::TaskGraph g;
  graph::Task t;
  t.name = "looper";
  t.work = 1;
  t.outputs = {"r"};
  t.pits =
      "r := 0\n"
      "for i := 1 to 10 do\n"
      "  if i mod 2 = 0 then\n"
      "    r := r + i\n"
      "  elsif i = 5 then\n"
      "    r := r + 100\n"
      "  else\n"
      "    r := r - 1\n"
      "  end\n"
      "end\n"
      "while r > 20 do\n"
      "  r := r - 1\n"
      "end\n"
      "repeat 2 times\n"
      "  r := r + 100\n"
      "end\n";
  g.add_task(std::move(t));
  graph::FlattenResult flat;
  flat.graph = std::move(g);
  auto m = make_machine(1);
  const auto schedule = sched::SerialScheduler().run(flat.graph, m);
  const std::string src = generate_cpp(flat, schedule, {});
  EXPECT_NE(src.find("for (double"), std::string::npos);
  EXPECT_NE(src.find("while (rt::truthy("), std::string::npos);
  EXPECT_NE(src.find("} else if"), std::string::npos) << src;
}

TEST(Generate, RandGetsTaskSeededRng) {
  auto flat = workloads::montecarlo_design(2, 10).flatten();
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const std::string src = generate_cpp(flat, schedule, {});
  EXPECT_NE(src.find("rt::Rng rng("), std::string::npos);
  EXPECT_NE(src.find("rt::b_rand(rng)"), std::string::npos);
}

TEST(Generate, FailsOnMissingInput) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  EXPECT_THROW((void)generate_cpp(flat, schedule, {}), Error);
}

TEST(Generate, TimingOptionAddsChrono) {
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(2);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  CodegenOptions opts;
  opts.emit_timing = true;
  const std::string src = generate_cpp(flat, schedule, lu_inputs(), opts);
  EXPECT_NE(src.find("#include <chrono>"), std::string::npos);
  EXPECT_NE(src.find("steady_clock"), std::string::npos);
}

// ---- compile-and-run integration (skipped without a compiler) ----

bool have_compiler() {
  return std::system("c++ --version > /dev/null 2>&1") == 0;
}

std::string run_generated(const std::string& src, const std::string& tag) {
  const std::string dir = testing::TempDir();
  const std::string cpp = dir + "/gen_" + tag + ".cpp";
  const std::string bin = dir + "/gen_" + tag;
  std::ofstream(cpp) << src;
  const std::string compile =
      "c++ -std=c++17 -O1 -pthread -o " + bin + " " + cpp + " 2> " + bin +
      ".log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(bin + ".log");
    std::string line, all;
    while (std::getline(log, line)) all += line + "\n";
    ADD_FAILURE() << "generated program failed to compile:\n" << all;
    return {};
  }
  const std::string out_path = bin + ".out";
  if (std::system((bin + " > " + out_path).c_str()) != 0) {
    ADD_FAILURE() << "generated program crashed";
    return {};
  }
  std::ifstream out(out_path);
  std::string line, all;
  while (std::getline(out, line)) all += line + "\n";
  return all;
}

TEST(GeneratedProgram, LuSolvesSameSystem) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  auto flat = workloads::lu3x3_design().flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const std::string output = run_generated(
      generate_cpp(flat, schedule, lu_inputs()), "lu");
  EXPECT_NE(output.find("x = [1, 2, 3]"), std::string::npos) << output;
}

TEST(GeneratedProgram, MontecarloMatchesInterpreter) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  auto flat = workloads::montecarlo_design(3, 400).flatten();
  auto m = make_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const std::string output =
      run_generated(generate_cpp(flat, schedule, {}), "mc");

  const auto interp = exec::run_sequential(flat, {});
  const std::string expect =
      "pi_est = " + interp.outputs.at("pi_est").to_display();
  EXPECT_NE(output.find(expect), std::string::npos)
      << "generated: " << output << "\nexpected: " << expect;
}

TEST(GeneratedProgram, DuplicateSchedulesStillCorrect) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  auto flat = workloads::lu3x3_design().flatten();
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 5.0;  // push DSH toward duplication
  machine::Machine m(machine::Topology::fully_connected(3), p);
  const auto schedule = sched::DshScheduler().run(flat.graph, m);
  const std::string output = run_generated(
      generate_cpp(flat, schedule, lu_inputs()), "ludup");
  EXPECT_NE(output.find("x = [1, 2, 3]"), std::string::npos) << output;
}

}  // namespace
}  // namespace banger::codegen
