// Heterogeneous-machine scheduling: EFT-family heuristics must exploit
// per-processor speed factors; validation must account for them.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "util/error.hpp"
#include "sim/simulator.hpp"
#include "workloads/graphs.hpp"

namespace banger::sched {
namespace {

Machine two_speeds(double fast_factor, double ccr = 0.1) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  Machine m(machine::Topology::fully_connected(4), p);
  m.set_speed_factor(0, fast_factor);
  return m;
}

TEST(Hetero, IndependentTasksPreferTheFastProcessor) {
  // Four independent tasks; processor 0 is 8x faster: everything should
  // land there (4*1/8 = 0.5s beats any split paying comm... actually
  // independent tasks pay no comm; check MH picks the minimum).
  graph::TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add_task({"t" + std::to_string(i), 1.0, "", {}, {}});
  }
  const auto m = two_speeds(8.0);
  const auto s = MhScheduler().run(g, m);
  s.validate(g, m);
  // Optimal here: 3 on fast (3/8) vs spread; MH greedy gets close.
  EXPECT_LE(s.makespan(), 1.0);  // never worse than one slow task
}

TEST(Hetero, TaskDurationScalesWithFactor) {
  graph::TaskGraph g;
  g.add_task({"only", 8.0, "", {}, {}});
  const auto m = two_speeds(4.0);
  const auto s = MhScheduler().run(g, m);
  const auto pl = s.placement_of(0);
  ASSERT_TRUE(pl.has_value());
  EXPECT_EQ(pl->proc, 0);
  EXPECT_DOUBLE_EQ(pl->length(), 2.0);  // 8 work / (1 * 4)
}

TEST(Hetero, ValidatorChecksPerProcessorDurations) {
  graph::TaskGraph g;
  g.add_task({"only", 8.0, "", {}, {}});
  const auto m = two_speeds(4.0);
  Schedule s(4, "manual");
  s.place(0, 0, 0.0, 8.0);  // wrong: fast proc takes 2s, not 8
  EXPECT_THROW(s.validate(g, m), banger::Error);
  Schedule ok(4, "manual");
  ok.place(0, 0, 0.0, 2.0);
  EXPECT_NO_THROW(ok.validate(g, m));
}

TEST(Hetero, MakespanImprovesWithFasterProcessors) {
  auto g = workloads::fork_join(12, 2.0, 8.0);
  double prev = 1e100;
  for (double factor : {1.0, 2.0, 4.0}) {
    const auto m = two_speeds(factor);
    const auto s = MhScheduler().run(g, m);
    s.validate(g, m);
    EXPECT_LE(s.makespan(), prev + 1e-9) << factor;
    prev = s.makespan();
  }
}

TEST(Hetero, SimulatorUsesPerProcessorSpeeds) {
  auto g = workloads::fork_join(6, 2.0, 8.0);
  const auto m = two_speeds(4.0);
  const auto s = MhScheduler().run(g, m);
  const auto result = sim::simulate(g, m, s);
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto& timing = result.tasks[t];
    EXPECT_NEAR(timing.finish - timing.start,
                m.task_time(g.task(t).work, timing.proc), 1e-9);
  }
}

TEST(Hetero, AllSchedulersFeasibleOnSkewedMachine) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.1;
  p.bytes_per_second = 1e3;
  Machine m(machine::Topology::star(5), p);
  for (machine::ProcId q = 0; q < 5; ++q) {
    m.set_speed_factor(q, 0.5 + q);
  }
  auto g = workloads::diamond(4, 4, 2.0, 16.0);
  for (const auto& name : scheduler_names()) {
    const auto s = make_scheduler(name)->run(g, m);
    EXPECT_NO_THROW(s.validate(g, m)) << name;
  }
}

}  // namespace
}  // namespace banger::sched
