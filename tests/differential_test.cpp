// Differential testing: every corpus program must produce *identical*
// output through (a) the tree-walking interpreter and (b) the generated
// C++ translated by codegen — the strongest guarantee the environment
// can give that "generate code" means what "trial run" showed.
//
// All corpus programs become tasks of one generated program, so the
// host compiler runs once for the whole suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "codegen/codegen.hpp"
#include "exec/executor.hpp"
#include "sched/heuristics.hpp"

namespace banger {
namespace {

struct CorpusEntry {
  const char* name;
  const char* body;  // must assign variable `o`
};

const CorpusEntry kCorpus[] = {
    {"arith", "o := (2 + 3) * 4 - 7 / 2 ^ 2"},
    {"precedence", "o := -2 ^ 2 + 3 mod 2"},
    {"compare", "o := (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 4) + (5 = 5) + "
                "(6 <> 6)"},
    {"logic", "o := (1 and 0) + (0 or 3) * 10 + (not 0) * 100"},
    {"short_circuit", "o := 0 and 1 / 0\no := o + (1 or 1 / 0)"},
    {"while_sum", "s := 0\ni := 1\nwhile i <= 50 do\n  s := s + i\n  i := i + "
                  "1\nend\no := s"},
    {"repeat_double", "o := 1\nrepeat 8 times\n  o := o * 2\nend"},
    {"for_step",
     "s := 0\nfor i := 10 to 0 step -2.5 do\n  s := s + i\nend\no := s"},
    {"if_chain", "x := 7\nif x < 0 then\n  o := -1\nelsif x = 7 then\n  o := "
                 "42\nelse\n  o := 1\nend"},
    {"early_return", "o := 5\nif o > 1 then\n  return\nend\no := 99"},
    {"vectors", "v := [1, 2, 3] * 2 + [10, 10, 10]\nv[1] := -v[1]\no := v"},
    {"broadcast", "o := 10 - [1, 2, 3] ^ 2"},
    {"vector_fns",
     "v := sort(reverse(concat(range(0, 4), [9, 7])))\no := append(slice(v, "
     "1, 5), sum(v))"},
    {"stats", "v := [2, 4, 4, 4, 5, 5, 7, 9]\no := [mean(v), stddev(v), "
              "minv(v), maxv(v), norm([3, 4])]"},
    {"trig", "o := [sin(pi / 6), cos(pi / 3), tan(pi / 4), deg(pi), "
             "rad(180)]"},
    {"explog", "o := [exp(1), ln(e), log10(100), log2(8), sqrt(2), cbrt(27), "
               "hypot(3, 4)]"},
    {"rounding", "o := [floor(2.7), ceil(2.1), round(2.5), trunc(-2.7), "
                 "frac(2.75), sign(-3), abs(-8)]"},
    {"minmax", "o := [min(3, 1, 2), max(4, 9, 2), clamp(5, 0, 3), fact(6), "
               "ncr(6, 2)]"},
    {"strings", "s := \"he\" + \"llo\"\no := len(s) + (s = \"hello\") * 10"},
    {"escapes",
     "s := \"a\\\"b\" + \"c\\\\d\" + \"e\\nf\"\no := len(s) + (s > \"a\")"},
    {"formulas", "formula sq(x) := x * x\nformula hyp(a, b) := sqrt(sq(a) + "
                 "sq(b))\no := hyp(5, 12)"},
    {"recursion", "formula fact2(n) := when(n <= 1, 1, n * fact2(n - 1))\n"
                  "o := fact2(9)"},
    {"when_vectors", "o := when(len([1, 2]) = 2, [1, 1] + 1, [0])"},
    {"rand_stream", "a := rand()\nb := rand()\no := [a, b, a < 1, b >= 0]"},
    {"nested_loops",
     "o := 0\nfor i := 1 to 5 do\n  for j := 1 to i do\n    o := o + i * "
     "j\n  end\nend"},
    {"indexed_state",
     "v := zeros(5)\nfor i := 0 to 4 do\n  v[i] := i * i\nend\no := v"},
};

/// Builds one flattened program with a task per corpus entry.
graph::FlattenResult corpus_flat() {
  graph::FlattenResult flat;
  int index = 0;
  for (const CorpusEntry& entry : kCorpus) {
    graph::Task t;
    t.name = entry.name;
    t.work = 1;
    const std::string out_var = "o" + std::to_string(index);
    // Rename `o` to a unique output variable per task.
    std::string body = entry.body;
    std::string renamed;
    for (std::size_t i = 0; i < body.size(); ++i) {
      const bool is_o =
          body[i] == 'o' &&
          (i == 0 || !(std::isalnum(static_cast<unsigned char>(body[i - 1])) ||
                       body[i - 1] == '_')) &&
          (i + 1 >= body.size() ||
           !(std::isalnum(static_cast<unsigned char>(body[i + 1])) ||
             body[i + 1] == '_'));
      renamed += is_o ? out_var : std::string(1, body[i]);
    }
    t.pits = renamed + "\n";
    t.outputs = {out_var};
    const graph::TaskId id = flat.graph.add_task(std::move(t));

    graph::FlatStore store;
    store.name = out_var;
    store.var = out_var;
    store.writers = {id};
    flat.stores.push_back(store);
    ++index;
  }
  return flat;
}

TEST(Differential, InterpreterVsGeneratedCpp) {
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no host compiler";
  }
  auto flat = corpus_flat();
  machine::MachineParams p;
  p.processor_speed = 1.0;
  machine::Machine m(machine::Topology::fully_connected(2), p);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);

  // (a) interpreter, via the executor.
  const auto interp = exec::run_sequential(flat, {});
  ASSERT_EQ(interp.outputs.size(), std::size(kCorpus));

  // (b) generated program.
  const std::string src = codegen::generate_cpp(flat, schedule, {});
  const std::string dir = testing::TempDir();
  std::ofstream(dir + "/diff_gen.cpp") << src;
  ASSERT_EQ(std::system(("c++ -std=c++17 -O1 -pthread -o " + dir +
                         "/diff_gen " + dir + "/diff_gen.cpp 2> " + dir +
                         "/diff_gen.log")
                            .c_str()),
            0)
      << [&] {
           std::ifstream log(dir + "/diff_gen.log");
           std::ostringstream all;
           all << log.rdbuf();
           return all.str();
         }();
  ASSERT_EQ(
      std::system((dir + "/diff_gen > " + dir + "/diff_gen.out").c_str()), 0);

  // Parse "var = value" lines.
  std::map<std::string, std::string> generated;
  std::ifstream out(dir + "/diff_gen.out");
  std::string line;
  while (std::getline(out, line)) {
    const auto eq = line.find(" = ");
    if (eq != std::string::npos) {
      generated[line.substr(0, eq)] = line.substr(eq + 3);
    }
  }

  int index = 0;
  for (const CorpusEntry& entry : kCorpus) {
    const std::string var = "o" + std::to_string(index++);
    ASSERT_TRUE(interp.outputs.contains(var)) << entry.name;
    ASSERT_TRUE(generated.contains(var)) << entry.name;
    EXPECT_EQ(generated.at(var), interp.outputs.at(var).to_display())
        << "corpus program `" << entry.name << "` diverged";
  }
}

TEST(Differential, CorpusRunsUnderEverySchedulerIdentically) {
  auto flat = corpus_flat();
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.01;
  machine::Machine m(machine::Topology::hypercube(2), p);
  const auto reference = exec::run_sequential(flat, {});
  for (const char* name : {"mh", "mcp", "dsh", "cluster", "roundrobin"}) {
    const auto schedule = sched::make_scheduler(name)->run(flat.graph, m);
    exec::Executor executor(flat, m);
    const auto result = executor.run(schedule, {});
    for (const auto& [var, value] : reference.outputs) {
      EXPECT_EQ(result.outputs.at(var), value) << name << " " << var;
    }
  }
}

}  // namespace
}  // namespace banger
