// Speedup prediction (the Fig. 3 right-hand chart) and the viz renderers.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sched/speedup.hpp"
#include "viz/charts.hpp"
#include "viz/dot.hpp"
#include "viz/gantt.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace banger::sched {
namespace {

MachineFactory hypercube_family(double ccr) {
  return [ccr](int procs) {
    machine::MachineParams p;
    p.processor_speed = 1.0;
    p.message_startup = ccr / 2.0;
    p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
    int dim = 0;
    while ((1 << dim) < procs) ++dim;
    return Machine(machine::Topology::hypercube(dim), p);
  };
}

TEST(Speedup, MonotoneNonDegradingForParallelWork) {
  const auto g = workloads::fork_join(16, 4.0, 8.0);
  MhScheduler scheduler;
  const auto curve =
      predict_speedup(g, scheduler, hypercube_family(0.1), {1, 2, 4, 8});
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_NEAR(curve.points[0].speedup, 1.0, 1e-9);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].speedup, curve.points[i - 1].speedup - 1e-9);
  }
  EXPECT_GT(curve.points.back().speedup, 2.0);
}

TEST(Speedup, BoundedByProcessorsAndParallelism) {
  const auto g = workloads::lu_taskgraph(6);
  MhScheduler scheduler;
  const auto curve =
      predict_speedup(g, scheduler, hypercube_family(0.5), {1, 2, 4, 8, 16});
  for (const auto& pt : curve.points) {
    EXPECT_LE(pt.speedup, pt.procs + 1e-9);
  }
  // The small LU graph saturates: 16 procs gain little over 8 (the
  // paper's qualitative Fig. 3 observation).
  const double s8 = curve.points[3].speedup;
  const double s16 = curve.points[4].speedup;
  EXPECT_LT(s16 - s8, 0.75);
}

TEST(Speedup, ChainNeverSpeedsUp) {
  const auto g = workloads::chain_graph(10, 2.0, 64.0);
  MhScheduler scheduler;
  const auto curve =
      predict_speedup(g, scheduler, hypercube_family(1.0), {1, 2, 4});
  for (const auto& pt : curve.points) {
    EXPECT_NEAR(pt.speedup, 1.0, 1e-9);
  }
  EXPECT_EQ(curve.saturation_procs(), 1);
}

TEST(Speedup, SaturationDetection) {
  SpeedupCurve curve;
  curve.points = {{1, 10, 1.0, 1.0, 1},
                  {2, 5, 2.0, 1.0, 2},
                  {4, 4.9, 2.04, 0.5, 3},
                  {8, 4.9, 2.04, 0.25, 3}};
  EXPECT_EQ(curve.saturation_procs(), 2);
  EXPECT_DOUBLE_EQ(curve.max_speedup(), 2.04);
}

TEST(Speedup, CurveCarriesNames) {
  const auto g = workloads::fork_join(4, 1.0, 8.0);
  EtfScheduler scheduler;
  const auto curve = predict_speedup(g, scheduler, hypercube_family(0.5), {2});
  EXPECT_EQ(curve.scheduler, "etf");
  EXPECT_NE(curve.machine_family.find("hypercube"), std::string::npos);
}

}  // namespace
}  // namespace banger::sched

namespace banger::viz {
namespace {

sched::Schedule lu_schedule(const graph::TaskGraph& g,
                            const machine::Machine& m) {
  auto s = sched::MhScheduler().run(g, m);
  s.validate(g, m);
  return s;
}

machine::Machine cube8() {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.25;
  p.bytes_per_second = 32;
  return machine::Machine(machine::Topology::hypercube(3), p);
}

TEST(Gantt, AsciiShowsLanesAndAxis) {
  const auto g = workloads::lu_taskgraph(5);
  const auto m = cube8();
  const auto s = lu_schedule(g, m);
  const std::string chart = render_gantt(s, g);
  for (int p = 0; p < 8; ++p) {
    EXPECT_NE(chart.find("P" + std::to_string(p)), std::string::npos);
  }
  EXPECT_NE(chart.find("makespan"), std::string::npos);
  EXPECT_NE(chart.find("#"), std::string::npos);
  EXPECT_NE(chart.find("t="), std::string::npos);
}

TEST(Gantt, EmptyScheduleRendersHeaderOnly) {
  sched::Schedule s(2, "empty");
  graph::TaskGraph g;
  const std::string chart = render_gantt(s, g);
  EXPECT_NE(chart.find("makespan 0"), std::string::npos);
}

TEST(Gantt, SvgIsWellFormedish) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = cube8();
  const auto s = lu_schedule(g, m);
  const std::string svg = render_gantt_svg(s, g);
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  // Every placement yields a rect with a title tooltip.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, s.placements().size());
}

TEST(Gantt, TableListsAllPlacements) {
  const auto g = workloads::lu_taskgraph(4);
  const auto m = cube8();
  const auto s = lu_schedule(g, m);
  const std::string table = schedule_table(s, g);
  for (const auto& t : g.tasks()) {
    EXPECT_NE(table.find(t.name), std::string::npos) << t.name;
  }
}

TEST(Charts, SpeedupChartPlotsPoints) {
  sched::SpeedupCurve curve;
  curve.scheduler = "mh";
  curve.machine_family = "hypercube8";
  curve.points = {{1, 10, 1.0, 1.0, 1}, {2, 6, 1.7, 0.85, 2},
                  {4, 4, 2.5, 0.63, 4}, {8, 3.5, 2.9, 0.36, 6}};
  const std::string chart = render_speedup_chart(curve);
  EXPECT_NE(chart.find("o"), std::string::npos);
  EXPECT_NE(chart.find("procs: 1"), std::string::npos);
  EXPECT_NE(chart.find("ideal linear"), std::string::npos);
}

TEST(Charts, BarsScaleToMax) {
  const std::string bars =
      render_bars({{"mh", 10.0}, {"serial", 40.0}}, 20);
  // serial gets the full 20 hashes, mh gets 5.
  EXPECT_NE(bars.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(bars.find(std::string(5, '#')), std::string::npos);
}

TEST(Dot, DesignExportHasClustersAndShapes) {
  const auto design = workloads::lu3x3_design();
  const std::string dot = to_dot(design);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // stores
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);   // supernode
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // expansion link
}

TEST(Dot, TaskGraphAndTopologyExports) {
  const auto g = workloads::lu_taskgraph(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph tasks"), std::string::npos);
  EXPECT_NE(dot.find("fan0"), std::string::npos);

  const auto topo = machine::Topology::hypercube(2);
  const std::string tdot = to_dot(topo);
  EXPECT_NE(tdot.find("graph \"hypercube4\""), std::string::npos);
  EXPECT_NE(tdot.find("0 -- 1"), std::string::npos);
}

TEST(Dot, SingleLevelExport) {
  const auto design = workloads::lu3x3_design();
  const std::string dot = to_dot(design.root_graph());
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("\"fan1\""), std::string::npos);
}

}  // namespace
}  // namespace banger::viz
