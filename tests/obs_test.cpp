// Observability tests: TraceRecorder semantics, Chrome-trace export
// determinism, the `banger trace` / --metrics CLI surface, and
// regression coverage for the error-handling bugfix sweep.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "exec/executor.hpp"
#include "graph/serialize.hpp"
#include "obs/trace.hpp"
#include "pits/interp.hpp"
#include "sched/heuristics.hpp"
#include "util/error.hpp"
#include "workloads/lu.hpp"

namespace banger {
namespace {

using obs::Domain;
using obs::ScopedRecorder;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON checker. It accepts exactly the JSON
// grammar (objects, arrays, strings, numbers, true/false/null) and is
// used to assert that every exported artifact is well-formed without
// pulling in a JSON library.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// TraceRecorder unit behaviour.

TEST(Recorder, DisabledByDefault) {
  EXPECT_EQ(obs::current(), nullptr);
}

TEST(Recorder, ScopedInstallAndNestedRestore) {
  TraceRecorder outer;
  {
    ScopedRecorder a(outer);
    EXPECT_EQ(obs::current(), &outer);
    TraceRecorder inner;
    {
      ScopedRecorder b(inner);
      EXPECT_EQ(obs::current(), &inner);
    }
    EXPECT_EQ(obs::current(), &outer);
  }
  EXPECT_EQ(obs::current(), nullptr);
}

TEST(Recorder, RecordsAndClears) {
  TraceRecorder rec;
  rec.span(Domain::Virtual, obs::kTrackExec, 0, 1.0, 2.0, "work", "task");
  rec.instant(Domain::Virtual, obs::kTrackExec, 0, 1.5, "mark", "fault");
  rec.counter(Domain::Logical, obs::kTrackScheduler, 0, 3, "depth", 4.0);
  EXPECT_EQ(rec.size(), 3u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(Recorder, MetricsAccumulate) {
  TraceRecorder rec;
  rec.bump("runs");
  rec.bump("runs");
  rec.bump("seconds", 2.5);
  rec.set_metric("gauge", 7.0);
  EXPECT_DOUBLE_EQ(rec.metric("runs"), 2.0);
  EXPECT_DOUBLE_EQ(rec.metric("seconds"), 2.5);
  EXPECT_DOUBLE_EQ(rec.metric("gauge"), 7.0);
  EXPECT_DOUBLE_EQ(rec.metric("missing"), 0.0);
}

TEST(Recorder, ExportSortsByTimestampThenSequence) {
  TraceRecorder rec;
  rec.span(Domain::Virtual, obs::kTrackExec, 0, 5.0, 6.0, "late", "task");
  rec.span(Domain::Virtual, obs::kTrackExec, 0, 1.0, 2.0, "early", "task");
  rec.span(Domain::Virtual, obs::kTrackExec, 0, 1.0, 3.0, "early2", "task");
  obs::ExportOptions opts;
  opts.metadata = false;
  const std::string json = rec.to_chrome_json(opts);
  const auto early = json.find("\"early\"");
  const auto early2 = json.find("\"early2\"");
  const auto late = json.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(early2, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, early2);  // equal ts: insertion sequence breaks the tie
  EXPECT_LT(early2, late);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(Recorder, WallEventsCanBeExcluded) {
  TraceRecorder rec;
  rec.span(Domain::Wall, obs::kTrackPool, 0, 0.0, 1.0, "wallspan", "pool");
  rec.span(Domain::Virtual, obs::kTrackExec, 0, 0.0, 1.0, "virtspan", "task");
  obs::ExportOptions opts;
  opts.include_wall = false;
  const std::string json = rec.to_chrome_json(opts);
  EXPECT_EQ(json.find("wallspan"), std::string::npos);
  EXPECT_NE(json.find("virtspan"), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(Recorder, MetricsJsonIsSortedAndValid) {
  TraceRecorder rec;
  rec.bump("zeta", 1.0);
  rec.bump("alpha", 2.0);
  const std::string json = rec.metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
  TraceRecorder empty;
  EXPECT_TRUE(JsonChecker(empty.metrics_json()).valid());
}

// ---------------------------------------------------------------------------
// CLI-level fixtures: drive `banger` exactly as a shell user would.

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult r;
  r.code = cli::run(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

class ObsCli : public ::testing::Test {
 protected:
  void SetUp() override {
    design_path_ = testing::TempDir() + "/obs_lu.pitl";
    machine_path_ = testing::TempDir() + "/obs_cube.machine";
    fault_path_ = testing::TempDir() + "/obs_crash.fault";
    graph::save_design(workloads::lu3x3_design(), design_path_);
    std::ofstream(machine_path_) << "machine cube4\n"
                                    "topology hypercube dim=2\n"
                                    "speed 1\n"
                                    "message_startup 0.05\n"
                                    "bandwidth 512\n";
    std::ofstream(fault_path_) << "faultplan crashy seed=11\n"
                                  "crash proc=1 at=0.5\n";
  }
  std::string design_path_;
  std::string machine_path_;
  std::string fault_path_;
};

TEST_F(ObsCli, TraceIsValidJsonWithAllLayers) {
  const auto r = invoke({"trace", design_path_, machine_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  // Planned schedule + simulated replay tracks, plus the scheduler's
  // internal counters, all land in one artifact.
  EXPECT_NE(r.out.find("planned schedule"), std::string::npos);
  EXPECT_NE(r.out.find("executor replay (simulated)"), std::string::npos);
  EXPECT_NE(r.out.find("\"sched."), std::string::npos);
  EXPECT_NE(r.out.find("\"cat\": \"task\""), std::string::npos);
  EXPECT_NE(r.out.find("\"ph\": \"M\""), std::string::npos);
}

TEST_F(ObsCli, TraceIsByteIdenticalAcrossJobs) {
  const auto a = invoke({"trace", design_path_, machine_path_,
                         "--jobs", "1"});
  const auto b = invoke({"trace", design_path_, machine_path_,
                         "--jobs", "8"});
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
}

TEST_F(ObsCli, FaultTraceShowsRecoveryPhasesDeterministically) {
  const auto a = invoke({"trace", design_path_, machine_path_,
                         "--fault-plan", fault_path_, "--jobs", "1"});
  const auto b = invoke({"trace", design_path_, machine_path_,
                         "--fault-plan", fault_path_, "--jobs", "8"});
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  EXPECT_TRUE(JsonChecker(a.out).valid());
  EXPECT_NE(a.out.find("\"detect\""), std::string::npos);
  EXPECT_NE(a.out.find("\"repair\""), std::string::npos);
  EXPECT_NE(a.out.find("\"resume\""), std::string::npos);
  EXPECT_NE(a.out.find("\"cat\": \"fault\""), std::string::npos);
}

TEST_F(ObsCli, TraceWritesFileWithPerfettoHint) {
  const std::string out_path = testing::TempDir() + "/obs_trace.json";
  const auto r = invoke({"trace", design_path_, machine_path_,
                         "--out", out_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ui.perfetto.dev"), std::string::npos);
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_TRUE(JsonChecker(body.str()).valid());
}

TEST_F(ObsCli, MetricsFlagWritesFlatSummary) {
  const std::string metrics_path = testing::TempDir() + "/obs_metrics.json";
  const auto r = invoke({"simulate", design_path_, machine_path_,
                         "--metrics", metrics_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_TRUE(JsonChecker(body.str()).valid()) << body.str();
  EXPECT_NE(body.str().find("\"sim.runs\""), std::string::npos);
}

TEST_F(ObsCli, MetricsCaptureFaultRecoveryCounters) {
  const std::string metrics_path = testing::TempDir() + "/obs_fmetrics.json";
  const auto r = invoke({"faults", design_path_, machine_path_,
                         "--fault-plan", fault_path_,
                         "--metrics", metrics_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream in(metrics_path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"recovery.runs\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bugfix regression: numeric CLI flags are validated, usage errors
// name the flag and the offending value, and exit with status 2.

TEST_F(ObsCli, EventsFlagRejectsNonNumeric) {
  const auto r = invoke({"simulate", design_path_, machine_path_,
                         "--events", "abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--events"), std::string::npos);
  EXPECT_NE(r.err.find("abc"), std::string::npos);
}

TEST_F(ObsCli, EventsFlagRejectsNegative) {
  const auto r = invoke({"simulate", design_path_, machine_path_,
                         "--events", "-3"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--events"), std::string::npos);
}

TEST_F(ObsCli, JobsFlagRejectsZero) {
  const auto r = invoke({"faults", design_path_, machine_path_,
                         "--fault-plan", fault_path_, "--jobs", "0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos);
}

TEST_F(ObsCli, TrialsFlagRejectsGarbage) {
  const auto r = invoke({"faults", design_path_, machine_path_,
                         "--fault-plan", fault_path_, "--trials", "many"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--trials"), std::string::npos);
  EXPECT_NE(r.err.find("many"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bugfix regression: worker-thread failures in the parallel executor
// surface the original diagnostic (task name, error code) instead of
// being swallowed by a bare catch.

TEST(ExecutorFailure, WorkerErrorKeepsCodeAndTaskName) {
  auto flat = workloads::lu3x3_design().flatten();
  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.01;
  params.bytes_per_second = 1e6;
  exec::Machine machine(machine::Topology::fully_connected(3), params);
  const auto schedule = sched::MhScheduler().run(flat.graph, machine);

  std::map<std::string, pits::Value> inputs = {
      // Zero pivot makes task fan1 divide by zero.
      {"A", pits::Value(pits::Vector{0, 3, 2, 8, 8, 5, 4, 7, 9})},
      {"b", pits::Value(pits::Vector{16, 39, 45})}};

  TraceRecorder rec;
  ScopedRecorder scope(rec);
  exec::Executor executor(flat, machine);
  try {
    (void)executor.run(schedule, inputs);
    FAIL() << "expected the zero-pivot error to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Runtime);
    const std::string what = e.what();
    EXPECT_NE(what.find("worker"), std::string::npos) << what;
    EXPECT_NE(what.find("fan1"), std::string::npos) << what;
  }
  EXPECT_GE(rec.metric("exec.worker_failures"), 1.0);
}

// ---------------------------------------------------------------------------
// Bugfix regression: formula evaluation errors carry the innermost
// formula name and the original diagnostic instead of a blind rethrow.

TEST(FormulaDiagnostics, ErrorNamesTheInnermostFormulaOnce) {
  const char* src =
      "formula inner(x) := x / 0\n"
      "formula outer(x) := inner(x) + 1\n"
      "y := outer(3)";
  try {
    pits::Env env;
    pits::Program::parse(src).execute(env);
    FAIL() << "expected division by zero";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Runtime);
    const std::string message = e.message();
    EXPECT_NE(message.find("in formula `inner`"), std::string::npos)
        << message;
    // Attribution happens once, at the innermost frame, not per level.
    EXPECT_EQ(count_of(message, " in formula `"), 1u) << message;
  }
}

TEST(FormulaDiagnostics, NameErrorsKeepTheirCode) {
  try {
    pits::Env env;
    pits::Program::parse("formula f(x) := x + nosuchvar\ny := f(1)")
        .execute(env);
    FAIL() << "expected a name error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Name);
    EXPECT_NE(e.message().find("nosuchvar"), std::string::npos);
    EXPECT_NE(e.message().find("in formula `f`"), std::string::npos);
  }
}

}  // namespace
}  // namespace banger
