// Tests for topologies and the machine cost model, including the
// textbook invariants of every topology family (TEST_P sweeps).
#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "util/error.hpp"

namespace banger::machine {
namespace {

TEST(Topology, HypercubeStructure) {
  const auto t = Topology::hypercube(3);
  EXPECT_EQ(t.num_procs(), 8);
  EXPECT_EQ(t.num_links(), 12);  // n*d/2 = 8*3/2
  EXPECT_EQ(t.diameter(), 3);
  EXPECT_EQ(t.max_degree(), 3);
  // Hop distance equals popcount of xor.
  for (ProcId a = 0; a < 8; ++a) {
    for (ProcId b = 0; b < 8; ++b) {
      EXPECT_EQ(t.hops(a, b), __builtin_popcount(static_cast<unsigned>(a ^ b)));
    }
  }
}

TEST(Topology, HypercubeDim0IsSingleNode) {
  const auto t = Topology::hypercube(0);
  EXPECT_EQ(t.num_procs(), 1);
  EXPECT_EQ(t.diameter(), 0);
}

TEST(Topology, MeshStructure) {
  const auto t = Topology::mesh(3, 4);
  EXPECT_EQ(t.num_procs(), 12);
  EXPECT_EQ(t.num_links(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(t.diameter(), 2 + 3);           // manhattan corners
  EXPECT_EQ(t.hops(0, 11), 5);
}

TEST(Topology, TorusWrapsAround) {
  const auto t = Topology::torus(4, 4);
  EXPECT_EQ(t.num_procs(), 16);
  EXPECT_EQ(t.diameter(), 4);  // 2 + 2
  EXPECT_TRUE(t.linked(0, 3));  // row wraparound
  EXPECT_TRUE(t.linked(0, 12)); // column wraparound
}

TEST(Topology, StarStructure) {
  const auto t = Topology::star(6);
  EXPECT_EQ(t.num_links(), 5);
  EXPECT_EQ(t.diameter(), 2);
  EXPECT_EQ(t.degree(0), 5);
  EXPECT_EQ(t.degree(1), 1);
  EXPECT_EQ(t.hops(1, 2), 2);
  EXPECT_EQ(t.hops(0, 3), 1);
}

TEST(Topology, TreeStructure) {
  const auto t = Topology::tree(2, 7);  // complete binary tree
  EXPECT_EQ(t.num_links(), 6);
  EXPECT_EQ(t.diameter(), 4);  // leaf -> root -> leaf
  EXPECT_EQ(t.hops(3, 6), 4);
  EXPECT_EQ(t.hops(0, 6), 2);
}

TEST(Topology, RingAndChain) {
  const auto ring = Topology::ring(6);
  EXPECT_EQ(ring.diameter(), 3);
  EXPECT_EQ(ring.num_links(), 6);
  const auto chain = Topology::chain(6);
  EXPECT_EQ(chain.diameter(), 5);
  EXPECT_EQ(chain.num_links(), 5);
  EXPECT_THROW((void)Topology::ring(2), Error);
}

TEST(Topology, FullyConnected) {
  const auto t = Topology::fully_connected(5);
  EXPECT_EQ(t.num_links(), 10);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_DOUBLE_EQ(t.average_distance(), 1.0);
}

TEST(Topology, CustomValidatesConnectivity) {
  EXPECT_THROW(
      (void)Topology::custom("broken", 4, {{0, 1}, {2, 3}}), Error);
  const auto t = Topology::custom("ok", 3, {{0, 1}, {1, 2}});
  EXPECT_EQ(t.diameter(), 2);
}

TEST(Topology, CustomRejectsBadLinks) {
  EXPECT_THROW((void)Topology::custom("bad", 2, {{0, 5}}), Error);
  EXPECT_THROW((void)Topology::custom("bad", 2, {{0, 0}}), Error);
}

TEST(Topology, RouteFollowsShortestPath) {
  const auto t = Topology::mesh(3, 3);
  const auto path = t.route(0, 8);
  ASSERT_EQ(path.size(), 5u);  // 4 hops
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 8);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(t.linked(path[i], path[i + 1]));
  }
}

TEST(Topology, RouteToSelfIsSingleton) {
  const auto t = Topology::ring(5);
  EXPECT_EQ(t.route(2, 2), std::vector<ProcId>{2});
}

// Property sweep: every factory topology is connected, symmetric in hop
// distance, and satisfies the triangle inequality.
class TopologyInvariants : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologyInvariants, HopMatrixIsAMetric) {
  const Topology& t = GetParam();
  const int n = t.num_procs();
  for (ProcId a = 0; a < n; ++a) {
    EXPECT_EQ(t.hops(a, a), 0);
    for (ProcId b = 0; b < n; ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      EXPECT_GE(t.hops(a, b), a == b ? 0 : 1);
      for (ProcId c = 0; c < n; ++c) {
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
      }
    }
  }
}

TEST_P(TopologyInvariants, RoutesMatchHopCounts) {
  const Topology& t = GetParam();
  for (ProcId a = 0; a < t.num_procs(); ++a) {
    for (ProcId b = 0; b < t.num_procs(); ++b) {
      const auto path = t.route(a, b);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, t.hops(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TopologyInvariants,
    ::testing::Values(Topology::hypercube(2), Topology::hypercube(4),
                      Topology::mesh(2, 5), Topology::torus(3, 3),
                      Topology::tree(3, 10), Topology::star(7),
                      Topology::ring(5), Topology::chain(4),
                      Topology::fully_connected(6),
                      Topology::custom("c", 4, {{0, 1}, {1, 2}, {2, 3},
                                                {3, 0}, {0, 2}})),
    [](const auto& info) { return info.param.name(); });

TEST(Topology, BisectionWidthFormulas) {
  EXPECT_EQ(Topology::hypercube(3).bisection_width(), 4);
  EXPECT_EQ(Topology::hypercube(4).bisection_width(), 8);
  EXPECT_EQ(Topology::fully_connected(6).bisection_width(), 9);
  EXPECT_EQ(Topology::fully_connected(5).bisection_width(), 6);
  EXPECT_EQ(Topology::star(8).bisection_width(), 4);
  EXPECT_EQ(Topology::tree(2, 7).bisection_width(), 1);
  EXPECT_EQ(Topology::chain(9).bisection_width(), 1);
  EXPECT_EQ(Topology::ring(8).bisection_width(), 2);
}

TEST(Topology, BisectionWidthExhaustive) {
  // Mesh 4x4 bisects along the middle: 4 links.
  EXPECT_EQ(Topology::mesh(4, 4).bisection_width(), 4);
  EXPECT_EQ(Topology::mesh(2, 3).bisection_width(), 3);  // odd cols: no clean column cut
  // A custom 4-cycle bisects with 2 links.
  EXPECT_EQ(
      Topology::custom("c4", 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})
          .bisection_width(),
      2);
  // Single node: zero.
  EXPECT_EQ(Topology::chain(1).bisection_width(), 0);
}

TEST(Topology, BisectionWidthLimitOnBigCustoms) {
  std::vector<std::pair<int, int>> links;
  for (int i = 0; i + 1 < 24; ++i) links.emplace_back(i, i + 1);
  const auto t = Topology::custom("big", 24, links);
  EXPECT_THROW((void)t.bisection_width(), Error);
}

// ---- machine cost model ----

TEST(Machine, TaskTimeUsesSpeedAndStartup) {
  MachineParams p;
  p.processor_speed = 4.0;
  p.process_startup = 0.5;
  Machine m(Topology::fully_connected(2), p);
  EXPECT_DOUBLE_EQ(m.task_time(8.0, 0), 0.5 + 2.0);
}

TEST(Machine, HeterogeneousSpeedFactors) {
  MachineParams p;
  p.processor_speed = 1.0;
  Machine m(Topology::fully_connected(2), p);
  m.set_speed_factor(1, 2.0);
  EXPECT_FALSE(m.homogeneous());
  EXPECT_DOUBLE_EQ(m.task_time(4.0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.task_time(4.0, 1), 2.0);
  EXPECT_THROW(m.set_speed_factor(0, 0.0), Error);
}

TEST(Machine, StoreAndForwardCommScalesWithHops) {
  MachineParams p;
  p.message_startup = 1.0;
  p.bytes_per_second = 100.0;
  Machine m(Topology::chain(4), p);
  // 0 -> 3 is 3 hops; each hop costs 1 + 50/100.
  EXPECT_DOUBLE_EQ(m.comm_time(50, 0, 3), 3 * 1.5);
  EXPECT_DOUBLE_EQ(m.comm_time(50, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.comm_time(50, 1, 2), 1.5);
}

TEST(Machine, InfiniteBandwidthMeansStartupOnly) {
  MachineParams p;
  p.message_startup = 0.25;
  p.bytes_per_second = 0.0;  // infinite
  Machine m(Topology::chain(3), p);
  EXPECT_DOUBLE_EQ(m.comm_time(1e9, 0, 2), 0.5);
}

TEST(Machine, CcrDiagnostic) {
  MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.25;
  p.bytes_per_second = 32.0;
  Machine m(Topology::fully_connected(2), p);
  EXPECT_DOUBLE_EQ(m.ccr(8.0), 0.5);  // (0.25 + 0.25) / 1.0
}

TEST(Machine, ValidatesParameters) {
  MachineParams p;
  p.processor_speed = 0.0;
  EXPECT_THROW(Machine(Topology::star(2), p), Error);
  p.processor_speed = 1.0;
  p.message_startup = -1.0;
  EXPECT_THROW(Machine(Topology::star(2), p), Error);
}

TEST(MachinePresets, ShapesAreSane) {
  const auto cube = presets::hypercube(3, 0.5);
  EXPECT_EQ(cube.num_procs(), 8);
  EXPECT_NEAR(cube.ccr(8.0), 0.5, 1e-12);
  const auto shm = presets::shared_memory(4);
  EXPECT_EQ(shm.topology().kind(), TopologyKind::FullyConnected);
  const auto lan = presets::lan(5);
  EXPECT_EQ(lan.topology().kind(), TopologyKind::Star);
  EXPECT_GT(lan.params().message_startup, shm.params().message_startup);
}

}  // namespace
}  // namespace banger::machine
