// PERF — google-benchmark microbenchmarks of the environment's hot
// paths: scheduling throughput vs graph size, PITS interpretation rate,
// simulator event rate, flattening, parsing.
#include <benchmark/benchmark.h>

#include "analyze/absint.hpp"

#include "exec/executor.hpp"
#include "exec/stream.hpp"
#include "graph/serialize.hpp"
#include "obs/trace.hpp"
#include "pits/interp.hpp"
#include "sched/compare.hpp"
#include "sched/heuristics.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "sim/simulator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workloads/designs.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine cube8() {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.1;
  p.bytes_per_second = 1e3;
  return machine::Machine(machine::Topology::hypercube(3), p);
}

graph::TaskGraph sized_graph(int n) {
  workloads::RandomGraphSpec spec;
  spec.layers = n / 8;
  spec.width = 8;
  spec.seed = 7;
  return workloads::random_layered(spec);
}

void BM_ScheduleMh(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  sched::MhScheduler mh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mh.run(g, m));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ScheduleMh)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void BM_ScheduleEtf(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  sched::EtfScheduler etf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(etf.run(g, m));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ScheduleEtf)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

// Paired runs measuring the observability tax on the scheduler hot
// path: BM_Sched has no recorder installed (the default), while
// BM_SchedTraced schedules under an active TraceRecorder. The disabled
// case should track BM_Sched within run-to-run noise, since every
// instrumentation site reduces to one relaxed atomic load.
void BM_Sched(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  sched::EtfScheduler etf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(etf.run(g, m));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_Sched)->Arg(1024);

void BM_SchedTraced(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  sched::EtfScheduler etf;
  obs::TraceRecorder rec;
  obs::ScopedRecorder scope(rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(etf.run(g, m));
    state.PauseTiming();
    rec.clear();  // keep memory flat across iterations
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_SchedTraced)->Arg(1024);

void BM_ScheduleDsh(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  sched::DshScheduler dsh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsh.run(g, m));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_ScheduleDsh)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

// Bake-off of all heuristics on one graph; range(1) is the worker
// count (0 = all cores), encoded in the benchmark name — a counter
// would abort the CSV reporter, which requires every run to share the
// same counter set. jobs=1 vs jobs=N shows the thread-pool win.
void BM_CompareSchedulers(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  const auto names = sched::scheduler_names();
  const int jobs = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::compare_schedulers(g, m, names, {}, jobs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(names.size()));
}
BENCHMARK(BM_CompareSchedulers)
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleValidate(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  const auto s = sched::MhScheduler().run(g, m);
  for (auto _ : state) {
    s.validate(g, m);
  }
}
BENCHMARK(BM_ScheduleValidate)->Arg(256);

void BM_Simulate(benchmark::State& state) {
  const auto g = sized_graph(static_cast<int>(state.range(0)));
  const auto m = cube8();
  const auto s = sched::MhScheduler().run(g, m);
  sim::SimOptions opts;
  opts.record_events = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(g, m, s, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_tasks()));
}
BENCHMARK(BM_Simulate)->Arg(256)->Arg(1024);

void BM_PitsParse(benchmark::State& state) {
  const std::string src =
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + a / guess)\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pits::Program::parse(src));
  }
}
BENCHMARK(BM_PitsParse);

void BM_PitsInterp(benchmark::State& state) {
  const auto program = pits::Program::parse(
      "s := 0\n"
      "for i := 1 to 1000 do\n"
      "  s := s + sin(i) * sin(i) + cos(i) * cos(i)\n"
      "end\n");
  for (auto _ : state) {
    pits::Env env;
    program.execute(env);
    benchmark::DoNotOptimize(env);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PitsInterp);

void BM_PitsVectorOps(benchmark::State& state) {
  const auto program = pits::Program::parse(
      "v := zeros(1000) + 1\n"
      "w := v * 3 + 2\n"
      "d := dot(v, w)\n");
  for (auto _ : state) {
    pits::Env env;
    program.execute(env);
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_PitsVectorOps);

// Deterministic PITS-heavy workload: `statements` generated assignments
// over 48 scalar variables (guarded division, builtin calls, branches),
// amplified by an outer repeat so execution dominates dispatch. Seeded
// Rng, no wall-clock — the same source every run, so the committed
// BENCH_pits.json numbers are reproducible.
std::string pits_heavy_source(int statements) {
  banger::util::Rng rng(2026);
  constexpr int kVars = 48;
  std::string src;
  for (int i = 0; i < kVars; ++i) {
    src += "x" + std::to_string(i) + " := " +
           std::to_string(0.37 * i + 1.0) + "\n";
  }
  src += "repeat 100 times\n";
  auto var = [&]() { return "x" + std::to_string(rng.next_below(kVars)); };
  for (int i = 0; i < statements; ++i) {
    const std::string a = var();
    const std::string b = var();
    const std::string c = var();
    const std::string d = var();
    switch (rng.next_below(6)) {
      case 0:
        src += "  " + a + " := (" + b + " + " + c + ") * 0.5\n";
        break;
      case 1:
        src += "  " + a + " := " + b + " - " + c + " + " +
               std::to_string(rng.uniform_int(1, 9)) + "\n";
        break;
      case 2:
        src += "  " + a + " := (" + b + " * " + c + ") / (" + d + " * " + d +
               " + 7)\n";
        break;
      case 3:
        src += "  " + a + " := abs(" + b + " - " + c + ") + 1\n";
        break;
      case 4:
        src += "  " + a + " := min(" + b + ", " + c + ") + max(" + c + ", " +
               d + ") * 0.25\n";
        break;
      default:
        src += "  if " + b + " > " + c + " then\n    " + a + " := " + a +
               " * 0.75 + 1\n  end\n";
        break;
    }
  }
  src += "end\n";
  return src;
}

void BM_PitsCompile(benchmark::State& state) {
  const std::string src = pits_heavy_source(1024);
  for (auto _ : state) {
    // Fresh Program each iteration: parse + bytecode lowering.
    auto program = pits::Program::parse(src);
    program.precompile();
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_PitsCompile);

// The headline pair: one 1024-statement routine, identical semantics,
// executed by the bytecode VM vs the tree-walking reference. The VM
// compiles with abstract-interpretation facts (check elision + tick
// batching), matching what the executor and calculator panel do.
void BM_PitsExecVm(benchmark::State& state) {
  const auto program = pits::Program::parse(pits_heavy_source(1024));
  analyze::precompile_optimized(program);
  pits::ExecOptions opts;
  opts.engine = pits::ExecOptions::Engine::Vm;
  for (auto _ : state) {
    pits::Env env;
    program.execute(env, opts);
    benchmark::DoNotOptimize(env);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 100);
}
BENCHMARK(BM_PitsExecVm);

// Ablation: the same routine compiled without analysis facts — the gap
// to BM_PitsExecVm is what the proofs buy at run time.
void BM_PitsExecVmNoElide(benchmark::State& state) {
  const auto program = pits::Program::parse(pits_heavy_source(1024));
  program.precompile();
  pits::ExecOptions opts;
  opts.engine = pits::ExecOptions::Engine::Vm;
  for (auto _ : state) {
    pits::Env env;
    program.execute(env, opts);
    benchmark::DoNotOptimize(env);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 100);
}
BENCHMARK(BM_PitsExecVmNoElide);

void BM_PitsExecWalk(benchmark::State& state) {
  const auto program = pits::Program::parse(pits_heavy_source(1024));
  pits::ExecOptions opts;
  opts.engine = pits::ExecOptions::Engine::Walk;
  for (auto _ : state) {
    pits::Env env;
    program.execute(env, opts);
    benchmark::DoNotOptimize(env);
  }
  state.SetItemsProcessed(state.iterations() * 1024 * 100);
}
BENCHMARK(BM_PitsExecWalk);

// Whole-run view: the LU design end to end (flatten result reused, so
// this measures compile_all + task execution + store routing) on each
// engine. The PITS share of a real run is modest; the pair bounds the
// end-to-end win.
void BM_ExecRunVm(benchmark::State& state) {
  const auto flat = workloads::lu3x3_design().flatten();
  const std::map<std::string, pits::Value> inputs = {
      {"A", pits::Value(pits::Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
      {"b", pits::Value(pits::Vector{16, 39, 45})}};
  exec::RunOptions opts;
  opts.pits.engine = pits::ExecOptions::Engine::Vm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::run_sequential(flat, inputs, opts));
  }
}
BENCHMARK(BM_ExecRunVm);

// Batched trials through run_trials: the design is planned and compiled
// once, then N input sets run against reused slot frames. items/s is
// trials per second — divide into BM_ExecRunVm's one-shot time to see
// the amortisation win at each batch size.
void BM_ExecRunBatch(benchmark::State& state) {
  const auto flat = workloads::lu3x3_design().flatten();
  const int n = static_cast<int>(state.range(0));
  std::vector<std::map<std::string, pits::Value>> inputs;
  inputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Vary b so trials are distinct work, deterministically.
    const double d = static_cast<double>(i % 7);
    inputs.push_back(
        {{"A", pits::Value(pits::Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
         {"b", pits::Value(pits::Vector{16 + d, 39, 45 - d})}});
  }
  exec::RunOptions opts;
  opts.pits.engine = pits::ExecOptions::Engine::Vm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::run_trials(flat, inputs, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExecRunBatch)->Arg(1)->Arg(64)->Arg(4096);

namespace {
machine::Machine stream_bench_machine(int procs) {
  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.01;
  params.bytes_per_second = 1e6;
  return machine::Machine(machine::Topology::fully_connected(procs), params);
}

std::vector<std::map<std::string, pits::Value>> stream_bench_batches(int n) {
  std::vector<std::map<std::string, pits::Value>> batches;
  batches.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(i % 7);
    batches.push_back(
        {{"A", pits::Value(pits::Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
         {"b", pits::Value(pits::Vector{16 + d, 39, 45 - d})}});
  }
  return batches;
}
}  // namespace

// The per-batch baseline for streaming: each batch pays the full
// scheduled-run setup (executor construction, plan, compile) before
// executing — what a loop of one-shot `banger run` calls costs.
void BM_ExecPerBatchRun(benchmark::State& state) {
  const auto flat = workloads::lu3x3_design().flatten();
  const auto m = stream_bench_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const int n = static_cast<int>(state.range(0));
  const auto batches = stream_bench_batches(n);
  for (auto _ : state) {
    for (const auto& inputs : batches) {
      exec::Executor executor(flat, m);
      benchmark::DoNotOptimize(executor.run(schedule, inputs));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExecPerBatchRun)->Arg(64);

// Streaming execution over the same schedule: the plan is compiled
// once, workers stay up, and batches flow through bounded queues.
// items/s is batches per second — compare against BM_ExecPerBatchRun
// to see the setup amortisation win.
void BM_ExecStream(benchmark::State& state) {
  const auto flat = workloads::lu3x3_design().flatten();
  const auto m = stream_bench_machine(3);
  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  const int n = static_cast<int>(state.range(0));
  const auto batches = stream_bench_batches(n);
  exec::StreamOptions opts;
  opts.jobs = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::run_stream(flat, schedule, m, batches, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExecStream)->Arg(64)->Arg(1024);

void BM_ExecRunWalk(benchmark::State& state) {
  const auto flat = workloads::lu3x3_design().flatten();
  const std::map<std::string, pits::Value> inputs = {
      {"A", pits::Value(pits::Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
      {"b", pits::Value(pits::Vector{16, 39, 45})}};
  exec::RunOptions opts;
  opts.pits.engine = pits::ExecOptions::Engine::Walk;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::run_sequential(flat, inputs, opts));
  }
}
BENCHMARK(BM_ExecRunWalk);

void BM_FlattenLu(benchmark::State& state) {
  const auto design = workloads::lu3x3_design();
  for (auto _ : state) {
    benchmark::DoNotOptimize(design.flatten());
  }
}
BENCHMARK(BM_FlattenLu);

void BM_PitlRoundTrip(benchmark::State& state) {
  const auto design = workloads::lu3x3_design();
  const std::string text = graph::to_pitl(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::parse_design(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_PitlRoundTrip);

void BM_TopologyHops(benchmark::State& state) {
  const auto t = machine::Topology::hypercube(6);
  for (auto _ : state) {
    int acc = 0;
    for (machine::ProcId a = 0; a < t.num_procs(); ++a)
      for (machine::ProcId b = 0; b < t.num_procs(); ++b)
        acc += t.hops(a, b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TopologyHops);

// SERVE — cold-vs-cached request latency through the design service on
// a ~1024-task workload. Cold issues each request against a fresh
// Server (every artifact parsed, flattened, scheduled, rendered from
// scratch); cached replays the identical request against a warmed
// Server, so only the content-hash lookup and envelope assembly remain.
// The cached/cold ratio is the headline number BENCH_serve.json pins.

/// The 32x32 heat rod: 1024 update tasks plus scatter/gather.
const std::string& serve_heat_design() {
  static const std::string text =
      graph::to_pitl(workloads::heat_design(32, 32, 4));
  return text;
}

const char* serve_machine_text() {
  return "machine cube8\n"
         "topology hypercube dim=3\n"
         "speed 1\n"
         "message_startup 0.1\n"
         "bandwidth 1000\n";
}

std::string serve_schedule_request() {
  serve::Json req = serve::Json::object();
  req.add("id", serve::Json::number(1));
  req.add("op", serve::Json::string("schedule"));
  req.add("design", serve::Json::string(serve_heat_design()));
  req.add("machine", serve::Json::string(serve_machine_text()));
  return req.dump();
}

std::string serve_trial_request() {
  // The rod input store: segments * cells = 128 initial temperatures.
  std::string rod = "[";
  for (int i = 0; i < 128; ++i) {
    if (i > 0) rod += ",";
    rod += (i % 16 == 0) ? "100" : "0";
  }
  rod += "]";
  serve::Json inputs = serve::Json::object();
  inputs.add("rod", serve::Json::string(rod));
  serve::Json req = serve::Json::object();
  req.add("id", serve::Json::number(1));
  req.add("op", serve::Json::string("trial"));
  req.add("design", serve::Json::string(serve_heat_design()));
  req.add("inputs", std::move(inputs));
  return req.dump();
}

void BM_ServeScheduleCold(benchmark::State& state) {
  const std::string request = serve_schedule_request();
  for (auto _ : state) {
    serve::Server server;
    benchmark::DoNotOptimize(server.handle_line(request));
  }
}
BENCHMARK(BM_ServeScheduleCold);

void BM_ServeScheduleCached(benchmark::State& state) {
  const std::string request = serve_schedule_request();
  serve::Server server;
  benchmark::DoNotOptimize(server.handle_line(request));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(request));
  }
}
BENCHMARK(BM_ServeScheduleCached);

void BM_ServeTrialCold(benchmark::State& state) {
  const std::string request = serve_trial_request();
  for (auto _ : state) {
    serve::Server server;
    benchmark::DoNotOptimize(server.handle_line(request));
  }
}
BENCHMARK(BM_ServeTrialCold);

void BM_ServeTrialCached(benchmark::State& state) {
  const std::string request = serve_trial_request();
  serve::Server server;
  benchmark::DoNotOptimize(server.handle_line(request));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(request));
  }
}
BENCHMARK(BM_ServeTrialCached);

/// One `inputs_batch` request carrying `trials` distinct rod inputs.
std::string serve_trial_batch_request(int trials) {
  serve::Json batch = serve::Json::array();
  for (int t = 0; t < trials; ++t) {
    std::string rod = "[";
    for (int i = 0; i < 128; ++i) {
      if (i > 0) rod += ",";
      rod += (i % 16 == t % 16) ? "100" : "0";
    }
    rod += "]";
    serve::Json inputs = serve::Json::object();
    inputs.add("rod", serve::Json::string(rod));
    batch.push(std::move(inputs));
  }
  serve::Json req = serve::Json::object();
  req.add("id", serve::Json::number(1));
  req.add("op", serve::Json::string("trial"));
  req.add("design", serve::Json::string(serve_heat_design()));
  req.add("inputs_batch", std::move(batch));
  return req.dump();
}

// A 256-trial batch against a fresh server each iteration: the design
// is parsed, planned and compiled once per request, so per-trial time
// should sit far below BM_ServeTrialCold. items/s is trials per second.
void BM_ServeTrialBatch(benchmark::State& state) {
  constexpr int kTrials = 256;
  const std::string request = serve_trial_batch_request(kTrials);
  for (auto _ : state) {
    serve::Server server;
    benchmark::DoNotOptimize(server.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_ServeTrialBatch);

}  // namespace

BENCHMARK_MAIN();
