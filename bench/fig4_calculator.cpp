// FIG4 — reproduces the paper's Figure 4: the calculator panel defining
// the SquareRoot task, which "uses Newton-Raphson approximation to
// compute x = sqrt(a)".
//
// The harness reconstructs the panel exactly as a user would: declare
// the IO/local variable windows, build the routine, lint it, render the
// panel, and press "=" for trial runs over a sweep of inputs — the
// instant-feedback loop the figure illustrates.
#include <cmath>
#include <cstdio>

#include "calc/panel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace banger;
  using calc::CalculatorPanel;

  std::puts("=== FIG4: calculator panel for the SquareRoot task ===\n");

  CalculatorPanel panel("SquareRoot");
  panel.declare_input("a");
  panel.declare_output("x");
  panel.declare_local("guess");
  panel.declare_local("i");
  panel.set_program_text(
      "-- Newton-Raphson approximation of x = sqrt(a)\n"
      "guess := a / 2\n"
      "i := 0\n"
      "while i < 20 do\n"
      "  guess := 0.5 * (guess + a / guess)\n"
      "  i := i + 1\n"
      "end\n"
      "x := guess\n");

  const auto issues = panel.lint();
  std::printf("lint: %s\n\n", issues.empty() ? "clean" : issues[0].c_str());

  std::fputs(panel.render().c_str(), stdout);

  std::puts("\n--- trial runs (the \"=\" key) ---");
  util::Table table;
  table.set_header({"a", "x (panel)", "sqrt(a)", "abs error"});
  for (double a : {2.0, 9.0, 144.0, 0.5, 1e6}) {
    const auto result = panel.trial_run({{"a", pits::Value(a)}});
    if (!result.ok) {
      std::printf("trial run failed: %s\n", result.error.c_str());
      return 1;
    }
    const double x = result.env.at("x").as_scalar();
    table.add_row({util::format_double(a, 8), util::format_double(x, 12),
                   util::format_double(std::sqrt(a), 12),
                   util::format_double(std::fabs(x - std::sqrt(a)), 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\n--- error feedback (what a wrong program shows instantly) ---");
  CalculatorPanel broken("Broken");
  broken.declare_input("a");
  broken.declare_output("x");
  broken.set_program_text("x := a / (a - a)\n");
  const auto result = broken.trial_run({{"a", pits::Value(4.0)}});
  std::printf("trial run: %s\n", result.ok ? "ok?!" : result.error.c_str());

  std::puts("\n--- exporting the panel as a PITL task node ---");
  const auto node = panel.to_node(20.0);
  std::printf("task %s  work=%.0f  in=[a]  out=[x]  (%zu bytes of PITS)\n",
              node.name.c_str(), node.work, node.pits.size());
  return 0;
}
