// ABL6 — granularity transforms. The paper's Results section claims
// Banger "can be extended to encompass fine-grained parallelism through
// the use of machine-independent data-parallel constructs"; its
// scheduling lineage adds grain *packing* for graphs that are too fine.
// This harness shows both directions:
//   * a too-fine graph, grain-packed at growing thresholds;
//   * a too-coarse graph, data-parallel split at shrinking thresholds.
#include <cstdio>

#include "sched/heuristics.hpp"
#include "transform/transform.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"

namespace {

using namespace banger;

machine::Machine cube8(double msg_startup, double bandwidth) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = msg_startup;
  p.bytes_per_second = bandwidth;
  return machine::Machine(machine::Topology::hypercube(3), p);
}

}  // namespace

int main() {
  std::puts("=== ABL6: grain packing and data-parallel splitting ===\n");
  sched::MhScheduler mh;

  // --- too fine: a 10x10 diamond of 0.2-work tasks, pricey messages ---
  std::puts("--- grain packing a too-fine 10x10 diamond (work 0.2/task, "
            "msgs 2s+64B) ---");
  const auto fine = workloads::diamond(10, 10, 0.2, 64.0);
  const auto m1 = cube8(2.0, 128.0);
  util::Table t1;
  t1.set_header({"min grain (s)", "tasks", "makespan", "vs unpacked"});
  const double base = mh.run(fine, m1).makespan();
  t1.add_row({"(none)", std::to_string(fine.num_tasks()),
              util::format_double(base, 5), "1.0"});
  for (double grain : {0.4, 0.8, 1.6, 3.2, 6.4}) {
    transform::GrainPackOptions opts;
    opts.min_grain_seconds = grain;
    opts.max_grain_seconds = grain * 2;
    const auto packed = transform::pack_grains(fine, m1, opts);
    const auto s = mh.run(packed.graph, m1);
    s.validate(packed.graph, m1);
    t1.add_row({util::format_double(grain, 3),
                std::to_string(packed.graph.num_tasks()),
                util::format_double(s.makespan(), 5),
                util::format_double(s.makespan() / base, 4)});
  }
  std::fputs(t1.to_string().c_str(), stdout);
  std::puts("expected: packing first *helps* (fewer, cheaper messages),"
            "\nthen overshoots once grains serialise the wavefront.\n");

  // --- too coarse: few huge tasks, cheap messages ---
  std::puts("--- data-parallel splitting a coarse pipeline (4 tasks of "
            "work 32, cheap msgs) ---");
  const auto coarse = workloads::chain_graph(4, 32.0, 64.0);
  const auto m2 = cube8(0.02, 1e5);
  util::Table t2;
  t2.set_header({"split threshold (s)", "tasks", "makespan", "speedup"});
  {
    const auto s = mh.run(coarse, m2);
    const auto metrics = sched::compute_metrics(s, coarse, m2);
    t2.add_row({"(none)", std::to_string(coarse.num_tasks()),
                util::format_double(s.makespan(), 5),
                util::format_double(metrics.speedup, 4)});
  }
  for (double threshold : {16.0, 8.0, 4.0}) {
    const auto split =
        transform::split_heavy_tasks(coarse, m2, threshold, 8);
    const auto s = mh.run(split.graph, m2);
    s.validate(split.graph, m2);
    const auto metrics = sched::compute_metrics(s, split.graph, m2);
    t2.add_row({util::format_double(threshold, 4),
                std::to_string(split.graph.num_tasks()),
                util::format_double(s.makespan(), 5),
                util::format_double(metrics.speedup, 4)});
  }
  std::fputs(t2.to_string().c_str(), stdout);
  std::puts("expected: a serial chain gains nothing until split; shards"
            "\nunlock the 8 processors, with communication setting the "
            "floor.");
  return 0;
}
