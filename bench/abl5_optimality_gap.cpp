// ABL5 — optimality gap. The paper calls PPSE's heuristics "optimal
// scheduling heuristics"; branch and bound makes that checkable on
// small instances: how far is each heuristic from the true optimum?
#include <cstdio>
#include <map>
#include <vector>

#include "sched/optimal.hpp"
#include "sched/scheduler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine full(int procs, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return machine::Machine(machine::Topology::fully_connected(procs), p);
}

}  // namespace

int main() {
  std::puts("=== ABL5: heuristic makespan / optimal makespan (1.0 = "
            "optimal) ===\n");

  struct Case {
    std::string name;
    graph::TaskGraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"lu4", workloads::lu_taskgraph(4, 8.0)});       // 9 tasks
  cases.push_back({"forkjoin8", workloads::fork_join(8, 2.0, 16.0)});
  cases.push_back({"diamond3x3", workloads::diamond(3, 3, 2.0, 16.0)});
  cases.push_back({"chain8", workloads::chain_graph(8, 1.5, 16.0)});
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    workloads::RandomGraphSpec spec;
    spec.layers = 3;
    spec.width = 4;
    spec.seed = seed;
    auto g = workloads::random_layered(spec);
    if (g.num_tasks() <= 12) {
      cases.push_back({"random" + std::to_string(seed), std::move(g)});
    }
  }

  const std::vector<std::string> heuristics = {"mh",  "mcp",     "etf",
                                               "dls", "dsh",     "cluster",
                                               "roundrobin"};
  std::map<std::string, double> worst;

  for (double ccr : {0.25, 1.0, 4.0}) {
    std::printf("--- CCR %.2f, fully connected, 3 processors ---\n", ccr);
    const auto m = full(3, ccr);
    util::Table table;
    std::vector<std::string> header{"workload", "optimal"};
    for (const auto& h : heuristics) header.push_back(h);
    table.set_header(header);
    for (const auto& c : cases) {
      sched::OptimalScheduler::Limits limits;
      limits.max_tasks = 14;
      limits.max_nodes = 50'000'000;
      sched::OptimalScheduler opt(limits, {});
      double opt_span = 0;
      try {
        const auto s = opt.run(c.graph, m);
        s.validate(c.graph, m);
        opt_span = s.makespan();
      } catch (const Error& e) {
        std::printf("  (skipping %s: %s)\n", c.name.c_str(), e.what());
        continue;
      }
      std::vector<std::string> row{c.name, util::format_double(opt_span, 5)};
      for (const auto& h : heuristics) {
        const auto s = sched::make_scheduler(h)->run(c.graph, m);
        const double ratio = opt_span > 0 ? s.makespan() / opt_span : 1.0;
        worst[h] = std::max(worst[h], ratio);
        row.push_back(util::format_double(ratio, 4));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }

  std::puts("--- worst-case ratio per heuristic over all cases ---");
  util::Table summary;
  summary.set_header({"heuristic", "worst ratio"});
  for (const auto& h : heuristics) {
    summary.add_row({h, util::format_double(worst[h], 4)});
  }
  std::fputs(summary.to_string().c_str(), stdout);
  std::puts("\nexpected shape: list heuristics within a few percent of the"
            "\noptimum on these sizes; round-robin much further away. This"
            "\nsubstantiates the paper's reliance on heuristic scheduling."
            "\nnote: `optimal` excludes duplication, so DSH may post ratios"
            "\nbelow 1.0 at high CCR — duplication genuinely beats every"
            "\nnon-duplicating schedule there.");
  return 0;
}
