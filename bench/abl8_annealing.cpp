// ABL8 — iterative improvement vs one-pass heuristics. The 1990s
// scheduling literature offered simulated annealing as the
// "spend-more-get-better" option over list heuristics like PPSE's MH.
// This harness sweeps the annealing budget and asks: how much makespan
// does each extra order of magnitude of work buy, and does it ever
// catch DSH's duplication advantage?
#include <chrono>
#include <functional>
#include <cstdio>

#include "sched/anneal.hpp"
#include "sched/heuristics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine cube8(double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return machine::Machine(machine::Topology::hypercube(3), p);
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::puts("=== ABL8: simulated annealing budget vs one-pass heuristics "
            "===\n");

  struct Case {
    std::string name;
    graph::TaskGraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"lu12", workloads::lu_taskgraph(12, 8.0)});
  workloads::RandomGraphSpec spec;
  spec.layers = 6;
  spec.width = 8;
  spec.seed = 21;
  cases.push_back({"random", workloads::random_layered(spec)});
  cases.push_back({"diamond6x6", workloads::diamond(6, 6, 2.0, 32.0)});

  const auto m = cube8(1.0);
  for (const auto& c : cases) {
    std::printf("--- %s (%zu tasks, hypercube-8, CCR 1.0) ---\n",
                c.name.c_str(), c.graph.num_tasks());
    const double mh = sched::MhScheduler().run(c.graph, m).makespan();
    const double dsh = sched::DshScheduler().run(c.graph, m).makespan();

    util::Table table;
    table.set_header({"method", "makespan", "vs mh", "wall (s)"});
    table.add_row({"mh (seed)", util::format_double(mh, 5), "1.0", "-"});
    table.add_row({"dsh", util::format_double(dsh, 5),
                   util::format_double(dsh / mh, 4), "-"});
    for (int iters : {100, 1000, 10000}) {
      sched::AnnealOptions opts;
      opts.iterations = iters;
      opts.seed = 99;
      sched::AnnealScheduler anneal(opts, {});
      double makespan = 0;
      const double wall = seconds_of([&] {
        const auto s = anneal.run(c.graph, m);
        s.validate(c.graph, m);
        makespan = s.makespan();
      });
      table.add_row({"anneal " + std::to_string(iters),
                     util::format_double(makespan, 5),
                     util::format_double(makespan / mh, 4),
                     util::format_double(wall, 3)});
    }
    // Same total move budget as the 10000-iteration chain, split into 8
    // parallel restarts: wall-clock shrinks, quality usually improves.
    {
      sched::AnnealOptions opts;
      opts.iterations = 1250;
      opts.seed = 99;
      opts.restarts = 8;
      opts.jobs = 0;  // all cores
      sched::AnnealScheduler anneal(opts, {});
      double makespan = 0;
      const double wall = seconds_of([&] {
        const auto s = anneal.run(c.graph, m);
        s.validate(c.graph, m);
        makespan = s.makespan();
      });
      table.add_row({"anneal 1250x8", util::format_double(makespan, 5),
                     util::format_double(makespan / mh, 4),
                     util::format_double(wall, 3)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }
  std::puts("expected shape: annealing shaves a few percent off MH with"
            "\n~1000x the scheduling time, and still cannot reach DSH where"
            "\nduplication matters — placement alone has a floor. This is"
            "\nwhy PPSE shipped list heuristics.");
  return 0;
}
