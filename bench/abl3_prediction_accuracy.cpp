// ABL3 — prediction accuracy: the paper's instant feedback is only as
// honest as the analytic model behind it. This harness compares, for
// each workload:
//   predicted   the scheduler's analytic makespan (what Banger displays)
//   simulated   discrete-event replay, infinite link capacity
//   contended   discrete-event replay with per-link store-and-forward queueing
//   executed    real host threads running the PITS programs (wall clock,
//               shape only — host speed is not the model's speed)
#include <cstdio>
#include <thread>

#include "exec/executor.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace banger;

machine::Machine cube(int dim, double msg_startup, double bandwidth) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = msg_startup;
  p.bytes_per_second = bandwidth;
  return machine::Machine(machine::Topology::hypercube(dim), p);
}

}  // namespace

int main() {
  std::puts("=== ABL3: predicted vs simulated vs executed makespan ===\n");

  struct Case {
    std::string name;
    graph::TaskGraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"lu8", workloads::lu_taskgraph(8, 16.0)});
  cases.push_back({"fft16", workloads::fft_taskgraph(16, 2.0, 64.0)});
  cases.push_back({"diamond6x6", workloads::diamond(6, 6, 2.0, 32.0)});
  cases.push_back({"forkjoin16", workloads::fork_join(16, 3.0, 32.0)});

  const auto machine = cube(3, 0.2, 256.0);
  sched::MhScheduler mh;

  util::Table table;
  table.set_header({"workload", "predicted", "simulated", "contended",
                    "queue delay", "sim/pred"});
  for (auto& c : cases) {
    const auto schedule = mh.run(c.graph, machine);
    schedule.validate(c.graph, machine);
    sim::SimOptions free_links;
    free_links.record_events = false;
    sim::SimOptions contended;
    contended.record_events = false;
    contended.link_contention = true;
    const auto simulated = sim::simulate(c.graph, machine, schedule, free_links);
    const auto queued = sim::simulate(c.graph, machine, schedule, contended);
    table.add_row({c.name, util::format_double(schedule.makespan(), 5),
                   util::format_double(simulated.makespan, 5),
                   util::format_double(queued.makespan, 5),
                   util::format_double(queued.max_queue_delay, 4),
                   util::format_double(simulated.makespan /
                                           schedule.makespan(), 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nexpected: simulated <= predicted (replay compacts reserved "
            "gaps);\ncontended >= simulated (queueing the scheduler ignores).\n");

  // --- executed wall clock: shape check on real threads ---
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "--- real execution on host threads (synthesized PITS bodies) ---\n"
      "host cores: %u -- executed speedup is capped at min(predicted, %u)\n",
      cores, cores);
  util::Table texec;
  texec.set_header({"workload", "procs", "predicted ratio", "executed ratio"});
  for (const char* name : {"lu6", "forkjoin8"}) {
    graph::TaskGraph g = std::string(name) == "lu6"
                             ? workloads::lu_taskgraph(6, 8.0)
                             : workloads::fork_join(8, 2.0, 16.0);
    workloads::SynthOptions synth;
    synth.iterations_per_work = 20000;  // make tasks long enough to time
    workloads::synthesize_pits(g, synth);
    auto flat = workloads::as_flatten(std::move(g));

    // Cheap comm machine: host threads share memory, so compare against
    // a near-zero-comm model for the *ratio* serial/parallel.
    const auto m1 = cube(0, 0.0001, 1e9);
    const auto m4 = cube(2, 0.0001, 1e9);
    const auto s1 = sched::SerialScheduler().run(flat.graph, m1);
    const auto s4 = mh.run(flat.graph, m4);
    const double predicted_ratio = s1.makespan() / s4.makespan();

    exec::Executor e1(flat, m1);
    exec::Executor e4(flat, m4);
    const double t1 = e1.run(s1, {}).wall_seconds;
    const double t4 = e4.run(s4, {}).wall_seconds;
    texec.add_row({name, "1 vs 4",
                   util::format_double(predicted_ratio, 4),
                   util::format_double(t1 / t4, 4)});
  }
  std::fputs(texec.to_string().c_str(), stdout);
  std::puts("\nexpected: executed speedup tracks predicted direction up to"
            "\nthe host core budget (the host is not the modeled machine;"
            "\non a single-core host the executed ratio stays near 1.0).");
  return 0;
}
