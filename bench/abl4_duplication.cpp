// ABL4 — duplication & grain packing. Banger's scheduling lineage
// (Kruatrachue & Lewis) is precisely about recovering efficiency lost to
// communication by duplicating tasks and packing grains. This harness
// sweeps the communication-to-computation ratio and compares MH (no
// duplication), DSH (duplication), and cluster (grain packing), plus a
// duplication-depth ablation.
#include <cstdio>

#include "sched/heuristics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine full4(double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return machine::Machine(machine::Topology::fully_connected(4), p);
}

}  // namespace

int main() {
  std::puts("=== ABL4: duplication (DSH) and grain packing (cluster) vs "
            "plain list scheduling (MH) ===\n");

  struct Case {
    std::string name;
    graph::TaskGraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"outtree", workloads::divide_conquer(4, 1.0, 8.0)});
  cases.push_back({"forkjoin12", workloads::fork_join(12, 1.0, 8.0)});
  cases.push_back({"fft8", workloads::fft_taskgraph(8, 1.0, 8.0)});
  cases.push_back({"lu8", workloads::lu_taskgraph(8, 8.0)});

  for (const auto& c : cases) {
    std::printf("--- %s ---\n", c.name.c_str());
    util::Table table;
    table.set_header({"CCR", "mh", "dsh", "dsh dups", "cluster",
                      "dsh gain %"});
    for (double ccr : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto m = full4(ccr);
      const auto mh = sched::MhScheduler().run(c.graph, m);
      const auto dsh = sched::DshScheduler().run(c.graph, m);
      const auto cluster = sched::ClusterScheduler().run(c.graph, m);
      mh.validate(c.graph, m);
      dsh.validate(c.graph, m);
      cluster.validate(c.graph, m);
      table.add_row(
          {util::format_double(ccr, 3), util::format_double(mh.makespan(), 5),
           util::format_double(dsh.makespan(), 5),
           std::to_string(dsh.num_duplicates()),
           util::format_double(cluster.makespan(), 5),
           util::format_double(
               100.0 * (mh.makespan() - dsh.makespan()) / mh.makespan(), 3)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }
  std::puts("expected shape: at low CCR all agree (no duplicates); as CCR"
            "\ngrows DSH duplicates ancestors and wins; cluster packs grains"
            "\nand converges to serial-like placement at extreme CCR.\n");

  // --- duplication depth ablation ---
  std::puts("--- DSH duplication-depth ablation (divide&conquer, CCR 4) ---");
  const auto m = full4(4.0);
  const auto g = workloads::divide_conquer(5, 1.0, 8.0);
  util::Table table;
  table.set_header({"depth", "makespan", "duplicates"});
  for (int depth : {0, 1, 2, 4, 8}) {
    sched::SchedulerOptions opts;
    opts.duplication_depth = depth;
    const auto s = sched::DshScheduler(opts).run(g, m);
    s.validate(g, m);
    table.add_row({std::to_string(depth),
                   util::format_double(s.makespan(), 5),
                   std::to_string(s.num_duplicates())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("expected: deeper ancestor chains buy shorter makespans with"
            "\nmore duplicated work, flattening once chains are exhausted.");
  return 0;
}
