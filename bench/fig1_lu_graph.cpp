// FIG1 — reproduces the paper's Figure 1: the hierarchical PITL dataflow
// graph of an LU decomposition of a 3x3 system Ax = b.
//
// The paper shows the drawing; this harness prints the same design as a
// structure report, its DOT rendering (the drawable form), and the
// flattened task DAG statistics that the scheduling step consumes.
#include <cstdio>
#include <string>

#include "core/project.hpp"
#include "graph/analysis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/dot.hpp"
#include "workloads/lu.hpp"

int main() {
  using namespace banger;

  std::puts("=== FIG1: hierarchical PITL dataflow graph of 3x3 LU (Ax=b) ===");
  const auto design = workloads::lu3x3_design();
  Project project(design);

  // --- level-by-level inventory, mirroring the drawing ---
  for (graph::GraphId gid = 0;
       gid < static_cast<graph::GraphId>(design.num_graphs()); ++gid) {
    const auto& level = design.graph(gid);
    std::printf("\nlevel %d: graph `%s` (%zu nodes, %zu arcs)\n", gid,
                level.name().c_str(), level.num_nodes(), level.num_arcs());
    util::Table table;
    table.set_header({"node", "kind", "work/bytes", "in", "out"});
    for (const auto& node : level.nodes()) {
      table.add_row(
          {node.name, std::string(graph::to_string(node.kind)),
           node.kind == graph::NodeKind::Storage
               ? util::format_double(node.bytes) + "B"
               : util::format_double(node.work),
           util::join(node.inputs, ","), util::join(node.outputs, ",")});
    }
    std::fputs(table.to_string(2).c_str(), stdout);
  }

  // --- summary the environment shows instantly ---
  const auto s = project.summary();
  std::printf(
      "\ndesign summary: depth=%d leaf_tasks=%zu edges=%zu stores=%zu\n"
      "total work=%.0f  critical path=%.0f  average parallelism=%.2f\n",
      s.depth, s.leaf_tasks, s.edges, s.stores, s.total_work,
      s.critical_path_work, s.average_parallelism);

  const auto& flat = project.flattened();
  const auto profile = graph::level_profile(flat.graph);
  std::printf("precedence levels=%zu max width=%zu\n", profile.depth(),
              profile.max_width());

  std::puts("\n--- flattened task DAG (schedulable form) ---");
  for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    std::string succs;
    for (graph::TaskId v : flat.graph.succs(t)) {
      if (!succs.empty()) succs += ", ";
      succs += flat.graph.task(v).name;
    }
    std::printf("  %-12s work=%-3.0f -> %s\n", flat.graph.task(t).name.c_str(),
                flat.graph.task(t).work, succs.empty() ? "-" : succs.c_str());
  }

  std::puts("\n--- DOT rendering of the drawing (Fig. 1) ---");
  std::fputs(viz::to_dot(design).c_str(), stdout);
  return 0;
}
