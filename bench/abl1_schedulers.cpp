// ABL1 — scheduler-heuristic ablation. Banger's claim that "machine-
// independent parallel programming can be made efficient by optimal
// scheduling heuristics" rests on the heuristics beating naive
// placement. This harness compares every registered scheduler over the
// canonical workloads and topologies, reporting makespan and speedup.
#include <cstdio>
#include <vector>

#include "sched/compare.hpp"
#include "sched/scheduler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/charts.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine make_machine(const std::string& kind, int procs,
                              double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  if (kind == "hypercube") {
    int dim = 0;
    while ((1 << dim) < procs) ++dim;
    return machine::Machine(machine::Topology::hypercube(dim), p);
  }
  if (kind == "mesh")
    return machine::Machine(machine::Topology::mesh(2, procs / 2), p);
  if (kind == "star")
    return machine::Machine(machine::Topology::star(procs), p);
  return machine::Machine(machine::Topology::fully_connected(procs), p);
}

struct Workload {
  std::string name;
  graph::TaskGraph graph;
};

std::vector<Workload> workloads_under_test() {
  std::vector<Workload> out;
  out.push_back({"lu8", workloads::lu_taskgraph(8, 8.0)});
  out.push_back({"lu16", workloads::lu_taskgraph(16, 8.0)});
  out.push_back({"fft16", workloads::fft_taskgraph(16, 2.0, 64.0)});
  out.push_back({"forkjoin24", workloads::fork_join(24, 3.0, 32.0)});
  out.push_back({"diamond6x6", workloads::diamond(6, 6, 2.0, 16.0)});
  workloads::RandomGraphSpec spec;
  spec.layers = 8;
  spec.width = 10;
  spec.seed = 42;
  out.push_back({"random", workloads::random_layered(spec)});
  return out;
}

}  // namespace

int main() {
  std::puts("=== ABL1: scheduling heuristics across workloads ===");
  std::puts("(makespan in seconds; hypercube-8, CCR 0.5 unless noted)\n");

  const auto names = sched::scheduler_names();
  const auto loads = workloads_under_test();

  for (const char* topo : {"hypercube", "star"}) {
    const auto machine = make_machine(topo, 8, 0.5);
    std::printf("--- topology: %s ---\n", machine.name().c_str());
    util::Table table;
    std::vector<std::string> header{"workload"};
    for (const auto& n : names) header.push_back(n);
    table.set_header(header);
    for (const auto& wl : loads) {
      // One bake-off per workload, heuristics running concurrently.
      const auto entries =
          sched::compare_schedulers(wl.graph, machine, names);
      std::vector<std::string> row{wl.name};
      for (const auto& e : entries) {
        row.push_back(util::format_double(e.schedule.makespan(), 5));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }

  // Speedup view of one representative case.
  std::puts("--- speedup of each heuristic, lu16 on hypercube-8 ---");
  const auto machine = make_machine("hypercube", 8, 0.5);
  const auto lu16 = workloads::lu_taskgraph(16, 8.0);
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& e : sched::compare_schedulers(lu16, machine, names)) {
    bars.emplace_back(e.scheduler, e.metrics.speedup);
  }
  std::fputs(viz::render_bars(bars).c_str(), stdout);

  std::puts("\nexpected shape: mh/etf/dls/dsh lead; cluster close behind;");
  std::puts("roundrobin/random pay communication; serial = 1.0 by "
            "definition.");
  return 0;
}
