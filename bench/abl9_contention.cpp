// ABL9 — why the topology entry matters. The analytic scheduler treats
// links as infinitely capacious; the simulator's contention mode makes
// them real. This harness runs the *same* communication-heavy workload
// over the paper's topology menu and measures how much per-link
// queueing inflates the replayed makespan — the star's hub melts, the
// hypercube shrugs, exactly the trade the Fig. 2 machine-entry step
// asks the user to weigh.
#include <cstdio>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"

namespace {

using namespace banger;

machine::Machine with_topology(machine::Topology topology) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.3;
  p.bytes_per_second = 64.0;
  return machine::Machine(std::move(topology), p);
}

}  // namespace

int main() {
  std::puts("=== ABL9: link contention across the paper's topologies ===\n");
  std::puts("workload: all-to-all-ish coupled pipeline, 8 processors,\n"
            "round-robin placement (maximum traffic), messages 0.3s+32B\n");

  const auto g = workloads::pipeline(6, 8, /*coupled=*/true, 1.0, 32.0);
  sched::RoundRobinScheduler rr;
  sched::MhScheduler mh;

  util::Table table;
  table.set_header({"topology", "bisection", "no contention", "contended",
                    "inflation", "max queue (s)"});
  std::vector<machine::Topology> topologies;
  topologies.push_back(machine::Topology::fully_connected(8));
  topologies.push_back(machine::Topology::hypercube(3));
  topologies.push_back(machine::Topology::mesh(2, 4));
  topologies.push_back(machine::Topology::ring(8));
  topologies.push_back(machine::Topology::star(8));
  topologies.push_back(machine::Topology::chain(8));

  for (auto& topology : topologies) {
    const std::string bisection = std::to_string(topology.bisection_width());
    const auto m = with_topology(std::move(topology));
    const auto s = rr.run(g, m);
    s.validate(g, m);
    sim::SimOptions free_links;
    free_links.record_events = false;
    sim::SimOptions queued;
    queued.record_events = false;
    queued.link_contention = true;
    const auto ideal = sim::simulate(g, m, s, free_links);
    const auto real = sim::simulate(g, m, s, queued);
    table.add_row({m.topology().name(), bisection,
                   util::format_double(ideal.makespan, 5),
                   util::format_double(real.makespan, 5),
                   util::format_double(real.makespan / ideal.makespan, 4),
                   util::format_double(real.max_queue_delay, 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nexpected shape: hop *count* is already priced analytically, so"
      "\nmany-hop networks (chain, ring) show little extra inflation —"
      "\ntheir penalty sits in the no-contention column. What the analytic"
      "\nmodel misses is *sharing*: the star funnels every message through"
      "\nthe hub and inflates the most; full/hypercube barely queue.\n");

  // And the scheduler-aware view: does analytic optimality survive
  // contention?
  std::puts("--- same sweep with MH placement instead of round-robin ---");
  util::Table t2;
  t2.set_header({"topology", "no contention", "contended", "inflation"});
  std::vector<machine::Topology> again;
  again.push_back(machine::Topology::hypercube(3));
  again.push_back(machine::Topology::star(8));
  again.push_back(machine::Topology::chain(8));
  for (auto& topology : again) {
    const auto m = with_topology(std::move(topology));
    const auto s = mh.run(g, m);
    sim::SimOptions free_links;
    free_links.record_events = false;
    sim::SimOptions queued;
    queued.record_events = false;
    queued.link_contention = true;
    const auto ideal = sim::simulate(g, m, s, free_links);
    const auto real = sim::simulate(g, m, s, queued);
    t2.add_row({m.topology().name(), util::format_double(ideal.makespan, 5),
                util::format_double(real.makespan, 5),
                util::format_double(real.makespan / ideal.makespan, 4)});
  }
  std::fputs(t2.to_string().c_str(), stdout);
  std::puts(
      "expected: MH's tighter schedules leave less slack to hide queueing,"
      "\nso its *inflation* exceeds round-robin's; on rich networks its"
      "\ncontended makespan still wins, but on the star the hub bottleneck"
      "\nerases MH's analytic edge — analytically optimal is not"
      "\ncontention-optimal on hub topologies, which is exactly the gap"
      "\nthe simulator exists to expose.");
  return 0;
}
