// FIG2 — reproduces the paper's Figure 2: the network interconnection
// topologies Banger supports (hypercubes, meshes, trees, stars, and
// fully-connected networks; plus ring/chain for PPSE generality).
//
// For each family the harness prints the structural properties that
// drive the scheduler's communication model — links, degree, diameter,
// mean hop distance — over a size sweep, and the DOT form of two small
// examples (the paper shows two drawings).
#include <cstdio>
#include <vector>

#include "machine/topology.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/dot.hpp"

int main() {
  using namespace banger;
  using machine::Topology;

  std::puts("=== FIG2: interconnection topologies supported by Banger ===\n");

  util::Table table;
  table.set_header({"topology", "procs", "links", "max deg", "diameter",
                    "avg hops", "bisection"});
  auto row = [&table](const Topology& t) {
    std::string bisection = "-";
    try {
      bisection = std::to_string(t.bisection_width());
    } catch (const banger::Error&) {
      // Irregular and too large for the exhaustive cut search.
    }
    table.add_row({t.name(), std::to_string(t.num_procs()),
                   std::to_string(t.num_links()),
                   std::to_string(t.max_degree()),
                   std::to_string(t.diameter()),
                   util::format_double(t.average_distance(), 4),
                   bisection});
  };

  for (int dim : {1, 2, 3, 4, 5}) row(Topology::hypercube(dim));
  table.add_separator();
  row(Topology::mesh(2, 2));
  row(Topology::mesh(2, 4));
  row(Topology::mesh(4, 4));
  row(Topology::torus(4, 4));
  table.add_separator();
  row(Topology::tree(2, 7));
  row(Topology::tree(2, 15));
  row(Topology::tree(3, 13));
  table.add_separator();
  row(Topology::star(4));
  row(Topology::star(8));
  row(Topology::star(16));
  table.add_separator();
  row(Topology::ring(8));
  row(Topology::chain(8));
  table.add_separator();
  row(Topology::fully_connected(4));
  row(Topology::fully_connected(8));
  row(Topology::fully_connected(16));
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\n--- example drawings (as DOT), mirroring the two figures ---");
  std::fputs(viz::to_dot(Topology::hypercube(3)).c_str(), stdout);
  std::fputs(viz::to_dot(Topology::mesh(2, 4)).c_str(), stdout);
  return 0;
}
