// ABL2 — machine-parameter sensitivity. The paper tailors a program to
// a machine via four characteristics (processor speed, process startup,
// message startup, transmission speed). This harness sweeps them and
// shows how predicted makespan/speedup respond — the crossover where
// parallelism stops paying is the figure's point.
#include <cstdio>
#include <vector>

#include "sched/heuristics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine cube8(double speed, double proc_startup, double msg_startup,
                       double bandwidth) {
  machine::MachineParams p;
  p.processor_speed = speed;
  p.process_startup = proc_startup;
  p.message_startup = msg_startup;
  p.bytes_per_second = bandwidth;
  return machine::Machine(machine::Topology::hypercube(3), p);
}

/// Runs one full scheduling pass per sweep value on all cores; rows come
/// back in sweep order, so the tables are identical to the serial run.
template <typename Fn>
std::vector<sched::ScheduleMetrics> sweep(const std::vector<double>& values,
                                          Fn&& fn) {
  return util::parallel_map(values, /*jobs=*/0, fn);
}

}  // namespace

int main() {
  std::puts("=== ABL2: sensitivity to the four machine parameters ===\n");
  const auto lu = workloads::lu_taskgraph(10, 8.0);
  sched::MhScheduler mh;
  sched::SerialScheduler serial;

  // --- message startup sweep ---
  std::puts("--- message startup time sweep (bandwidth 1e3 B/s) ---");
  util::Table t1;
  t1.set_header({"msg startup (s)", "makespan", "speedup", "procs used"});
  const std::vector<double> startups{0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0};
  const auto r1 = sweep(startups, [&](double startup) {
    const auto m = cube8(1.0, 0.0, startup, 1e3);
    const auto s = mh.run(lu, m);
    s.validate(lu, m);
    return sched::compute_metrics(s, lu, m);
  });
  for (std::size_t i = 0; i < startups.size(); ++i) {
    t1.add_row({util::format_double(startups[i], 4),
                util::format_double(r1[i].makespan, 5),
                util::format_double(r1[i].speedup, 4),
                std::to_string(r1[i].procs_used)});
  }
  std::fputs(t1.to_string().c_str(), stdout);
  std::puts("expected: speedup decays toward 1.0 and the scheduler retreats"
            "\nto fewer processors as messages get dearer.\n");

  // --- transmission speed sweep ---
  std::puts("--- transmission speed sweep (startup 0.1s) ---");
  util::Table t2;
  t2.set_header({"bytes/s", "makespan", "speedup", "procs used"});
  const std::vector<double> bandwidths{1e1, 1e2, 1e3, 1e4, 1e6};
  const auto r2 = sweep(bandwidths, [&](double bw) {
    const auto m = cube8(1.0, 0.0, 0.1, bw);
    return sched::compute_metrics(mh.run(lu, m), lu, m);
  });
  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    t2.add_row({util::format_double(bandwidths[i], 4),
                util::format_double(r2[i].makespan, 5),
                util::format_double(r2[i].speedup, 4),
                std::to_string(r2[i].procs_used)});
  }
  std::fputs(t2.to_string().c_str(), stdout);

  // --- processor speed: scales everything uniformly ---
  std::puts("\n--- processor speed sweep (comm fixed: startup 0.1, 1e3 B/s) ---");
  util::Table t3;
  t3.set_header({"speed (units/s)", "makespan", "speedup"});
  for (double speed : {0.5, 1.0, 2.0, 4.0}) {
    const auto m = cube8(speed, 0.0, 0.1, 1e3);
    const auto s = mh.run(lu, m);
    const auto metrics = sched::compute_metrics(s, lu, m);
    t3.add_row({util::format_double(speed, 3),
                util::format_double(metrics.makespan, 5),
                util::format_double(metrics.speedup, 4)});
  }
  std::fputs(t3.to_string().c_str(), stdout);
  std::puts("expected: faster processors *lower* speedup at fixed comm cost"
            "\n(computation shrinks, messages do not).\n");

  // --- process startup sweep ---
  std::puts("--- process startup sweep ---");
  util::Table t4;
  t4.set_header({"proc startup (s)", "makespan", "speedup"});
  for (double startup : {0.0, 0.1, 0.5, 2.0}) {
    const auto m = cube8(1.0, startup, 0.1, 1e3);
    const auto s = mh.run(lu, m);
    const auto metrics = sched::compute_metrics(s, lu, m);
    t4.add_row({util::format_double(startup, 3),
                util::format_double(metrics.makespan, 5),
                util::format_double(metrics.speedup, 4)});
  }
  std::fputs(t4.to_string().c_str(), stdout);

  // --- the crossover: when does 8 procs lose to 1? ---
  std::puts("\n--- parallel-vs-serial crossover as comm grows (forkjoin16) ---");
  const auto fj = workloads::fork_join(16, 2.0, 64.0);
  util::Table t5;
  t5.set_header({"msg startup", "mh makespan", "serial makespan", "winner"});
  for (double startup : {0.01, 0.1, 0.5, 1.0, 2.0, 8.0}) {
    const auto m = cube8(1.0, 0.0, startup, 1e3);
    const double par = mh.run(fj, m).makespan();
    const double ser = serial.run(fj, m).makespan();
    t5.add_row({util::format_double(startup, 4), util::format_double(par, 5),
                util::format_double(ser, 5),
                par < ser - 1e-9 ? "parallel" : "serial (mh matches it)"});
  }
  std::fputs(t5.to_string().c_str(), stdout);
  return 0;
}
