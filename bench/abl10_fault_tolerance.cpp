// ABL10 — fault tolerance. The paper's environment assumes a reliable
// machine; this ablation asks what each scheduling family gives up when
// that assumption breaks. For every schedule we kill its busiest
// processor (the most damaging single fail-stop fault) partway through
// the run, rebuild the stranded frontier on the survivors with the
// repair scheduler, and report the degraded makespan. Duplication (DSH)
// doubles as cheap redundancy: a task whose copy survives on another
// processor needs no re-execution, so DSH schedules should lose less
// makespan than single-copy MH schedules as CCR grows.
#include <cstdio>

#include "core/recovery.hpp"
#include "fault/fault.hpp"
#include "sched/heuristics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

machine::Machine full4(double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return machine::Machine(machine::Topology::fully_connected(4), p);
}

struct Outcome {
  double baseline = 0.0;
  double degraded = 0.0;
  double overhead = 0.0;
  int reexecuted = 0;
};

Outcome crash_busiest(const graph::TaskGraph& g, const machine::Machine& m,
                      const sched::Schedule& s, double fraction) {
  const auto plan = fault::plan_crash_busiest(s, fraction);
  const auto report = core::run_with_faults(g, m, s, plan);
  Outcome o;
  o.baseline = report.baseline_makespan;
  o.degraded = report.degraded_makespan;
  o.overhead = report.recovery_overhead;
  o.reexecuted = static_cast<int>(report.repair.reexecuted.size());
  return o;
}

}  // namespace

int main() {
  std::puts("=== ABL10: fault tolerance under a busiest-processor crash "
            "(DSH duplication as redundancy vs MH) ===\n");

  struct Case {
    std::string name;
    graph::TaskGraph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"forkjoin12", workloads::fork_join(12, 1.0, 8.0)});
  cases.push_back({"outtree", workloads::divide_conquer(4, 1.0, 8.0)});
  cases.push_back({"fft8", workloads::fft_taskgraph(8, 1.0, 8.0)});
  cases.push_back({"lu8", workloads::lu_taskgraph(8, 8.0)});

  for (const auto& c : cases) {
    std::printf("--- %s (crash at 50%% of each schedule's makespan) ---\n",
                c.name.c_str());
    util::Table table;
    table.set_header({"CCR", "mh base", "mh degr", "mh lost", "dsh base",
                      "dsh degr", "dsh lost", "dsh reexec"});
    for (double ccr : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto m = full4(ccr);
      const auto mh = sched::MhScheduler().run(c.graph, m);
      const auto dsh = sched::DshScheduler().run(c.graph, m);
      const auto omh = crash_busiest(c.graph, m, mh, 0.5);
      const auto odsh = crash_busiest(c.graph, m, dsh, 0.5);
      table.add_row({util::format_double(ccr, 3),
                     util::format_double(omh.baseline, 5),
                     util::format_double(omh.degraded, 5),
                     util::format_double(omh.overhead, 5),
                     util::format_double(odsh.baseline, 5),
                     util::format_double(odsh.degraded, 5),
                     util::format_double(odsh.overhead, 5),
                     std::to_string(odsh.reexecuted)});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }

  std::puts("--- crash-time sweep (forkjoin12, CCR 2): when does the fault "
            "hurt most? ---");
  {
    const auto g = workloads::fork_join(12, 1.0, 8.0);
    const auto m = full4(2.0);
    const auto mh = sched::MhScheduler().run(g, m);
    const auto dsh = sched::DshScheduler().run(g, m);
    util::Table table;
    table.set_header({"crash frac", "mh lost", "dsh lost"});
    for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const auto omh = crash_busiest(g, m, mh, f);
      const auto odsh = crash_busiest(g, m, dsh, f);
      table.add_row({util::format_double(f, 3),
                     util::format_double(omh.overhead, 5),
                     util::format_double(odsh.overhead, 5)});
    }
    std::fputs(table.to_string().c_str(), stdout);
  }

  std::puts("\nexpected shape: losing the busiest processor always costs"
            "\nmakespan (lost >= 0), and the cost grows the later the crash"
            "\nlands (more finished work dies with the processor). As CCR"
            "\ngrows, DSH's duplicated ancestors survive on other processors"
            "\nand feed the repair pass for free, so DSH loses less makespan"
            "\nthan single-copy MH. Re-executed counts shrink for DSH for the"
            "\nsame reason.");
  return 0;
}
