// ABL7 — heterogeneous machines. PPSE's mapping heuristic was designed
// for "arbitrary target machines"; per-processor speed factors are the
// simplest heterogeneity. This harness compares heuristics on machines
// mixing fast and slow processors, and shows placement gravitating to
// the fast ones.
#include <cstdio>

#include "sched/scheduler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/graphs.hpp"
#include "workloads/lu.hpp"

namespace {

using namespace banger;

/// `fast` processors at speed `factor`, the rest at nominal speed.
machine::Machine mixed(int procs, int fast, double factor, double ccr) {
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  machine::Machine m(machine::Topology::fully_connected(procs), p);
  for (int q = 0; q < fast; ++q) {
    m.set_speed_factor(q, factor);
  }
  return m;
}

}  // namespace

int main() {
  std::puts("=== ABL7: scheduling onto heterogeneous machines ===\n");

  const auto lu = workloads::lu_taskgraph(10, 8.0);
  std::puts("--- lu10, 8 processors, 2 of them K-times faster (CCR 0.5) ---");
  util::Table t1;
  t1.set_header({"speed factor K", "mh", "dls", "dsh", "roundrobin",
                 "fast-proc busy share"});
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    const auto m = mixed(8, 2, factor, 0.5);
    std::vector<std::string> row{util::format_double(factor, 3)};
    double fast_share = 0;
    for (const char* name : {"mh", "dls", "dsh", "roundrobin"}) {
      const auto s = sched::make_scheduler(name)->run(lu, m);
      s.validate(lu, m);
      row.push_back(util::format_double(s.makespan(), 5));
      if (std::string(name) == "mh") {
        double fast_busy = s.busy(0) + s.busy(1);
        double total = 0;
        for (machine::ProcId p = 0; p < 8; ++p) total += s.busy(p);
        fast_share = total > 0 ? fast_busy / total : 0;
      }
    }
    row.push_back(util::format_double(fast_share, 4));
    t1.add_row(std::move(row));
  }
  std::fputs(t1.to_string().c_str(), stdout);
  std::puts("expected: makespan falls as K grows for the aware heuristics;"
            "\nMH's busy time concentrates on the fast processors;"
            "\nround-robin ignores speeds and falls behind.\n");

  // --- a fully skewed machine: every processor a different speed ---
  std::puts("--- forkjoin16 on an 8-proc machine with speeds 1..8 ---");
  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.05;
  p.bytes_per_second = 1e4;
  machine::Machine skew(machine::Topology::fully_connected(8), p);
  for (machine::ProcId q = 0; q < 8; ++q) {
    skew.set_speed_factor(q, 1.0 + q);
  }
  const auto fj = workloads::fork_join(16, 4.0, 16.0);
  util::Table t2;
  t2.set_header({"scheduler", "makespan", "speedup vs 1x-serial"});
  for (const auto& name : sched::scheduler_names()) {
    const auto s = sched::make_scheduler(name)->run(fj, skew);
    s.validate(fj, skew);
    const auto metrics = sched::compute_metrics(s, fj, skew);
    t2.add_row({name, util::format_double(s.makespan(), 5),
                util::format_double(metrics.speedup, 4)});
  }
  std::fputs(t2.to_string().c_str(), stdout);
  std::puts("\nexpected: EFT-family heuristics exploit the fast end of the"
            "\nmachine (speedup beyond the homogeneous bound); serial and"
            "\nround-robin cannot.");
  return 0;
}
