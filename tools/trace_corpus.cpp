// trace_corpus — generates the perf-smoke trace artifact CI archives: a
// 1024-task random layered graph is scheduled with ETF on a hypercube-8,
// replayed through the simulator under an active TraceRecorder, and the
// combined Chrome-trace JSON (planned schedule + replay + scheduler
// counters, deterministic domains only) is written out. Usage:
//
//   trace_corpus [trace.json]
//
// Exits 0 on success, 1 when the output file cannot be written.
#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "viz/trace.hpp"
#include "workloads/graphs.hpp"

int main(int argc, char** argv) {
  using namespace banger;

  const std::string out_path = argc > 1 ? argv[1] : "trace.json";

  workloads::RandomGraphSpec spec;
  spec.layers = 128;
  spec.width = 8;  // 128 x 8 = 1024 tasks, same corpus as BM_Sched/1024
  spec.seed = 7;
  const graph::TaskGraph graph = workloads::random_layered(spec);

  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.1;
  params.bytes_per_second = 1e3;
  const machine::Machine machine(machine::Topology::hypercube(3), params);

  obs::TraceRecorder rec;
  obs::ScopedRecorder scope(rec);
  const sched::Schedule schedule = sched::EtfScheduler().run(graph, machine);
  viz::record_schedule(rec, schedule, graph);
  viz::record_sim(rec, sim::simulate(graph, machine, schedule, {}), graph);

  obs::ExportOptions opts;
  opts.include_wall = false;  // byte-stable artifact across CI runners
  std::ofstream out(out_path);
  out << rec.to_chrome_json(opts);
  if (!out.good()) {
    std::cerr << "trace_corpus: cannot write `" << out_path << "`\n";
    return 1;
  }
  std::cout << "wrote " << rec.size() << " trace events for "
            << graph.num_tasks() << " tasks to `" << out_path << "`\n";
  return 0;
}
