// The `banger` command-line environment; all logic lives in cli/cli.cpp.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return banger::cli::run(args, std::cout, std::cerr);
}
