// serve_client — minimal line-oriented client for `banger serve --port`.
//
// Sends newline-delimited JSON requests to a running banger serve
// daemon and prints one response line per request. Usage:
//
//   serve_client HOST PORT [FILE]
//
// Reads requests from FILE (or stdin when absent / "-"); each input
// line must be one JSON request object, exactly what `banger serve`
// accepts on stdin. Exits 1 on connection failure or malformed usage,
// 0 otherwise — per-request failures are reported by the server inside
// the response envelopes, not by this process's exit code.
#include <fstream>
#include <iostream>
#include <string>

#include "util/error.hpp"
#include "util/net.hpp"

int main(int argc, char** argv) {
  using namespace banger;
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: serve_client HOST PORT [FILE]\n";
    return 1;
  }
  const std::string host = argv[1];
  int port = 0;
  try {
    port = std::stoi(argv[2]);
  } catch (...) {
    std::cerr << "serve_client: PORT must be a number, got `" << argv[2]
              << "`\n";
    return 1;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc == 4 && std::string(argv[3]) != "-") {
    file.open(argv[3], std::ios::binary);
    if (!file.is_open()) {
      std::cerr << "serve_client: cannot open " << argv[3] << "\n";
      return 1;
    }
    in = &file;
  }

  try {
    const int fd = util::tcp_connect(host, port);
    util::FdStreamBuf buf(fd);
    std::iostream io(&buf);
    std::string line;
    while (std::getline(*in, line)) {
      if (line.empty()) continue;
      io << line << "\n";
      io.flush();
      std::string response;
      if (!std::getline(io, response)) {
        std::cerr << "serve_client: connection closed by server\n";
        util::close_fd(fd);
        return 1;
      }
      std::cout << response << "\n";
    }
    util::close_fd(fd);
  } catch (const Error& e) {
    std::cerr << "serve_client: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
