// bench_to_json — converts google-benchmark CSV output into the compact
// BENCH_sched.json artifact CI archives: one record per benchmark with
// ns/op and items/sec. Usage:
//
//   perf_micro --benchmark_format=csv | bench_to_json > BENCH_sched.json
//   bench_to_json results.csv BENCH_sched.json
//
// Reads the named file (or stdin when absent / "-"), writes the named
// output (or stdout). Exits 1 on malformed input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Splits one CSV line, honouring double-quoted fields (google-benchmark
/// quotes names and counter headers; it never emits embedded quotes).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (char ch : line) {
    if (ch == '"') {
      quoted = !quoted;
    } else if (ch == ',' && !quoted) {
      fields.push_back(field);
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(field);
  return fields;
}

double to_ns(double value, const std::string& unit) {
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return value;  // ns (google-benchmark's default)
}

/// JSON string escaping for benchmark names (/, digits, letters only in
/// practice, but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc > 1 && std::string(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "bench_to_json: cannot read `%s`\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  // Find the header row (google-benchmark prints context lines first
  // when stderr is merged; the header always starts with "name,").
  std::string line;
  std::vector<std::string> header;
  while (std::getline(*in, line)) {
    if (line.rfind("name,", 0) == 0) {
      header = split_csv(line);
      break;
    }
  }
  if (header.empty()) {
    std::fprintf(stderr, "bench_to_json: no CSV header found\n");
    return 1;
  }
  auto column = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    return header.size();
  };
  const std::size_t col_name = column("name");
  const std::size_t col_iters = column("iterations");
  const std::size_t col_real = column("real_time");
  const std::size_t col_cpu = column("cpu_time");
  const std::size_t col_unit = column("time_unit");
  const std::size_t col_items = column("items_per_second");

  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n";
  bool first = true;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() <= col_cpu || fields[col_name].empty()) continue;
    const std::string& unit =
        col_unit < fields.size() ? fields[col_unit] : "ns";
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << json_escape(fields[col_name]) << "\""
        << ", \"iterations\": " << fields[col_iters]
        << ", \"real_ns_per_op\": "
        << to_ns(std::stod(fields[col_real]), unit)
        << ", \"cpu_ns_per_op\": " << to_ns(std::stod(fields[col_cpu]), unit);
    if (col_items < fields.size() && !fields[col_items].empty()) {
      out << ", \"items_per_sec\": " << fields[col_items];
    }
    out << "}";
  }
  out << "\n  ]\n}\n";

  if (argc > 2) {
    std::ofstream dst(argv[2]);
    if (!dst) {
      std::fprintf(stderr, "bench_to_json: cannot write `%s`\n", argv[2]);
      return 1;
    }
    dst << out.str();
  } else {
    std::cout << out.str();
  }
  return 0;
}
