// bench_to_json — converts google-benchmark CSV output into the compact
// BENCH_sched.json artifact CI archives: one record per benchmark with
// ns/op and items/sec. Usage:
//
//   perf_micro --benchmark_format=csv | bench_to_json > BENCH_sched.json
//   bench_to_json results.csv BENCH_sched.json
//   perf_micro --benchmark_format=csv | bench_to_json --check BENCH_pits.json
//
// Reads the named file (or stdin when absent / "-"), writes the named
// output (or stdout). Exits 1 on malformed input.
//
// `--check BASELINE.json [CSV]` is the CI perf-smoke guard: it compares
// the fresh CSV against a committed baseline produced by this tool.
// Because CI machines differ from the machine that recorded the
// baseline, raw ns/op is not comparable; the guard first normalises by
// the MEDIAN new/old ratio across every benchmark present in both runs
// (the machine-speed factor), then fails — exit 1 — if any *hot*
// benchmark (the named VM / executor / serve paths below) is more than
// 25% slower per op than the normalised baseline. A uniform slowdown
// (slower CI box) passes; a hot path regressing against its peers fails.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// The regression-guarded hot paths. Keep in sync with
/// docs/performance.md; names must match the benchmark output exactly.
const char* const kHotBenchmarks[] = {
    "BM_PitsExecVm",
    "BM_PitsCompile",
    "BM_ExecRunVm",
    "BM_ExecRunBatch/4096",
    "BM_ExecStream/1024",
    "BM_ServeTrialCached",
    "BM_ServeTrialBatch",
    "BM_ScheduleEtf/4096",
    "BM_ScheduleDsh/4096",
};

constexpr double kMaxRegression = 1.25;  // fail above +25% per op

/// Splits one CSV line, honouring double-quoted fields (google-benchmark
/// quotes names and counter headers; it never emits embedded quotes).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (char ch : line) {
    if (ch == '"') {
      quoted = !quoted;
    } else if (ch == ',' && !quoted) {
      fields.push_back(field);
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(field);
  return fields;
}

/// std::stod without the exceptions: false (and untouched `out`) on
/// malformed or empty text, so callers can report the offending line
/// and exit 1 instead of dying on an uncaught std::invalid_argument.
bool parse_num(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed == 0) return false;
    out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

double to_ns(double value, const std::string& unit) {
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  return value;  // ns (google-benchmark's default)
}

/// JSON string escaping for benchmark names (/, digits, letters only in
/// practice, but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

/// name -> cpu_ns_per_op parsed from a google-benchmark CSV stream.
/// Reports its own error (missing header, malformed number) to stderr
/// and returns false.
bool parse_csv(std::istream& in, std::map<std::string, double>& out) {
  std::string line;
  std::vector<std::string> header;
  while (std::getline(in, line)) {
    if (line.rfind("name,", 0) == 0) {
      header = split_csv(line);
      break;
    }
  }
  if (header.empty()) {
    std::fprintf(stderr, "bench_to_json: no CSV header found\n");
    return false;
  }
  auto column = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    return header.size();
  };
  const std::size_t col_name = column("name");
  const std::size_t col_cpu = column("cpu_time");
  const std::size_t col_unit = column("time_unit");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() <= col_cpu || fields[col_name].empty()) continue;
    const std::string& unit =
        col_unit < fields.size() ? fields[col_unit] : "ns";
    double cpu = 0;
    if (!parse_num(fields[col_cpu], cpu)) {
      std::fprintf(stderr,
                   "bench_to_json: malformed cpu_time in CSV line: %s\n",
                   line.c_str());
      return false;
    }
    out[fields[col_name]] = to_ns(cpu, unit);
  }
  return true;
}

/// name -> cpu_ns_per_op from a BENCH_*.json file this tool wrote. The
/// format is fixed (one record per line, fields in emit order), so a
/// line scan is exact — no general JSON parser needed. Reports its own
/// error (unreadable file, malformed number, no records) to stderr and
/// returns false.
bool parse_baseline(const std::string& path,
                    std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_to_json: cannot read baseline `%s`\n",
                 path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const auto name_key = line.find("\"name\": \"");
    if (name_key == std::string::npos) continue;
    const auto name_begin = name_key + 9;
    const auto name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const auto cpu_key = line.find("\"cpu_ns_per_op\": ", name_end);
    if (cpu_key == std::string::npos) continue;
    std::string name = line.substr(name_begin, name_end - name_begin);
    // Undo json_escape (only " and \ are ever escaped).
    std::string unescaped;
    for (std::size_t i = 0; i < name.size(); ++i) {
      if (name[i] == '\\' && i + 1 < name.size()) ++i;
      unescaped += name[i];
    }
    double cpu = 0;
    if (!parse_num(line.substr(cpu_key + 17), cpu)) {
      std::fprintf(stderr,
                   "bench_to_json: malformed cpu_ns_per_op in baseline "
                   "`%s` line: %s\n",
                   path.c_str(), line.c_str());
      return false;
    }
    out[unescaped] = cpu;
  }
  if (out.empty()) {
    std::fprintf(stderr, "bench_to_json: no records in baseline `%s`\n",
                 path.c_str());
    return false;
  }
  return true;
}

int run_check(const std::string& baseline_path, std::istream& in) {
  std::map<std::string, double> baseline;
  if (!parse_baseline(baseline_path, baseline)) return 1;
  std::map<std::string, double> fresh;
  if (!parse_csv(in, fresh)) return 1;

  // Machine-speed factor: median new/old ratio over the shared set.
  std::vector<double> ratios;
  for (const auto& [name, ns] : fresh) {
    const auto it = baseline.find(name);
    if (it != baseline.end() && it->second > 0) {
      ratios.push_back(ns / it->second);
    }
  }
  if (ratios.size() < 3) {
    std::fprintf(stderr,
                 "bench_to_json: only %zu benchmarks shared with the "
                 "baseline; need at least 3 to normalise\n",
                 ratios.size());
    return 1;
  }
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];

  int failures = 0;
  std::printf("perf-smoke vs %s (machine factor %.3fx)\n",
              baseline_path.c_str(), median);
  for (const char* hot : kHotBenchmarks) {
    const auto base = baseline.find(hot);
    const auto now = fresh.find(hot);
    if (base == baseline.end() || now == fresh.end()) {
      std::printf("  %-24s SKIP (missing from %s)\n", hot,
                  base == baseline.end() ? "baseline" : "fresh run");
      continue;
    }
    const double normalized = (now->second / base->second) / median;
    const bool bad = normalized > kMaxRegression;
    std::printf("  %-24s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n", hot,
                base->second, now->second, (normalized - 1.0) * 100.0,
                bad ? "FAIL" : "ok");
    if (bad) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_to_json: %d hot benchmark(s) regressed more than "
                 "%.0f%% per op\n",
                 failures, (kMaxRegression - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--check") {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: bench_to_json --check BASELINE.json [CSV]\n");
      return 1;
    }
    std::ifstream file;
    std::istream* in = &std::cin;
    if (argc > 3 && std::string(argv[3]) != "-") {
      file.open(argv[3]);
      if (!file) {
        std::fprintf(stderr, "bench_to_json: cannot read `%s`\n", argv[3]);
        return 1;
      }
      in = &file;
    }
    return run_check(argv[2], *in);
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc > 1 && std::string(argv[1]) != "-") {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "bench_to_json: cannot read `%s`\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  // Find the header row (google-benchmark prints context lines first
  // when stderr is merged; the header always starts with "name,").
  std::string line;
  std::vector<std::string> header;
  while (std::getline(*in, line)) {
    if (line.rfind("name,", 0) == 0) {
      header = split_csv(line);
      break;
    }
  }
  if (header.empty()) {
    std::fprintf(stderr, "bench_to_json: no CSV header found\n");
    return 1;
  }
  auto column = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    return header.size();
  };
  const std::size_t col_name = column("name");
  const std::size_t col_iters = column("iterations");
  const std::size_t col_real = column("real_time");
  const std::size_t col_cpu = column("cpu_time");
  const std::size_t col_unit = column("time_unit");
  const std::size_t col_items = column("items_per_second");

  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n";
  bool first = true;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() <= col_cpu || fields[col_name].empty()) continue;
    const std::string& unit =
        col_unit < fields.size() ? fields[col_unit] : "ns";
    double real = 0;
    double cpu = 0;
    if (!parse_num(fields[col_real], real) ||
        !parse_num(fields[col_cpu], cpu)) {
      std::fprintf(stderr, "bench_to_json: malformed timing in CSV line: %s\n",
                   line.c_str());
      return 1;
    }
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << json_escape(fields[col_name]) << "\""
        << ", \"iterations\": " << fields[col_iters]
        << ", \"real_ns_per_op\": " << to_ns(real, unit)
        << ", \"cpu_ns_per_op\": " << to_ns(cpu, unit);
    if (col_items < fields.size() && !fields[col_items].empty()) {
      out << ", \"items_per_sec\": " << fields[col_items];
    }
    out << "}";
  }
  out << "\n  ]\n}\n";

  if (argc > 2) {
    std::ofstream dst(argv[2]);
    if (!dst) {
      std::fprintf(stderr, "bench_to_json: cannot write `%s`\n", argv[2]);
      return 1;
    }
    dst << out.str();
  } else {
    std::cout << out.str();
  }
  return 0;
}
