file(REMOVE_RECURSE
  "CMakeFiles/fig2_topologies.dir/fig2_topologies.cpp.o"
  "CMakeFiles/fig2_topologies.dir/fig2_topologies.cpp.o.d"
  "fig2_topologies"
  "fig2_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
