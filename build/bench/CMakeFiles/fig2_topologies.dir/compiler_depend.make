# Empty compiler generated dependencies file for fig2_topologies.
# This may be replaced when dependencies are built.
