file(REMOVE_RECURSE
  "CMakeFiles/abl5_optimality_gap.dir/abl5_optimality_gap.cpp.o"
  "CMakeFiles/abl5_optimality_gap.dir/abl5_optimality_gap.cpp.o.d"
  "abl5_optimality_gap"
  "abl5_optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
