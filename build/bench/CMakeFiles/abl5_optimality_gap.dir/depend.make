# Empty dependencies file for abl5_optimality_gap.
# This may be replaced when dependencies are built.
