file(REMOVE_RECURSE
  "CMakeFiles/abl9_contention.dir/abl9_contention.cpp.o"
  "CMakeFiles/abl9_contention.dir/abl9_contention.cpp.o.d"
  "abl9_contention"
  "abl9_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl9_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
