# Empty compiler generated dependencies file for abl9_contention.
# This may be replaced when dependencies are built.
