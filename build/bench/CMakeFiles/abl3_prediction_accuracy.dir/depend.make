# Empty dependencies file for abl3_prediction_accuracy.
# This may be replaced when dependencies are built.
