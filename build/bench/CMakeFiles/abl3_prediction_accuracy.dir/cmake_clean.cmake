file(REMOVE_RECURSE
  "CMakeFiles/abl3_prediction_accuracy.dir/abl3_prediction_accuracy.cpp.o"
  "CMakeFiles/abl3_prediction_accuracy.dir/abl3_prediction_accuracy.cpp.o.d"
  "abl3_prediction_accuracy"
  "abl3_prediction_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_prediction_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
