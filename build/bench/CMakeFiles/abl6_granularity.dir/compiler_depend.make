# Empty compiler generated dependencies file for abl6_granularity.
# This may be replaced when dependencies are built.
