# Empty compiler generated dependencies file for fig4_calculator.
# This may be replaced when dependencies are built.
