file(REMOVE_RECURSE
  "CMakeFiles/fig4_calculator.dir/fig4_calculator.cpp.o"
  "CMakeFiles/fig4_calculator.dir/fig4_calculator.cpp.o.d"
  "fig4_calculator"
  "fig4_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
