file(REMOVE_RECURSE
  "CMakeFiles/abl2_machine_params.dir/abl2_machine_params.cpp.o"
  "CMakeFiles/abl2_machine_params.dir/abl2_machine_params.cpp.o.d"
  "abl2_machine_params"
  "abl2_machine_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_machine_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
