# Empty dependencies file for abl2_machine_params.
# This may be replaced when dependencies are built.
