file(REMOVE_RECURSE
  "CMakeFiles/abl4_duplication.dir/abl4_duplication.cpp.o"
  "CMakeFiles/abl4_duplication.dir/abl4_duplication.cpp.o.d"
  "abl4_duplication"
  "abl4_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
