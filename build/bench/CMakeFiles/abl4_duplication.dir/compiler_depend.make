# Empty compiler generated dependencies file for abl4_duplication.
# This may be replaced when dependencies are built.
