# Empty compiler generated dependencies file for abl1_schedulers.
# This may be replaced when dependencies are built.
