file(REMOVE_RECURSE
  "CMakeFiles/abl1_schedulers.dir/abl1_schedulers.cpp.o"
  "CMakeFiles/abl1_schedulers.dir/abl1_schedulers.cpp.o.d"
  "abl1_schedulers"
  "abl1_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
