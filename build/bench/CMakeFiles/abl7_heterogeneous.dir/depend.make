# Empty dependencies file for abl7_heterogeneous.
# This may be replaced when dependencies are built.
