file(REMOVE_RECURSE
  "CMakeFiles/abl7_heterogeneous.dir/abl7_heterogeneous.cpp.o"
  "CMakeFiles/abl7_heterogeneous.dir/abl7_heterogeneous.cpp.o.d"
  "abl7_heterogeneous"
  "abl7_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
