# Empty compiler generated dependencies file for fig1_lu_graph.
# This may be replaced when dependencies are built.
