file(REMOVE_RECURSE
  "CMakeFiles/fig1_lu_graph.dir/fig1_lu_graph.cpp.o"
  "CMakeFiles/fig1_lu_graph.dir/fig1_lu_graph.cpp.o.d"
  "fig1_lu_graph"
  "fig1_lu_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lu_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
