file(REMOVE_RECURSE
  "CMakeFiles/abl8_annealing.dir/abl8_annealing.cpp.o"
  "CMakeFiles/abl8_annealing.dir/abl8_annealing.cpp.o.d"
  "abl8_annealing"
  "abl8_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl8_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
