# Empty dependencies file for abl8_annealing.
# This may be replaced when dependencies are built.
