file(REMOVE_RECURSE
  "CMakeFiles/fig3_schedules.dir/fig3_schedules.cpp.o"
  "CMakeFiles/fig3_schedules.dir/fig3_schedules.cpp.o.d"
  "fig3_schedules"
  "fig3_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
