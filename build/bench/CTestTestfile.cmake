# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1_lu_graph "/root/repo/build/bench/fig1_lu_graph")
set_tests_properties(bench_fig1_lu_graph PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;16;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig2_topologies "/root/repo/build/bench/fig2_topologies")
set_tests_properties(bench_fig2_topologies PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;17;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig3_schedules "/root/repo/build/bench/fig3_schedules")
set_tests_properties(bench_fig3_schedules PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;18;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig4_calculator "/root/repo/build/bench/fig4_calculator")
set_tests_properties(bench_fig4_calculator PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;19;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl1_schedulers "/root/repo/build/bench/abl1_schedulers")
set_tests_properties(bench_abl1_schedulers PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;20;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl2_machine_params "/root/repo/build/bench/abl2_machine_params")
set_tests_properties(bench_abl2_machine_params PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;21;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl3_prediction_accuracy "/root/repo/build/bench/abl3_prediction_accuracy")
set_tests_properties(bench_abl3_prediction_accuracy PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;22;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl4_duplication "/root/repo/build/bench/abl4_duplication")
set_tests_properties(bench_abl4_duplication PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;23;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl5_optimality_gap "/root/repo/build/bench/abl5_optimality_gap")
set_tests_properties(bench_abl5_optimality_gap PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;24;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl6_granularity "/root/repo/build/bench/abl6_granularity")
set_tests_properties(bench_abl6_granularity PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;25;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl7_heterogeneous "/root/repo/build/bench/abl7_heterogeneous")
set_tests_properties(bench_abl7_heterogeneous PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;26;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl8_annealing "/root/repo/build/bench/abl8_annealing")
set_tests_properties(bench_abl8_annealing PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;27;banger_report;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_abl9_contention "/root/repo/build/bench/abl9_contention")
set_tests_properties(bench_abl9_contention PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;28;banger_report;/root/repo/bench/CMakeLists.txt;0;")
