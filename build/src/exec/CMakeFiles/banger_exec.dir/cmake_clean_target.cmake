file(REMOVE_RECURSE
  "libbanger_exec.a"
)
