# Empty dependencies file for banger_exec.
# This may be replaced when dependencies are built.
