file(REMOVE_RECURSE
  "CMakeFiles/banger_exec.dir/executor.cpp.o"
  "CMakeFiles/banger_exec.dir/executor.cpp.o.d"
  "libbanger_exec.a"
  "libbanger_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
