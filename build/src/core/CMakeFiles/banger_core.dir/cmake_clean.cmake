file(REMOVE_RECURSE
  "CMakeFiles/banger_core.dir/html_report.cpp.o"
  "CMakeFiles/banger_core.dir/html_report.cpp.o.d"
  "CMakeFiles/banger_core.dir/lint.cpp.o"
  "CMakeFiles/banger_core.dir/lint.cpp.o.d"
  "CMakeFiles/banger_core.dir/project.cpp.o"
  "CMakeFiles/banger_core.dir/project.cpp.o.d"
  "libbanger_core.a"
  "libbanger_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
