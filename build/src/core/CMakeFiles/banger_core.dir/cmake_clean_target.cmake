file(REMOVE_RECURSE
  "libbanger_core.a"
)
