# Empty dependencies file for banger_core.
# This may be replaced when dependencies are built.
