file(REMOVE_RECURSE
  "libbanger_cli.a"
)
