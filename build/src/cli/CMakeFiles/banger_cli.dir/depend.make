# Empty dependencies file for banger_cli.
# This may be replaced when dependencies are built.
