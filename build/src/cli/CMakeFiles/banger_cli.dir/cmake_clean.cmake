file(REMOVE_RECURSE
  "CMakeFiles/banger_cli.dir/cli.cpp.o"
  "CMakeFiles/banger_cli.dir/cli.cpp.o.d"
  "libbanger_cli.a"
  "libbanger_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
