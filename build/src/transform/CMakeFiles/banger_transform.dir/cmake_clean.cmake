file(REMOVE_RECURSE
  "CMakeFiles/banger_transform.dir/transform.cpp.o"
  "CMakeFiles/banger_transform.dir/transform.cpp.o.d"
  "libbanger_transform.a"
  "libbanger_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
