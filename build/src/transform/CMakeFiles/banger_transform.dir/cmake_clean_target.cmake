file(REMOVE_RECURSE
  "libbanger_transform.a"
)
