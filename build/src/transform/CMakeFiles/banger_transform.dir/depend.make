# Empty dependencies file for banger_transform.
# This may be replaced when dependencies are built.
