file(REMOVE_RECURSE
  "CMakeFiles/banger_machine.dir/machine.cpp.o"
  "CMakeFiles/banger_machine.dir/machine.cpp.o.d"
  "CMakeFiles/banger_machine.dir/serialize.cpp.o"
  "CMakeFiles/banger_machine.dir/serialize.cpp.o.d"
  "CMakeFiles/banger_machine.dir/topology.cpp.o"
  "CMakeFiles/banger_machine.dir/topology.cpp.o.d"
  "libbanger_machine.a"
  "libbanger_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
