file(REMOVE_RECURSE
  "libbanger_machine.a"
)
