# Empty compiler generated dependencies file for banger_machine.
# This may be replaced when dependencies are built.
