file(REMOVE_RECURSE
  "CMakeFiles/banger_sched.dir/anneal.cpp.o"
  "CMakeFiles/banger_sched.dir/anneal.cpp.o.d"
  "CMakeFiles/banger_sched.dir/baselines.cpp.o"
  "CMakeFiles/banger_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/banger_sched.dir/clustering.cpp.o"
  "CMakeFiles/banger_sched.dir/clustering.cpp.o.d"
  "CMakeFiles/banger_sched.dir/dsh.cpp.o"
  "CMakeFiles/banger_sched.dir/dsh.cpp.o.d"
  "CMakeFiles/banger_sched.dir/explain.cpp.o"
  "CMakeFiles/banger_sched.dir/explain.cpp.o.d"
  "CMakeFiles/banger_sched.dir/heuristics_list.cpp.o"
  "CMakeFiles/banger_sched.dir/heuristics_list.cpp.o.d"
  "CMakeFiles/banger_sched.dir/list_core.cpp.o"
  "CMakeFiles/banger_sched.dir/list_core.cpp.o.d"
  "CMakeFiles/banger_sched.dir/optimal.cpp.o"
  "CMakeFiles/banger_sched.dir/optimal.cpp.o.d"
  "CMakeFiles/banger_sched.dir/schedule.cpp.o"
  "CMakeFiles/banger_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/banger_sched.dir/scheduler.cpp.o"
  "CMakeFiles/banger_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/banger_sched.dir/serialize.cpp.o"
  "CMakeFiles/banger_sched.dir/serialize.cpp.o.d"
  "CMakeFiles/banger_sched.dir/speedup.cpp.o"
  "CMakeFiles/banger_sched.dir/speedup.cpp.o.d"
  "libbanger_sched.a"
  "libbanger_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
