file(REMOVE_RECURSE
  "libbanger_sched.a"
)
