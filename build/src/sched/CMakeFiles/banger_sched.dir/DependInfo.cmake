
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/anneal.cpp" "src/sched/CMakeFiles/banger_sched.dir/anneal.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/anneal.cpp.o.d"
  "/root/repo/src/sched/baselines.cpp" "src/sched/CMakeFiles/banger_sched.dir/baselines.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/baselines.cpp.o.d"
  "/root/repo/src/sched/clustering.cpp" "src/sched/CMakeFiles/banger_sched.dir/clustering.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/clustering.cpp.o.d"
  "/root/repo/src/sched/dsh.cpp" "src/sched/CMakeFiles/banger_sched.dir/dsh.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/dsh.cpp.o.d"
  "/root/repo/src/sched/explain.cpp" "src/sched/CMakeFiles/banger_sched.dir/explain.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/explain.cpp.o.d"
  "/root/repo/src/sched/heuristics_list.cpp" "src/sched/CMakeFiles/banger_sched.dir/heuristics_list.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/heuristics_list.cpp.o.d"
  "/root/repo/src/sched/list_core.cpp" "src/sched/CMakeFiles/banger_sched.dir/list_core.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/list_core.cpp.o.d"
  "/root/repo/src/sched/optimal.cpp" "src/sched/CMakeFiles/banger_sched.dir/optimal.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/optimal.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/banger_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/banger_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/serialize.cpp" "src/sched/CMakeFiles/banger_sched.dir/serialize.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/serialize.cpp.o.d"
  "/root/repo/src/sched/speedup.cpp" "src/sched/CMakeFiles/banger_sched.dir/speedup.cpp.o" "gcc" "src/sched/CMakeFiles/banger_sched.dir/speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/banger_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/banger_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
