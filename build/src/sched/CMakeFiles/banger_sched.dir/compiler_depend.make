# Empty compiler generated dependencies file for banger_sched.
# This may be replaced when dependencies are built.
