# Empty compiler generated dependencies file for banger_calc.
# This may be replaced when dependencies are built.
