file(REMOVE_RECURSE
  "libbanger_calc.a"
)
