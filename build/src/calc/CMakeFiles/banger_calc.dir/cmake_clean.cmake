file(REMOVE_RECURSE
  "CMakeFiles/banger_calc.dir/panel.cpp.o"
  "CMakeFiles/banger_calc.dir/panel.cpp.o.d"
  "libbanger_calc.a"
  "libbanger_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
