
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calc/panel.cpp" "src/calc/CMakeFiles/banger_calc.dir/panel.cpp.o" "gcc" "src/calc/CMakeFiles/banger_calc.dir/panel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/banger_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
