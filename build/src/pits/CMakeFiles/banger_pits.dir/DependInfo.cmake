
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pits/builtins.cpp" "src/pits/CMakeFiles/banger_pits.dir/builtins.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/builtins.cpp.o.d"
  "/root/repo/src/pits/interp.cpp" "src/pits/CMakeFiles/banger_pits.dir/interp.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/interp.cpp.o.d"
  "/root/repo/src/pits/lexer.cpp" "src/pits/CMakeFiles/banger_pits.dir/lexer.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/lexer.cpp.o.d"
  "/root/repo/src/pits/parser.cpp" "src/pits/CMakeFiles/banger_pits.dir/parser.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/parser.cpp.o.d"
  "/root/repo/src/pits/printer.cpp" "src/pits/CMakeFiles/banger_pits.dir/printer.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/printer.cpp.o.d"
  "/root/repo/src/pits/value.cpp" "src/pits/CMakeFiles/banger_pits.dir/value.cpp.o" "gcc" "src/pits/CMakeFiles/banger_pits.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
