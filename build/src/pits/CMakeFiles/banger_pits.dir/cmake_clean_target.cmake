file(REMOVE_RECURSE
  "libbanger_pits.a"
)
