file(REMOVE_RECURSE
  "CMakeFiles/banger_pits.dir/builtins.cpp.o"
  "CMakeFiles/banger_pits.dir/builtins.cpp.o.d"
  "CMakeFiles/banger_pits.dir/interp.cpp.o"
  "CMakeFiles/banger_pits.dir/interp.cpp.o.d"
  "CMakeFiles/banger_pits.dir/lexer.cpp.o"
  "CMakeFiles/banger_pits.dir/lexer.cpp.o.d"
  "CMakeFiles/banger_pits.dir/parser.cpp.o"
  "CMakeFiles/banger_pits.dir/parser.cpp.o.d"
  "CMakeFiles/banger_pits.dir/printer.cpp.o"
  "CMakeFiles/banger_pits.dir/printer.cpp.o.d"
  "CMakeFiles/banger_pits.dir/value.cpp.o"
  "CMakeFiles/banger_pits.dir/value.cpp.o.d"
  "libbanger_pits.a"
  "libbanger_pits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_pits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
