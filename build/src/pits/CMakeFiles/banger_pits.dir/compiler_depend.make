# Empty compiler generated dependencies file for banger_pits.
# This may be replaced when dependencies are built.
