file(REMOVE_RECURSE
  "CMakeFiles/banger_graph.dir/analysis.cpp.o"
  "CMakeFiles/banger_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/banger_graph.dir/builder.cpp.o"
  "CMakeFiles/banger_graph.dir/builder.cpp.o.d"
  "CMakeFiles/banger_graph.dir/design.cpp.o"
  "CMakeFiles/banger_graph.dir/design.cpp.o.d"
  "CMakeFiles/banger_graph.dir/graph.cpp.o"
  "CMakeFiles/banger_graph.dir/graph.cpp.o.d"
  "CMakeFiles/banger_graph.dir/serialize.cpp.o"
  "CMakeFiles/banger_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/banger_graph.dir/task_graph.cpp.o"
  "CMakeFiles/banger_graph.dir/task_graph.cpp.o.d"
  "libbanger_graph.a"
  "libbanger_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
