file(REMOVE_RECURSE
  "libbanger_graph.a"
)
