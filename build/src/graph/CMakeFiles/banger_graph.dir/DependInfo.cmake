
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/banger_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/banger_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/design.cpp" "src/graph/CMakeFiles/banger_graph.dir/design.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/design.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/banger_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/banger_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/serialize.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/banger_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/banger_graph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
