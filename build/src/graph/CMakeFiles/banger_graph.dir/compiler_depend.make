# Empty compiler generated dependencies file for banger_graph.
# This may be replaced when dependencies are built.
