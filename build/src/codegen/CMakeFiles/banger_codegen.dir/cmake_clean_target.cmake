file(REMOVE_RECURSE
  "libbanger_codegen.a"
)
