file(REMOVE_RECURSE
  "CMakeFiles/banger_codegen.dir/codegen.cpp.o"
  "CMakeFiles/banger_codegen.dir/codegen.cpp.o.d"
  "CMakeFiles/banger_codegen.dir/runtime_preamble.cpp.o"
  "CMakeFiles/banger_codegen.dir/runtime_preamble.cpp.o.d"
  "libbanger_codegen.a"
  "libbanger_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
