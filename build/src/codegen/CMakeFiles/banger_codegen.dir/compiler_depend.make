# Empty compiler generated dependencies file for banger_codegen.
# This may be replaced when dependencies are built.
