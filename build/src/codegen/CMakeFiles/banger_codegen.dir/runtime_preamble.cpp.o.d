src/codegen/CMakeFiles/banger_codegen.dir/runtime_preamble.cpp.o: \
 /root/repo/src/codegen/runtime_preamble.cpp /usr/include/stdc-predef.h \
 /root/repo/src/codegen/runtime_preamble.hpp
