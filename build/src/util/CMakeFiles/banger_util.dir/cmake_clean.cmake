file(REMOVE_RECURSE
  "CMakeFiles/banger_util.dir/error.cpp.o"
  "CMakeFiles/banger_util.dir/error.cpp.o.d"
  "CMakeFiles/banger_util.dir/strings.cpp.o"
  "CMakeFiles/banger_util.dir/strings.cpp.o.d"
  "CMakeFiles/banger_util.dir/table.cpp.o"
  "CMakeFiles/banger_util.dir/table.cpp.o.d"
  "libbanger_util.a"
  "libbanger_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
