file(REMOVE_RECURSE
  "libbanger_util.a"
)
