# Empty dependencies file for banger_util.
# This may be replaced when dependencies are built.
