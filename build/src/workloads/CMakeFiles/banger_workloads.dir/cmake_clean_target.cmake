file(REMOVE_RECURSE
  "libbanger_workloads.a"
)
