file(REMOVE_RECURSE
  "CMakeFiles/banger_workloads.dir/designs.cpp.o"
  "CMakeFiles/banger_workloads.dir/designs.cpp.o.d"
  "CMakeFiles/banger_workloads.dir/graphs.cpp.o"
  "CMakeFiles/banger_workloads.dir/graphs.cpp.o.d"
  "CMakeFiles/banger_workloads.dir/lu.cpp.o"
  "CMakeFiles/banger_workloads.dir/lu.cpp.o.d"
  "CMakeFiles/banger_workloads.dir/synth.cpp.o"
  "CMakeFiles/banger_workloads.dir/synth.cpp.o.d"
  "libbanger_workloads.a"
  "libbanger_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
