
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/designs.cpp" "src/workloads/CMakeFiles/banger_workloads.dir/designs.cpp.o" "gcc" "src/workloads/CMakeFiles/banger_workloads.dir/designs.cpp.o.d"
  "/root/repo/src/workloads/graphs.cpp" "src/workloads/CMakeFiles/banger_workloads.dir/graphs.cpp.o" "gcc" "src/workloads/CMakeFiles/banger_workloads.dir/graphs.cpp.o.d"
  "/root/repo/src/workloads/lu.cpp" "src/workloads/CMakeFiles/banger_workloads.dir/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/banger_workloads.dir/lu.cpp.o.d"
  "/root/repo/src/workloads/synth.cpp" "src/workloads/CMakeFiles/banger_workloads.dir/synth.cpp.o" "gcc" "src/workloads/CMakeFiles/banger_workloads.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/banger_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
