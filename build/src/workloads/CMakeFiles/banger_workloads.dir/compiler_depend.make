# Empty compiler generated dependencies file for banger_workloads.
# This may be replaced when dependencies are built.
