file(REMOVE_RECURSE
  "libbanger_sim.a"
)
