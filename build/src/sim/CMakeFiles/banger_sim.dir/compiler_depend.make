# Empty compiler generated dependencies file for banger_sim.
# This may be replaced when dependencies are built.
