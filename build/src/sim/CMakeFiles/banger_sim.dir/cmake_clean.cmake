file(REMOVE_RECURSE
  "CMakeFiles/banger_sim.dir/simulator.cpp.o"
  "CMakeFiles/banger_sim.dir/simulator.cpp.o.d"
  "libbanger_sim.a"
  "libbanger_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
