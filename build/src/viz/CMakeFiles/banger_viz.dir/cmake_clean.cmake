file(REMOVE_RECURSE
  "CMakeFiles/banger_viz.dir/charts.cpp.o"
  "CMakeFiles/banger_viz.dir/charts.cpp.o.d"
  "CMakeFiles/banger_viz.dir/dot.cpp.o"
  "CMakeFiles/banger_viz.dir/dot.cpp.o.d"
  "CMakeFiles/banger_viz.dir/gantt.cpp.o"
  "CMakeFiles/banger_viz.dir/gantt.cpp.o.d"
  "CMakeFiles/banger_viz.dir/trace.cpp.o"
  "CMakeFiles/banger_viz.dir/trace.cpp.o.d"
  "libbanger_viz.a"
  "libbanger_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
