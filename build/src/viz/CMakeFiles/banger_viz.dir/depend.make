# Empty dependencies file for banger_viz.
# This may be replaced when dependencies are built.
