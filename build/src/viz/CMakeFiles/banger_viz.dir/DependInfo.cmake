
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/charts.cpp" "src/viz/CMakeFiles/banger_viz.dir/charts.cpp.o" "gcc" "src/viz/CMakeFiles/banger_viz.dir/charts.cpp.o.d"
  "/root/repo/src/viz/dot.cpp" "src/viz/CMakeFiles/banger_viz.dir/dot.cpp.o" "gcc" "src/viz/CMakeFiles/banger_viz.dir/dot.cpp.o.d"
  "/root/repo/src/viz/gantt.cpp" "src/viz/CMakeFiles/banger_viz.dir/gantt.cpp.o" "gcc" "src/viz/CMakeFiles/banger_viz.dir/gantt.cpp.o.d"
  "/root/repo/src/viz/trace.cpp" "src/viz/CMakeFiles/banger_viz.dir/trace.cpp.o" "gcc" "src/viz/CMakeFiles/banger_viz.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/banger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/banger_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/banger_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/banger_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
