file(REMOVE_RECURSE
  "libbanger_viz.a"
)
