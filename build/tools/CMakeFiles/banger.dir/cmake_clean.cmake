file(REMOVE_RECURSE
  "CMakeFiles/banger.dir/banger_main.cpp.o"
  "CMakeFiles/banger.dir/banger_main.cpp.o.d"
  "banger"
  "banger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
