# Empty dependencies file for banger.
# This may be replaced when dependencies are built.
