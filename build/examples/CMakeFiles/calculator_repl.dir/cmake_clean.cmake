file(REMOVE_RECURSE
  "CMakeFiles/calculator_repl.dir/calculator_repl.cpp.o"
  "CMakeFiles/calculator_repl.dir/calculator_repl.cpp.o.d"
  "calculator_repl"
  "calculator_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculator_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
