# Empty dependencies file for calculator_repl.
# This may be replaced when dependencies are built.
