file(REMOVE_RECURSE
  "CMakeFiles/montecarlo_pipeline.dir/montecarlo_pipeline.cpp.o"
  "CMakeFiles/montecarlo_pipeline.dir/montecarlo_pipeline.cpp.o.d"
  "montecarlo_pipeline"
  "montecarlo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
