# Empty dependencies file for montecarlo_pipeline.
# This may be replaced when dependencies are built.
