# Empty compiler generated dependencies file for montecarlo_pipeline.
# This may be replaced when dependencies are built.
