# Empty dependencies file for samples_test.
# This may be replaced when dependencies are built.
