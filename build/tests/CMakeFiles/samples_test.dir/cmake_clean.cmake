file(REMOVE_RECURSE
  "CMakeFiles/samples_test.dir/samples_test.cpp.o"
  "CMakeFiles/samples_test.dir/samples_test.cpp.o.d"
  "samples_test"
  "samples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
