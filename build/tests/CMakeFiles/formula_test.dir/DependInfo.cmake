
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/formula_test.cpp" "tests/CMakeFiles/formula_test.dir/formula_test.cpp.o" "gcc" "tests/CMakeFiles/formula_test.dir/formula_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/banger_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/banger_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/banger_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/banger_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/banger_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/banger_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/banger_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/banger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/calc/CMakeFiles/banger_calc.dir/DependInfo.cmake"
  "/root/repo/build/src/pits/CMakeFiles/banger_pits.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/banger_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/banger_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/banger_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/banger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
