# Empty dependencies file for pits_lang_test.
# This may be replaced when dependencies are built.
