file(REMOVE_RECURSE
  "CMakeFiles/pits_lang_test.dir/pits_lang_test.cpp.o"
  "CMakeFiles/pits_lang_test.dir/pits_lang_test.cpp.o.d"
  "pits_lang_test"
  "pits_lang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pits_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
