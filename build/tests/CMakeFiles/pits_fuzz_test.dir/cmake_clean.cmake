file(REMOVE_RECURSE
  "CMakeFiles/pits_fuzz_test.dir/pits_fuzz_test.cpp.o"
  "CMakeFiles/pits_fuzz_test.dir/pits_fuzz_test.cpp.o.d"
  "pits_fuzz_test"
  "pits_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pits_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
