# Empty compiler generated dependencies file for pits_fuzz_test.
# This may be replaced when dependencies are built.
