# Empty dependencies file for trace_sched_io_test.
# This may be replaced when dependencies are built.
