file(REMOVE_RECURSE
  "CMakeFiles/calc_test.dir/calc_test.cpp.o"
  "CMakeFiles/calc_test.dir/calc_test.cpp.o.d"
  "calc_test"
  "calc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
