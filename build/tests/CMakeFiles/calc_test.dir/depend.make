# Empty dependencies file for calc_test.
# This may be replaced when dependencies are built.
