// fault_demo — what happens when a processor dies mid-run?
//
// The paper's Fig. 1 LU-decomposition workload is scheduled on three
// processors, then the busiest processor is fail-stopped halfway through
// the replay. The demo walks the detect → repair → resume pipeline:
//   1. simulate the schedule under the fault plan (work is stranded),
//   2. reschedule the lost frontier on the two survivors,
//   3. print the recovery report and the annotated Gantt chart,
//   4. re-run the *real* executor with the same crash injected and show
//      that the survivors still produce the correct answer.
//
// Build & run:  ./build/examples/fault_demo
#include <cstdio>

#include "core/recovery.hpp"
#include "exec/executor.hpp"
#include "fault/fault.hpp"
#include "sched/heuristics.hpp"
#include "viz/gantt.hpp"
#include "workloads/designs.hpp"
#include "workloads/lu.hpp"

int main() {
  using namespace banger;

  // Fig. 1 workload: LU-decompose A and solve LUx = b.
  auto flat = workloads::lu3x3_design().flatten();
  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.05;
  params.bytes_per_second = 4096;
  machine::Machine m(machine::Topology::fully_connected(3), params);

  const auto schedule = sched::MhScheduler().run(flat.graph, m);
  std::printf("planned schedule: makespan %.3f on %d processors\n\n",
              schedule.makespan(), schedule.num_procs());

  // Kill the busiest processor halfway through and repair.
  const auto plan = fault::plan_crash_busiest(schedule, 0.5);
  std::printf("fault plan:\n%s\n", plan.to_text().c_str());
  const auto report = core::run_with_faults(flat.graph, m, schedule, plan);
  std::fputs(report.summary().c_str(), stdout);

  // Annotated Gantt chart of the repaired schedule: 'X' marks the crash,
  // '!' marks tasks the repair pass ran again on the survivors.
  viz::FaultOverlay overlay;
  for (const auto& c : plan.crashes())
    overlay.crashes.push_back(viz::FaultOverlay::Crash{c.proc, c.at});
  for (const auto& pl : report.repair.new_placements)
    overlay.reexecuted.push_back(pl.task);
  const auto& shown = report.crashed ? report.repair.schedule : schedule;
  std::puts("");
  std::fputs(viz::render_gantt(shown, flat.graph, overlay).c_str(), stdout);

  // The same crash against real threads: surviving workers adopt the
  // dead worker's stranded tasks and the answer is still exact.
  const std::map<std::string, pits::Value> inputs = {
      {"A", pits::Value(pits::Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
      {"b", pits::Value(pits::Vector{16, 39, 45})}};
  exec::Executor executor(flat, m);
  exec::RunOptions opts;
  opts.faults = &plan;
  const auto result = executor.run(schedule, inputs, opts);
  std::printf("\nexecutor under the same crash: %d worker(s) died, "
              "%zu task(s) rescued\n",
              result.workers_died, result.tasks_rescued);
  std::printf("x = %s  (expected [1, 2, 3])\n",
              result.outputs.at("x").to_display().c_str());
  return 0;
}
