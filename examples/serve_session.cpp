// serve_session — the design service driven in-process.
//
// The same Server object that backs `banger serve` is an ordinary C++
// class: construct it, hand it JSON request lines, read JSON response
// lines. This example runs a short multi-tenant session — upload a
// design and a machine once, then let "two users" schedule and check
// against the shared session by reference — and finishes by printing
// the cache statistics that show the second user rode the first user's
// artifacts.
//
// Build & run:  ./build/examples/serve_session
#include <cstdio>
#include <string>

#include "graph/serialize.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "workloads/lu.hpp"

int main() {
  using namespace banger;
  using serve::Json;

  serve::Server server;

  auto send = [&](Json request, bool echo_output) {
    const std::string line = server.handle_line(request.dump());
    const Json response = Json::parse(line);
    const Json* op = response.find("op");
    const Json* ok = response.find("ok");
    std::printf("-- %s: %s\n", op != nullptr ? op->as_string().c_str() : "?",
                ok != nullptr && ok->as_bool() ? "ok" : "error");
    if (echo_output) {
      const Json* output = response.find("output");
      if (output != nullptr) std::printf("%s", output->as_string().c_str());
    }
    return response;
  };

  // Tenant setup: upload the shared artifacts once, under names.
  Json upload_design = Json::object();
  upload_design.add("op", Json::string("upload"));
  upload_design.add("name", Json::string("lu"));
  upload_design.add("kind", Json::string("design"));
  upload_design.add("text",
                    Json::string(graph::to_pitl(workloads::lu3x3_design())));
  send(std::move(upload_design), false);

  Json upload_machine = Json::object();
  upload_machine.add("op", Json::string("upload"));
  upload_machine.add("name", Json::string("cube4"));
  upload_machine.add("kind", Json::string("machine"));
  upload_machine.add("text", Json::string("machine cube4\n"
                                          "topology hypercube dim=2\n"
                                          "speed 1\n"
                                          "message_startup 0.05\n"
                                          "bandwidth 512\n"));
  send(std::move(upload_machine), false);

  // User one schedules the shared design...
  Json schedule = Json::object();
  schedule.add("op", Json::string("schedule"));
  schedule.add("design_ref", Json::string("lu"));
  schedule.add("machine_ref", Json::string("cube4"));
  send(std::move(schedule), true);

  // ...user two runs the analyzer, then asks for the same schedule —
  // the second schedule is answered from the content-hashed cache.
  Json check = Json::object();
  check.add("op", Json::string("check"));
  check.add("design_ref", Json::string("lu"));
  send(std::move(check), true);

  Json again = Json::object();
  again.add("op", Json::string("schedule"));
  again.add("design_ref", Json::string("lu"));
  again.add("machine_ref", Json::string("cube4"));
  send(std::move(again), false);

  const auto stats = server.cache_stats();
  std::printf("-- cache: %llu hits, %llu misses, %llu entries\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.entries));
  return stats.hits > 0 ? 0 : 1;
}
