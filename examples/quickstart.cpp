// quickstart — the whole Banger workflow in one page.
//
// A non-programmer wants a*x^2 + b*x evaluated over a grid, in parallel:
//   1. draw the dataflow graph (two independent term tasks + combine),
//   2. define the target machine (a 4-processor hypercube),
//   3. write each task with the calculator language,
//   4. schedule, look at the Gantt chart, and run it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/project.hpp"
#include "graph/builder.hpp"
#include "viz/gantt.hpp"

int main() {
  using namespace banger;

  // ---- steps 1 + 3: draw the graph; the PITS routines *are* the node
  // interfaces (inputs = free variables, outputs = assignments), and
  // arcs are wired automatically by variable name. ----
  auto design = graph::DesignBuilder("quadratic")
                    .store("xs", 256)  // input grid
                    .store("ys", 256)  // result
                    .task("square_term", "sq := 3 * xs * xs\n", 4)
                    .task("linear_term", "lin := 2 * xs\n", 2)
                    .task("combine", "ys := sq + lin\n", 1)
                    .var_bytes("sq", 256)
                    .var_bytes("lin", 256)
                    .build();

  Project project(std::move(design));
  const auto summary = project.summary();
  std::printf("design: %zu tasks, average parallelism %.2f\n\n",
              summary.leaf_tasks, summary.average_parallelism);

  // ---- step 2: define the target machine ----
  machine::MachineParams params;
  params.processor_speed = 1.0;     // work units per second
  params.message_startup = 0.05;    // seconds per hop
  params.bytes_per_second = 4096;   // link bandwidth
  project.set_machine(
      machine::Machine(machine::Topology::hypercube(2), params));

  // ---- step 4: schedule and look at the feedback ----
  const auto& schedule = project.schedule("mh");
  std::fputs(viz::render_gantt(schedule, project.flattened().graph).c_str(),
             stdout);
  const auto metrics = project.metrics("mh");
  std::printf("\npredicted speedup %.2f on %d processors\n\n", metrics.speedup,
              metrics.procs);

  // ---- and actually run it ----
  pits::Vector xs;
  for (int i = 0; i < 8; ++i) xs.push_back(i);
  const auto result = project.run({{"xs", pits::Value(xs)}});
  std::printf("ys = %s\n", result.outputs.at("ys").to_display().c_str());
  std::puts("(expected: 3x^2 + 2x over 0..7)");
  return 0;
}
