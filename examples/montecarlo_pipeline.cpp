// montecarlo_pipeline — a "quick-and-dirty" scientific program of the
// kind the paper's introduction motivates: estimate pi by Monte-Carlo
// sampling with N independent sampler tasks reduced to one estimate,
// scheduled automatically over machines the scientist merely describes.
//
// Usage: ./build/examples/montecarlo_pipeline [workers=8] [samples=20000]
#include <cstdio>
#include <cstdlib>

#include "core/project.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/gantt.hpp"
#include "workloads/designs.hpp"

int main(int argc, char** argv) {
  using namespace banger;

  const int workers = argc > 1 ? std::max(1, std::atoi(argv[1])) : 8;
  const int samples = argc > 2 ? std::max(1, std::atoi(argv[2])) : 20000;

  std::printf("pi estimation: %d samplers x %d points\n\n", workers, samples);
  Project project(workloads::montecarlo_design(workers, samples));

  // The same design, three target machines — the machine-independence
  // principle in action.
  struct Target {
    const char* label;
    machine::Machine machine;
  };
  machine::MachineParams cheap;
  cheap.processor_speed = 1.0;
  cheap.message_startup = 0.001;
  cheap.bytes_per_second = 1e6;
  machine::MachineParams lan;
  lan.processor_speed = 1.0;
  lan.message_startup = 1.5;  // network round trips dwarf task time
  lan.bytes_per_second = 1e4;

  std::vector<Target> targets;
  targets.push_back({"hypercube-8 (fast links)",
                     machine::Machine(machine::Topology::hypercube(3), cheap)});
  targets.push_back({"star-8 LAN (slow links)",
                     machine::Machine(machine::Topology::star(8), lan)});
  targets.push_back({"mesh-2x4",
                     machine::Machine(machine::Topology::mesh(2, 4), cheap)});

  util::Table table;
  table.set_header({"target", "makespan", "speedup", "procs used"});
  for (auto& t : targets) {
    project.set_machine(std::move(t.machine));
    const auto m = project.metrics("mh");
    table.add_row({t.label, util::format_double(m.makespan, 5),
                   util::format_double(m.speedup, 4),
                   std::to_string(m.procs_used)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Run on the last target for real.
  const auto result = project.run({});
  std::printf("\npi estimate: %s (sequential trial run agrees: %s)\n",
              result.outputs.at("pi_est").to_display().c_str(),
              project.trial_run({}).outputs.at("pi_est").to_display().c_str());

  std::puts("\nGantt chart on the mesh:");
  std::fputs(
      viz::render_gantt(project.schedule(), project.flattened().graph).c_str(),
      stdout);
  return 0;
}
