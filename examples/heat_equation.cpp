// heat_equation — 1-D explicit heat diffusion with halo exchange: the
// classic ghost-cell decomposition a computational scientist would
// sketch, expressed as a Banger design. Segments advance in parallel,
// exchanging only their edge temperatures each step; the scheduler
// keeps each segment's chain on one processor and routes the tiny
// ghost messages between neighbours.
//
// Usage: ./build/examples/heat_equation [segments=4] [steps=8] [cells=16]
#include <cstdio>
#include <cstdlib>

#include "core/project.hpp"
#include "util/strings.hpp"
#include "viz/gantt.hpp"
#include "workloads/designs.hpp"

int main(int argc, char** argv) {
  using namespace banger;

  const int segments = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;
  const int steps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 8;
  const int cells = argc > 3 ? std::max(2, std::atoi(argv[3])) : 16;

  Project project(workloads::heat_design(segments, steps, cells));
  const auto s = project.summary();
  std::printf(
      "heat rod: %d segments x %d cells, %d steps -> %zu tasks, "
      "average parallelism %.2f\n\n",
      segments, cells, steps, s.leaf_tasks, s.average_parallelism);

  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.02;
  params.bytes_per_second = 1e5;
  project.set_machine(machine::Machine(
      machine::Topology::ring(std::max(3, segments)), params));

  const auto metrics = project.metrics("mh");
  std::printf("schedule on ring-%d: makespan %.2f, speedup %.2f\n\n",
              std::max(3, segments), metrics.makespan, metrics.speedup);

  // A heat spike in the middle of the rod.
  pits::Vector rod(static_cast<std::size_t>(segments * cells), 0.0);
  rod[rod.size() / 2] = 100.0;
  const auto result = project.run({{"rod", pits::Value(rod)}});
  const auto& out = result.outputs.at("result").as_vector();

  // Render the temperature profile as a bar strip.
  double peak = 0;
  double total = 0;
  for (double v : out) {
    peak = std::max(peak, v);
    total += v;
  }
  std::puts("final temperature profile:");
  std::string strip;
  for (double v : out) {
    static const char* shades = " .:-=+*#%@";
    const int level =
        peak > 0 ? static_cast<int>(v / peak * 9.0 + 0.5) : 0;
    strip += shades[std::min(9, std::max(0, level))];
  }
  std::printf("|%s|\n", strip.c_str());
  std::printf("peak %.3f (spike was 100), heat in rod %.3f\n\n", peak, total);

  std::puts("Gantt chart (segment chains stay put, ghost cells travel):");
  std::fputs(
      viz::render_gantt(project.schedule(), project.flattened().graph).c_str(),
      stdout);
  return 0;
}
