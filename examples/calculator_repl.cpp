// calculator_repl — an interactive session with the PITS calculator,
// the paper's "programmable pocket calculator" metaphor (Fig. 4).
//
// Reads lines from stdin:
//   expression          evaluate immediately (the "=" key)
//   name := expression  assign a variable
//   :prog               enter program mode; finish with :run
//   :vars               list variables
//   :buttons            show the panel's button groups
//   :quit
//
// Pipe a script in for non-interactive use:
//   printf 'x := 9\nsqrt(x) + 1\n:quit\n' | ./build/examples/calculator_repl
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "calc/panel.hpp"
#include "pits/builtins.hpp"
#include "pits/interp.hpp"
#include "util/strings.hpp"

int main() {
  using namespace banger;

  pits::Env env;
  bool trace = false;
  std::puts("banger calculator — type :help for commands");
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string input(util::trim(line));
    if (input.empty()) continue;

    if (input == ":quit" || input == ":q") break;
    if (input == ":help") {
      std::puts("  expr           evaluate (the \"=\" key)");
      std::puts("  name := expr   assign");
      std::puts("  :prog          multi-line program mode, end with :run");
      std::puts("  :vars          list variables");
      std::puts("  :buttons       list the panel's function buttons");
      std::puts("  :trace         toggle single-step assignment tracing");
      std::puts("  :quit          leave");
      continue;
    }
    if (input == ":trace") {
      trace = !trace;
      std::printf("trace %s\n", trace ? "on" : "off");
      continue;
    }
    if (input == ":vars") {
      for (const auto& [name, value] : env) {
        std::printf("  %s = %s\n", name.c_str(), value.to_display().c_str());
      }
      continue;
    }
    if (input == ":buttons") {
      const auto& reg = pits::BuiltinRegistry::instance();
      for (const char* group :
           {"trig", "explog", "round", "vector", "stats", "misc"}) {
        std::printf("  %-7s %s\n", group,
                    util::join(reg.group(group), " ").c_str());
      }
      std::printf("  consts ");
      for (const auto& [name, value] : pits::constants()) {
        std::printf(" %s", name.c_str());
      }
      std::puts("");
      continue;
    }
    if (input == ":prog") {
      std::ostringstream program;
      while (std::getline(std::cin, line) &&
             std::string(util::trim(line)) != ":run") {
        program << line << '\n';
      }
      try {
        pits::ExecOptions opts;
        opts.out = nullptr;
        std::ostringstream transcript;
        opts.out = &transcript;
        pits::Program::parse(program.str()).execute(env, opts);
        std::fputs(transcript.str().c_str(), stdout);
        std::puts("ok");
      } catch (const Error& e) {
        std::printf("error: %s\n", e.what());
      }
      continue;
    }

    try {
      if (input.find(":=") != std::string::npos) {
        pits::ExecOptions opts;
        std::ostringstream steps;
        if (trace) opts.trace = &steps;
        pits::Program::parse(input).execute(env, opts);
        std::fputs(steps.str().c_str(), stdout);
        std::puts("ok");
      } else {
        const auto value = pits::eval_expression(input, env);
        std::printf("= %s\n", value.to_display().c_str());
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
