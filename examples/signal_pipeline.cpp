// signal_pipeline — an engineering workload built hierarchically: each
// channel's filter->rectify->energy chain is a supernode (one drawing,
// reused per channel), demonstrating programming-in-the-large with
// decomposable nodes plus scheduling across heuristics.
//
// Usage: ./build/examples/signal_pipeline [channels=4]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/project.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/dot.hpp"
#include "workloads/designs.hpp"

int main(int argc, char** argv) {
  using namespace banger;

  const int channels = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;
  Project project(workloads::signal_pipeline_design(channels));

  const auto summary = project.summary();
  std::printf(
      "signal pipeline: %d channels -> %zu leaf tasks, hierarchy depth %d,\n"
      "average parallelism %.2f\n\n",
      channels, summary.leaf_tasks, summary.depth,
      summary.average_parallelism);

  machine::MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.02;
  p.bytes_per_second = 1e5;
  project.set_machine(machine::Machine(
      machine::Topology::mesh(2, std::max(1, (channels + 1) / 2)), p));

  // Compare the heuristics the environment offers.
  util::Table table;
  table.set_header({"scheduler", "makespan", "speedup", "duplicates"});
  for (const char* name : {"mh", "etf", "dsh", "cluster", "serial"}) {
    const auto m = project.metrics(name);
    table.add_row({name, util::format_double(m.makespan, 5),
                   util::format_double(m.speedup, 4),
                   std::to_string(m.duplicates)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // A noisy test signal.
  pits::Vector signal;
  for (int i = 0; i < 64; ++i) {
    signal.push_back(std::sin(i * 0.2) + 0.25 * std::sin(i * 1.7));
  }
  const auto result = project.run({{"signal", pits::Value(signal)}});
  std::printf("\nper-channel energies: %s\n",
              result.outputs.at("energy").to_display().c_str());
  std::printf("(channel gain c+1 => energies scale as 1:4:9:...; wall %.4fs)\n",
              result.wall_seconds);

  std::puts("\nhierarchical drawing (DOT):");
  std::fputs(viz::to_dot(project.design()).c_str(), stdout);
  return 0;
}
