// lu_solver — the paper's running example end to end: the Fig. 1
// hierarchical LU design solving Ax = b, with schedule feedback,
// discrete-event replay, real parallel execution, and C++ code
// generation (the paper's promised final step).
//
// Usage: ./build/examples/lu_solver [procs=4] [emit-code]
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/project.hpp"
#include "graph/serialize.hpp"
#include "viz/charts.hpp"
#include "viz/gantt.hpp"
#include "workloads/lu.hpp"

int main(int argc, char** argv) {
  using namespace banger;
  using pits::Value;
  using pits::Vector;

  int procs = 4;
  bool emit_code = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "emit-code") == 0) {
      emit_code = true;
    } else {
      procs = std::max(1, std::atoi(argv[i]));
    }
  }

  Project project(workloads::lu3x3_design());
  std::puts("the design, as the editor would save it (.pitl):\n");
  std::fputs(graph::to_pitl(project.design()).c_str(), stdout);

  machine::MachineParams params;
  params.processor_speed = 1.0;
  params.message_startup = 0.05;
  params.bytes_per_second = 512;
  int dim = 0;
  while ((1 << dim) < procs) ++dim;
  project.set_machine(
      machine::Machine(machine::Topology::hypercube(dim), params));

  std::printf("\n--- schedule on a %d-processor hypercube ---\n",
              1 << dim);
  std::fputs(viz::render_gantt(project.schedule(),
                               project.flattened().graph)
                 .c_str(),
             stdout);

  const auto sim = project.simulate();
  std::printf("\nsimulated makespan %.3fs (%zu messages)\n", sim.makespan,
              sim.num_messages);
  std::puts("first simulation events:");
  std::fputs(sim.animation(8).c_str(), stdout);

  // Solve A x = b with A = [[4,3,2],[8,8,5],[4,7,9]], x = [1,2,3].
  const std::map<std::string, Value> inputs = {
      {"A", Value(Vector{4, 3, 2, 8, 8, 5, 4, 7, 9})},
      {"b", Value(Vector{16, 39, 45})}};
  const auto run = project.run(inputs);
  std::printf("\nsolution x = %s  (wall %.4fs on real threads)\n",
              run.outputs.at("x").to_display().c_str(), run.wall_seconds);
  std::printf("L = %s\n", run.stores.at("L").to_display().c_str());
  std::printf("U = %s\n", run.stores.at("U").to_display().c_str());

  const auto curve = project.speedup({1, 2, 4, 8});
  std::puts("");
  std::fputs(viz::render_speedup_chart(curve).c_str(), stdout);

  if (emit_code) {
    const std::string path = "lu_generated.cpp";
    std::ofstream(path) << project.generate_code(inputs);
    std::printf("\nwrote %s — compile with `c++ -std=c++17 -pthread %s`\n",
                path.c_str(), path.c_str());
  }
  return 0;
}
