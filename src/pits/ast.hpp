// banger/pits/ast.hpp
//
// Abstract syntax of PITS programs. Nodes are a closed variant set; the
// interpreter and the pretty-printer visit with std::visit.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace banger::pits {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Pow,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};
enum class UnOp : std::uint8_t { Neg, Not };

std::string_view to_string(BinOp op) noexcept;
std::string_view to_string(UnOp op) noexcept;

struct NumberLit {
  double value = 0.0;
};
struct StringLit {
  std::string value;
};
struct VarRef {
  std::string name;
};
struct VectorLit {
  std::vector<ExprPtr> elements;
};
struct Unary {
  UnOp op = UnOp::Neg;
  ExprPtr operand;
};
struct Binary {
  BinOp op = BinOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};
/// base[index]; base must evaluate to a vector, index to a number.
struct Index {
  ExprPtr base;
  ExprPtr index;
};
/// Builtin (calculator button) invocation: sqrt(x), dot(a,b), ...
struct Call {
  std::string callee;
  std::vector<ExprPtr> args;
};

struct Expr {
  SourcePos pos;
  std::variant<NumberLit, StringLit, VarRef, VectorLit, Unary, Binary, Index,
               Call>
      node;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// `name := expr` or `name[i] := expr` (element assignment).
struct AssignStmt {
  std::string target;
  ExprPtr index;  ///< null for whole-variable assignment
  ExprPtr value;
};
struct IfStmt {
  struct Arm {
    ExprPtr cond;
    Block body;
  };
  std::vector<Arm> arms;  ///< if + elsif chain, in order
  Block else_body;
};
struct WhileStmt {
  ExprPtr cond;
  Block body;
};
/// `repeat n times ... end` — the calculator's friendly counted loop.
struct RepeatStmt {
  ExprPtr count;
  Block body;
};
struct ForStmt {
  std::string var;
  ExprPtr from;
  ExprPtr to;
  ExprPtr step;  ///< null means step 1
  Block body;
};
struct ReturnStmt {};
/// `formula name(p1, p2) := expr` — a pure user function of its
/// parameters (and the constants); it cannot read task variables.
/// Formulas may call other formulas (and themselves) defined earlier.
struct FormulaDef {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
};
/// Expression evaluated for effect; only calls make sense (print).
struct ExprStmt {
  ExprPtr expr;
};

struct Stmt {
  SourcePos pos;
  std::variant<AssignStmt, IfStmt, WhileStmt, RepeatStmt, ForStmt, ReturnStmt,
               FormulaDef, ExprStmt>
      node;
};

/// Parses a whole routine body; throws Error{Parse}.
Block parse_block(std::string_view source);

/// Renders a Block back to canonical PITS source (used by the calculator
/// panel's program window and by the round-trip tests).
std::string to_source(const Block& block, int indent = 0);

/// Free variables: names read before being assigned anywhere on some
/// path — the routine's implicit inputs. Sorted, unique.
std::vector<std::string> free_variables(const Block& block);

/// Names assigned anywhere — the candidates for outputs. Sorted, unique.
std::vector<std::string> assigned_variables(const Block& block);

}  // namespace banger::pits
