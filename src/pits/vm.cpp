// banger/pits/vm.cpp
//
// The register VM. One frame of Values per body (routine top level or
// formula call), allocation-free per instruction on the scalar paths;
// the Env map is touched only at entry (move inputs into slots) and
// exit (move bound slots back — including on the error path, since a
// trial run surfaces the partially-updated environment).
//
// Every observable behaviour — step accounting, error codes, messages,
// positions, print/trace transcripts, the rand() stream — must match
// the tree-walk interpreter exactly; tests/pits_vm_test.cpp compares
// the two engines byte for byte.
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pits/builtins.hpp"
#include "pits/bytecode.hpp"
#include "util/rng.hpp"

namespace banger::pits::bc {

namespace {

// Slot binding states for the top-level frame. A const-materialized
// slot reads like a bound one but is not written back to the Env, and
// indexed assignment still treats it as undefined — both matching the
// tree-walker, where constants never enter the Env.
constexpr std::uint8_t kUnbound = 0;
constexpr std::uint8_t kBound = 1;
constexpr std::uint8_t kConstMaterialized = 2;

BinOp bin_op_of(Op op) {
  switch (op) {
    case Op::Add: return BinOp::Add;
    case Op::Sub: return BinOp::Sub;
    case Op::Mul: return BinOp::Mul;
    case Op::Div: return BinOp::Div;
    case Op::Mod: return BinOp::Mod;
    case Op::Pow: return BinOp::Pow;
    case Op::Lt: return BinOp::Lt;
    case Op::Le: return BinOp::Le;
    case Op::Gt: return BinOp::Gt;
    default: return BinOp::Ge;
  }
}

class Vm {
 public:
  Vm(const Chunk& chunk, const ExecOptions& options)
      : chunk_(chunk),
        options_(options),
        rng_(options.seed),
        formula_table_(chunk.num_formula_names, -1) {
    ctx_.rng = &rng_;
    ctx_.out = options.out;
  }

  void run(Env& env) {
    std::vector<Value> regs(chunk_.main.num_regs);
    std::vector<std::uint8_t> states(chunk_.vars.size(), kUnbound);
    for (std::size_t i = 0; i < chunk_.vars.size(); ++i) {
      if (auto it = env.find(chunk_.names[chunk_.vars[i].name]);
          it != env.end()) {
        regs[i] = std::move(it->second);
        states[i] = kBound;
      }
    }
    try {
      exec(chunk_.main, regs, &states, 0,
           static_cast<std::uint32_t>(chunk_.main.ins.size()));
    } catch (...) {
      write_back(env, regs, states);
      report();
      throw;
    }
    write_back(env, regs, states);
    report();
  }

 private:
  void write_back(Env& env, std::vector<Value>& regs,
                  const std::vector<std::uint8_t>& states) {
    for (std::size_t i = 0; i < chunk_.vars.size(); ++i) {
      if (states[i] == kBound) {
        env[chunk_.names[chunk_.vars[i].name]] = std::move(regs[i]);
      }
    }
  }

  void report() const {
    if (obs::TraceRecorder* rec = obs::current()) {
      rec->bump("pits.vm.runs");
      rec->bump("pits.vm.instructions", static_cast<double>(retired_));
    }
  }

  [[noreturn]] static void error(ErrorCode code, const std::string& msg,
                                 SourcePos pos) {
    fail(code, msg, pos);
  }

  void tick(SourcePos pos) {
    if (++steps_ > options_.step_limit) {
      error(ErrorCode::Limit,
            "step limit of " + std::to_string(options_.step_limit) +
                " exceeded (infinite loop?)",
            pos);
    }
  }

  const std::string& var_name(std::uint16_t slot) const {
    return chunk_.names[chunk_.vars[slot].name];
  }

  static std::size_t index_of(const Value& idx, std::size_t size,
                              SourcePos pos) {
    const double raw = idx.as_scalar();
    if (std::floor(raw) != raw) {
      error(ErrorCode::Runtime, "index must be an integer", pos);
    }
    if (raw < 0 || raw >= static_cast<double>(size)) {
      error(ErrorCode::Runtime,
            "index " + std::to_string(static_cast<long long>(raw)) +
                " out of range [0," + std::to_string(size) + ")",
            pos);
    }
    return static_cast<std::size_t>(raw);
  }

  /// Writes a scalar result without a full variant assignment when the
  /// destination already holds a scalar — the overwhelmingly common case
  /// in straight-line arithmetic, where each register keeps its type.
  static void set_scalar(Value& dst, double x) {
    if (Scalar* p = dst.scalar_if()) {
      *p = x;
    } else {
      dst = Value(x);
    }
  }

  /// Scalar-scalar fast path for Add..Pow, dispatched with a
  /// compile-time operator so scalar_op folds to a single instruction.
  /// Returns false (leaving dst untouched) when either operand is not a
  /// scalar; the caller then takes the general arith() route.
  template <BinOp kOp>
  bool fast_arith(const Instr& in, std::vector<Value>& regs) {
    const Scalar* a = regs[in.b].scalar_if();
    const Scalar* b = regs[in.c].scalar_if();
    if (a == nullptr || b == nullptr) return false;
    set_scalar(regs[in.a], scalar_op(kOp, *a, *b, in.pos));
    return true;
  }

  /// Scalar-scalar ordering fast path for Lt/Le/Gt/Ge.
  template <typename Cmp>
  bool fast_compare(const Instr& in, std::vector<Value>& regs, Cmp cmp) {
    const Scalar* a = regs[in.b].scalar_if();
    const Scalar* b = regs[in.c].scalar_if();
    if (a == nullptr || b == nullptr) return false;
    set_scalar(regs[in.a], cmp(*a, *b) ? 1.0 : 0.0);
    return true;
  }

  static double scalar_op(BinOp op, double a, double b, SourcePos pos) {
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Div:
        if (b == 0) error(ErrorCode::Runtime, "division by zero", pos);
        return a / b;
      case BinOp::Mod:
        if (b == 0) error(ErrorCode::Runtime, "mod by zero", pos);
        return std::fmod(a, b);
      case BinOp::Pow: {
        const double r = std::pow(a, b);
        if (std::isnan(r) && !std::isnan(a) && !std::isnan(b)) {
          error(ErrorCode::Runtime, "invalid power (negative base?)", pos);
        }
        return r;
      }
      default:
        BANGER_ASSERT(false, "unreachable arithmetic op");
    }
  }

  static Value compare(Op op, const Value& lhs, const Value& rhs,
                       SourcePos pos) {
    double cmp = 0;
    if (lhs.is_scalar() && rhs.is_scalar()) {
      const double a = lhs.as_scalar();
      const double b = rhs.as_scalar();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      const int c = lhs.as_string().compare(rhs.as_string());
      cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    } else {
      error(ErrorCode::Type,
            "cannot order a " + std::string(lhs.type_name()) + " against a " +
                std::string(rhs.type_name()),
            pos);
    }
    switch (op) {
      case Op::Lt: return Value(cmp < 0 ? 1.0 : 0.0);
      case Op::Le: return Value(cmp <= 0 ? 1.0 : 0.0);
      case Op::Gt: return Value(cmp > 0 ? 1.0 : 0.0);
      default: return Value(cmp >= 0 ? 1.0 : 0.0);
    }
  }

  /// Add..Pow with broadcast. A flagged operand register holds a dead
  /// temp whose vector payload is reused in place of a fresh copy; the
  /// result is assigned to the destination last, so aliasing dst with
  /// either operand is safe and errors leave dst untouched.
  static Value arith(const Instr& in, std::vector<Value>& regs) {
    const BinOp op = bin_op_of(in.op);
    Value& lhs = regs[in.b];
    Value& rhs = regs[in.c];
    // Scalar-scalar fast path: one variant probe per operand. Strings
    // cannot be involved here, so hoisting it past the string check is
    // behaviour-preserving.
    if (const Scalar* a = lhs.scalar_if()) {
      if (const Scalar* b = rhs.scalar_if()) {
        return Value(scalar_op(op, *a, *b, in.pos));
      }
    }
    if (lhs.is_string() || rhs.is_string()) {
      if (op == BinOp::Add && lhs.is_string() && rhs.is_string()) {
        return Value(lhs.as_string() + rhs.as_string());
      }
      error(ErrorCode::Type,
            "operator `" + std::string(to_string(op)) +
                "` is not defined for strings",
            in.pos);
    }
    if (lhs.is_vector() && rhs.is_vector()) {
      if (lhs.as_vector().size() != rhs.as_vector().size()) {
        error(ErrorCode::Type,
              "elementwise `" + std::string(to_string(op)) +
                  "` on vectors of lengths " +
                  std::to_string(lhs.as_vector().size()) + " and " +
                  std::to_string(rhs.as_vector().size()),
              in.pos);
      }
      if ((in.flags & kTempB) != 0) {
        Vector out = std::move(lhs.as_vector());
        const Vector& b = rhs.as_vector();
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = scalar_op(op, out[i], b[i], in.pos);
        }
        return Value(std::move(out));
      }
      const Vector& a = lhs.as_vector();
      if ((in.flags & kTempC) != 0) {
        Vector out = std::move(rhs.as_vector());
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = scalar_op(op, a[i], out[i], in.pos);
        }
        return Value(std::move(out));
      }
      const Vector& b = rhs.as_vector();
      Vector out(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] = scalar_op(op, a[i], b[i], in.pos);
      }
      return Value(std::move(out));
    }
    if (lhs.is_scalar() && rhs.is_vector()) {
      const double a = lhs.as_scalar();
      Vector out = (in.flags & kTempC) != 0 ? std::move(rhs.as_vector())
                                            : rhs.as_vector();
      for (double& x : out) x = scalar_op(op, a, x, in.pos);
      return Value(std::move(out));
    }
    if (lhs.is_vector() && rhs.is_scalar()) {
      const double b = rhs.as_scalar();
      Vector out = (in.flags & kTempB) != 0 ? std::move(lhs.as_vector())
                                            : lhs.as_vector();
      for (double& x : out) x = scalar_op(op, x, b, in.pos);
      return Value(std::move(out));
    }
    error(ErrorCode::Type,
          "operator `" + std::string(to_string(op)) + "` on a " +
              std::string(lhs.type_name()) + " and a " +
              std::string(rhs.type_name()),
          in.pos);
  }

  /// Executes code[from, to). `states` is non-null only for the
  /// top-level frame (formula frames hold just parameters, all bound
  /// by construction). Argument ranges recurse through here; Halt only
  /// appears at statement level, so it unwinds the top frame directly.
  void exec(const Code& code, std::vector<Value>& regs,
            std::vector<std::uint8_t>* states, std::uint32_t from,
            std::uint32_t to) {
    for (std::uint32_t ip = from; ip < to;) {
      const Instr& in = code.ins[ip];
      ++retired_;
      switch (in.op) {
        case Op::LoadConst: {
          const Value& c = chunk_.consts[in.b];
          if (const Scalar* s = c.scalar_if()) {
            set_scalar(regs[in.a], *s);
          } else {
            regs[in.a] = c;
          }
          break;
        }
        case Op::Move:
          if (in.a != in.b) {
            if (const Scalar* s = regs[in.b].scalar_if()) {
              set_scalar(regs[in.a], *s);
            } else if ((in.flags & kTempB) != 0) {
              regs[in.a] = std::move(regs[in.b]);
            } else {
              regs[in.a] = regs[in.b];
            }
          }
          break;
        case Op::CheckVar: {
          std::uint8_t& st = (*states)[in.a];
          if (st == kUnbound) {
            const VarInfo& vi = chunk_.vars[in.a];
            if (!vi.has_const) {
              error(ErrorCode::Name,
                    "undefined variable `" + var_name(in.a) + "`", in.pos);
            }
            regs[in.a] = Value(vi.const_value);
            st = kConstMaterialized;
          }
          break;
        }
        case Op::Neg: {
          Value& v = regs[in.b];
          if (v.is_vector()) {
            Vector out = (in.flags & kTempB) != 0 ? std::move(v.as_vector())
                                                  : v.as_vector();
            for (double& x : out) x = -x;
            regs[in.a] = Value(std::move(out));
          } else if (v.is_string()) {
            error(ErrorCode::Type, "cannot negate a string", in.pos);
          } else {
            regs[in.a] = Value(-v.as_scalar());
          }
          break;
        }
        case Op::NotOp:
          set_scalar(regs[in.a], regs[in.b].truthy() ? 0.0 : 1.0);
          break;
        case Op::Truthy:
          set_scalar(regs[in.a], regs[in.b].truthy() ? 1.0 : 0.0);
          break;
        case Op::Add:
          if (!fast_arith<BinOp::Add>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::Sub:
          if (!fast_arith<BinOp::Sub>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::Mul:
          if (!fast_arith<BinOp::Mul>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::Div:
          if (!fast_arith<BinOp::Div>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::Mod:
          if (!fast_arith<BinOp::Mod>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::Pow:
          if (!fast_arith<BinOp::Pow>(in, regs)) regs[in.a] = arith(in, regs);
          break;
        case Op::CmpEq:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 1.0 : 0.0);
          break;
        case Op::CmpNe:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 0.0 : 1.0);
          break;
        case Op::Lt:
          if (!fast_compare(in, regs, [](double a, double b) { return a < b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Le:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a <= b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Gt:
          if (!fast_compare(in, regs, [](double a, double b) { return a > b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Ge:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a >= b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::NewVector: {
          Vector v;
          v.reserve(static_cast<std::size_t>(in.d));
          regs[in.a] = Value(std::move(v));
          break;
        }
        case Op::PushScalar: {
          const Value& el = regs[in.b];
          if (!el.is_scalar()) {
            error(ErrorCode::Type,
                  "expected a number, got a " + std::string(el.type_name()),
                  in.pos);
          }
          regs[in.a].as_vector().push_back(el.as_scalar());
          break;
        }
        case Op::CheckIndexable:
          if (!regs[in.a].is_vector()) {
            error(ErrorCode::Type,
                  "cannot index a " + std::string(regs[in.a].type_name()),
                  in.pos);
          }
          break;
        case Op::IndexLoad: {
          const Vector& v = regs[in.b].as_vector();
          std::size_t i;
          if ((in.flags & kNoCheck) != 0) {
            // Index proven an in-bounds integer by the abstract
            // interpreter; the differential suite guards the proof.
            const Scalar* x = regs[in.c].scalar_if();
            BANGER_ASSERT(x != nullptr && *x >= 0 &&
                              *x < static_cast<double>(v.size()),
                          "absint in-bounds proof violated");
            i = static_cast<std::size_t>(*x);
          } else {
            i = index_of(regs[in.c], v.size(), in.pos);
          }
          set_scalar(regs[in.a], v[i]);
          break;
        }
        case Op::Jump:
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::JumpIfFalsy:
          if (!regs[in.b].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::JumpIfTruthy:
          if (regs[in.b].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::Tick:
          tick(in.pos);
          break;
        case Op::TickN: {
          const auto n = static_cast<std::uint64_t>(in.d);
          if (n <= options_.step_limit - steps_) {
            steps_ += n;  // whole batch fits: one addition for n ticks
            break;
          }
          // The limit lands inside this batch: replay statement by
          // statement so the Limit error carries the exact statement
          // position and partial effects the walker would produce.
          const StmtRun& run = chunk_.runs[in.a];
          for (std::size_t j = 0; j < run.pos.size(); ++j) {
            tick(run.pos[j]);
            exec(code, regs, states, run.bounds[j], run.bounds[j + 1]);
          }
          ip = run.bounds.back();
          continue;
        }
        case Op::FinishAssign:
          (*states)[in.a] = kBound;
          if (options_.trace != nullptr) {
            *options_.trace << "line " << in.pos.line << ": " << var_name(in.a)
                            << " = " << regs[in.a].to_display() << "\n";
          }
          break;
        case Op::IndexedCheck: {
          if ((*states)[in.a] != kBound) {
            error(ErrorCode::Name,
                  "indexed assignment to undefined variable `" +
                      var_name(in.a) + "`",
                  in.pos);
          }
          if (!regs[in.a].is_vector()) {
            error(ErrorCode::Type, "`" + var_name(in.a) + "` is not a vector",
                  in.pos);
          }
          break;
        }
        case Op::IndexedStore: {
          Vector& vec = regs[in.a].as_vector();
          if ((in.flags & kNoCheck) != 0) {
            const Scalar* x = regs[in.b].scalar_if();
            const Scalar* v = regs[in.c].scalar_if();
            BANGER_ASSERT(x != nullptr && v != nullptr && *x >= 0 &&
                              *x < static_cast<double>(vec.size()),
                          "absint indexed-store proof violated");
            vec[static_cast<std::size_t>(*x)] = *v;
            break;
          }
          const std::size_t i = index_of(regs[in.b], vec.size(), in.pos);
          vec[i] = regs[in.c].as_scalar();
          break;
        }
        case Op::ToScalar:
          set_scalar(regs[in.a], regs[in.b].as_scalar());
          break;
        case Op::ForInit:
          if (regs[in.a].as_scalar() == 0) {
            error(ErrorCode::Runtime, "for loop with zero step", in.pos);
          }
          break;
        case Op::ForNext: {
          const double x = regs[in.a].as_scalar();
          const double limit = regs[in.b].as_scalar();
          const double step = regs[in.c].as_scalar();
          if (!(step > 0 ? x <= limit + 1e-12 : x >= limit - 1e-12)) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          // kNoTick: the iteration tick was absorbed into the body's
          // leading TickN (which also carries SetLoopVar).
          if ((in.flags & kNoTick) == 0) tick(in.pos);
          break;
        }
        case Op::SetLoopVar:
          set_scalar(regs[in.a], regs[in.b].as_scalar());
          (*states)[in.a] = kBound;
          break;
        case Op::ForStep:
          set_scalar(regs[in.a],
                     regs[in.a].as_scalar() + regs[in.c].as_scalar());
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::RepeatInit: {
          const double n = regs[in.c].as_scalar();
          if (n < 0 || std::floor(n) != n) {
            error(ErrorCode::Runtime,
                  "repeat count must be a non-negative integer", in.pos);
          }
          set_scalar(regs[in.a], 0.0);
          set_scalar(regs[in.b], n);
          break;
        }
        case Op::RepeatNext: {
          const double k = regs[in.a].as_scalar();
          if (!(k < regs[in.b].as_scalar())) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          if ((in.flags & kNoTick) == 0) tick(in.pos);
          set_scalar(regs[in.a], k + 1);
          break;
        }
        case Op::CallOp:
          regs[in.a] = call_site(code, code.sites[in.b], regs, states, in);
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::DefFormula: {
          const Formula& fo = chunk_.formulas[in.b];
          formula_table_[static_cast<std::size_t>(fo.table)] =
              static_cast<std::int32_t>(in.b);
          break;
        }
        case Op::ErrAlways:
          error(static_cast<ErrorCode>(in.a), chunk_.messages[in.b], in.pos);
        case Op::Halt:
          return;
      }
      ++ip;
    }
  }

  Value call_site(const Code& code, const CallSite& site,
                  std::vector<Value>& regs, std::vector<std::uint8_t>* states,
                  const Instr& in) {
    const std::string& callee = chunk_.names[site.name];
    // Formula lookup precedes builtins, like the tree-walker's scope
    // order; the table is populated dynamically by DefFormula, so a
    // call before the definition falls through exactly as it should.
    if (site.formula >= 0) {
      const std::int32_t fi =
          formula_table_[static_cast<std::size_t>(site.formula)];
      if (fi >= 0) {
        return call_formula(chunk_.formulas[static_cast<std::size_t>(fi)],
                            site, code, regs, states, callee, in.pos);
      }
    }
    const Builtin* fn = site.builtin;
    if (fn == nullptr) {
      error(ErrorCode::Name, "unknown function `" + callee + "`", in.pos);
    }
    const int n = static_cast<int>(site.args.size());
    if (n < fn->min_args || (fn->max_args >= 0 && n > fn->max_args)) {
      error(ErrorCode::Type,
            "`" + callee + "` expects " + std::to_string(fn->min_args) +
                (fn->max_args == fn->min_args
                     ? ""
                     : (fn->max_args < 0
                            ? "+"
                            : ".." + std::to_string(fn->max_args))) +
                " arguments, got " + std::to_string(n),
            in.pos);
    }
    // Argument buffers are pooled per nesting depth: a routine dominated
    // by builtin calls would otherwise pay one heap allocation per call.
    // The pool is indexed (not referenced) across the argument loop —
    // nested calls inside an argument expression may grow the pool.
    const std::size_t slot = call_pool_used_++;
    if (slot == call_pool_.size()) call_pool_.emplace_back();
    struct PoolGuard {
      std::size_t& used;
      ~PoolGuard() { --used; }
    } guard{call_pool_used_};
    call_pool_[slot].clear();
    call_pool_[slot].reserve(site.args.size());
    for (const ArgRange& ar : site.args) {
      exec(code, regs, states, ar.begin, ar.end);
      if (ar.temp != 0) {
        call_pool_[slot].push_back(std::move(regs[ar.reg]));
      } else {
        call_pool_[slot].push_back(regs[ar.reg]);
      }
    }
    try {
      return fn->fn(call_pool_[slot], ctx_);
    } catch (const Error& e) {
      fail(e.code(), e.message() + " in `" + callee + "`", in.pos);
    }
  }

  Value call_formula(const Formula& fo, const CallSite& site,
                     const Code& caller, std::vector<Value>& regs,
                     std::vector<std::uint8_t>* states,
                     const std::string& name, SourcePos pos) {
    if (site.args.size() != fo.param_reg.size()) {
      error(ErrorCode::Type,
            "formula `" + name + "` expects " +
                std::to_string(fo.param_reg.size()) + " arguments, got " +
                std::to_string(site.args.size()),
            pos);
    }
    if (++formula_depth_ > 256) {
      --formula_depth_;
      error(ErrorCode::Limit,
            "formula recursion deeper than 256 (`" + name + "`)", pos);
    }
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{formula_depth_};
    // Arguments evaluate in the caller's frame — errors there are not
    // attributed to this formula (only the body's are, below).
    std::vector<Value> frame(fo.code.num_regs);
    for (std::size_t i = 0; i < site.args.size(); ++i) {
      const ArgRange& ar = site.args[i];
      exec(caller, regs, states, ar.begin, ar.end);
      if (fo.param_bind[i] != 0) {
        frame[fo.param_reg[i]] = ar.temp != 0 ? std::move(regs[ar.reg])
                                              : regs[ar.reg];
      }
    }
    try {
      tick(pos);
      exec(fo.code, frame, nullptr, 0,
           static_cast<std::uint32_t>(fo.code.ins.size()));
      return std::move(frame[fo.result]);
    } catch (const Error& e) {
      // Attribute the failure to the innermost formula, once, keeping
      // the original code and position so callers can still classify it.
      if (e.message().find(" in formula `") != std::string::npos) throw;
      fail(e.code(), e.message() + " in formula `" + name + "`",
           e.pos().valid() ? e.pos() : pos);
    }
  }

  const Chunk& chunk_;
  const ExecOptions& options_;
  util::Rng rng_;
  BuiltinContext ctx_;
  std::vector<std::int32_t> formula_table_;
  std::vector<std::vector<Value>> call_pool_;
  std::size_t call_pool_used_ = 0;
  int formula_depth_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace

void run(const Chunk& chunk, Env& env, const ExecOptions& options) {
  Vm vm(chunk, options);
  vm.run(env);
}

}  // namespace banger::pits::bc
