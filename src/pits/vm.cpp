// banger/pits/vm.cpp
//
// The register VM. One frame of Values per body (routine top level or
// formula call), allocation-free per instruction on the scalar paths;
// the Env map is touched only at entry (move inputs into slots) and
// exit (move bound slots back — including on the error path, since a
// trial run surfaces the partially-updated environment).
//
// Every observable behaviour — step accounting, error codes, messages,
// positions, print/trace transcripts, the rand() stream — must match
// the tree-walk interpreter exactly; tests/pits_vm_test.cpp compares
// the two engines byte for byte.
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pits/builtins.hpp"
#include "pits/bytecode.hpp"
#include "util/rng.hpp"

namespace banger::pits::bc {

namespace {

// Slot binding states for the top-level frame. A const-materialized
// slot reads like a bound one but is not written back to the Env, and
// indexed assignment still treats it as undefined — both matching the
// tree-walker, where constants never enter the Env. The values are the
// public bc::kSlot* constants so Frame callers can pre-bind slots.
constexpr std::uint8_t kUnbound = kSlotUnbound;
constexpr std::uint8_t kBound = kSlotBound;
constexpr std::uint8_t kConstMaterialized = kSlotConst;

class Vm {
 public:
  Vm(const Chunk& chunk, const ExecOptions& options)
      : chunk_(chunk),
        options_(options),
        rng_(options.seed),
        formula_table_(chunk.num_formula_names, -1) {
    ctx_.rng = &rng_;
    ctx_.out = options.out;
  }

  void run(Env& env) {
    std::vector<Value> regs(chunk_.main.num_regs);
    std::vector<std::uint8_t> states(chunk_.vars.size(), kUnbound);
    for (std::size_t i = 0; i < chunk_.vars.size(); ++i) {
      if (auto it = env.find(chunk_.names[chunk_.vars[i].name]);
          it != env.end()) {
        regs[i] = std::move(it->second);
        states[i] = kBound;
      }
    }
    try {
      exec(chunk_.main, regs, &states, 0,
           static_cast<std::uint32_t>(chunk_.main.ins.size()));
    } catch (...) {
      write_back(env, regs, states);
      report();
      throw;
    }
    write_back(env, regs, states);
    report();
  }

  /// Env-free entry: the caller pre-bound input slots in `f` and reads
  /// outputs straight out of the frame afterwards; everything between
  /// is byte-identical to run().
  void run_frame(Frame& f) {
    try {
      exec(chunk_.main, f.regs, &f.states, 0,
           static_cast<std::uint32_t>(chunk_.main.ins.size()));
    } catch (...) {
      report();
      throw;
    }
    report();
  }

 private:
  void write_back(Env& env, std::vector<Value>& regs,
                  const std::vector<std::uint8_t>& states) {
    for (std::size_t i = 0; i < chunk_.vars.size(); ++i) {
      if (states[i] == kBound) {
        env[chunk_.names[chunk_.vars[i].name]] = std::move(regs[i]);
      }
    }
  }

  void report() const {
    if (obs::TraceRecorder* rec = obs::current()) {
      rec->bump("pits.vm.runs");
      rec->bump("pits.vm.instructions", static_cast<double>(retired_));
    }
  }

  [[noreturn]] static void error(ErrorCode code, const std::string& msg,
                                 SourcePos pos) {
    fail(code, msg, pos);
  }

  void tick(SourcePos pos) {
    if (++steps_ > options_.step_limit) {
      error(ErrorCode::Limit,
            "step limit of " + std::to_string(options_.step_limit) +
                " exceeded (infinite loop?)",
            pos);
    }
  }

  const std::string& var_name(std::uint16_t slot) const {
    return chunk_.names[chunk_.vars[slot].name];
  }

  static std::size_t index_of(const Value& idx, std::size_t size,
                              SourcePos pos) {
    const double raw = idx.as_scalar();
    if (std::floor(raw) != raw) {
      error(ErrorCode::Runtime, "index must be an integer", pos);
    }
    if (raw < 0 || raw >= static_cast<double>(size)) {
      error(ErrorCode::Runtime,
            "index " + std::to_string(static_cast<long long>(raw)) +
                " out of range [0," + std::to_string(size) + ")",
            pos);
    }
    return static_cast<std::size_t>(raw);
  }

  /// Writes a scalar result without a full variant assignment when the
  /// destination already holds a scalar — the overwhelmingly common case
  /// in straight-line arithmetic, where each register keeps its type.
  static void set_scalar(Value& dst, double x) {
    if (Scalar* p = dst.scalar_if()) {
      *p = x;
    } else {
      dst = Value(x);
    }
  }

  /// Scalar-scalar fast path for Add..Pow, dispatched with a
  /// compile-time operator so scalar_op folds to a single instruction.
  /// Returns false (leaving dst untouched) when either operand is not a
  /// scalar; the caller then takes the general arith() route.
  template <BinOp kOp>
  bool fast_arith(const Instr& in, std::vector<Value>& regs) {
    const Scalar* a = regs[in.b].scalar_if();
    const Scalar* b = regs[in.c].scalar_if();
    if (a == nullptr || b == nullptr) return false;
    set_scalar(regs[in.a], scalar_op(kOp, *a, *b, in.pos));
    return true;
  }

  /// Scalar-scalar ordering fast path for Lt/Le/Gt/Ge.
  template <typename Cmp>
  bool fast_compare(const Instr& in, std::vector<Value>& regs, Cmp cmp) {
    const Scalar* a = regs[in.b].scalar_if();
    const Scalar* b = regs[in.c].scalar_if();
    if (a == nullptr || b == nullptr) return false;
    set_scalar(regs[in.a], cmp(*a, *b) ? 1.0 : 0.0);
    return true;
  }

  static double scalar_op(BinOp op, double a, double b, SourcePos pos) {
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Div:
        if (b == 0) error(ErrorCode::Runtime, "division by zero", pos);
        return a / b;
      case BinOp::Mod:
        if (b == 0) error(ErrorCode::Runtime, "mod by zero", pos);
        return std::fmod(a, b);
      case BinOp::Pow: {
        const double r = std::pow(a, b);
        if (std::isnan(r) && !std::isnan(a) && !std::isnan(b)) {
          error(ErrorCode::Runtime, "invalid power (negative base?)", pos);
        }
        return r;
      }
      default:
        BANGER_ASSERT(false, "unreachable arithmetic op");
    }
  }

  static Value compare(Op op, const Value& lhs, const Value& rhs,
                       SourcePos pos) {
    double cmp = 0;
    if (lhs.is_scalar() && rhs.is_scalar()) {
      const double a = lhs.as_scalar();
      const double b = rhs.as_scalar();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      const int c = lhs.as_string().compare(rhs.as_string());
      cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    } else {
      error(ErrorCode::Type,
            "cannot order a " + std::string(lhs.type_name()) + " against a " +
                std::string(rhs.type_name()),
            pos);
    }
    switch (op) {
      case Op::Lt: return Value(cmp < 0 ? 1.0 : 0.0);
      case Op::Le: return Value(cmp <= 0 ? 1.0 : 0.0);
      case Op::Gt: return Value(cmp > 0 ? 1.0 : 0.0);
      default: return Value(cmp >= 0 ? 1.0 : 0.0);
    }
  }

  /// Vector-vector elementwise kernel; `o` may exactly alias `a` or `b`
  /// (a move-reused temp). Add/Sub/Mul are branch-free tight loops the
  /// compiler auto-vectorizes; Div/Mod hoist the zero probe out of the
  /// loop into a vectorizable any-zero reduction (the walker's error
  /// message does not depend on the element index, so raising it before
  /// the divide loop is observably identical — the partially-written
  /// output is discarded by the unwind either way); Pow keeps its
  /// per-element NaN probe.
  template <BinOp kOp>
  static void vec_kernel(double* o, const double* a, const double* b,
                         std::size_t n, SourcePos pos) {
    if constexpr (kOp == BinOp::Add) {
      for (std::size_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
    } else if constexpr (kOp == BinOp::Sub) {
      for (std::size_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
    } else if constexpr (kOp == BinOp::Mul) {
      for (std::size_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
    } else if constexpr (kOp == BinOp::Div || kOp == BinOp::Mod) {
      int zero = 0;
      for (std::size_t i = 0; i < n; ++i) zero |= (b[i] == 0 ? 1 : 0);
      if (zero != 0) {
        error(ErrorCode::Runtime,
              kOp == BinOp::Div ? "division by zero" : "mod by zero", pos);
      }
      if constexpr (kOp == BinOp::Div) {
        for (std::size_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
      } else {
        for (std::size_t i = 0; i < n; ++i) o[i] = std::fmod(a[i], b[i]);
      }
    } else {  // Pow
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = scalar_op(BinOp::Pow, a[i], b[i], pos);
      }
    }
  }

  /// In-place scalar-on-the-left broadcast: o[i] = k op o[i].
  template <BinOp kOp>
  static void scl_vec_kernel(double k, double* o, std::size_t n,
                             SourcePos pos) {
    if constexpr (kOp == BinOp::Add) {
      for (std::size_t i = 0; i < n; ++i) o[i] = k + o[i];
    } else if constexpr (kOp == BinOp::Sub) {
      for (std::size_t i = 0; i < n; ++i) o[i] = k - o[i];
    } else if constexpr (kOp == BinOp::Mul) {
      for (std::size_t i = 0; i < n; ++i) o[i] = k * o[i];
    } else if constexpr (kOp == BinOp::Div || kOp == BinOp::Mod) {
      int zero = 0;
      for (std::size_t i = 0; i < n; ++i) zero |= (o[i] == 0 ? 1 : 0);
      if (zero != 0) {
        error(ErrorCode::Runtime,
              kOp == BinOp::Div ? "division by zero" : "mod by zero", pos);
      }
      if constexpr (kOp == BinOp::Div) {
        for (std::size_t i = 0; i < n; ++i) o[i] = k / o[i];
      } else {
        for (std::size_t i = 0; i < n; ++i) o[i] = std::fmod(k, o[i]);
      }
    } else {  // Pow
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = scalar_op(BinOp::Pow, k, o[i], pos);
      }
    }
  }

  /// In-place scalar-on-the-right broadcast: o[i] = o[i] op k.
  template <BinOp kOp>
  static void vec_scl_kernel(double* o, std::size_t n, double k,
                             SourcePos pos) {
    if constexpr (kOp == BinOp::Add) {
      for (std::size_t i = 0; i < n; ++i) o[i] = o[i] + k;
    } else if constexpr (kOp == BinOp::Sub) {
      for (std::size_t i = 0; i < n; ++i) o[i] = o[i] - k;
    } else if constexpr (kOp == BinOp::Mul) {
      for (std::size_t i = 0; i < n; ++i) o[i] = o[i] * k;
    } else if constexpr (kOp == BinOp::Div || kOp == BinOp::Mod) {
      if (k == 0 && n > 0) {
        error(ErrorCode::Runtime,
              kOp == BinOp::Div ? "division by zero" : "mod by zero", pos);
      }
      if constexpr (kOp == BinOp::Div) {
        for (std::size_t i = 0; i < n; ++i) o[i] = o[i] / k;
      } else {
        for (std::size_t i = 0; i < n; ++i) o[i] = std::fmod(o[i], k);
      }
    } else {  // Pow
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = scalar_op(BinOp::Pow, o[i], k, pos);
      }
    }
  }

  /// Add..Pow with broadcast. A flagged operand register holds a dead
  /// temp whose vector payload is reused in place of a fresh copy; the
  /// result is assigned to the destination last, so aliasing dst with
  /// either operand is safe and errors leave dst untouched.
  template <BinOp kOp>
  static Value arith(const Instr& in, std::vector<Value>& regs) {
    Value& lhs = regs[in.b];
    Value& rhs = regs[in.c];
    // Scalar-scalar fast path: one variant probe per operand. Strings
    // cannot be involved here, so hoisting it past the string check is
    // behaviour-preserving.
    if (const Scalar* a = lhs.scalar_if()) {
      if (const Scalar* b = rhs.scalar_if()) {
        return Value(scalar_op(kOp, *a, *b, in.pos));
      }
    }
    if (lhs.is_string() || rhs.is_string()) {
      if (kOp == BinOp::Add && lhs.is_string() && rhs.is_string()) {
        return Value(lhs.as_string() + rhs.as_string());
      }
      error(ErrorCode::Type,
            "operator `" + std::string(to_string(kOp)) +
                "` is not defined for strings",
            in.pos);
    }
    if (lhs.is_vector() && rhs.is_vector()) {
      if (lhs.as_vector().size() != rhs.as_vector().size()) {
        error(ErrorCode::Type,
              "elementwise `" + std::string(to_string(kOp)) +
                  "` on vectors of lengths " +
                  std::to_string(lhs.as_vector().size()) + " and " +
                  std::to_string(rhs.as_vector().size()),
              in.pos);
      }
      if ((in.flags & kTempB) != 0) {
        Vector out = std::move(lhs.as_vector());
        vec_kernel<kOp>(out.data(), out.data(), rhs.as_vector().data(),
                        out.size(), in.pos);
        return Value(std::move(out));
      }
      const Vector& a = lhs.as_vector();
      if ((in.flags & kTempC) != 0) {
        Vector out = std::move(rhs.as_vector());
        vec_kernel<kOp>(out.data(), a.data(), out.data(), out.size(), in.pos);
        return Value(std::move(out));
      }
      const Vector& b = rhs.as_vector();
      Vector out(a.size());
      vec_kernel<kOp>(out.data(), a.data(), b.data(), out.size(), in.pos);
      return Value(std::move(out));
    }
    if (lhs.is_scalar() && rhs.is_vector()) {
      const double a = lhs.as_scalar();
      Vector out = (in.flags & kTempC) != 0 ? std::move(rhs.as_vector())
                                            : rhs.as_vector();
      scl_vec_kernel<kOp>(a, out.data(), out.size(), in.pos);
      return Value(std::move(out));
    }
    if (lhs.is_vector() && rhs.is_scalar()) {
      const double b = rhs.as_scalar();
      Vector out = (in.flags & kTempB) != 0 ? std::move(lhs.as_vector())
                                            : lhs.as_vector();
      vec_scl_kernel<kOp>(out.data(), out.size(), b, in.pos);
      return Value(std::move(out));
    }
    error(ErrorCode::Type,
          "operator `" + std::string(to_string(kOp)) + "` on a " +
              std::string(lhs.type_name()) + " and a " +
              std::string(rhs.type_name()),
          in.pos);
  }

  /// The AddK..PowK fused forms: rhs is a scalar const pool entry, so
  /// the type dispatch collapses to one probe of the left operand. For
  /// the commutative ops (Add/Mul) the peephole also folds const-lhs
  /// pairs through here with the operands swapped; results and error
  /// messages are identical either way (the walker's string/type errors
  /// for these shapes do not depend on operand order).
  template <BinOp kOp>
  void arith_k(const Instr& in, std::vector<Value>& regs) {
    const double k = *chunk_.consts[in.c].scalar_if();
    Value& lhs = regs[in.b];
    if (const Scalar* a = lhs.scalar_if()) {
      set_scalar(regs[in.a], scalar_op(kOp, *a, k, in.pos));
      return;
    }
    if (lhs.is_string()) {
      error(ErrorCode::Type,
            "operator `" + std::string(to_string(kOp)) +
                "` is not defined for strings",
            in.pos);
    }
    Vector out = (in.flags & kTempB) != 0 ? std::move(lhs.as_vector())
                                          : lhs.as_vector();
    vec_scl_kernel<kOp>(out.data(), out.size(), k, in.pos);
    regs[in.a] = Value(std::move(out));
  }

  /// The LtK..GeK fused forms: rhs is a scalar const pool entry.
  template <typename Cmp>
  void compare_k(const Instr& in, std::vector<Value>& regs, Op base,
                 Cmp cmp) {
    const Value& k = chunk_.consts[in.c];
    if (const Scalar* a = regs[in.b].scalar_if()) {
      set_scalar(regs[in.a], cmp(*a, *k.scalar_if()) ? 1.0 : 0.0);
      return;
    }
    regs[in.a] = compare(base, regs[in.b], k, in.pos);
  }

  /// Executes code[from, to). `states` is non-null only for the
  /// top-level frame (formula frames hold just parameters, all bound
  /// by construction). Argument ranges recurse through here; Halt only
  /// appears at statement level, so it unwinds the top frame directly.
  void exec(const Code& code, std::vector<Value>& regs,
            std::vector<std::uint8_t>* states, std::uint32_t from,
            std::uint32_t to) {
    for (std::uint32_t ip = from; ip < to;) {
      const Instr& in = code.ins[ip];
      ++retired_;
      switch (in.op) {
        case Op::LoadConst: {
          const Value& c = chunk_.consts[in.b];
          if (const Scalar* s = c.scalar_if()) {
            set_scalar(regs[in.a], *s);
          } else {
            regs[in.a] = c;
          }
          break;
        }
        case Op::Move:
          if (in.a != in.b) {
            if (const Scalar* s = regs[in.b].scalar_if()) {
              set_scalar(regs[in.a], *s);
            } else if ((in.flags & kTempB) != 0) {
              regs[in.a] = std::move(regs[in.b]);
            } else {
              regs[in.a] = regs[in.b];
            }
          }
          break;
        case Op::CheckVar: {
          std::uint8_t& st = (*states)[in.a];
          if (st == kUnbound) {
            const VarInfo& vi = chunk_.vars[in.a];
            if (!vi.has_const) {
              error(ErrorCode::Name,
                    "undefined variable `" + var_name(in.a) + "`", in.pos);
            }
            regs[in.a] = Value(vi.const_value);
            st = kConstMaterialized;
          }
          break;
        }
        case Op::Neg: {
          Value& v = regs[in.b];
          if (v.is_vector()) {
            Vector out = (in.flags & kTempB) != 0 ? std::move(v.as_vector())
                                                  : v.as_vector();
            for (double& x : out) x = -x;
            regs[in.a] = Value(std::move(out));
          } else if (v.is_string()) {
            error(ErrorCode::Type, "cannot negate a string", in.pos);
          } else {
            regs[in.a] = Value(-v.as_scalar());
          }
          break;
        }
        case Op::NotOp:
          set_scalar(regs[in.a], regs[in.b].truthy() ? 0.0 : 1.0);
          break;
        case Op::Truthy:
          set_scalar(regs[in.a], regs[in.b].truthy() ? 1.0 : 0.0);
          break;
        case Op::Add:
          if (!fast_arith<BinOp::Add>(in, regs))
            regs[in.a] = arith<BinOp::Add>(in, regs);
          break;
        case Op::Sub:
          if (!fast_arith<BinOp::Sub>(in, regs))
            regs[in.a] = arith<BinOp::Sub>(in, regs);
          break;
        case Op::Mul:
          if (!fast_arith<BinOp::Mul>(in, regs))
            regs[in.a] = arith<BinOp::Mul>(in, regs);
          break;
        case Op::Div:
          if (!fast_arith<BinOp::Div>(in, regs))
            regs[in.a] = arith<BinOp::Div>(in, regs);
          break;
        case Op::Mod:
          if (!fast_arith<BinOp::Mod>(in, regs))
            regs[in.a] = arith<BinOp::Mod>(in, regs);
          break;
        case Op::Pow:
          if (!fast_arith<BinOp::Pow>(in, regs))
            regs[in.a] = arith<BinOp::Pow>(in, regs);
          break;
        case Op::AddK: arith_k<BinOp::Add>(in, regs); break;
        case Op::SubK: arith_k<BinOp::Sub>(in, regs); break;
        case Op::MulK: arith_k<BinOp::Mul>(in, regs); break;
        case Op::DivK: arith_k<BinOp::Div>(in, regs); break;
        case Op::ModK: arith_k<BinOp::Mod>(in, regs); break;
        case Op::PowK: arith_k<BinOp::Pow>(in, regs); break;
        case Op::LtK:
          compare_k(in, regs, Op::Lt, [](double a, double b) { return a < b; });
          break;
        case Op::LeK:
          compare_k(in, regs, Op::Le,
                    [](double a, double b) { return a <= b; });
          break;
        case Op::GtK:
          compare_k(in, regs, Op::Gt, [](double a, double b) { return a > b; });
          break;
        case Op::GeK:
          compare_k(in, regs, Op::Ge,
                    [](double a, double b) { return a >= b; });
          break;
        case Op::EqK:
          set_scalar(regs[in.a],
                     regs[in.b].equals(chunk_.consts[in.c]) ? 1.0 : 0.0);
          break;
        case Op::NeK:
          set_scalar(regs[in.a],
                     regs[in.b].equals(chunk_.consts[in.c]) ? 0.0 : 1.0);
          break;
        case Op::CmpEq:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 1.0 : 0.0);
          break;
        case Op::CmpNe:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 0.0 : 1.0);
          break;
        case Op::Lt:
          if (!fast_compare(in, regs, [](double a, double b) { return a < b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Le:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a <= b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Gt:
          if (!fast_compare(in, regs, [](double a, double b) { return a > b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        case Op::Ge:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a >= b; }))
            regs[in.a] = compare(in.op, regs[in.b], regs[in.c], in.pos);
          break;
        // Fused compare+branch: the comparison executes exactly as the
        // standalone op (including writing its 0/1 result register, so
        // any later read still sees it), then the folded JumpIfFalsy
        // fires on the value just computed.
        case Op::LtBr:
          if (!fast_compare(in, regs, [](double a, double b) { return a < b; }))
            regs[in.a] = compare(Op::Lt, regs[in.b], regs[in.c], in.pos);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::LeBr:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a <= b; }))
            regs[in.a] = compare(Op::Le, regs[in.b], regs[in.c], in.pos);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::GtBr:
          if (!fast_compare(in, regs, [](double a, double b) { return a > b; }))
            regs[in.a] = compare(Op::Gt, regs[in.b], regs[in.c], in.pos);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::GeBr:
          if (!fast_compare(in, regs,
                            [](double a, double b) { return a >= b; }))
            regs[in.a] = compare(Op::Ge, regs[in.b], regs[in.c], in.pos);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::EqBr:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 1.0 : 0.0);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::NeBr:
          set_scalar(regs[in.a], regs[in.b].equals(regs[in.c]) ? 0.0 : 1.0);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::LtKBr:
          compare_k(in, regs, Op::Lt, [](double a, double b) { return a < b; });
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::LeKBr:
          compare_k(in, regs, Op::Le,
                    [](double a, double b) { return a <= b; });
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::GtKBr:
          compare_k(in, regs, Op::Gt, [](double a, double b) { return a > b; });
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::GeKBr:
          compare_k(in, regs, Op::Ge,
                    [](double a, double b) { return a >= b; });
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::EqKBr:
          set_scalar(regs[in.a],
                     regs[in.b].equals(chunk_.consts[in.c]) ? 1.0 : 0.0);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::NeKBr:
          set_scalar(regs[in.a],
                     regs[in.b].equals(chunk_.consts[in.c]) ? 0.0 : 1.0);
          if (!regs[in.a].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::NewVector: {
          Vector v;
          v.reserve(static_cast<std::size_t>(in.d));
          regs[in.a] = Value(std::move(v));
          break;
        }
        case Op::PushScalar: {
          const Value& el = regs[in.b];
          if (!el.is_scalar()) {
            error(ErrorCode::Type,
                  "expected a number, got a " + std::string(el.type_name()),
                  in.pos);
          }
          regs[in.a].as_vector().push_back(el.as_scalar());
          break;
        }
        case Op::CheckIndexable:
          if (!regs[in.a].is_vector()) {
            error(ErrorCode::Type,
                  "cannot index a " + std::string(regs[in.a].type_name()),
                  in.pos);
          }
          break;
        case Op::IndexLoad: {
          const Vector& v = regs[in.b].as_vector();
          std::size_t i;
          if ((in.flags & kNoCheck) != 0) {
            // Index proven an in-bounds integer by the abstract
            // interpreter; the differential suite guards the proof.
            const Scalar* x = regs[in.c].scalar_if();
            BANGER_ASSERT(x != nullptr && *x >= 0 &&
                              *x < static_cast<double>(v.size()),
                          "absint in-bounds proof violated");
            i = static_cast<std::size_t>(*x);
          } else {
            i = index_of(regs[in.c], v.size(), in.pos);
          }
          set_scalar(regs[in.a], v[i]);
          break;
        }
        case Op::Jump:
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::JumpIfFalsy:
          if (!regs[in.b].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::JumpIfTruthy:
          if (regs[in.b].truthy()) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          break;
        case Op::Tick:
          tick(in.pos);
          break;
        case Op::TickN: {
          const auto n = static_cast<std::uint64_t>(in.d);
          if (n <= options_.step_limit - steps_) {
            steps_ += n;  // whole batch fits: one addition for n ticks
            break;
          }
          // The limit lands inside this batch: replay statement by
          // statement so the Limit error carries the exact statement
          // position and partial effects the walker would produce.
          const StmtRun& run = chunk_.runs[in.a];
          for (std::size_t j = 0; j < run.pos.size(); ++j) {
            tick(run.pos[j]);
            exec(code, regs, states, run.bounds[j], run.bounds[j + 1]);
          }
          ip = run.bounds.back();
          continue;
        }
        case Op::FinishAssign:
          (*states)[in.a] = kBound;
          if (options_.trace != nullptr) {
            *options_.trace << "line " << in.pos.line << ": " << var_name(in.a)
                            << " = " << regs[in.a].to_display() << "\n";
          }
          break;
        case Op::IndexedCheck: {
          if ((*states)[in.a] != kBound) {
            error(ErrorCode::Name,
                  "indexed assignment to undefined variable `" +
                      var_name(in.a) + "`",
                  in.pos);
          }
          if (!regs[in.a].is_vector()) {
            error(ErrorCode::Type, "`" + var_name(in.a) + "` is not a vector",
                  in.pos);
          }
          break;
        }
        case Op::IndexedStore: {
          Vector& vec = regs[in.a].as_vector();
          if ((in.flags & kNoCheck) != 0) {
            const Scalar* x = regs[in.b].scalar_if();
            const Scalar* v = regs[in.c].scalar_if();
            BANGER_ASSERT(x != nullptr && v != nullptr && *x >= 0 &&
                              *x < static_cast<double>(vec.size()),
                          "absint indexed-store proof violated");
            vec[static_cast<std::size_t>(*x)] = *v;
            break;
          }
          const std::size_t i = index_of(regs[in.b], vec.size(), in.pos);
          vec[i] = regs[in.c].as_scalar();
          break;
        }
        case Op::ToScalar:
          set_scalar(regs[in.a], regs[in.b].as_scalar());
          break;
        case Op::ForInit:
          if (regs[in.a].as_scalar() == 0) {
            error(ErrorCode::Runtime, "for loop with zero step", in.pos);
          }
          break;
        case Op::ForNext: {
          const double x = regs[in.a].as_scalar();
          const double limit = regs[in.b].as_scalar();
          const double step = regs[in.c].as_scalar();
          if (!(step > 0 ? x <= limit + 1e-12 : x >= limit - 1e-12)) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          // kNoTick: the iteration tick was absorbed into the body's
          // leading TickN (which also carries SetLoopVar).
          if ((in.flags & kNoTick) == 0) tick(in.pos);
          break;
        }
        case Op::SetLoopVar:
          set_scalar(regs[in.a], regs[in.b].as_scalar());
          (*states)[in.a] = kBound;
          break;
        case Op::ForStep:
          set_scalar(regs[in.a],
                     regs[in.a].as_scalar() + regs[in.c].as_scalar());
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::RepeatInit: {
          const double n = regs[in.c].as_scalar();
          if (n < 0 || std::floor(n) != n) {
            error(ErrorCode::Runtime,
                  "repeat count must be a non-negative integer", in.pos);
          }
          set_scalar(regs[in.a], 0.0);
          set_scalar(regs[in.b], n);
          break;
        }
        case Op::RepeatNext: {
          const double k = regs[in.a].as_scalar();
          if (!(k < regs[in.b].as_scalar())) {
            ip = static_cast<std::uint32_t>(in.d);
            continue;
          }
          if ((in.flags & kNoTick) == 0) tick(in.pos);
          set_scalar(regs[in.a], k + 1);
          break;
        }
        case Op::CallOp:
          regs[in.a] = call_site(code, code.sites[in.b], regs, states, in);
          ip = static_cast<std::uint32_t>(in.d);
          continue;
        case Op::DefFormula: {
          const Formula& fo = chunk_.formulas[in.b];
          formula_table_[static_cast<std::size_t>(fo.table)] =
              static_cast<std::int32_t>(in.b);
          break;
        }
        case Op::ErrAlways:
          error(static_cast<ErrorCode>(in.a), chunk_.messages[in.b], in.pos);
        case Op::Halt:
          return;
      }
      // Store fusion epilogue: a folded FinishAssign fires only after
      // the carrying instruction succeeded, exactly where the standalone
      // instruction sat. The peephole fuses only same-line pairs, so the
      // trace echo prints the same line number the walker does.
      if ((in.flags & kFinish) != 0) {
        (*states)[in.a] = kBound;
        if (options_.trace != nullptr) {
          *options_.trace << "line " << in.pos.line << ": " << var_name(in.a)
                          << " = " << regs[in.a].to_display() << "\n";
        }
      }
      ++ip;
    }
  }

  Value call_site(const Code& code, const CallSite& site,
                  std::vector<Value>& regs, std::vector<std::uint8_t>* states,
                  const Instr& in) {
    const std::string& callee = chunk_.names[site.name];
    // Formula lookup precedes builtins, like the tree-walker's scope
    // order; the table is populated dynamically by DefFormula, so a
    // call before the definition falls through exactly as it should.
    if (site.formula >= 0) {
      const std::int32_t fi =
          formula_table_[static_cast<std::size_t>(site.formula)];
      if (fi >= 0) {
        return call_formula(chunk_.formulas[static_cast<std::size_t>(fi)],
                            site, code, regs, states, callee, in.pos);
      }
    }
    const Builtin* fn = site.builtin;
    if (fn == nullptr) {
      error(ErrorCode::Name, "unknown function `" + callee + "`", in.pos);
    }
    const int n = static_cast<int>(site.args.size());
    if (n < fn->min_args || (fn->max_args >= 0 && n > fn->max_args)) {
      error(ErrorCode::Type,
            "`" + callee + "` expects " + std::to_string(fn->min_args) +
                (fn->max_args == fn->min_args
                     ? ""
                     : (fn->max_args < 0
                            ? "+"
                            : ".." + std::to_string(fn->max_args))) +
                " arguments, got " + std::to_string(n),
            in.pos);
    }
    // Argument buffers are pooled per nesting depth: a routine dominated
    // by builtin calls would otherwise pay one heap allocation per call.
    // The pool is indexed (not referenced) across the argument loop —
    // nested calls inside an argument expression may grow the pool.
    const std::size_t slot = call_pool_used_++;
    if (slot == call_pool_.size()) call_pool_.emplace_back();
    struct PoolGuard {
      std::size_t& used;
      ~PoolGuard() { --used; }
    } guard{call_pool_used_};
    call_pool_[slot].clear();
    call_pool_[slot].reserve(site.args.size());
    for (const ArgRange& ar : site.args) {
      exec(code, regs, states, ar.begin, ar.end);
      if (ar.temp != 0) {
        call_pool_[slot].push_back(std::move(regs[ar.reg]));
      } else {
        call_pool_[slot].push_back(regs[ar.reg]);
      }
    }
    try {
      return fn->fn(call_pool_[slot], ctx_);
    } catch (const Error& e) {
      fail(e.code(), e.message() + " in `" + callee + "`", in.pos);
    }
  }

  Value call_formula(const Formula& fo, const CallSite& site,
                     const Code& caller, std::vector<Value>& regs,
                     std::vector<std::uint8_t>* states,
                     const std::string& name, SourcePos pos) {
    if (site.args.size() != fo.param_reg.size()) {
      error(ErrorCode::Type,
            "formula `" + name + "` expects " +
                std::to_string(fo.param_reg.size()) + " arguments, got " +
                std::to_string(site.args.size()),
            pos);
    }
    if (++formula_depth_ > 256) {
      --formula_depth_;
      error(ErrorCode::Limit,
            "formula recursion deeper than 256 (`" + name + "`)", pos);
    }
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{formula_depth_};
    // Arguments evaluate in the caller's frame — errors there are not
    // attributed to this formula (only the body's are, below).
    std::vector<Value> frame(fo.code.num_regs);
    for (std::size_t i = 0; i < site.args.size(); ++i) {
      const ArgRange& ar = site.args[i];
      exec(caller, regs, states, ar.begin, ar.end);
      if (fo.param_bind[i] != 0) {
        frame[fo.param_reg[i]] = ar.temp != 0 ? std::move(regs[ar.reg])
                                              : regs[ar.reg];
      }
    }
    try {
      tick(pos);
      exec(fo.code, frame, nullptr, 0,
           static_cast<std::uint32_t>(fo.code.ins.size()));
      return std::move(frame[fo.result]);
    } catch (const Error& e) {
      // Attribute the failure to the innermost formula, once, keeping
      // the original code and position so callers can still classify it.
      if (e.message().find(" in formula `") != std::string::npos) throw;
      fail(e.code(), e.message() + " in formula `" + name + "`",
           e.pos().valid() ? e.pos() : pos);
    }
  }

  const Chunk& chunk_;
  const ExecOptions& options_;
  util::Rng rng_;
  BuiltinContext ctx_;
  std::vector<std::int32_t> formula_table_;
  std::vector<std::vector<Value>> call_pool_;
  std::size_t call_pool_used_ = 0;
  int formula_depth_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace

void run(const Chunk& chunk, Env& env, const ExecOptions& options) {
  Vm vm(chunk, options);
  vm.run(env);
}

void run_frame(const Chunk& chunk, Frame& frame, const ExecOptions& options) {
  Vm vm(chunk, options);
  vm.run_frame(frame);
}

}  // namespace banger::pits::bc
