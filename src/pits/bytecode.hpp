// banger/pits/bytecode.hpp
//
// Register bytecode for PITS routines. The tree-walk interpreter in
// interp.cpp resolves every variable through a std::map on every read;
// the compiler in compile.cpp interns each name to a dense frame slot
// once, folds constant subexpressions into a pool, and lowers loops and
// calls to direct opcodes so the VM in vm.cpp touches the Env map only
// at entry/exit. Semantics are bit-for-bit those of the tree-walker —
// same step accounting, same error codes/messages/positions, same
// print/trace transcripts, same rand() stream — which the differential
// fuzz suite (tests/pits_vm_test.cpp) enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pits/ast.hpp"
#include "pits/interp.hpp"
#include "pits/value.hpp"

namespace banger::pits {
struct Builtin;
}  // namespace banger::pits

namespace banger::pits::bc {

// One opcode per operation the tree-walker performs between two Env
// touches. Operand conventions: `a` is usually the destination
// register, `b`/`c` sources, `d` a jump target / resume index / count.
// `pos` is the source position any error raised by the instruction
// carries, chosen to match the tree-walker exactly.
enum class Op : std::uint8_t {
  LoadConst,   // r[a] = consts[b]
  Move,        // r[a] = r[b] (moved when flag kTempB)
  CheckVar,    // slot a unbound: materialize constant or throw Name error
  Neg,         // r[a] = -r[b] (scalar/vector; string errors)
  NotOp,       // r[a] = r[b] truthy ? 0 : 1
  Truthy,      // r[a] = r[b] truthy ? 1 : 0
  Add, Sub, Mul, Div, Mod, Pow,   // r[a] = r[b] op r[c] with broadcast
  CmpEq, CmpNe, Lt, Le, Gt, Ge,   // r[a] = comparison as 0/1
  NewVector,   // r[a] = empty vector reserved to d elements
  PushScalar,  // r[a].vector += scalar r[b] ("expected a number" at pos)
  CheckIndexable,  // r[a] must be a vector ("cannot index a ...")
  IndexLoad,   // r[a] = r[b][r[c]] (integer + range checks at pos)
  Jump,        // ip = d
  JumpIfFalsy,   // if !truthy(r[b]) ip = d
  JumpIfTruthy,  // if truthy(r[b]) ip = d
  Tick,        // statement step accounting against ExecOptions::step_limit
  TickN,       // d pre-counted statement ticks at once; runs[a] on slow path
  FinishAssign,   // mark slot a bound; echo to the trace stream
  IndexedCheck,   // slot a must be a bound vector (indexed assignment)
  IndexedStore,   // r[a][r[b]] = scalar r[c]
  ToScalar,    // r[a] = as_scalar(r[b]) — for-loop bound coercion
  ForInit,     // step r[a] must be nonzero
  ForNext,     // counter r[a] vs bound r[b] by sign of step r[c]; exits to d
  SetLoopVar,  // slot a = scalar counter r[b] (never traced)
  ForStep,     // counter r[a] += step r[c]; ip = d
  RepeatInit,  // r[a]=0, r[b]=validated count from r[c]
  RepeatNext,  // if !(r[a] < r[b]) ip = d; else tick, ++r[a]
  CallOp,      // r[a] = call sites[b]; args inline before resume point d
  DefFormula,  // register formulas[b] in the runtime formula table
  ErrAlways,   // throw Error{code a, messages[b]} — statically doomed code
  Halt,        // return from the routine
  // ---- fused superinstructions (peephole pass over the stream above).
  // Each is observably identical to the pair it replaces: same result
  // registers written, same errors at the same positions, same ticks.
  AddK, SubK, MulK, DivK, ModK, PowK,  // r[a] = r[b] op consts[c] (scalar)
  LtK, LeK, GtK, GeK, EqK, NeK,        // r[a] = r[b] cmp consts[c] as 0/1
  LtBr, LeBr, GtBr, GeBr, EqBr, NeBr,  // r[a] = r[b] cmp r[c]; falsy -> ip=d
  LtKBr, LeKBr, GtKBr, GeKBr,          // r[a] = r[b] cmp consts[c];
  EqKBr, NeKBr,                        //   falsy -> ip=d
};

// Operand-liveness flags: a flagged source register is a dead temporary
// after this instruction, so vector payloads may be moved or mutated in
// place instead of copied. Named slots are never flagged.
inline constexpr std::uint8_t kTempB = 1U;
inline constexpr std::uint8_t kTempC = 2U;

// Analysis-elision flags (facts-guided compiles only).
// kNoCheck on IndexLoad/IndexedStore: the index is proven an in-bounds
// integer (and the stored value a scalar), so the checks are skipped.
// kNoTick on ForNext/RepeatNext: the iteration tick was absorbed into
// the loop body's leading TickN.
inline constexpr std::uint8_t kNoCheck = 4U;
inline constexpr std::uint8_t kNoTick = 8U;

// Store fusion (peephole): the instruction's destination `a` is a named
// slot and an adjacent FinishAssign was folded into it — after the
// instruction succeeds, the slot is marked bound and the assignment is
// echoed to the trace stream, exactly where the standalone FinishAssign
// would have done both.
inline constexpr std::uint8_t kFinish = 16U;

struct Instr {
  Op op = Op::Halt;
  std::uint8_t flags = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::int32_t d = 0;
  SourcePos pos;
};

// Argument expressions compile to an inline code range executed only
// after the callee is resolved and its arity checked — the
// tree-walker's evaluation order.
struct ArgRange {
  std::uint32_t begin = 0;  ///< first instruction of the argument
  std::uint32_t end = 0;    ///< one past the last
  std::uint16_t reg = 0;    ///< register holding the result
  std::uint8_t temp = 0;    ///< 1 = result may be moved out
};

struct CallSite {
  std::uint16_t name = 0;   ///< names[] index of the callee
  const Builtin* builtin = nullptr;  ///< pre-resolved; null if unknown
  std::int32_t formula = -1;  ///< runtime formula-table index, -1 if never a formula
  std::vector<ArgRange> args;
};

// One compiled body: the routine's top level or one formula.
struct Code {
  std::vector<Instr> ins;
  std::vector<CallSite> sites;
  std::uint16_t num_regs = 0;
  /// First non-named register: main-frame slots (or formula parameters)
  /// occupy [0, first_temp). The peephole pass may only elide writes to
  /// registers at or above this boundary.
  std::uint16_t first_temp = 0;
};

struct Formula {
  std::uint16_t name = 0;  ///< names[] index
  std::int32_t table = 0;  ///< runtime formula-table index it registers under
  std::vector<std::uint16_t> param_reg;  ///< frame register per declared param
  std::vector<std::uint8_t> param_bind;  ///< 0 for duplicate params (first wins)
  std::uint16_t result = 0;  ///< register holding the body's value
  Code code;
};

// Metadata for a named top-level slot. Slots occupy the low registers
// of the main frame; `const_value` backs CheckVar materialization for
// calculator constants (pi, e, ...) that the Env may shadow at entry.
struct VarInfo {
  std::uint16_t name = 0;  ///< names[] index
  bool has_const = false;
  double const_value = 0.0;
};

// Slow-path metadata for one TickN instruction: per batched statement,
// its source position (the tick the walker would charge) and the main
// instruction range that executes it. `bounds` has one more entry than
// `pos`; range j is [bounds[j], bounds[j+1]). Only consulted when the
// fast path sees the step limit inside the batch, so the limit error
// carries the exact statement position and partial effects the walker
// would produce.
struct StmtRun {
  std::vector<std::uint32_t> bounds;
  std::vector<SourcePos> pos;
};

struct Chunk {
  Code main;
  std::vector<Formula> formulas;
  std::vector<Value> consts;
  std::vector<std::string> names;
  std::vector<std::string> messages;  ///< ErrAlways texts
  std::vector<VarInfo> vars;          ///< named slots, in slot order
  std::vector<StmtRun> runs;          ///< TickN slow-path tables
  std::uint32_t num_formula_names = 0;  ///< runtime formula-table size
  std::uint32_t folded = 0;  ///< subexpressions folded into the pool
  std::uint32_t elided = 0;  ///< checks removed under AnalysisFacts
  std::uint32_t fused = 0;   ///< instruction pairs merged by the peephole
};

struct AnalysisFacts;

/// Compiles a parsed routine. Total for any parseable AST — statically
/// invalid-but-conditionally-executed code lowers to runtime-faulting
/// instructions. Throws Error{Limit} only for routines exceeding the
/// 16-bit register/name space (the caller falls back to the walker).
/// With `facts` (proofs from the abstract interpreter in
/// src/analyze/absint.cpp), statement ticks batch into TickN, proven
/// in-bounds index sites drop their checks, and proven-bound reads
/// drop CheckVar — observable behavior is unchanged.
Chunk compile(const Block& body, const AnalysisFacts* facts = nullptr);

/// Runs a compiled routine with tree-walker-identical semantics. The
/// chunk is immutable and safely shared across concurrent runs.
void run(const Chunk& chunk, Env& env, const ExecOptions& options);

// Slot binding states for the top-level frame (see Frame). A
// const-materialized slot reads like a bound one but never writes back
// to the caller, matching the tree-walker where calculator constants
// never enter the Env.
inline constexpr std::uint8_t kSlotUnbound = 0;
inline constexpr std::uint8_t kSlotBound = 1;
inline constexpr std::uint8_t kSlotConst = 2;

/// A reusable top-level register frame: the Env-free entry point for
/// callers (the batched executor) that already know which chunk slot
/// each value belongs in. Reusing one Frame across runs keeps register
/// and vector capacity warm instead of reallocating per task.
struct Frame {
  std::vector<Value> regs;
  std::vector<std::uint8_t> states;

  /// Sizes the frame for `chunk` and marks every slot unbound. Stale
  /// register payloads are intentionally kept (never read before
  /// written); call bind() for each input afterwards.
  void prepare(const Chunk& chunk) {
    if (regs.size() < chunk.main.num_regs) regs.resize(chunk.main.num_regs);
    states.assign(chunk.vars.size(), kSlotUnbound);
  }

  void bind(std::uint16_t slot, Value v) {
    regs[slot] = std::move(v);
    states[slot] = kSlotBound;
  }
};

/// Runs a compiled routine against a caller-prepared Frame instead of an
/// Env map — identical semantics, errors, transcripts, and rand stream
/// to run(); only the entry/exit marshalling differs. On return (success
/// or error unwind) bound slots hold the routine's final values.
void run_frame(const Chunk& chunk, Frame& frame, const ExecOptions& options);

}  // namespace banger::pits::bc
