#include "pits/value.hpp"

#include "util/strings.hpp"

namespace banger::pits {

std::string_view Value::type_name() const noexcept {
  if (is_scalar()) return "number";
  if (is_vector()) return "vector";
  return "string";
}

Scalar Value::as_scalar() const {
  if (const auto* s = std::get_if<Scalar>(&data_)) return *s;
  fail(ErrorCode::Type,
       "expected a number, got a " + std::string(type_name()));
}

const Vector& Value::as_vector() const {
  if (const auto* v = std::get_if<Vector>(&data_)) return *v;
  fail(ErrorCode::Type,
       "expected a vector, got a " + std::string(type_name()));
}

Vector& Value::as_vector() {
  if (auto* v = std::get_if<Vector>(&data_)) return *v;
  fail(ErrorCode::Type,
       "expected a vector, got a " + std::string(type_name()));
}

const Str& Value::as_string() const {
  if (const auto* s = std::get_if<Str>(&data_)) return *s;
  fail(ErrorCode::Type,
       "expected a string, got a " + std::string(type_name()));
}

bool Value::truthy() const noexcept {
  if (const auto* s = std::get_if<Scalar>(&data_)) return *s != 0.0;
  if (const auto* v = std::get_if<Vector>(&data_)) return !v->empty();
  return !std::get<Str>(data_).empty();
}

bool Value::equals(const Value& other) const noexcept {
  return data_ == other.data_;
}

std::string Value::to_display() const {
  if (const auto* s = std::get_if<Scalar>(&data_)) {
    return util::format_double(*s, 12);
  }
  if (const auto* v = std::get_if<Vector>(&data_)) {
    std::string out = "[";
    for (std::size_t i = 0; i < v->size(); ++i) {
      if (i > 0) out += ", ";
      out += util::format_double((*v)[i], 12);
    }
    out += "]";
    return out;
  }
  return std::get<Str>(data_);
}

}  // namespace banger::pits
