// banger/pits/builtins.hpp
//
// The calculator's button panel as a function registry: scientific and
// engineering functions, vector/statistics operations, constants — the
// "simple programming constructs, scientific and engineering functions,
// constants, and formulas" of the paper's third principle. All functions
// are pure except `print` (writes to the trial-run transcript) and
// `rand` (advances the interpreter's seeded generator).
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "pits/value.hpp"
#include "util/rng.hpp"

namespace banger::pits {

/// Side-channel passed to impure builtins.
struct BuiltinContext {
  util::Rng* rng = nullptr;
  std::ostream* out = nullptr;  ///< trial-run transcript (may be null)
};

struct Builtin {
  std::string name;
  int min_args = 0;
  int max_args = 0;  ///< -1 = unbounded
  std::function<Value(std::vector<Value>&, BuiltinContext&)> fn;
  std::string group;  ///< button group on the panel ("trig", "vector", ...)
  std::string help;   ///< one-line tooltip
};

class BuiltinRegistry {
 public:
  static const BuiltinRegistry& instance();

  /// nullptr when no such function exists.
  [[nodiscard]] const Builtin* find(const std::string& name) const;
  /// All function names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Names within one button group, sorted.
  [[nodiscard]] std::vector<std::string> group(const std::string& g) const;
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  BuiltinRegistry();
  std::map<std::string, Builtin> table_;
};

/// The calculator's constant buttons (pi, e, golden, plus the physical
/// constants an engineering user expects). Name -> value.
const std::map<std::string, double>& constants();

}  // namespace banger::pits
