// Pretty-printer and static variable analyses over the PITS AST.
#include <algorithm>
#include <set>

#include "pits/ast.hpp"
#include "util/strings.hpp"

namespace banger::pits {

namespace {

void print_expr(const Expr& e, std::string& out);

void print_args(const std::vector<ExprPtr>& args, std::string& out) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    print_expr(*args[i], out);
  }
}

/// Parenthesize operands conservatively: child binaries always get
/// parens, which keeps the printer simple and the output unambiguous.
void print_operand(const Expr& e, std::string& out) {
  const bool wrap = std::holds_alternative<Binary>(e.node);
  if (wrap) out += '(';
  print_expr(e, out);
  if (wrap) out += ')';
}

void print_expr(const Expr& e, std::string& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          out += util::format_double(node.value, 15);
        } else if constexpr (std::is_same_v<T, StringLit>) {
          out += '"';
          for (char c : node.value) {
            if (c == '"') out += "\\\"";
            else if (c == '\n') out += "\\n";
            else if (c == '\t') out += "\\t";
            else if (c == '\\') out += "\\\\";
            else out += c;
          }
          out += '"';
        } else if constexpr (std::is_same_v<T, VarRef>) {
          out += node.name;
        } else if constexpr (std::is_same_v<T, VectorLit>) {
          out += '[';
          print_args(node.elements, out);
          out += ']';
        } else if constexpr (std::is_same_v<T, Unary>) {
          out += to_string(node.op);
          print_operand(*node.operand, out);
        } else if constexpr (std::is_same_v<T, Binary>) {
          print_operand(*node.lhs, out);
          out += ' ';
          out += to_string(node.op);
          out += ' ';
          print_operand(*node.rhs, out);
        } else if constexpr (std::is_same_v<T, Index>) {
          print_operand(*node.base, out);
          out += '[';
          print_expr(*node.index, out);
          out += ']';
        } else if constexpr (std::is_same_v<T, Call>) {
          out += node.callee;
          out += '(';
          print_args(node.args, out);
          out += ')';
        }
      },
      e.node);
}

void print_block(const Block& block, int indent, std::string& out);

void print_stmt(const Stmt& s, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, AssignStmt>) {
          out += pad + node.target;
          if (node.index) {
            out += '[';
            print_expr(*node.index, out);
            out += ']';
          }
          out += " := ";
          print_expr(*node.value, out);
          out += '\n';
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          for (std::size_t i = 0; i < node.arms.size(); ++i) {
            out += pad + (i == 0 ? "if " : "elsif ");
            print_expr(*node.arms[i].cond, out);
            out += " then\n";
            print_block(node.arms[i].body, indent + 1, out);
          }
          if (!node.else_body.empty()) {
            out += pad + "else\n";
            print_block(node.else_body, indent + 1, out);
          }
          out += pad + "end\n";
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          out += pad + "while ";
          print_expr(*node.cond, out);
          out += " do\n";
          print_block(node.body, indent + 1, out);
          out += pad + "end\n";
        } else if constexpr (std::is_same_v<T, RepeatStmt>) {
          out += pad + "repeat ";
          print_expr(*node.count, out);
          out += " times\n";
          print_block(node.body, indent + 1, out);
          out += pad + "end\n";
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          out += pad + "for " + node.var + " := ";
          print_expr(*node.from, out);
          out += " to ";
          print_expr(*node.to, out);
          if (node.step) {
            out += " step ";
            print_expr(*node.step, out);
          }
          out += " do\n";
          print_block(node.body, indent + 1, out);
          out += pad + "end\n";
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          out += pad + "return\n";
        } else if constexpr (std::is_same_v<T, FormulaDef>) {
          out += pad + "formula " + node.name + "(";
          for (std::size_t i = 0; i < node.params.size(); ++i) {
            if (i > 0) out += ", ";
            out += node.params[i];
          }
          out += ") := ";
          print_expr(*node.body, out);
          out += '\n';
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          out += pad;
          print_expr(*node.expr, out);
          out += '\n';
        }
      },
      s.node);
}

void print_block(const Block& block, int indent, std::string& out) {
  for (const StmtPtr& s : block) print_stmt(*s, indent, out);
}

// ---- variable analyses ----

struct VarWalk {
  std::set<std::string> assigned;
  std::set<std::string> free;  // read with no prior assignment

  void read(const std::string& name) {
    if (!assigned.contains(name)) free.insert(name);
  }

  void walk_expr(const Expr& e) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            read(node.name);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) walk_expr(*el);
          } else if constexpr (std::is_same_v<T, Unary>) {
            walk_expr(*node.operand);
          } else if constexpr (std::is_same_v<T, Binary>) {
            walk_expr(*node.lhs);
            walk_expr(*node.rhs);
          } else if constexpr (std::is_same_v<T, Index>) {
            walk_expr(*node.base);
            walk_expr(*node.index);
          } else if constexpr (std::is_same_v<T, Call>) {
            for (const auto& a : node.args) walk_expr(*a);
          }
        },
        e.node);
  }

  void walk_block(const Block& block) {
    for (const StmtPtr& s : block) walk_stmt(*s);
  }

  void walk_stmt(const Stmt& s) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            if (node.index) {
              // Element assignment reads the existing vector.
              read(node.target);
              walk_expr(*node.index);
            }
            walk_expr(*node.value);
            assigned.insert(node.target);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            // Conservative: a variable assigned only inside a branch is
            // still "assigned" for reads *after* the if; free-variable
            // analysis therefore under-approximates on some paths, which
            // is the friendly behaviour for lint purposes.
            for (const auto& arm : node.arms) {
              walk_expr(*arm.cond);
              walk_block(arm.body);
            }
            walk_block(node.else_body);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            walk_expr(*node.cond);
            walk_block(node.body);
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            walk_expr(*node.count);
            walk_block(node.body);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            walk_expr(*node.from);
            walk_expr(*node.to);
            if (node.step) walk_expr(*node.step);
            assigned.insert(node.var);
            walk_block(node.body);
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            // nothing
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            // Parameters are bound inside the body; anything else the
            // body reads would be a runtime error, surface it as free.
            std::vector<std::string> fresh;
            for (const std::string& param : node.params) {
              if (!assigned.contains(param)) {
                assigned.insert(param);
                fresh.push_back(param);
              }
            }
            walk_expr(*node.body);
            for (const std::string& param : fresh) assigned.erase(param);
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            walk_expr(*node.expr);
          }
        },
        s.node);
  }
};

}  // namespace

std::string to_source(const Block& block, int indent) {
  std::string out;
  print_block(block, indent, out);
  return out;
}

std::vector<std::string> free_variables(const Block& block) {
  VarWalk walk;
  walk.walk_block(block);
  return {walk.free.begin(), walk.free.end()};
}

std::vector<std::string> assigned_variables(const Block& block) {
  VarWalk walk;
  walk.walk_block(block);
  return {walk.assigned.begin(), walk.assigned.end()};
}

}  // namespace banger::pits
