// banger/pits/value.hpp
//
// Runtime values of the PITS calculator language. The calculator is a
// scientific instrument: it computes with real scalars, numeric vectors
// (for the engineering workloads: signals, matrix rows), and strings
// (labels for the instant-feedback `print`).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace banger::pits {

using Scalar = double;
using Vector = std::vector<double>;
using Str = std::string;

class Value {
 public:
  Value() : data_(0.0) {}
  Value(double v) : data_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(Vector v) : data_(std::move(v)) {}      // NOLINT(google-explicit-constructor)
  Value(Str v) : data_(std::move(v)) {}         // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(Str(v)) {}       // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_scalar() const noexcept {
    return std::holds_alternative<Scalar>(data_);
  }
  [[nodiscard]] bool is_vector() const noexcept {
    return std::holds_alternative<Vector>(data_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<Str>(data_);
  }

  /// "number", "vector", or "string" — used in error messages.
  [[nodiscard]] std::string_view type_name() const noexcept;

  /// Accessors that throw Error{Type} (with position context added by the
  /// interpreter) on mismatch.
  [[nodiscard]] Scalar as_scalar() const;
  [[nodiscard]] const Vector& as_vector() const;
  [[nodiscard]] Vector& as_vector();
  [[nodiscard]] const Str& as_string() const;

  /// Non-throwing accessors for the execution-engine hot paths: one
  /// variant probe, nullptr on mismatch, no Error construction.
  [[nodiscard]] const Scalar* scalar_if() const noexcept {
    return std::get_if<Scalar>(&data_);
  }
  [[nodiscard]] Scalar* scalar_if() noexcept {
    return std::get_if<Scalar>(&data_);
  }
  [[nodiscard]] const Vector* vector_if() const noexcept {
    return std::get_if<Vector>(&data_);
  }
  [[nodiscard]] Vector* vector_if() noexcept {
    return std::get_if<Vector>(&data_);
  }
  [[nodiscard]] const Str* string_if() const noexcept {
    return std::get_if<Str>(&data_);
  }

  /// Truthiness: nonzero scalar / nonempty vector / nonempty string.
  [[nodiscard]] bool truthy() const noexcept;

  /// Structural equality (scalar==scalar elementwise etc.; values of
  /// different types are never equal).
  [[nodiscard]] bool equals(const Value& other) const noexcept;

  /// Calculator-display rendering ("3.5", "[1, 2, 3]", "text").
  [[nodiscard]] std::string to_display() const;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.equals(b);
  }

 private:
  std::variant<Scalar, Vector, Str> data_;
};

}  // namespace banger::pits
