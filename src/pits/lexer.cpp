#include <cctype>
#include <charconv>
#include <unordered_map>

#include "pits/token.hpp"

namespace banger::pits {

std::string_view to_string(Tok tok) noexcept {
  switch (tok) {
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::Ident: return "identifier";
    case Tok::KwIf: return "if";
    case Tok::KwThen: return "then";
    case Tok::KwElsif: return "elsif";
    case Tok::KwElse: return "else";
    case Tok::KwEnd: return "end";
    case Tok::KwWhile: return "while";
    case Tok::KwDo: return "do";
    case Tok::KwRepeat: return "repeat";
    case Tok::KwTimes: return "times";
    case Tok::KwFor: return "for";
    case Tok::KwTo: return "to";
    case Tok::KwStep: return "step";
    case Tok::KwReturn: return "return";
    case Tok::KwFormula: return "formula";
    case Tok::KwAnd: return "and";
    case Tok::KwOr: return "or";
    case Tok::KwNot: return "not";
    case Tok::KwMod: return "mod";
    case Tok::Assign: return ":=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Caret: return "^";
    case Tok::Eq: return "=";
    case Tok::Ne: return "<>";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Newline: return "newline";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"if", Tok::KwIf},         {"then", Tok::KwThen},
      {"elsif", Tok::KwElsif},   {"else", Tok::KwElse},
      {"end", Tok::KwEnd},       {"while", Tok::KwWhile},
      {"do", Tok::KwDo},         {"repeat", Tok::KwRepeat},
      {"times", Tok::KwTimes},   {"for", Tok::KwFor},
      {"to", Tok::KwTo},         {"step", Tok::KwStep},
      {"return", Tok::KwReturn}, {"formula", Tok::KwFormula},
      {"and", Tok::KwAnd},
      {"or", Tok::KwOr},         {"not", Tok::KwNot},
      {"mod", Tok::KwMod},
  };
  return map;
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;

  auto pos = [&]() { return SourcePos{line, col}; };
  auto push = [&](Tok kind, SourcePos p, std::string text = {},
                  double number = 0.0) {
    // Collapse runs of separators.
    if (kind == Tok::Newline && (out.empty() || out.back().kind == Tok::Newline))
      return;
    out.push_back({kind, std::move(text), number, p});
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    const SourcePos p = pos();

    if (c == '\n' || c == ';') {
      push(Tok::Newline, p);
      advance();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      double value = 0;
      const char* begin = src.data() + i;
      const char* end = src.data() + src.size();
      auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{}) {
        fail(ErrorCode::Parse, "malformed number", p);
      }
      const auto len = static_cast<std::size_t>(ptr - begin);
      push(Tok::Number, p, std::string(src.substr(i, len)), value);
      advance(len);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_'))
        ++j;
      std::string word(src.substr(i, j - i));
      auto kw = keywords().find(word);
      push(kw != keywords().end() ? kw->second : Tok::Ident, p,
           std::move(word));
      advance(j - i);
      continue;
    }
    if (c == '"') {
      std::string body;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != '"' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < src.size()) {
          const char esc = src[j + 1];
          if (esc == 'n') body += '\n';
          else if (esc == 't') body += '\t';
          else body += esc;
          j += 2;
        } else {
          body += src[j];
          ++j;
        }
      }
      if (j >= src.size() || src[j] != '"') {
        fail(ErrorCode::Parse, "unterminated string literal", p);
      }
      push(Tok::String, p, std::move(body));
      advance(j + 1 - i);
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case ':':
        if (two('=')) {
          push(Tok::Assign, p);
          advance(2);
          continue;
        }
        fail(ErrorCode::Parse, "expected `:=`", p);
      case '+': push(Tok::Plus, p); advance(); continue;
      case '-': push(Tok::Minus, p); advance(); continue;
      case '*': push(Tok::Star, p); advance(); continue;
      case '/': push(Tok::Slash, p); advance(); continue;
      case '^': push(Tok::Caret, p); advance(); continue;
      case '=': push(Tok::Eq, p); advance(); continue;
      case '<':
        if (two('>')) { push(Tok::Ne, p); advance(2); continue; }
        if (two('=')) { push(Tok::Le, p); advance(2); continue; }
        push(Tok::Lt, p); advance(); continue;
      case '>':
        if (two('=')) { push(Tok::Ge, p); advance(2); continue; }
        push(Tok::Gt, p); advance(); continue;
      case '(': push(Tok::LParen, p); advance(); continue;
      case ')': push(Tok::RParen, p); advance(); continue;
      case '[': push(Tok::LBracket, p); advance(); continue;
      case ']': push(Tok::RBracket, p); advance(); continue;
      case ',': push(Tok::Comma, p); advance(); continue;
      default:
        fail(ErrorCode::Parse,
             std::string("illegal character `") + c + "`", p);
    }
  }
  push(Tok::Newline, pos());
  out.push_back({Tok::Eof, {}, 0.0, pos()});
  return out;
}

}  // namespace banger::pits
