// Recursive-descent parser for PITS. Precedence (loosest first):
//   or | and | not | = <> < <= > >= | + - | * / mod | unary - | ^ (right)
//   | postfix [index] | primary.
#include <utility>

#include "pits/ast.hpp"
#include "pits/token.hpp"

namespace banger::pits {

std::string_view to_string(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "mod";
    case BinOp::Pow: return "^";
    case BinOp::Eq: return "=";
    case BinOp::Ne: return "<>";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
  }
  return "?";
}

std::string_view to_string(UnOp op) noexcept {
  return op == UnOp::Neg ? "-" : "not ";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Block parse_program() {
    Block block = parse_stmts();
    expect(Tok::Eof);
    return block;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(Tok kind) {
    if (!check(kind)) {
      fail(ErrorCode::Parse,
           "expected `" + std::string(to_string(kind)) + "`, got `" +
               std::string(to_string(peek().kind)) + "`",
           peek().pos);
    }
    return advance();
  }
  void skip_newlines() {
    while (match(Tok::Newline)) {
    }
  }
  [[noreturn]] void error(const std::string& msg) const {
    fail(ErrorCode::Parse, msg, peek().pos);
  }

  /// Statements until one of the given block-closing keywords (not
  /// consumed). Eof also stops.
  Block parse_stmts() {
    Block block;
    skip_newlines();
    while (!check(Tok::Eof) && !check(Tok::KwEnd) && !check(Tok::KwElse) &&
           !check(Tok::KwElsif)) {
      block.push_back(parse_stmt());
      if (!check(Tok::Eof) && !check(Tok::KwEnd) && !check(Tok::KwElse) &&
          !check(Tok::KwElsif)) {
        expect(Tok::Newline);
      }
      skip_newlines();
    }
    return block;
  }

  StmtPtr parse_stmt() {
    const SourcePos at = peek().pos;
    if (check(Tok::KwIf)) return parse_if();
    if (check(Tok::KwWhile)) return parse_while();
    if (check(Tok::KwRepeat)) return parse_repeat();
    if (check(Tok::KwFor)) return parse_for();
    if (check(Tok::KwFormula)) return parse_formula();
    if (match(Tok::KwReturn)) {
      return make_stmt(at, ReturnStmt{});
    }
    if (check(Tok::Ident)) {
      // Assignment (possibly indexed) or a call statement.
      if (peek(1).kind == Tok::Assign) {
        AssignStmt s;
        s.target = advance().text;
        advance();  // :=
        s.value = parse_expr();
        return make_stmt(at, std::move(s));
      }
      if (peek(1).kind == Tok::LBracket) {
        // Could be `v[i] := e`; scan for the matching `]` then `:=`.
        std::size_t depth = 0;
        std::size_t j = pos_ + 1;
        for (; j < tokens_.size(); ++j) {
          if (tokens_[j].kind == Tok::LBracket) ++depth;
          else if (tokens_[j].kind == Tok::RBracket && --depth == 0) break;
          else if (tokens_[j].kind == Tok::Newline ||
                   tokens_[j].kind == Tok::Eof)
            break;
        }
        if (j < tokens_.size() && tokens_[j].kind == Tok::RBracket &&
            j + 1 < tokens_.size() && tokens_[j + 1].kind == Tok::Assign) {
          AssignStmt s;
          s.target = advance().text;
          expect(Tok::LBracket);
          s.index = parse_expr();
          expect(Tok::RBracket);
          expect(Tok::Assign);
          s.value = parse_expr();
          return make_stmt(at, std::move(s));
        }
      }
      if (peek(1).kind == Tok::LParen) {
        ExprStmt s;
        s.expr = parse_expr();
        return make_stmt(at, std::move(s));
      }
      error("expected `:=` after `" + peek().text + "`");
    }
    error("expected a statement");
  }

  StmtPtr parse_if() {
    const SourcePos at = peek().pos;
    expect(Tok::KwIf);
    IfStmt s;
    for (;;) {
      IfStmt::Arm arm;
      arm.cond = parse_expr();
      expect(Tok::KwThen);
      arm.body = parse_stmts();
      s.arms.push_back(std::move(arm));
      if (match(Tok::KwElsif)) continue;
      if (match(Tok::KwElse)) {
        s.else_body = parse_stmts();
      }
      expect(Tok::KwEnd);
      break;
    }
    return make_stmt(at, std::move(s));
  }

  StmtPtr parse_while() {
    const SourcePos at = peek().pos;
    expect(Tok::KwWhile);
    WhileStmt s;
    s.cond = parse_expr();
    expect(Tok::KwDo);
    s.body = parse_stmts();
    expect(Tok::KwEnd);
    return make_stmt(at, std::move(s));
  }

  StmtPtr parse_repeat() {
    const SourcePos at = peek().pos;
    expect(Tok::KwRepeat);
    RepeatStmt s;
    s.count = parse_expr();
    expect(Tok::KwTimes);
    s.body = parse_stmts();
    expect(Tok::KwEnd);
    return make_stmt(at, std::move(s));
  }

  StmtPtr parse_for() {
    const SourcePos at = peek().pos;
    expect(Tok::KwFor);
    ForStmt s;
    s.var = expect(Tok::Ident).text;
    expect(Tok::Assign);
    s.from = parse_expr();
    expect(Tok::KwTo);
    s.to = parse_expr();
    if (match(Tok::KwStep)) s.step = parse_expr();
    expect(Tok::KwDo);
    s.body = parse_stmts();
    expect(Tok::KwEnd);
    return make_stmt(at, std::move(s));
  }

  StmtPtr parse_formula() {
    const SourcePos at = peek().pos;
    expect(Tok::KwFormula);
    FormulaDef def;
    def.name = expect(Tok::Ident).text;
    expect(Tok::LParen);
    if (!check(Tok::RParen)) {
      do {
        def.params.push_back(expect(Tok::Ident).text);
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen);
    expect(Tok::Assign);
    def.body = parse_expr();
    for (std::size_t i = 0; i < def.params.size(); ++i) {
      for (std::size_t j = i + 1; j < def.params.size(); ++j) {
        if (def.params[i] == def.params[j]) {
          fail(ErrorCode::Parse,
               "duplicate parameter `" + def.params[i] + "`", at);
        }
      }
    }
    return make_stmt(at, std::move(def));
  }

  // ---- expressions ----

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (check(Tok::KwOr)) {
      const SourcePos at = advance().pos;
      lhs = make_binary(at, BinOp::Or, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (check(Tok::KwAnd)) {
      const SourcePos at = advance().pos;
      lhs = make_binary(at, BinOp::And, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (check(Tok::KwNot)) {
      const SourcePos at = advance().pos;
      Unary u;
      u.op = UnOp::Not;
      u.operand = parse_not();
      return make_expr(at, std::move(u));
    }
    return parse_cmp();
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    for (;;) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Eq: op = BinOp::Eq; break;
        case Tok::Ne: op = BinOp::Ne; break;
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Le: op = BinOp::Le; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Ge: op = BinOp::Ge; break;
        default: return lhs;
      }
      const SourcePos at = advance().pos;
      lhs = make_binary(at, op, std::move(lhs), parse_add());
    }
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      if (check(Tok::Plus)) {
        const SourcePos at = advance().pos;
        lhs = make_binary(at, BinOp::Add, std::move(lhs), parse_mul());
      } else if (check(Tok::Minus)) {
        const SourcePos at = advance().pos;
        lhs = make_binary(at, BinOp::Sub, std::move(lhs), parse_mul());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinOp op;
      if (check(Tok::Star)) op = BinOp::Mul;
      else if (check(Tok::Slash)) op = BinOp::Div;
      else if (check(Tok::KwMod)) op = BinOp::Mod;
      else return lhs;
      const SourcePos at = advance().pos;
      lhs = make_binary(at, op, std::move(lhs), parse_unary());
    }
  }

  ExprPtr parse_unary() {
    if (check(Tok::Minus)) {
      const SourcePos at = advance().pos;
      Unary u;
      u.op = UnOp::Neg;
      u.operand = parse_unary();
      return make_expr(at, std::move(u));
    }
    return parse_power();
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_postfix();
    if (check(Tok::Caret)) {
      const SourcePos at = advance().pos;
      // Right-associative: a^b^c = a^(b^c).
      return make_binary(at, BinOp::Pow, std::move(base), parse_unary());
    }
    return base;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (check(Tok::LBracket)) {
      const SourcePos at = advance().pos;
      Index ix;
      ix.base = std::move(e);
      ix.index = parse_expr();
      expect(Tok::RBracket);
      e = make_expr(at, std::move(ix));
    }
    return e;
  }

  ExprPtr parse_primary() {
    const SourcePos at = peek().pos;
    if (check(Tok::Number)) {
      return make_expr(at, NumberLit{advance().number});
    }
    if (check(Tok::String)) {
      return make_expr(at, StringLit{advance().text});
    }
    if (check(Tok::Ident)) {
      std::string name = advance().text;
      if (match(Tok::LParen)) {
        Call call;
        call.callee = std::move(name);
        if (!check(Tok::RParen)) {
          do {
            call.args.push_back(parse_expr());
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen);
        return make_expr(at, std::move(call));
      }
      return make_expr(at, VarRef{std::move(name)});
    }
    if (match(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    if (match(Tok::LBracket)) {
      VectorLit vec;
      if (!check(Tok::RBracket)) {
        do {
          vec.elements.push_back(parse_expr());
        } while (match(Tok::Comma));
      }
      expect(Tok::RBracket);
      return make_expr(at, std::move(vec));
    }
    error("expected an expression");
  }

  template <typename Node>
  static ExprPtr make_expr(SourcePos at, Node&& node) {
    auto e = std::make_unique<Expr>();
    e->pos = at;
    e->node = std::forward<Node>(node);
    return e;
  }
  static ExprPtr make_binary(SourcePos at, BinOp op, ExprPtr lhs,
                             ExprPtr rhs) {
    Binary b;
    b.op = op;
    b.lhs = std::move(lhs);
    b.rhs = std::move(rhs);
    return make_expr(at, std::move(b));
  }
  template <typename Node>
  static StmtPtr make_stmt(SourcePos at, Node&& node) {
    auto s = std::make_unique<Stmt>();
    s->pos = at;
    s->node = std::forward<Node>(node);
    return s;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Block parse_block(std::string_view source) {
  return Parser(lex(source)).parse_program();
}

}  // namespace banger::pits
