#include "pits/interp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "obs/trace.hpp"
#include "pits/builtins.hpp"
#include "pits/bytecode.hpp"
#include "util/rng.hpp"

namespace banger::pits {

namespace {

enum class Flow : std::uint8_t { Normal, Return };

class Interp {
 public:
  Interp(Env& env, const ExecOptions& options)
      : env_(env), scope_(&env), options_(options), rng_(options.seed) {
    ctx_.rng = &rng_;
    ctx_.out = options.out;
  }

  void run(const Block& block) { (void)exec_block(block); }

  Value eval_public(const Expr& e) { return eval(e); }

 private:
  [[noreturn]] void error(ErrorCode code, const std::string& msg,
                          SourcePos pos) {
    fail(code, msg, pos);
  }

  void tick(SourcePos pos) {
    if (++steps_ > options_.step_limit) {
      error(ErrorCode::Limit,
            "step limit of " + std::to_string(options_.step_limit) +
                " exceeded (infinite loop?)",
            pos);
    }
  }

  Flow exec_block(const Block& block) {
    for (const StmtPtr& s : block) {
      if (exec_stmt(*s) == Flow::Return) return Flow::Return;
    }
    return Flow::Normal;
  }

  Flow exec_stmt(const Stmt& s) {
    tick(s.pos);
    return std::visit(
        [&](const auto& node) -> Flow {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            Value value = eval(*node.value);
            if (node.index) {
              auto it = scope_->find(node.target);
              if (it == scope_->end()) {
                error(ErrorCode::Name,
                      "indexed assignment to undefined variable `" +
                          node.target + "`",
                      s.pos);
              }
              if (!it->second.is_vector()) {
                error(ErrorCode::Type,
                      "`" + node.target + "` is not a vector", s.pos);
              }
              Vector& vec = it->second.as_vector();
              const std::size_t i = index_of(*node.index, vec.size());
              vec[i] = value.as_scalar();
            } else {
              (*scope_)[node.target] = std::move(value);
            }
            if (options_.trace != nullptr) {
              *options_.trace << "line " << s.pos.line << ": " << node.target
                              << " = "
                              << scope_->at(node.target).to_display() << "\n";
            }
            return Flow::Normal;
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            for (const auto& arm : node.arms) {
              if (eval(*arm.cond).truthy()) return exec_block(arm.body);
            }
            return exec_block(node.else_body);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            while (eval(*node.cond).truthy()) {
              tick(s.pos);
              if (exec_block(node.body) == Flow::Return) return Flow::Return;
            }
            return Flow::Normal;
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            const double n = eval(*node.count).as_scalar();
            if (n < 0 || std::floor(n) != n) {
              error(ErrorCode::Runtime,
                    "repeat count must be a non-negative integer", s.pos);
            }
            for (double k = 0; k < n; ++k) {
              tick(s.pos);
              if (exec_block(node.body) == Flow::Return) return Flow::Return;
            }
            return Flow::Normal;
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            const double from = eval(*node.from).as_scalar();
            const double to = eval(*node.to).as_scalar();
            const double step =
                node.step ? eval(*node.step).as_scalar() : 1.0;
            if (step == 0) {
              error(ErrorCode::Runtime, "for loop with zero step", s.pos);
            }
            for (double x = from; step > 0 ? x <= to + 1e-12 : x >= to - 1e-12;
                 x += step) {
              tick(s.pos);
              (*scope_)[node.var] = Value(x);
              if (exec_block(node.body) == Flow::Return) return Flow::Return;
            }
            return Flow::Normal;
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            return Flow::Return;
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            if (node.name == "when") {
              error(ErrorCode::Name,
                    "`when` is the conditional special form", s.pos);
            }
            if (BuiltinRegistry::instance().find(node.name) != nullptr) {
              error(ErrorCode::Name,
                    "formula `" + node.name +
                        "` would shadow a calculator button",
                    s.pos);
            }
            if (constants().contains(node.name)) {
              error(ErrorCode::Name,
                    "formula `" + node.name + "` would shadow a constant",
                    s.pos);
            }
            formulas_[node.name] = &node;
            return Flow::Normal;
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            (void)eval(*node.expr);
            return Flow::Normal;
          }
        },
        s.node);
  }

  std::size_t index_of(const Expr& index_expr, std::size_t size) {
    const double raw = eval(index_expr).as_scalar();
    if (std::floor(raw) != raw) {
      error(ErrorCode::Runtime, "index must be an integer", index_expr.pos);
    }
    if (raw < 0 || raw >= static_cast<double>(size)) {
      error(ErrorCode::Runtime,
            "index " + std::to_string(static_cast<long long>(raw)) +
                " out of range [0," + std::to_string(size) + ")",
            index_expr.pos);
    }
    return static_cast<std::size_t>(raw);
  }

  Value eval(const Expr& e) {
    return std::visit(
        [&](const auto& node) -> Value {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, StringLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, VarRef>) {
            if (auto it = scope_->find(node.name); it != scope_->end()) {
              return it->second;
            }
            if (auto c = constants().find(node.name); c != constants().end()) {
              return Value(c->second);
            }
            error(ErrorCode::Name, "undefined variable `" + node.name + "`",
                  e.pos);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            Vector out;
            out.reserve(node.elements.size());
            for (const auto& el : node.elements) {
              out.push_back(eval_scalar(*el));
            }
            return Value(std::move(out));
          } else if constexpr (std::is_same_v<T, Unary>) {
            return eval_unary(node, e.pos);
          } else if constexpr (std::is_same_v<T, Binary>) {
            return eval_binary(node, e.pos);
          } else if constexpr (std::is_same_v<T, Index>) {
            Value base = eval(*node.base);
            if (!base.is_vector()) {
              error(ErrorCode::Type,
                    "cannot index a " + std::string(base.type_name()), e.pos);
            }
            const Vector& v = base.as_vector();
            return Value(v[index_of(*node.index, v.size())]);
          } else if constexpr (std::is_same_v<T, Call>) {
            return eval_call(node, e.pos);
          }
        },
        e.node);
  }

  double eval_scalar(const Expr& e) {
    Value v = eval(e);
    if (!v.is_scalar()) {
      error(ErrorCode::Type,
            "expected a number, got a " + std::string(v.type_name()), e.pos);
    }
    return v.as_scalar();
  }

  Value eval_unary(const Unary& node, SourcePos pos) {
    if (node.op == UnOp::Not) {
      return Value(eval(*node.operand).truthy() ? 0.0 : 1.0);
    }
    Value v = eval(*node.operand);
    if (v.is_vector()) {
      // `v` is a dead local: negate its buffer in place of a copy.
      Vector out = std::move(v.as_vector());
      for (double& x : out) x = -x;
      return Value(std::move(out));
    }
    if (v.is_string()) {
      error(ErrorCode::Type, "cannot negate a string", pos);
    }
    return Value(-v.as_scalar());
  }

  Value eval_binary(const Binary& node, SourcePos pos) {
    // Short-circuit logicals first.
    if (node.op == BinOp::And) {
      if (!eval(*node.lhs).truthy()) return Value(0.0);
      return Value(eval(*node.rhs).truthy() ? 1.0 : 0.0);
    }
    if (node.op == BinOp::Or) {
      if (eval(*node.lhs).truthy()) return Value(1.0);
      return Value(eval(*node.rhs).truthy() ? 1.0 : 0.0);
    }

    Value lhs = eval(*node.lhs);
    Value rhs = eval(*node.rhs);

    switch (node.op) {
      case BinOp::Eq: return Value(lhs.equals(rhs) ? 1.0 : 0.0);
      case BinOp::Ne: return Value(lhs.equals(rhs) ? 0.0 : 1.0);
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        return compare(node.op, lhs, rhs, pos);
      default:
        break;
    }

    // String concatenation is the only string arithmetic.
    if (lhs.is_string() || rhs.is_string()) {
      if (node.op == BinOp::Add && lhs.is_string() && rhs.is_string()) {
        return Value(lhs.as_string() + rhs.as_string());
      }
      error(ErrorCode::Type,
            "operator `" + std::string(to_string(node.op)) +
                "` is not defined for strings",
            pos);
    }

    return arith(node.op, lhs, rhs, pos);
  }

  Value compare(BinOp op, const Value& lhs, const Value& rhs, SourcePos pos) {
    double cmp = 0;
    if (lhs.is_scalar() && rhs.is_scalar()) {
      const double a = lhs.as_scalar();
      const double b = rhs.as_scalar();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      const int c = lhs.as_string().compare(rhs.as_string());
      cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    } else {
      error(ErrorCode::Type,
            "cannot order a " + std::string(lhs.type_name()) + " against a " +
                std::string(rhs.type_name()),
            pos);
    }
    switch (op) {
      case BinOp::Lt: return Value(cmp < 0 ? 1.0 : 0.0);
      case BinOp::Le: return Value(cmp <= 0 ? 1.0 : 0.0);
      case BinOp::Gt: return Value(cmp > 0 ? 1.0 : 0.0);
      default: return Value(cmp >= 0 ? 1.0 : 0.0);
    }
  }

  double scalar_op(BinOp op, double a, double b, SourcePos pos) {
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Div:
        if (b == 0) error(ErrorCode::Runtime, "division by zero", pos);
        return a / b;
      case BinOp::Mod:
        if (b == 0) error(ErrorCode::Runtime, "mod by zero", pos);
        return std::fmod(a, b);
      case BinOp::Pow: {
        const double r = std::pow(a, b);
        if (std::isnan(r) && !std::isnan(a) && !std::isnan(b)) {
          error(ErrorCode::Runtime, "invalid power (negative base?)", pos);
        }
        return r;
      }
      default:
        BANGER_ASSERT(false, "unreachable arithmetic op");
    }
  }

  // `lhs`/`rhs` are the caller's dead locals, so vector payloads are
  // reused in place instead of copied — element order and error
  // precedence are unchanged.
  Value arith(BinOp op, Value& lhs, Value& rhs, SourcePos pos) {
    if (lhs.is_scalar() && rhs.is_scalar()) {
      return Value(scalar_op(op, lhs.as_scalar(), rhs.as_scalar(), pos));
    }
    if (lhs.is_vector() && rhs.is_vector()) {
      const Vector& b = rhs.as_vector();
      if (lhs.as_vector().size() != b.size()) {
        error(ErrorCode::Type,
              "elementwise `" + std::string(to_string(op)) +
                  "` on vectors of lengths " +
                  std::to_string(lhs.as_vector().size()) + " and " +
                  std::to_string(b.size()),
              pos);
      }
      Vector out = std::move(lhs.as_vector());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = scalar_op(op, out[i], b[i], pos);
      }
      return Value(std::move(out));
    }
    // scalar <op> vector broadcast.
    if (lhs.is_scalar() && rhs.is_vector()) {
      const double a = lhs.as_scalar();
      Vector out = std::move(rhs.as_vector());
      for (double& x : out) x = scalar_op(op, a, x, pos);
      return Value(std::move(out));
    }
    if (lhs.is_vector() && rhs.is_scalar()) {
      const double b = rhs.as_scalar();
      Vector out = std::move(lhs.as_vector());
      for (double& x : out) x = scalar_op(op, x, b, pos);
      return Value(std::move(out));
    }
    error(ErrorCode::Type,
          "operator `" + std::string(to_string(op)) + "` on a " +
              std::string(lhs.type_name()) + " and a " +
              std::string(rhs.type_name()),
          pos);
  }

  Value eval_call(const Call& node, SourcePos pos) {
    // `when(cond, a, b)` is a special form: only the selected branch is
    // evaluated, which is what makes recursive formulas terminate.
    if (node.callee == "when") {
      if (node.args.size() != 3) {
        error(ErrorCode::Type, "when() expects (condition, then, else)",
              pos);
      }
      return eval(*node.args[eval(*node.args[0]).truthy() ? 1 : 2]);
    }
    if (auto it = formulas_.find(node.callee); it != formulas_.end()) {
      return eval_formula(*it->second, node, pos);
    }
    const Builtin* fn = BuiltinRegistry::instance().find(node.callee);
    if (fn == nullptr) {
      error(ErrorCode::Name, "unknown function `" + node.callee + "`", pos);
    }
    const int n = static_cast<int>(node.args.size());
    if (n < fn->min_args || (fn->max_args >= 0 && n > fn->max_args)) {
      error(ErrorCode::Type,
            "`" + node.callee + "` expects " + std::to_string(fn->min_args) +
                (fn->max_args == fn->min_args
                     ? ""
                     : (fn->max_args < 0
                            ? "+"
                            : ".." + std::to_string(fn->max_args))) +
                " arguments, got " + std::to_string(n),
            pos);
    }
    std::vector<Value> args;
    args.reserve(node.args.size());
    for (const auto& a : node.args) args.push_back(eval(*a));
    try {
      return fn->fn(args, ctx_);
    } catch (const Error& e) {
      // Re-throw with the call position attached.
      fail(e.code(), e.message() + " in `" + node.callee + "`", pos);
    }
  }

  Value eval_formula(const FormulaDef& def, const Call& call,
                     SourcePos pos) {
    if (call.args.size() != def.params.size()) {
      error(ErrorCode::Type,
            "formula `" + def.name + "` expects " +
                std::to_string(def.params.size()) + " arguments, got " +
                std::to_string(call.args.size()),
            pos);
    }
    if (++formula_depth_ > 256) {
      --formula_depth_;
      error(ErrorCode::Limit,
            "formula recursion deeper than 256 (`" + def.name + "`)", pos);
    }
    // Arguments evaluate in the caller's scope; the body sees only its
    // parameters (plus constants) — formulas are pure.
    Env frame;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      frame.emplace(def.params[i], eval(*call.args[i]));
    }
    // RAII frame guard: scope and depth must unwind on *any* exit, but
    // the error itself must escape intact — a blanket catch here used to
    // discard which formula the failure happened in.
    struct FrameGuard {
      Interp& interp;
      Env* saved;
      ~FrameGuard() {
        interp.scope_ = saved;
        --interp.formula_depth_;
      }
    } guard{*this, scope_};
    scope_ = &frame;
    try {
      tick(pos);
      return eval(*def.body);
    } catch (const Error& e) {
      // Attribute the failure to the innermost formula, once, keeping
      // the original code and position so callers can still classify it.
      if (e.message().find(" in formula `") != std::string::npos) throw;
      fail(e.code(), e.message() + " in formula `" + def.name + "`",
           e.pos().valid() ? e.pos() : pos);
    }
  }

  Env& env_;
  Env* scope_;
  std::map<std::string, const FormulaDef*> formulas_;
  int formula_depth_ = 0;
  const ExecOptions& options_;
  util::Rng rng_;
  BuiltinContext ctx_;
  std::uint64_t steps_ = 0;
};

ExecOptions::Engine default_engine() {
  static const ExecOptions::Engine resolved = [] {
    const char* v = std::getenv("BANGER_PITS_ENGINE");
    if (v != nullptr && std::string_view(v) == "walk") {
      return ExecOptions::Engine::Walk;
    }
    return ExecOptions::Engine::Vm;
  }();
  return resolved;
}

}  // namespace

/// Bytecode cache shared by all copies of a Program: compiled at most
/// once (std::call_once), then read concurrently without locking. A
/// null chunk after initialization means the routine exceeded the
/// compact ISA limits and the tree-walker serves every run.
struct Program::Compiled {
  std::once_flag once;
  std::shared_ptr<const bc::Chunk> chunk;
};

Program::Program()
    : body_(std::make_shared<Block>()),
      compiled_(std::make_shared<Compiled>()) {}

Program::Program(std::shared_ptr<const Block> body)
    : body_(std::move(body)), compiled_(std::make_shared<Compiled>()) {}

Program Program::parse(std::string_view source) {
  if (obs::TraceRecorder* rec = obs::current()) rec->bump("pits.parse");
  return Program(std::make_shared<Block>(parse_block(source)));
}

std::shared_ptr<const bc::Chunk> Program::compiled_chunk(
    const bc::AnalysisFacts* facts) const {
  std::call_once(compiled_->once, [&] {
    try {
      auto chunk =
          std::make_shared<const bc::Chunk>(bc::compile(*body_, facts));
      if (obs::TraceRecorder* rec = obs::current()) {
        rec->bump("pits.compile.count");
        rec->bump("pits.compile.slots",
                  static_cast<double>(chunk->vars.size()));
        rec->bump("pits.compile.consts",
                  static_cast<double>(chunk->consts.size()));
        rec->bump("pits.compile.folded", static_cast<double>(chunk->folded));
        rec->bump("pits.compile.elided", static_cast<double>(chunk->elided));
        std::size_t instructions = chunk->main.ins.size();
        for (const auto& fo : chunk->formulas) {
          instructions += fo.code.ins.size();
        }
        rec->bump("pits.compile.instructions",
                  static_cast<double>(instructions));
      }
      compiled_->chunk = std::move(chunk);
    } catch (const Error&) {
      // Routine exceeds the 16-bit ISA limits; keep chunk null and let
      // the tree-walker serve every execution.
    }
  });
  return compiled_->chunk;
}

void Program::precompile() const { (void)compiled_chunk(); }

void Program::precompile(const bc::AnalysisFacts& facts) const {
  (void)compiled_chunk(&facts);
}

ExecOptions::Engine resolve_engine(ExecOptions::Engine engine) {
  return engine == ExecOptions::Engine::Auto ? default_engine() : engine;
}

void Program::execute(Env& env, const ExecOptions& options) const {
  const ExecOptions::Engine engine = resolve_engine(options.engine);
  if (engine == ExecOptions::Engine::Vm) {
    if (auto chunk = compiled_chunk(); chunk != nullptr) {
      bc::run(*chunk, env, options);
      return;
    }
  }
  if (obs::TraceRecorder* rec = obs::current()) rec->bump("pits.walk.runs");
  Interp interp(env, options);
  interp.run(*body_);
}

std::vector<std::string> Program::inputs() const {
  std::vector<std::string> out;
  for (const std::string& name : free_variables(*body_)) {
    if (constants().contains(name)) continue;
    out.push_back(name);
  }
  return out;
}

std::vector<std::string> Program::outputs() const {
  return assigned_variables(*body_);
}

Value eval_expression(std::string_view expression, const Env& env,
                      const ExecOptions& options) {
  // Wrap as `__result := (expr)` and execute against a copy.
  Env scratch = env;
  const std::string source = "__result := " + std::string(expression);
  Program::parse(source).execute(scratch, options);
  return scratch.at("__result");
}

}  // namespace banger::pits
