// banger/pits/token.hpp
//
// Token stream of the PITS language. The surface syntax mirrors what the
// calculator's program window shows (paper Fig. 4): `:=` assignment,
// `if/then/elsif/else/end`, `while/do/end`, `repeat/times/end`,
// `for/to/step`, infix arithmetic, `--` comments.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace banger::pits {

enum class Tok : std::uint8_t {
  // literals / names
  Number,
  String,
  Ident,
  // keywords
  KwIf,
  KwThen,
  KwElsif,
  KwElse,
  KwEnd,
  KwWhile,
  KwDo,
  KwRepeat,
  KwTimes,
  KwFor,
  KwTo,
  KwStep,
  KwReturn,
  KwFormula,
  KwAnd,
  KwOr,
  KwNot,
  KwMod,
  // punctuation / operators
  Assign,     // :=
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Caret,      // ^
  Eq,         // =
  Ne,         // <>
  Lt,         // <
  Le,         // <=
  Gt,         // >
  Ge,         // >=
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  Comma,      // ,
  Newline,    // statement separator (also ';')
  Eof,
};

std::string_view to_string(Tok tok) noexcept;

struct Token {
  Tok kind = Tok::Eof;
  std::string text;     ///< raw lexeme (identifier name, string body)
  double number = 0.0;  ///< value for Tok::Number
  SourcePos pos;
};

/// Tokenizes PITS source; throws Error{Parse} on illegal characters,
/// malformed numbers, or unterminated strings. Consecutive newlines are
/// collapsed; a trailing Eof token is always present.
std::vector<Token> lex(std::string_view source);

}  // namespace banger::pits
