#include "pits/builtins.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

namespace banger::pits {

namespace {

[[noreturn]] void runtime_error(const std::string& msg) {
  fail(ErrorCode::Runtime, msg);
}

double checked_index(double raw, std::size_t size, const char* what) {
  const double floored = std::floor(raw);
  if (floored != raw) {
    runtime_error(std::string(what) + " index must be an integer");
  }
  if (floored < 0 || floored >= static_cast<double>(size)) {
    runtime_error(std::string(what) + " index " +
                  std::to_string(static_cast<long long>(floored)) +
                  " out of range [0," + std::to_string(size) + ")");
  }
  return floored;
}

double factorial(double n) {
  if (n < 0 || std::floor(n) != n) {
    runtime_error("fact() requires a non-negative integer");
  }
  if (n > 170) runtime_error("fact() overflows beyond 170");
  double r = 1;
  for (double k = 2; k <= n; ++k) r *= k;
  return r;
}

/// Applies a scalar function elementwise when handed a vector — the
/// calculator's natural broadcasting.
Value map1(const Value& v, double (*fn)(double)) {
  if (v.is_vector()) {
    Vector out = v.as_vector();
    for (double& x : out) x = fn(x);
    return out;
  }
  return fn(v.as_scalar());
}

}  // namespace

const std::map<std::string, double>& constants() {
  static const std::map<std::string, double> table = {
      {"pi", 3.14159265358979323846},
      {"e", 2.71828182845904523536},
      {"golden", 1.61803398874989484820},
      {"g_accel", 9.80665},           // m/s^2
      {"c_light", 299792458.0},       // m/s
      {"h_planck", 6.62607015e-34},   // J*s
      {"k_boltzmann", 1.380649e-23},  // J/K
      {"avogadro", 6.02214076e23},    // 1/mol
      {"eps0", 8.8541878128e-12},     // F/m
      {"mu0", 1.25663706212e-6},      // N/A^2
  };
  return table;
}

const BuiltinRegistry& BuiltinRegistry::instance() {
  static const BuiltinRegistry registry;
  return registry;
}

const Builtin* BuiltinRegistry::find(const std::string& name) const {
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<std::string> BuiltinRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [name, fn] : table_) out.push_back(name);
  return out;
}

std::vector<std::string> BuiltinRegistry::group(const std::string& g) const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : table_)
    if (fn.group == g) out.push_back(name);
  return out;
}

BuiltinRegistry::BuiltinRegistry() {
  auto add = [this](std::string name, int min_args, int max_args,
                    std::string group, std::string help,
                    std::function<Value(std::vector<Value>&, BuiltinContext&)>
                        fn) {
    Builtin b;
    b.name = name;
    b.min_args = min_args;
    b.max_args = max_args;
    b.fn = std::move(fn);
    b.group = std::move(group);
    b.help = std::move(help);
    table_.emplace(std::move(name), std::move(b));
  };
  auto add1 = [&](std::string name, std::string group, std::string help,
                  double (*fn)(double)) {
    add(std::move(name), 1, 1, std::move(group), std::move(help),
        [fn](std::vector<Value>& args, BuiltinContext&) {
          return map1(args[0], fn);
        });
  };
  auto add2 = [&](std::string name, std::string group, std::string help,
                  double (*fn)(double, double)) {
    add(std::move(name), 2, 2, std::move(group), std::move(help),
        [fn](std::vector<Value>& args, BuiltinContext&) {
          return Value(fn(args[0].as_scalar(), args[1].as_scalar()));
        });
  };

  // --- trig ---
  add1("sin", "trig", "sine (radians)", [](double x) { return std::sin(x); });
  add1("cos", "trig", "cosine (radians)", [](double x) { return std::cos(x); });
  add1("tan", "trig", "tangent (radians)", [](double x) { return std::tan(x); });
  add1("asin", "trig", "arcsine", [](double x) { return std::asin(x); });
  add1("acos", "trig", "arccosine", [](double x) { return std::acos(x); });
  add1("atan", "trig", "arctangent", [](double x) { return std::atan(x); });
  add2("atan2", "trig", "two-argument arctangent",
       [](double y, double x) { return std::atan2(y, x); });
  add1("sinh", "trig", "hyperbolic sine", [](double x) { return std::sinh(x); });
  add1("cosh", "trig", "hyperbolic cosine",
       [](double x) { return std::cosh(x); });
  add1("tanh", "trig", "hyperbolic tangent",
       [](double x) { return std::tanh(x); });
  add1("deg", "trig", "radians to degrees",
       [](double x) { return x * 57.29577951308232; });
  add1("rad", "trig", "degrees to radians",
       [](double x) { return x * 0.017453292519943295; });

  // --- exp/log ---
  add1("exp", "explog", "e^x", [](double x) { return std::exp(x); });
  add1("ln", "explog", "natural logarithm", [](double x) {
    if (x <= 0) runtime_error("ln() of a non-positive number");
    return std::log(x);
  });
  add1("log10", "explog", "base-10 logarithm", [](double x) {
    if (x <= 0) runtime_error("log10() of a non-positive number");
    return std::log10(x);
  });
  add1("log2", "explog", "base-2 logarithm", [](double x) {
    if (x <= 0) runtime_error("log2() of a non-positive number");
    return std::log2(x);
  });
  add1("sqrt", "explog", "square root", [](double x) {
    if (x < 0) runtime_error("sqrt() of a negative number");
    return std::sqrt(x);
  });
  add1("cbrt", "explog", "cube root", [](double x) { return std::cbrt(x); });
  add2("pow", "explog", "x raised to y",
       [](double x, double y) { return std::pow(x, y); });
  add2("hypot", "explog", "sqrt(x^2+y^2)",
       [](double x, double y) { return std::hypot(x, y); });

  // --- rounding / misc scalar ---
  add1("abs", "round", "absolute value", [](double x) { return std::fabs(x); });
  add1("floor", "round", "round down", [](double x) { return std::floor(x); });
  add1("ceil", "round", "round up", [](double x) { return std::ceil(x); });
  add1("round", "round", "round to nearest",
       [](double x) { return std::round(x); });
  add1("trunc", "round", "drop the fraction",
       [](double x) { return std::trunc(x); });
  add1("frac", "round", "fractional part",
       [](double x) { return x - std::trunc(x); });
  add1("sign", "round", "-1, 0 or 1",
       [](double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); });
  add("min", 1, -1, "round", "smallest argument",
      [](std::vector<Value>& args, BuiltinContext&) {
        double best = args[0].as_scalar();
        for (std::size_t i = 1; i < args.size(); ++i)
          best = std::min(best, args[i].as_scalar());
        return Value(best);
      });
  add("max", 1, -1, "round", "largest argument",
      [](std::vector<Value>& args, BuiltinContext&) {
        double best = args[0].as_scalar();
        for (std::size_t i = 1; i < args.size(); ++i)
          best = std::max(best, args[i].as_scalar());
        return Value(best);
      });
  add("clamp", 3, 3, "round", "clamp(x, lo, hi)",
      [](std::vector<Value>& args, BuiltinContext&) {
        const double x = args[0].as_scalar();
        const double lo = args[1].as_scalar();
        const double hi = args[2].as_scalar();
        if (lo > hi) runtime_error("clamp() with lo > hi");
        return Value(std::clamp(x, lo, hi));
      });
  add("fact", 1, 1, "round", "factorial",
      [](std::vector<Value>& args, BuiltinContext&) {
        return Value(factorial(args[0].as_scalar()));
      });
  add("ncr", 2, 2, "round", "combinations n choose r",
      [](std::vector<Value>& args, BuiltinContext&) {
        const double n = args[0].as_scalar();
        const double r = args[1].as_scalar();
        if (r < 0 || r > n) return Value(0.0);
        return Value(std::round(factorial(n) / (factorial(r) * factorial(n - r))));
      });

  // --- vector construction ---
  add("zeros", 1, 1, "vector", "vector of n zeros",
      [](std::vector<Value>& args, BuiltinContext&) {
        const double n = args[0].as_scalar();
        if (n < 0 || std::floor(n) != n || n > 1e8) {
          runtime_error("zeros() needs a small non-negative integer");
        }
        return Value(Vector(static_cast<std::size_t>(n), 0.0));
      });
  add("ones", 1, 1, "vector", "vector of n ones",
      [](std::vector<Value>& args, BuiltinContext&) {
        const double n = args[0].as_scalar();
        if (n < 0 || std::floor(n) != n || n > 1e8) {
          runtime_error("ones() needs a small non-negative integer");
        }
        return Value(Vector(static_cast<std::size_t>(n), 1.0));
      });
  add("range", 2, 3, "vector", "range(a, b [, step]): a inclusive to b exclusive",
      [](std::vector<Value>& args, BuiltinContext&) {
        const double a = args[0].as_scalar();
        const double b = args[1].as_scalar();
        const double step = args.size() > 2 ? args[2].as_scalar() : 1.0;
        if (step == 0) runtime_error("range() with zero step");
        Vector out;
        if (step > 0) {
          for (double x = a; x < b - 1e-12; x += step) out.push_back(x);
        } else {
          for (double x = a; x > b + 1e-12; x += step) out.push_back(x);
        }
        if (out.size() > 100000000) runtime_error("range() too large");
        return Value(std::move(out));
      });
  add("append", 2, 2, "vector", "append(v, x): v with x added",
      [](std::vector<Value>& args, BuiltinContext&) {
        Vector out = args[0].as_vector();
        out.push_back(args[1].as_scalar());
        return Value(std::move(out));
      });
  add("concat", 2, 2, "vector", "concat(u, v)",
      [](std::vector<Value>& args, BuiltinContext&) {
        Vector out = args[0].as_vector();
        const Vector& v = args[1].as_vector();
        out.insert(out.end(), v.begin(), v.end());
        return Value(std::move(out));
      });
  add("slice", 3, 3, "vector", "slice(v, i, j): elements [i, j)",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        const double i = args[1].as_scalar();
        const double j = args[2].as_scalar();
        if (std::floor(i) != i || std::floor(j) != j || i < 0 ||
            j > static_cast<double>(v.size()) || i > j) {
          runtime_error("slice() bounds out of range");
        }
        return Value(Vector(v.begin() + static_cast<std::ptrdiff_t>(i),
                            v.begin() + static_cast<std::ptrdiff_t>(j)));
      });
  add("reverse", 1, 1, "vector", "reverse(v)",
      [](std::vector<Value>& args, BuiltinContext&) {
        Vector out = args[0].as_vector();
        std::reverse(out.begin(), out.end());
        return Value(std::move(out));
      });
  add("sort", 1, 1, "vector", "ascending sort",
      [](std::vector<Value>& args, BuiltinContext&) {
        Vector out = args[0].as_vector();
        std::sort(out.begin(), out.end());
        return Value(std::move(out));
      });
  add("set", 3, 3, "vector", "set(v, i, x): copy of v with v[i] = x",
      [](std::vector<Value>& args, BuiltinContext&) {
        Vector out = args[0].as_vector();
        const auto i = static_cast<std::size_t>(
            checked_index(args[1].as_scalar(), out.size(), "set()"));
        out[i] = args[2].as_scalar();
        return Value(std::move(out));
      });
  add("get", 2, 2, "vector", "get(v, i) = v[i]",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        const auto i = static_cast<std::size_t>(
            checked_index(args[1].as_scalar(), v.size(), "get()"));
        return Value(v[i]);
      });

  // --- vector reductions / stats ---
  add("len", 1, 1, "stats", "element count (strings: characters)",
      [](std::vector<Value>& args, BuiltinContext&) {
        if (args[0].is_string())
          return Value(static_cast<double>(args[0].as_string().size()));
        return Value(static_cast<double>(args[0].as_vector().size()));
      });
  add("sum", 1, 1, "stats", "sum of elements",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        return Value(std::accumulate(v.begin(), v.end(), 0.0));
      });
  add("prod", 1, 1, "stats", "product of elements",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        return Value(std::accumulate(v.begin(), v.end(), 1.0,
                                     std::multiplies<>()));
      });
  add("mean", 1, 1, "stats", "arithmetic mean",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        if (v.empty()) runtime_error("mean() of an empty vector");
        return Value(std::accumulate(v.begin(), v.end(), 0.0) /
                     static_cast<double>(v.size()));
      });
  add("stddev", 1, 1, "stats", "population standard deviation",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        if (v.empty()) runtime_error("stddev() of an empty vector");
        const double m = std::accumulate(v.begin(), v.end(), 0.0) /
                         static_cast<double>(v.size());
        double acc = 0;
        for (double x : v) acc += (x - m) * (x - m);
        return Value(std::sqrt(acc / static_cast<double>(v.size())));
      });
  add("minv", 1, 1, "stats", "smallest element",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        if (v.empty()) runtime_error("minv() of an empty vector");
        return Value(*std::min_element(v.begin(), v.end()));
      });
  add("maxv", 1, 1, "stats", "largest element",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        if (v.empty()) runtime_error("maxv() of an empty vector");
        return Value(*std::max_element(v.begin(), v.end()));
      });
  add("dot", 2, 2, "stats", "inner product",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& u = args[0].as_vector();
        const Vector& v = args[1].as_vector();
        if (u.size() != v.size()) {
          runtime_error("dot() of vectors with different lengths");
        }
        return Value(std::inner_product(u.begin(), u.end(), v.begin(), 0.0));
      });
  add("norm", 1, 1, "stats", "Euclidean norm",
      [](std::vector<Value>& args, BuiltinContext&) {
        const Vector& v = args[0].as_vector();
        double acc = 0;
        for (double x : v) acc += x * x;
        return Value(std::sqrt(acc));
      });

  // --- misc / impure ---
  add("rand", 0, 0, "misc", "uniform [0,1) from the seeded generator",
      [](std::vector<Value>&, BuiltinContext& ctx) {
        if (ctx.rng == nullptr) runtime_error("rand() unavailable here");
        return Value(ctx.rng->next_double());
      });
  add("print", 0, -1, "misc", "write values to the trial-run transcript",
      [](std::vector<Value>& args, BuiltinContext& ctx) {
        if (ctx.out != nullptr) {
          for (std::size_t i = 0; i < args.size(); ++i) {
            if (i > 0) *ctx.out << ' ';
            *ctx.out << args[i].to_display();
          }
          *ctx.out << '\n';
        }
        return Value(0.0);
      });
  add("str", 1, 1, "misc", "value rendered as a string",
      [](std::vector<Value>& args, BuiltinContext&) {
        return Value(args[0].to_display());
      });
}

}  // namespace banger::pits
