// banger/pits/facts.hpp
//
// Proven-safe sites handed from the abstract interpreter
// (src/analyze/absint.cpp) to the bytecode compiler
// (src/pits/compile.cpp). Both sides walk the same shared AST
// (pits::Program keeps its Block alive behind a shared_ptr), so facts
// are keyed by node address: a Stmt* or Expr* identifies the exact
// site the proof covers. Every fact must be context-free — sound for
// ANY entry environment, with free variables treated as possibly
// unbound values of any type — because a compiled chunk is shared
// across executions with arbitrary Envs.
#pragma once

#include <unordered_set>

namespace banger::pits::bc {

struct AnalysisFacts {
  /// Stmt* of statements proven to consume exactly one step tick: no
  /// nested loop iterations, and no call that could resolve to a
  /// user formula (formula calls tick dynamically). Eligible for
  /// TickN batching. Statements that may raise errors still qualify:
  /// on the batched fast path neither engine hits the step limit
  /// inside the run, so the error surfaces identically.
  std::unordered_set<const void*> single_tick;

  /// Expr* of Index nodes whose base is proven a bound vector and
  /// whose index is proven a non-NaN integer within [0, len) for
  /// every possible length. Elides CheckIndexable and the per-access
  /// integer/range checks in IndexLoad.
  std::unordered_set<const void*> safe_index;

  /// AssignStmt* of indexed assignments where the target is proven a
  /// bound vector, the index proven in-bounds as above, and the
  /// assigned value proven scalar. Elides IndexedCheck and the
  /// IndexedStore checks.
  std::unordered_set<const void*> safe_indexed_store;

  /// VarRef* of reads proven definitely-assigned on every path (by an
  /// actual assignment, not constant materialization). Elides
  /// CheckVar beyond the compiler's own straight-line tracking.
  std::unordered_set<const void*> bound_reads;

  [[nodiscard]] bool empty() const {
    return single_tick.empty() && safe_index.empty() &&
           safe_indexed_store.empty() && bound_reads.empty();
  }
};

}  // namespace banger::pits::bc
