// banger/pits/compile.cpp
//
// Single-pass AST -> bytecode compiler. Three jobs:
//   1. Symbol interning: a pre-pass assigns every top-level variable a
//      dense frame slot, so the VM reads registers where the tree-walker
//      did std::map lookups. Calculator constants the Env might shadow
//      (a task input named `pi`) resolve through CheckVar at run time.
//   2. Constant folding into a deduplicated pool — only where the
//      tree-walker could not have raised an error (division by zero,
//      string negation, ... stay as runtime instructions).
//   3. Direct opcodes for control flow: repeat/for lower to fused
//      counter instructions that carry the per-iteration step-limit
//      tick, and `when`/`and`/`or` lower to jumps so only the selected
//      operand executes, exactly like the tree-walker's short-circuit.
//
// Compilation is total: code that can only fail (calling an unknown
// name, shadowing a builtin with a formula) compiles to an instruction
// that raises the tree-walker's error when — and only when — reached.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pits/builtins.hpp"
#include "pits/bytecode.hpp"
#include "pits/facts.hpp"

// Instructions are emitted with designated initializers naming only the
// operands an opcode uses; every Instr field carries a default member
// initializer, so the "missing initializer" diagnostic is noise here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace banger::pits::bc {

namespace {

// Registers, pool indices, and name indices are 16-bit; a routine that
// exhausts them (unreachable for human-written programs) makes the
// caller fall back to the tree-walker.
constexpr std::size_t kMaxIndex = 60000;

[[noreturn]] void overflow() {
  fail(ErrorCode::Limit, "PITS routine too large to compile");
}

/// Scalar arithmetic foldable only when the tree-walker could not have
/// raised: division/mod by zero and NaN-from-real pow stay runtime.
std::optional<double> fold_scalar_op(BinOp op, double a, double b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div:
      if (b == 0) return std::nullopt;
      return a / b;
    case BinOp::Mod:
      if (b == 0) return std::nullopt;
      return std::fmod(a, b);
    case BinOp::Pow: {
      const double r = std::pow(a, b);
      if (std::isnan(r) && !std::isnan(a) && !std::isnan(b)) {
        return std::nullopt;
      }
      return r;
    }
    default: return std::nullopt;
  }
}

Op arith_op(BinOp op) {
  switch (op) {
    case BinOp::Add: return Op::Add;
    case BinOp::Sub: return Op::Sub;
    case BinOp::Mul: return Op::Mul;
    case BinOp::Div: return Op::Div;
    case BinOp::Mod: return Op::Mod;
    case BinOp::Pow: return Op::Pow;
    case BinOp::Eq: return Op::CmpEq;
    case BinOp::Ne: return Op::CmpNe;
    case BinOp::Lt: return Op::Lt;
    case BinOp::Le: return Op::Le;
    case BinOp::Gt: return Op::Gt;
    case BinOp::Ge: return Op::Ge;
    default: BANGER_ASSERT(false, "logical op has no direct opcode");
  }
}

/// A compiled operand: the register holding the value and whether that
/// register is a dead temporary after one use (movable by the consumer).
struct Operand {
  std::uint16_t reg = 0;
  bool temp = false;
};

/// Per-body compile state: the instruction stream under construction
/// plus a stack-disciplined temp allocator and, for the routine's top
/// level, the must-be-bound set that lets CheckVar instructions be
/// elided on re-reads.
struct Frame {
  Code code;
  std::uint16_t next_temp = 0;
  std::uint16_t high_water = 0;
  bool in_formula = false;
  const std::map<std::string, std::uint16_t>* params = nullptr;
  /// readable[slot]: every execution path reaching the instruction now
  /// being emitted has already bound or checked the slot.
  std::vector<char> readable;
};

class Compiler {
 public:
  explicit Compiler(const Block& body, const AnalysisFacts* facts)
      : facts_(facts) {
    collect_block(body);
    Frame f;
    f.next_temp = static_cast<std::uint16_t>(chunk_.vars.size());
    f.high_water = f.next_temp;
    f.readable.assign(chunk_.vars.size(), 0);
    compile_block(f, body);
    emit(f, {.op = Op::Halt});
    f.code.num_regs = f.high_water;
    f.code.first_temp = static_cast<std::uint16_t>(chunk_.vars.size());
    chunk_.main = std::move(f.code);
    chunk_.num_formula_names =
        static_cast<std::uint32_t>(formula_table_of_.size());
  }

  Chunk take() { return std::move(chunk_); }

 private:
  // ---- interning ----------------------------------------------------

  std::uint16_t name_id(const std::string& s) {
    if (auto it = name_ids_.find(s); it != name_ids_.end()) return it->second;
    if (chunk_.names.size() >= kMaxIndex) overflow();
    const auto id = static_cast<std::uint16_t>(chunk_.names.size());
    chunk_.names.push_back(s);
    name_ids_.emplace(s, id);
    return id;
  }

  std::uint16_t const_id(Value v) {
    if (chunk_.consts.size() >= kMaxIndex) overflow();
    const auto next = static_cast<std::uint16_t>(chunk_.consts.size());
    if (v.is_scalar()) {
      // Dedup by bit pattern: -0.0 and 0.0 display differently, and NaN
      // never compares equal to itself.
      std::uint64_t bits = 0;
      const double d = v.as_scalar();
      std::memcpy(&bits, &d, sizeof bits);
      if (auto [it, inserted] = scalar_ids_.emplace(bits, next); !inserted) {
        return it->second;
      }
    } else if (v.is_string()) {
      if (auto [it, inserted] = string_ids_.emplace(v.as_string(), next);
          !inserted) {
        return it->second;
      }
    }
    chunk_.consts.push_back(std::move(v));
    return next;
  }

  std::uint16_t message_id(std::string s) {
    if (auto it = message_ids_.find(s); it != message_ids_.end()) {
      return it->second;
    }
    if (chunk_.messages.size() >= kMaxIndex) overflow();
    const auto id = static_cast<std::uint16_t>(chunk_.messages.size());
    message_ids_.emplace(s, id);
    chunk_.messages.push_back(std::move(s));
    return id;
  }

  std::uint16_t slot(const std::string& name) {
    if (auto it = slot_of_.find(name); it != slot_of_.end()) return it->second;
    if (chunk_.vars.size() >= kMaxIndex) overflow();
    const auto id = static_cast<std::uint16_t>(chunk_.vars.size());
    VarInfo vi;
    vi.name = name_id(name);
    if (auto c = constants().find(name); c != constants().end()) {
      vi.has_const = true;
      vi.const_value = c->second;
    }
    chunk_.vars.push_back(vi);
    slot_of_.emplace(name, id);
    return id;
  }

  // ---- pre-pass: slot + formula-name collection ----------------------

  void collect_block(const Block& block) {
    for (const StmtPtr& s : block) collect_stmt(*s);
  }

  void collect_stmt(const Stmt& s) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            slot(node.target);
            if (node.index) collect_expr(*node.index);
            collect_expr(*node.value);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            for (const auto& arm : node.arms) {
              collect_expr(*arm.cond);
              collect_block(arm.body);
            }
            collect_block(node.else_body);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            collect_expr(*node.cond);
            collect_block(node.body);
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            collect_expr(*node.count);
            collect_block(node.body);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            slot(node.var);
            collect_expr(*node.from);
            collect_expr(*node.to);
            if (node.step) collect_expr(*node.step);
            collect_block(node.body);
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            // Formula bodies see only their parameters and constants —
            // no top-level slots. Doomed names (shadowing a builtin)
            // still get a table entry; it just never becomes live.
            if (!formula_table_of_.contains(node.name)) {
              const auto idx =
                  static_cast<std::int32_t>(formula_table_of_.size());
              formula_table_of_.emplace(node.name, idx);
            }
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            collect_expr(*node.expr);
          }
        },
        s.node);
  }

  void collect_expr(const Expr& e) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            slot(node.name);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) collect_expr(*el);
          } else if constexpr (std::is_same_v<T, Unary>) {
            collect_expr(*node.operand);
          } else if constexpr (std::is_same_v<T, Binary>) {
            collect_expr(*node.lhs);
            collect_expr(*node.rhs);
          } else if constexpr (std::is_same_v<T, Index>) {
            collect_expr(*node.base);
            collect_expr(*node.index);
          } else if constexpr (std::is_same_v<T, Call>) {
            for (const auto& a : node.args) collect_expr(*a);
          }
        },
        e.node);
  }

  // ---- constant folding ----------------------------------------------

  static bool is_literal(const Expr& e) {
    return std::holds_alternative<NumberLit>(e.node) ||
           std::holds_alternative<StringLit>(e.node);
  }

  std::optional<Value> fold(const Expr& e, const Frame& f) const {
    return std::visit(
        [&](const auto& node) -> std::optional<Value> {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, StringLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, VarRef>) {
            // Top-level constants never fold: the Env may bind the same
            // name at entry ("pi" as a task input shadows the button).
            // Formula frames hold only parameters, so there a non-param
            // constant is compile-time known.
            if (!f.in_formula) return std::nullopt;
            if (f.params->contains(node.name)) return std::nullopt;
            if (auto c = constants().find(node.name); c != constants().end()) {
              return Value(c->second);
            }
            return std::nullopt;
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            Vector out;
            out.reserve(node.elements.size());
            for (const auto& el : node.elements) {
              auto v = fold(*el, f);
              if (!v || !v->is_scalar()) return std::nullopt;
              out.push_back(v->as_scalar());
            }
            return Value(std::move(out));
          } else if constexpr (std::is_same_v<T, Unary>) {
            auto v = fold(*node.operand, f);
            if (!v) return std::nullopt;
            if (node.op == UnOp::Not) return Value(v->truthy() ? 0.0 : 1.0);
            if (v->is_scalar()) return Value(-v->as_scalar());
            if (v->is_vector()) {
              Vector out = v->as_vector();
              for (double& x : out) x = -x;
              return Value(std::move(out));
            }
            return std::nullopt;  // negating a string errors at run time
          } else if constexpr (std::is_same_v<T, Binary>) {
            return fold_binary(node, f);
          } else if constexpr (std::is_same_v<T, Index>) {
            auto base = fold(*node.base, f);
            auto idx = fold(*node.index, f);
            if (!base || !idx || !base->is_vector() || !idx->is_scalar()) {
              return std::nullopt;
            }
            const double raw = idx->as_scalar();
            const Vector& v = base->as_vector();
            if (std::floor(raw) != raw || raw < 0 ||
                raw >= static_cast<double>(v.size())) {
              return std::nullopt;
            }
            return Value(v[static_cast<std::size_t>(raw)]);
          } else {
            return std::nullopt;  // calls never fold (rand, print, formulas)
          }
        },
        e.node);
  }

  std::optional<Value> fold_binary(const Binary& node, const Frame& f) const {
    auto lhs = fold(*node.lhs, f);
    if (!lhs) return std::nullopt;
    // Short-circuit folds drop the unevaluated side entirely, exactly
    // like the tree-walker never evaluates it.
    if (node.op == BinOp::And && !lhs->truthy()) return Value(0.0);
    if (node.op == BinOp::Or && lhs->truthy()) return Value(1.0);
    auto rhs = fold(*node.rhs, f);
    if (!rhs) return std::nullopt;
    switch (node.op) {
      case BinOp::And:
      case BinOp::Or:
        return Value(rhs->truthy() ? 1.0 : 0.0);
      case BinOp::Eq: return Value(lhs->equals(*rhs) ? 1.0 : 0.0);
      case BinOp::Ne: return Value(lhs->equals(*rhs) ? 0.0 : 1.0);
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge: {
        double cmp = 0;
        if (lhs->is_scalar() && rhs->is_scalar()) {
          const double a = lhs->as_scalar();
          const double b = rhs->as_scalar();
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else if (lhs->is_string() && rhs->is_string()) {
          const int c = lhs->as_string().compare(rhs->as_string());
          cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
        } else {
          return std::nullopt;  // mixed-type ordering errors at run time
        }
        switch (node.op) {
          case BinOp::Lt: return Value(cmp < 0 ? 1.0 : 0.0);
          case BinOp::Le: return Value(cmp <= 0 ? 1.0 : 0.0);
          case BinOp::Gt: return Value(cmp > 0 ? 1.0 : 0.0);
          default: return Value(cmp >= 0 ? 1.0 : 0.0);
        }
      }
      default: break;
    }
    if (lhs->is_string() || rhs->is_string()) {
      if (node.op == BinOp::Add && lhs->is_string() && rhs->is_string()) {
        return Value(lhs->as_string() + rhs->as_string());
      }
      return std::nullopt;  // string arithmetic errors at run time
    }
    return fold_arith(node.op, *lhs, *rhs);
  }

  static std::optional<Value> fold_arith(BinOp op, const Value& lhs,
                                         const Value& rhs) {
    if (lhs.is_scalar() && rhs.is_scalar()) {
      auto r = fold_scalar_op(op, lhs.as_scalar(), rhs.as_scalar());
      if (!r) return std::nullopt;
      return Value(*r);
    }
    if (lhs.is_vector() && rhs.is_vector()) {
      const Vector& a = lhs.as_vector();
      const Vector& b = rhs.as_vector();
      if (a.size() != b.size()) return std::nullopt;
      Vector out(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        auto r = fold_scalar_op(op, a[i], b[i]);
        if (!r) return std::nullopt;
        out[i] = *r;
      }
      return Value(std::move(out));
    }
    if (lhs.is_scalar() && rhs.is_vector()) {
      const double a = lhs.as_scalar();
      Vector out = rhs.as_vector();
      for (double& x : out) {
        auto r = fold_scalar_op(op, a, x);
        if (!r) return std::nullopt;
        x = *r;
      }
      return Value(std::move(out));
    }
    if (lhs.is_vector() && rhs.is_scalar()) {
      const double b = rhs.as_scalar();
      Vector out = lhs.as_vector();
      for (double& x : out) {
        auto r = fold_scalar_op(op, x, b);
        if (!r) return std::nullopt;
        x = *r;
      }
      return Value(std::move(out));
    }
    return std::nullopt;
  }

  // ---- emission helpers ----------------------------------------------

  static std::size_t emit(Frame& f, Instr in) {
    f.code.ins.push_back(in);
    return f.code.ins.size() - 1;
  }

  static void patch(Frame& f, std::size_t at) {
    f.code.ins[at].d = static_cast<std::int32_t>(f.code.ins.size());
  }

  static std::uint16_t alloc(Frame& f) {
    if (f.next_temp >= kMaxIndex) overflow();
    const std::uint16_t r = f.next_temp++;
    f.high_water = std::max(f.high_water, f.next_temp);
    return r;
  }

  /// Destination register for an expression: the caller-requested one,
  /// or a fresh temp.
  static std::uint16_t dst_reg(Frame& f, int want) {
    return want >= 0 ? static_cast<std::uint16_t>(want) : alloc(f);
  }

  static std::uint8_t temp_flags(const Operand& b) {
    return b.temp ? kTempB : 0;
  }
  static std::uint8_t temp_flags(const Operand& b, const Operand& c) {
    // A register may only be moved/mutated when it holds a dead temp
    // and is not also the other operand (v + v reads one slot twice).
    std::uint8_t flags = 0;
    if (b.temp && b.reg != c.reg) flags |= kTempB;
    if (c.temp && c.reg != b.reg) flags |= kTempC;
    return flags;
  }

  // ---- expressions ---------------------------------------------------

  /// Compiles `e`; the result lands in register `want` (>= 0) or in a
  /// register of the compiler's choosing (want < 0 — either a fresh
  /// temp or, for a plain variable read, the variable's own slot with
  /// no copy at all). Every case writes its destination only as its
  /// final action, so `x := f(x, x + 1)` style self-references read the
  /// old value throughout.
  Operand compile_expr(Frame& f, const Expr& e, int want) {
    if (auto v = fold(e, f)) {
      if (!is_literal(e)) ++chunk_.folded;
      const std::uint16_t dst = dst_reg(f, want);
      emit(f, {.op = Op::LoadConst,
               .a = dst,
               .b = const_id(std::move(*v)),
               .pos = e.pos});
      return {dst, want < 0};
    }
    return std::visit(
        [&](const auto& node) -> Operand {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit> ||
                        std::is_same_v<T, StringLit>) {
            BANGER_ASSERT(false, "literals always fold");
          } else if constexpr (std::is_same_v<T, VarRef>) {
            return compile_var(f, node, e.pos, want);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            return compile_vector_lit(f, node, e.pos, want);
          } else if constexpr (std::is_same_v<T, Unary>) {
            const std::uint16_t mark = f.next_temp;
            const Operand v = compile_expr(f, *node.operand, -1);
            f.next_temp = mark;
            const std::uint16_t dst = dst_reg(f, want);
            emit(f, {.op = node.op == UnOp::Not ? Op::NotOp : Op::Neg,
                     .flags = temp_flags(v),
                     .a = dst,
                     .b = v.reg,
                     .pos = e.pos});
            return {dst, want < 0};
          } else if constexpr (std::is_same_v<T, Binary>) {
            return compile_binary(f, node, e.pos, want);
          } else if constexpr (std::is_same_v<T, Index>) {
            const bool safe =
                facts_ != nullptr && facts_->safe_index.contains(&e);
            const std::uint16_t mark = f.next_temp;
            const Operand base = compile_expr(f, *node.base, -1);
            if (safe) {
              chunk_.elided += 1;
            } else {
              emit(f, {.op = Op::CheckIndexable, .a = base.reg, .pos = e.pos});
            }
            const Operand idx = compile_expr(f, *node.index, -1);
            f.next_temp = mark;
            const std::uint16_t dst = dst_reg(f, want);
            emit(f, {.op = Op::IndexLoad,
                     .flags = safe ? kNoCheck : std::uint8_t{0},
                     .a = dst,
                     .b = base.reg,
                     .c = idx.reg,
                     .pos = node.index->pos});
            return {dst, want < 0};
          } else if constexpr (std::is_same_v<T, Call>) {
            return compile_call(f, node, e.pos, want);
          }
        },
        e.node);
  }

  Operand compile_var(Frame& f, const VarRef& node, SourcePos pos, int want) {
    if (f.in_formula) {
      if (auto it = f.params->find(node.name); it != f.params->end()) {
        return move_to_want(f, {it->second, false}, want);
      }
      // Not a parameter, not a constant (those folded): the read can
      // only fail, so it lowers to the tree-walker's error.
      return emit_error(f, ErrorCode::Name,
                        "undefined variable `" + node.name + "`", pos, want);
    }
    const std::uint16_t s = slot_of_.at(node.name);
    if (!f.readable[s]) {
      if (facts_ != nullptr && facts_->bound_reads.contains(&node)) {
        // Proven assigned on every path: the slot is live without a
        // check, and stays so for the rest of this path.
        chunk_.elided += 1;
      } else {
        emit(f, {.op = Op::CheckVar, .a = s, .pos = pos});
      }
      f.readable[s] = 1;
    }
    return move_to_want(f, {s, false}, want);
  }

  /// Routes a value already living in a register to the requested
  /// destination (a copy for named slots, a move for temps).
  Operand move_to_want(Frame& f, Operand r, int want) {
    if (want < 0 || r.reg == static_cast<std::uint16_t>(want)) return r;
    emit(f, {.op = Op::Move,
             .flags = temp_flags(r),
             .a = static_cast<std::uint16_t>(want),
             .b = r.reg});
    return {static_cast<std::uint16_t>(want), false};
  }

  Operand emit_error(Frame& f, ErrorCode code, std::string msg, SourcePos pos,
                     int want) {
    emit(f, {.op = Op::ErrAlways,
             .a = static_cast<std::uint16_t>(code),
             .b = message_id(std::move(msg)),
             .pos = pos});
    return {dst_reg(f, want), want < 0};
  }

  Operand compile_vector_lit(Frame& f, const VectorLit& node, SourcePos pos,
                             int want) {
    // Always built in a fresh temp: elements may read the assignment
    // target (`v := [v[1], v[0]]`), so the destination slot must keep
    // its old value until the vector is complete.
    const std::uint16_t mark = f.next_temp;
    const std::uint16_t vec = alloc(f);
    emit(f, {.op = Op::NewVector,
             .a = vec,
             .d = static_cast<std::int32_t>(node.elements.size()),
             .pos = pos});
    for (const auto& el : node.elements) {
      const std::uint16_t inner = f.next_temp;
      const Operand r = compile_expr(f, *el, -1);
      emit(f, {.op = Op::PushScalar, .a = vec, .b = r.reg, .pos = el->pos});
      f.next_temp = inner;
    }
    if (want >= 0) {
      emit(f, {.op = Op::Move,
               .flags = kTempB,
               .a = static_cast<std::uint16_t>(want),
               .b = vec});
      f.next_temp = mark;
      return {static_cast<std::uint16_t>(want), false};
    }
    return {vec, true};
  }

  Operand compile_binary(Frame& f, const Binary& node, SourcePos pos,
                         int want) {
    if (node.op == BinOp::And || node.op == BinOp::Or) {
      return compile_logical(f, node, want);
    }
    const std::uint16_t mark = f.next_temp;
    const Operand lhs = compile_expr(f, *node.lhs, -1);
    const Operand rhs = compile_expr(f, *node.rhs, -1);
    f.next_temp = mark;
    const std::uint16_t dst = dst_reg(f, want);
    emit(f, {.op = arith_op(node.op),
             .flags = temp_flags(lhs, rhs),
             .a = dst,
             .b = lhs.reg,
             .c = rhs.reg,
             .pos = pos});
    return {dst, want < 0};
  }

  Operand compile_logical(Frame& f, const Binary& node, int want) {
    const bool is_and = node.op == BinOp::And;
    if (auto lv = fold(*node.lhs, f)) {
      // Constant lhs: either the whole expression is decided (the other
      // side is *dropped*, matching the tree-walker never evaluating
      // it), or the result is just truthy(rhs).
      ++chunk_.folded;
      if (lv->truthy() == is_and) {
        const std::uint16_t mark = f.next_temp;
        const Operand r = compile_expr(f, *node.rhs, -1);
        f.next_temp = mark;
        const std::uint16_t dst = dst_reg(f, want);
        emit(f, {.op = Op::Truthy,
                 .flags = temp_flags(r),
                 .a = dst,
                 .b = r.reg});
        return {dst, want < 0};
      }
      const std::uint16_t dst = dst_reg(f, want);
      emit(f, {.op = Op::LoadConst,
               .a = dst,
               .b = const_id(Value(is_and ? 0.0 : 1.0))});
      return {dst, want < 0};
    }
    const std::uint16_t mark = f.next_temp;
    const Operand lhs = compile_expr(f, *node.lhs, -1);
    const std::size_t skip = emit(
        f, {.op = is_and ? Op::JumpIfFalsy : Op::JumpIfTruthy, .b = lhs.reg});
    f.next_temp = mark;
    // The rhs runs only when the lhs did not decide the result, so any
    // CheckVar inside it proves nothing for code after the expression.
    std::vector<char> saved = f.readable;
    const Operand rhs = compile_expr(f, *node.rhs, -1);
    f.readable = std::move(saved);
    f.next_temp = mark;
    const std::uint16_t dst = dst_reg(f, want);
    emit(f, {.op = Op::Truthy, .flags = temp_flags(rhs), .a = dst, .b = rhs.reg});
    const std::size_t done = emit(f, {.op = Op::Jump});
    patch(f, skip);
    emit(f, {.op = Op::LoadConst,
             .a = dst,
             .b = const_id(Value(is_and ? 0.0 : 1.0))});
    patch(f, done);
    return {dst, want < 0};
  }

  Operand compile_call(Frame& f, const Call& node, SourcePos pos, int want) {
    if (node.callee == "when") return compile_when(f, node, pos, want);
    if (f.code.sites.size() >= kMaxIndex) overflow();

    CallSite site;
    site.name = name_id(node.callee);
    site.builtin = BuiltinRegistry::instance().find(node.callee);
    if (auto it = formula_table_of_.find(node.callee);
        it != formula_table_of_.end()) {
      site.formula = it->second;
    }
    const auto site_idx = static_cast<std::uint16_t>(f.code.sites.size());
    f.code.sites.emplace_back();

    const std::uint16_t mark = f.next_temp;
    const std::uint16_t dst = dst_reg(f, want);
    const std::size_t call_at = emit(
        f, {.op = Op::CallOp, .a = dst, .b = site_idx, .pos = pos});
    // Argument code is embedded after the call instruction; the VM runs
    // each range only after resolving the callee and checking arity
    // (the tree-walker's order), then resumes at `d`.
    for (const auto& a : node.args) {
      const std::uint16_t areg = alloc(f);
      const std::uint16_t inner = f.next_temp;
      ArgRange ar;
      ar.begin = static_cast<std::uint32_t>(f.code.ins.size());
      ar.reg = areg;
      ar.temp = 1;
      compile_expr(f, *a, areg);
      ar.end = static_cast<std::uint32_t>(f.code.ins.size());
      site.args.push_back(ar);
      f.next_temp = inner;
    }
    patch(f, call_at);
    f.code.sites[site_idx] = std::move(site);
    f.next_temp = want >= 0 ? mark : static_cast<std::uint16_t>(dst + 1);
    return {dst, want < 0};
  }

  Operand compile_when(Frame& f, const Call& node, SourcePos pos, int want) {
    if (node.args.size() != 3) {
      return emit_error(f, ErrorCode::Type,
                        "when() expects (condition, then, else)", pos, want);
    }
    const std::uint16_t mark = f.next_temp;
    const Operand cond = compile_expr(f, *node.args[0], -1);
    const std::size_t to_else =
        emit(f, {.op = Op::JumpIfFalsy, .b = cond.reg});
    f.next_temp = mark;
    const std::uint16_t dst = dst_reg(f, want);
    // Each arm executes on its own path; CheckVar knowledge survives
    // the join only when proven on both.
    const std::vector<char> before = f.readable;
    compile_expr(f, *node.args[1], dst);
    std::vector<char> after_then = std::move(f.readable);
    const std::size_t done = emit(f, {.op = Op::Jump});
    patch(f, to_else);
    f.readable = before;
    compile_expr(f, *node.args[2], dst);
    patch(f, done);
    intersect(f.readable, after_then);
    f.next_temp = want >= 0 ? mark : static_cast<std::uint16_t>(dst + 1);
    return {dst, want < 0};
  }

  static void intersect(std::vector<char>& into, const std::vector<char>& other) {
    for (std::size_t i = 0; i < into.size(); ++i) {
      into[i] = static_cast<char>(into[i] != 0 && other[i] != 0);
    }
  }

  // ---- statements ----------------------------------------------------

  /// A loop-iteration tick absorbed into the body's leading TickN,
  /// with an optional instruction (for-loop SetLoopVar) that belongs
  /// between that tick and the first statement.
  struct PendingTick {
    SourcePos pos;
    bool has_prologue = false;
    Instr prologue;
  };

  void compile_block(Frame& f, const Block& block) {
    if (facts_ == nullptr) {
      for (const StmtPtr& s : block) compile_stmt(f, *s);
      return;
    }
    compile_batched(f, block, nullptr);
  }

  /// Safe in the middle of a TickN batch: straight-line statements the
  /// interpreter proved consume exactly one tick (no loop iterations,
  /// no possible formula call). Statements that may raise errors still
  /// qualify — on the batched fast path neither engine reaches the
  /// step limit inside the run, so errors surface identically.
  [[nodiscard]] bool batchable(const Stmt& s) const {
    if (!facts_->single_tick.contains(&s)) return false;
    return std::holds_alternative<AssignStmt>(s.node) ||
           std::holds_alternative<ExprStmt>(s.node) ||
           std::holds_alternative<FormulaDef>(s.node);
  }

  /// Lowers a block, replacing each maximal run of batchable
  /// statements — plus at most one trailing statement of any
  /// non-return kind, whose own nested ticks stay dynamic and follow
  /// its batched leading tick — with a single TickN.
  void compile_batched(Frame& f, const Block& block,
                       const PendingTick* pending) {
    std::size_t i = 0;
    bool lead = pending != nullptr;
    while (lead || i < block.size()) {
      std::size_t j = i;
      while (j < block.size() && batchable(*block[j])) ++j;
      std::size_t end = j;
      if (j < block.size() &&
          !std::holds_alternative<ReturnStmt>(block[j]->node) &&
          (lead ? 1 : 0) + (j - i) >= 1) {
        end = j + 1;  // absorb the trailing statement's leading tick
      }
      const std::size_t count = (lead ? 1 : 0) + (end - i);
      if (count < 2) {
        if (lead) {
          emit(f, {.op = Op::Tick, .pos = pending->pos});
          if (pending->has_prologue) emit(f, pending->prologue);
          lead = false;
        }
        if (i < block.size()) compile_stmt(f, *block[i++]);
        continue;
      }
      emit_batch(f, block, i, end, lead ? pending : nullptr);
      lead = false;
      i = end;
    }
  }

  void emit_batch(Frame& f, const Block& block, std::size_t i,
                  std::size_t end, const PendingTick* pending) {
    if (chunk_.runs.size() >= kMaxIndex) overflow();
    const auto run_idx = static_cast<std::uint16_t>(chunk_.runs.size());
    chunk_.runs.emplace_back();  // reserve the slot; nested batches append
    const std::size_t count = (pending != nullptr ? 1 : 0) + (end - i);
    emit(f, {.op = Op::TickN,
             .a = run_idx,
             .d = static_cast<std::int32_t>(count)});
    StmtRun run;
    run.bounds.push_back(static_cast<std::uint32_t>(f.code.ins.size()));
    if (pending != nullptr) {
      run.pos.push_back(pending->pos);
      if (pending->has_prologue) emit(f, pending->prologue);
      run.bounds.push_back(static_cast<std::uint32_t>(f.code.ins.size()));
    }
    for (std::size_t k = i; k < end; ++k) {
      run.pos.push_back(block[k]->pos);
      compile_stmt_body(f, *block[k]);
      run.bounds.push_back(static_cast<std::uint32_t>(f.code.ins.size()));
    }
    chunk_.runs[run_idx] = std::move(run);
  }

  void compile_stmt(Frame& f, const Stmt& s) {
    emit(f, {.op = Op::Tick, .pos = s.pos});
    compile_stmt_body(f, s);
  }

  void compile_stmt_body(Frame& f, const Stmt& s) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            compile_assign(f, node, s.pos);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            compile_if(f, node);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            compile_while(f, node, s.pos);
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            compile_repeat(f, node, s.pos);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            compile_for(f, node, s.pos);
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            emit(f, {.op = Op::Halt, .pos = s.pos});
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            compile_formula_def(f, node, s.pos);
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            const std::uint16_t mark = f.next_temp;
            compile_expr(f, *node.expr, -1);
            f.next_temp = mark;
          }
        },
        s.node);
  }

  void compile_assign(Frame& f, const AssignStmt& node, SourcePos pos) {
    const std::uint16_t target = slot_of_.at(node.target);
    const std::uint16_t mark = f.next_temp;
    if (node.index) {
      const bool safe = facts_ != nullptr &&
                        facts_->safe_indexed_store.contains(&node);
      // Value first, then target checks, then index — the tree-walker's
      // evaluation order, so error precedence matches.
      const Operand value = compile_expr(f, *node.value, -1);
      if (safe) {
        chunk_.elided += 1;
      } else {
        emit(f, {.op = Op::IndexedCheck, .a = target, .pos = pos});
      }
      f.readable[target] = 1;
      const Operand idx = compile_expr(f, *node.index, -1);
      emit(f, {.op = Op::IndexedStore,
               .flags = safe ? kNoCheck : std::uint8_t{0},
               .a = target,
               .b = idx.reg,
               .c = value.reg,
               .pos = node.index->pos});
    } else {
      compile_expr(f, *node.value, target);
      f.readable[target] = 1;
    }
    f.next_temp = mark;
    emit(f, {.op = Op::FinishAssign, .a = target, .pos = pos});
  }

  void compile_if(Frame& f, const IfStmt& node) {
    std::vector<std::size_t> done_jumps;
    std::vector<std::vector<char>> ends;
    for (const auto& arm : node.arms) {
      const std::uint16_t mark = f.next_temp;
      const Operand cond = compile_expr(f, *arm.cond, -1);
      f.next_temp = mark;
      const std::size_t to_next =
          emit(f, {.op = Op::JumpIfFalsy, .b = cond.reg});
      const std::vector<char> at_cond = f.readable;
      compile_block(f, arm.body);
      ends.push_back(std::move(f.readable));
      done_jumps.push_back(emit(f, {.op = Op::Jump}));
      patch(f, to_next);
      f.readable = at_cond;
    }
    compile_block(f, node.else_body);
    for (const std::size_t j : done_jumps) patch(f, j);
    for (const auto& end : ends) intersect(f.readable, end);
  }

  void compile_while(Frame& f, const WhileStmt& node, SourcePos pos) {
    const auto head = static_cast<std::int32_t>(f.code.ins.size());
    const std::uint16_t mark = f.next_temp;
    const Operand cond = compile_expr(f, *node.cond, -1);
    f.next_temp = mark;
    const std::size_t exit_jump =
        emit(f, {.op = Op::JumpIfFalsy, .b = cond.reg, .pos = pos});
    // The condition always runs at least once, so its CheckVar facts
    // survive the loop; the body may run zero times, so its don't.
    const std::vector<char> at_cond = f.readable;
    if (facts_ != nullptr) {
      const PendingTick iter{pos};
      compile_batched(f, node.body, &iter);
    } else {
      emit(f, {.op = Op::Tick, .pos = pos});
      compile_block(f, node.body);
    }
    emit(f, {.op = Op::Jump, .d = head, .pos = pos});
    patch(f, exit_jump);
    f.readable = at_cond;
  }

  void compile_repeat(Frame& f, const RepeatStmt& node, SourcePos pos) {
    const std::uint16_t mark = f.next_temp;
    const std::uint16_t counter = alloc(f);
    const std::uint16_t limit = alloc(f);
    const Operand count = compile_expr(f, *node.count, -1);
    emit(f, {.op = Op::RepeatInit,
             .a = counter,
             .b = limit,
             .c = count.reg,
             .pos = pos});
    f.next_temp = static_cast<std::uint16_t>(limit + 1);
    const auto head = static_cast<std::int32_t>(f.code.ins.size());
    const std::size_t exit_jump =
        emit(f, {.op = Op::RepeatNext,
                 .flags = facts_ != nullptr ? kNoTick : std::uint8_t{0},
                 .a = counter,
                 .b = limit,
                 .pos = pos});
    const std::vector<char> at_head = f.readable;
    if (facts_ != nullptr) {
      const PendingTick iter{pos};
      compile_batched(f, node.body, &iter);
    } else {
      compile_block(f, node.body);
    }
    emit(f, {.op = Op::Jump, .d = head, .pos = pos});
    patch(f, exit_jump);
    f.readable = at_head;
    f.next_temp = mark;
  }

  void compile_for(Frame& f, const ForStmt& node, SourcePos pos) {
    const std::uint16_t target = slot_of_.at(node.var);
    const std::uint16_t mark = f.next_temp;
    const std::uint16_t counter = alloc(f);
    const std::uint16_t limit = alloc(f);
    const std::uint16_t step = alloc(f);
    // from/to/step evaluate once, each coerced to a scalar immediately
    // (interleaved with evaluation, like the tree-walker's as_scalar).
    compile_bound(f, *node.from, counter);
    compile_bound(f, *node.to, limit);
    if (node.step) {
      compile_bound(f, *node.step, step);
    } else {
      emit(f, {.op = Op::LoadConst, .a = step, .b = const_id(Value(1.0))});
    }
    emit(f, {.op = Op::ForInit, .a = step, .pos = pos});
    const auto head = static_cast<std::int32_t>(f.code.ins.size());
    const std::size_t exit_jump =
        emit(f, {.op = Op::ForNext,
                 .flags = facts_ != nullptr ? kNoTick : std::uint8_t{0},
                 .a = counter,
                 .b = limit,
                 .c = step,
                 .pos = pos});
    const std::vector<char> at_head = f.readable;
    f.readable[target] = 1;
    if (facts_ != nullptr) {
      // The iteration tick precedes the loop-variable bind (the walker
      // aborts a limit hit before binding), so SetLoopVar rides in the
      // batch as the tick's prologue.
      PendingTick iter{pos};
      iter.has_prologue = true;
      iter.prologue = {.op = Op::SetLoopVar, .a = target, .b = counter,
                       .pos = pos};
      compile_batched(f, node.body, &iter);
    } else {
      emit(f, {.op = Op::SetLoopVar, .a = target, .b = counter, .pos = pos});
      compile_block(f, node.body);
    }
    emit(f, {.op = Op::ForStep, .a = counter, .c = step, .d = head});
    patch(f, exit_jump);
    // Zero iterations leave the loop variable unbound.
    f.readable = at_head;
    f.next_temp = mark;
  }

  void compile_bound(Frame& f, const Expr& e, std::uint16_t into) {
    const std::uint16_t inner = f.next_temp;
    const Operand r = compile_expr(f, e, -1);
    emit(f, {.op = Op::ToScalar, .a = into, .b = r.reg, .pos = e.pos});
    f.next_temp = inner;
  }

  void compile_formula_def(Frame& f, const FormulaDef& node, SourcePos pos) {
    // The tree-walker validates the name every time the definition
    // executes; all three checks are static, so a doomed definition
    // lowers to its error and a valid one to a table registration.
    if (node.name == "when") {
      emit_error(f, ErrorCode::Name, "`when` is the conditional special form",
                 pos, 0);
      return;
    }
    if (BuiltinRegistry::instance().find(node.name) != nullptr) {
      emit_error(f, ErrorCode::Name,
                 "formula `" + node.name + "` would shadow a calculator button",
                 pos, 0);
      return;
    }
    if (constants().contains(node.name)) {
      emit_error(f, ErrorCode::Name,
                 "formula `" + node.name + "` would shadow a constant", pos, 0);
      return;
    }
    if (chunk_.formulas.size() >= kMaxIndex) overflow();
    const auto idx = static_cast<std::uint16_t>(chunk_.formulas.size());
    chunk_.formulas.push_back(compile_formula(node));
    emit(f, {.op = Op::DefFormula, .b = idx, .pos = pos});
  }

  Formula compile_formula(const FormulaDef& def) {
    Formula fo;
    fo.name = name_id(def.name);
    fo.table = formula_table_of_.at(def.name);
    std::map<std::string, std::uint16_t> params;
    std::uint16_t next_reg = 0;
    for (const std::string& p : def.params) {
      if (auto it = params.find(p); it != params.end()) {
        // Duplicate parameter: the tree-walker's emplace keeps the
        // first binding; later arguments still evaluate, then drop.
        fo.param_reg.push_back(it->second);
        fo.param_bind.push_back(0);
      } else {
        params.emplace(p, next_reg);
        fo.param_reg.push_back(next_reg);
        fo.param_bind.push_back(1);
        ++next_reg;
      }
    }
    Frame ff;
    ff.in_formula = true;
    ff.params = &params;
    ff.next_temp = next_reg;
    ff.high_water = next_reg;
    const Operand result = compile_expr(ff, *def.body, -1);
    fo.result = result.reg;
    ff.code.num_regs = ff.high_water;
    ff.code.first_temp = next_reg;
    fo.code = std::move(ff.code);
    return fo;
  }

  Chunk chunk_;
  const AnalysisFacts* facts_ = nullptr;
  std::map<std::string, std::uint16_t> name_ids_;
  std::map<std::uint64_t, std::uint16_t> scalar_ids_;
  std::map<std::string, std::uint16_t> string_ids_;
  std::map<std::string, std::uint16_t> message_ids_;
  std::map<std::string, std::uint16_t> slot_of_;
  std::map<std::string, std::int32_t> formula_table_of_;
};

// ---- peephole fusion -------------------------------------------------
//
// Merges adjacent instruction pairs into the fused superinstructions at
// the tail of the Op enum. Every fusion is observably identical to the
// pair it replaces (same registers written, same errors at the same
// positions, same trace output, same ticks) — only dispatch overhead is
// removed. A pair is fusable only when no control flow can enter
// between its two halves, so the pass first computes the leader set:
// every instruction index some other instruction (or call-site argument
// range, or TickN slow-path table) can transfer to.

/// True when `op` interprets `d` as an instruction index that must be
/// remapped after instructions are removed.
bool reads_target(Op op) {
  switch (op) {
    case Op::Jump:
    case Op::JumpIfFalsy:
    case Op::JumpIfTruthy:
    case Op::ForNext:
    case Op::ForStep:
    case Op::RepeatNext:
    case Op::CallOp:
    case Op::LtBr:
    case Op::LeBr:
    case Op::GtBr:
    case Op::GeBr:
    case Op::EqBr:
    case Op::NeBr:
    case Op::LtKBr:
    case Op::LeKBr:
    case Op::GtKBr:
    case Op::GeKBr:
    case Op::EqKBr:
    case Op::NeKBr:
      return true;
    default:
      return false;
  }
}

/// Ops whose destination `a` may absorb an adjacent FinishAssign via the
/// kFinish flag. All reach the VM's shared epilogue on success (no
/// `continue` paths) and fully write r[a] before it runs.
bool finish_fusable(Op op) {
  switch (op) {
    case Op::LoadConst:
    case Op::Move:
    case Op::Neg:
    case Op::NotOp:
    case Op::Truthy:
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::Pow:
    case Op::CmpEq:
    case Op::CmpNe:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::IndexLoad:
    case Op::AddK:
    case Op::SubK:
    case Op::MulK:
    case Op::DivK:
    case Op::ModK:
    case Op::PowK:
    case Op::LtK:
    case Op::LeK:
    case Op::GtK:
    case Op::GeK:
    case Op::EqK:
    case Op::NeK:
      return true;
    default:
      return false;
  }
}

/// Branch form of a compare op, or `op` itself when there is none.
Op branch_form(Op op) {
  switch (op) {
    case Op::Lt: return Op::LtBr;
    case Op::Le: return Op::LeBr;
    case Op::Gt: return Op::GtBr;
    case Op::Ge: return Op::GeBr;
    case Op::CmpEq: return Op::EqBr;
    case Op::CmpNe: return Op::NeBr;
    case Op::LtK: return Op::LtKBr;
    case Op::LeK: return Op::LeKBr;
    case Op::GtK: return Op::GtKBr;
    case Op::GeK: return Op::GeKBr;
    case Op::EqK: return Op::EqKBr;
    case Op::NeK: return Op::NeKBr;
    default: return op;
  }
}

/// Const-operand form of a binary op, or `op` itself when there is none.
Op const_form(Op op) {
  switch (op) {
    case Op::Add: return Op::AddK;
    case Op::Sub: return Op::SubK;
    case Op::Mul: return Op::MulK;
    case Op::Div: return Op::DivK;
    case Op::Mod: return Op::ModK;
    case Op::Pow: return Op::PowK;
    case Op::Lt: return Op::LtK;
    case Op::Le: return Op::LeK;
    case Op::Gt: return Op::GtK;
    case Op::Ge: return Op::GeK;
    case Op::CmpEq: return Op::EqK;
    case Op::CmpNe: return Op::NeK;
    default: return op;
  }
}

/// Attempts to fuse the adjacent pair (cur, next). Returns the single
/// replacement instruction, or nullopt when the pair must stay split.
std::optional<Instr> try_fuse(const Instr& cur, const Instr& next,
                              std::uint16_t first_temp,
                              const std::vector<Value>& consts) {
  // Store fusion: value-producing instruction + FinishAssign on the
  // same slot. The trace echo prints only the line number, so the pair
  // must agree on it (FinishAssign carries the statement position, the
  // value op its expression position).
  if (next.op == Op::FinishAssign && cur.a == next.a &&
      cur.pos.line == next.pos.line && (cur.flags & kFinish) == 0 &&
      finish_fusable(cur.op)) {
    Instr out = cur;
    out.flags = static_cast<std::uint8_t>(out.flags | kFinish);
    return out;
  }
  // Compare + branch-if-falsy. The fused op still writes the 0/1
  // result register (`when` arms and formula results read it), then
  // branches — only the dispatch is saved, so no liveness proof is
  // needed. A kFinish carrier stays split: the epilogue must run
  // before the branch, and taken branches skip it.
  if (next.op == Op::JumpIfFalsy && next.b == cur.a &&
      (cur.flags & kFinish) == 0) {
    if (const Op br = branch_form(cur.op); br != cur.op) {
      Instr out = cur;
      out.op = br;
      out.d = next.d;
      return out;
    }
  }
  // Const operand: LoadConst into a temporary consumed immediately by
  // a binary arith/compare. Eliding the register write is safe only
  // for temps (named slots outlive the expression) holding scalars
  // (vector consts may be moved out of the pool under kTempC, which a
  // pool-indexed operand must never do). Swapping a const left operand
  // to the right is legal only where the operation — including its
  // error messages — is symmetric: Add/Mul (type errors name the
  // non-scalar operand regardless of side) and Eq/Ne (equals() is
  // total and symmetric). Lt..Ge order their message operands, and
  // Sub/Div/Mod/Pow are not commutative.
  if (cur.op == Op::LoadConst && cur.a >= first_temp &&
      consts[cur.b].scalar_if() != nullptr && next.b != next.c) {
    if (const Op k = const_form(next.op); k != next.op) {
      const std::uint16_t t = cur.a;
      std::uint16_t src = 0;
      bool swapped = false;
      if (next.c == t && next.b != t) {
        src = next.b;
      } else if (next.b == t && next.c != t &&
                 (next.op == Op::Add || next.op == Op::Mul ||
                  next.op == Op::CmpEq || next.op == Op::CmpNe)) {
        src = next.c;
        swapped = true;
      } else {
        return std::nullopt;
      }
      Instr out = next;
      out.op = k;
      out.b = src;
      out.c = cur.b;  // const-pool index
      std::uint8_t fl = next.flags & kFinish;
      if (!swapped) {
        fl = static_cast<std::uint8_t>(fl | (next.flags & kTempB));
      } else if ((next.flags & kTempC) != 0) {
        fl = static_cast<std::uint8_t>(fl | kTempB);
      }
      out.flags = fl;
      return out;
    }
  }
  return std::nullopt;
}

/// One fusion pass over `code`. Returns true when anything fused (the
/// caller iterates to a fixpoint — e.g. LoadConst+Lt fuses to LtK in
/// one pass, LtK+JumpIfFalsy to LtKBr in the next).
bool fuse_pass(Chunk& chunk, Code& code, bool top_level) {
  const std::size_t n = code.ins.size();
  if (n < 2) return false;
  // Leader set: indices control flow (or an argument range / TickN
  // slow-path bound) can transfer to. ins[i+1] being a leader vetoes
  // fusing (i, i+1).
  std::vector<char> leader(n + 1, 0);
  leader[0] = 1;
  leader[n] = 1;
  for (const Instr& in : code.ins) {
    if (reads_target(in.op)) leader[static_cast<std::size_t>(in.d)] = 1;
  }
  for (const CallSite& site : code.sites) {
    for (const ArgRange& ar : site.args) {
      leader[ar.begin] = 1;
      leader[ar.end] = 1;
    }
  }
  if (top_level) {
    for (const StmtRun& run : chunk.runs) {
      for (const std::uint32_t b : run.bounds) leader[b] = 1;
    }
  }

  std::vector<Instr> out;
  out.reserve(n);
  std::vector<std::uint32_t> map(n + 1, 0);
  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(out.size());
    if (i + 1 < n && leader[i + 1] == 0) {
      if (auto fused = try_fuse(code.ins[i], code.ins[i + 1],
                                code.first_temp, chunk.consts)) {
        out.push_back(*fused);
        map[i + 1] = map[i];  // dead index: nothing targets a non-leader
        ++i;
        ++chunk.fused;
        changed = true;
        continue;
      }
    }
    out.push_back(code.ins[i]);
  }
  map[n] = static_cast<std::uint32_t>(out.size());
  if (!changed) return false;

  for (Instr& in : out) {
    if (reads_target(in.op)) {
      in.d = static_cast<std::int32_t>(map[static_cast<std::size_t>(in.d)]);
    }
  }
  for (CallSite& site : code.sites) {
    for (ArgRange& ar : site.args) {
      ar.begin = map[ar.begin];
      ar.end = map[ar.end];
    }
  }
  if (top_level) {
    for (StmtRun& run : chunk.runs) {
      for (std::uint32_t& b : run.bounds) b = map[b];
    }
  }
  code.ins = std::move(out);
  return true;
}

void peephole(Chunk& chunk) {
  while (fuse_pass(chunk, chunk.main, /*top_level=*/true)) {
  }
  for (Formula& fo : chunk.formulas) {
    while (fuse_pass(chunk, fo.code, /*top_level=*/false)) {
    }
  }
}

}  // namespace

Chunk compile(const Block& body, const AnalysisFacts* facts) {
  if (facts != nullptr && facts->empty()) facts = nullptr;
  Chunk chunk = Compiler(body, facts).take();
  peephole(chunk);
  return chunk;
}

}  // namespace banger::pits::bc
