// banger/pits/interp.hpp
//
// The PITS interpreter: executes a parsed routine against an environment
// of named values. This is what runs when the Banger user presses the
// calculator's "=" key (trial run of one task) and what the runtime
// executor calls for every task of a whole-program run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pits/ast.hpp"
#include "pits/value.hpp"

namespace banger::pits {

/// Variable bindings; inputs are placed here before execute, outputs are
/// read from here afterwards.
using Env = std::map<std::string, Value>;

struct ExecOptions {
  /// Which execution engine runs the routine. Both are observably
  /// identical (same results, transcripts, errors, rand() stream); the
  /// tree-walker is kept as the reference oracle for differential
  /// testing. Auto resolves via the BANGER_PITS_ENGINE environment
  /// variable ("walk" selects the tree-walker), defaulting to the VM.
  enum class Engine : std::uint8_t { Auto, Vm, Walk };

  /// Abort with Error{Limit} after this many evaluated statements —
  /// non-programmers write infinite loops, and instant feedback must not
  /// hang the environment.
  std::uint64_t step_limit = 50'000'000;
  /// Seed for rand().
  std::uint64_t seed = 42;
  /// Trial-run transcript for print(); null discards.
  std::ostream* out = nullptr;
  /// Single-step trace: every assignment is echoed as
  /// "line N: var = value" (the calculator's step mode). Null disables.
  std::ostream* trace = nullptr;
  Engine engine = Engine::Auto;
};

namespace bc {
struct Chunk;
struct AnalysisFacts;
}  // namespace bc

/// An immutable, shareable parsed routine. The first execution (or an
/// explicit precompile()) lowers the AST to register bytecode once; the
/// compiled form is cached behind a thread-safe once-init and shared by
/// all copies of the Program, so the executor, the calculator panel,
/// and the codegen reference path reuse one compilation.
class Program {
 public:
  Program();

  /// Parses PITS source; throws Error{Parse} with positions.
  static Program parse(std::string_view source);

  [[nodiscard]] bool empty() const noexcept { return body_->empty(); }
  [[nodiscard]] const Block& body() const noexcept { return *body_; }

  /// Runs the routine, mutating `env`. Throws Error{Runtime} (division by
  /// zero, bad index, unknown name...), Error{Type}, or Error{Limit}.
  void execute(Env& env, const ExecOptions& options = {}) const;

  /// Compiles to bytecode now instead of on first execute(). Idempotent,
  /// thread-safe, and cheap when already compiled.
  void precompile() const;

  /// Compiles now with analysis facts (src/analyze/absint.hpp) guiding
  /// check elision and statement-tick batching. The compiled form is
  /// once-initialized, so only the first compilation of this Program
  /// (across all copies) takes effect; later calls are no-ops either
  /// way. Elided chunks stay observably identical to the walker.
  void precompile(const bc::AnalysisFacts& facts) const;

  /// Canonical source text (pretty-printed AST).
  [[nodiscard]] std::string to_source() const { return pits::to_source(*body_); }

  /// Free variables the routine reads — excluding constants and builtin
  /// names — i.e. the inputs the PITL node must supply.
  [[nodiscard]] std::vector<std::string> inputs() const;
  /// Variables the routine assigns — the candidate outputs.
  [[nodiscard]] std::vector<std::string> outputs() const;

  /// The cached chunk, compiling on first use; null when the routine
  /// exceeds the compact ISA limits (the walker then takes over).
  /// `facts` is consulted only by the compiling call. Callers that
  /// drive the VM directly (the executor's slot-frame hot path) hold
  /// the shared_ptr and run bc::run_frame against it.
  [[nodiscard]] std::shared_ptr<const bc::Chunk> compiled_chunk(
      const bc::AnalysisFacts* facts = nullptr) const;

 private:
  struct Compiled;  // once-initialized bytecode cache, defined in interp.cpp

  explicit Program(std::shared_ptr<const Block> body);

  std::shared_ptr<const Block> body_;
  std::shared_ptr<Compiled> compiled_;
};

/// Resolves Engine::Auto to the concrete engine execute() would use
/// (BANGER_PITS_ENGINE, read once per process); returns other values
/// unchanged. Lets callers pick a VM-only fast path up front.
[[nodiscard]] ExecOptions::Engine resolve_engine(ExecOptions::Engine engine);

/// Convenience: parse and evaluate a single expression against an
/// environment (the calculator's display line).
Value eval_expression(std::string_view expression, const Env& env,
                      const ExecOptions& options = {});

}  // namespace banger::pits
