// banger/machine/serialize.hpp
//
// Text serialisation for target machine descriptions — what the Banger
// user enters in the machine-definition step. A `.machine` file:
//
//   machine ipsc8
//   topology hypercube dim=3
//   speed 1.0
//   process_startup 0.1
//   message_startup 0.05
//   bandwidth 1e6
//   routing store-and-forward
//   speed_factor 2 1.5          # optional heterogeneity
//
// Topology lines: `hypercube dim=D`, `mesh rows=R cols=C`,
// `torus rows=R cols=C`, `tree arity=A procs=P`, `star procs=P`,
// `ring procs=P`, `chain procs=P`, `full procs=P`,
// `custom procs=P links=0-1,1-2,...`.
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace banger::machine {

Machine parse_machine(std::string_view text);
Machine load_machine(const std::string& path);
std::string to_text(const Machine& machine);
void save_machine(const Machine& machine, const std::string& path);

}  // namespace banger::machine
