#include "machine/serialize.hpp"

#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::machine {

namespace {

using util::split;
using util::split_ws;
using util::trim;

double parse_num(std::string_view s, int line) {
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(ErrorCode::Parse, "bad number `" + std::string(s) + "`", {line, 1});
  }
  return value;
}

std::unordered_map<std::string, std::string> parse_kv(
    const std::vector<std::string_view>& tokens, std::size_t first, int line) {
  std::unordered_map<std::string, std::string> kv;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    auto eq = tokens[i].find('=');
    if (eq == std::string_view::npos) {
      fail(ErrorCode::Parse,
           "expected key=value, got `" + std::string(tokens[i]) + "`",
           {line, 1});
    }
    kv.emplace(std::string(tokens[i].substr(0, eq)),
               std::string(tokens[i].substr(eq + 1)));
  }
  return kv;
}

int kv_int(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, int line) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    fail(ErrorCode::Parse, "missing `" + key + "=`", {line, 1});
  }
  return static_cast<int>(parse_num(it->second, line));
}

Topology parse_topology(const std::vector<std::string_view>& tokens,
                        int line) {
  if (tokens.size() < 2) {
    fail(ErrorCode::Parse, "expected `topology <kind> ...`", {line, 1});
  }
  const std::string kind = util::to_lower(tokens[1]);
  auto kv = parse_kv(tokens, 2, line);
  if (kind == "hypercube") return Topology::hypercube(kv_int(kv, "dim", line));
  if (kind == "mesh")
    return Topology::mesh(kv_int(kv, "rows", line), kv_int(kv, "cols", line));
  if (kind == "torus")
    return Topology::torus(kv_int(kv, "rows", line), kv_int(kv, "cols", line));
  if (kind == "tree")
    return Topology::tree(kv_int(kv, "arity", line), kv_int(kv, "procs", line));
  if (kind == "star") return Topology::star(kv_int(kv, "procs", line));
  if (kind == "ring") return Topology::ring(kv_int(kv, "procs", line));
  if (kind == "chain") return Topology::chain(kv_int(kv, "procs", line));
  if (kind == "full" || kind == "fully-connected")
    return Topology::fully_connected(kv_int(kv, "procs", line));
  if (kind == "custom") {
    const int procs = kv_int(kv, "procs", line);
    std::vector<std::pair<int, int>> links;
    auto it = kv.find("links");
    if (it != kv.end()) {
      for (auto part : split(it->second, ',')) {
        auto ends = split(part, '-');
        if (ends.size() != 2) {
          fail(ErrorCode::Parse, "bad link `" + std::string(part) + "`",
               {line, 1});
        }
        links.emplace_back(static_cast<int>(parse_num(ends[0], line)),
                           static_cast<int>(parse_num(ends[1], line)));
      }
    }
    return Topology::custom("custom" + std::to_string(procs), procs, links);
  }
  fail(ErrorCode::Parse, "unknown topology kind `" + kind + "`", {line, 1});
}

}  // namespace

Machine parse_machine(std::string_view text) {
  std::string name = "machine";
  std::optional<Topology> topo;
  MachineParams params;
  std::vector<std::pair<ProcId, double>> factors;

  int lineno = 0;
  for (auto raw : split(text, '\n')) {
    ++lineno;
    auto hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    auto line = trim(raw);
    if (line.empty()) continue;
    auto tokens = split_ws(line);
    const std::string head = util::to_lower(tokens[0]);

    auto one_number = [&]() -> double {
      if (tokens.size() != 2) {
        fail(ErrorCode::Parse, "expected `" + head + " <value>`", {lineno, 1});
      }
      return parse_num(tokens[1], lineno);
    };

    if (head == "machine") {
      if (tokens.size() != 2) {
        fail(ErrorCode::Parse, "expected `machine <name>`", {lineno, 1});
      }
      name = std::string(tokens[1]);
    } else if (head == "topology") {
      topo = parse_topology(tokens, lineno);
    } else if (head == "speed") {
      params.processor_speed = one_number();
    } else if (head == "process_startup") {
      params.process_startup = one_number();
    } else if (head == "message_startup") {
      params.message_startup = one_number();
    } else if (head == "bandwidth") {
      params.bytes_per_second = one_number();
    } else if (head == "per_hop_latency") {
      params.per_hop_latency = one_number();
    } else if (head == "routing") {
      if (tokens.size() != 2) {
        fail(ErrorCode::Parse, "expected `routing <mode>`", {lineno, 1});
      }
      const std::string mode = util::to_lower(tokens[1]);
      if (mode == "store-and-forward") {
        params.routing = Routing::StoreAndForward;
      } else if (mode == "cut-through") {
        params.routing = Routing::CutThrough;
      } else {
        fail(ErrorCode::Parse, "unknown routing `" + mode + "`", {lineno, 1});
      }
    } else if (head == "speed_factor") {
      if (tokens.size() != 3) {
        fail(ErrorCode::Parse, "expected `speed_factor <proc> <factor>`",
             {lineno, 1});
      }
      factors.emplace_back(static_cast<ProcId>(parse_num(tokens[1], lineno)),
                           parse_num(tokens[2], lineno));
    } else {
      fail(ErrorCode::Parse, "unknown directive `" + head + "`", {lineno, 1});
    }
  }

  if (!topo) {
    fail(ErrorCode::Parse, "machine description lacks a topology line");
  }
  Machine machine(std::move(*topo), params, std::move(name));
  for (auto [p, f] : factors) {
    if (p < 0 || p >= machine.num_procs()) {
      fail(ErrorCode::Machine,
           "speed_factor processor " + std::to_string(p) + " out of range");
    }
    machine.set_speed_factor(p, f);
  }
  return machine;
}

Machine load_machine(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::Io, "cannot open `" + path + "` for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_machine(buf.str());
}

std::string to_text(const Machine& machine) {
  std::ostringstream out;
  out << "machine " << machine.name() << "\n";

  const Topology& t = machine.topology();
  out << "topology ";
  switch (t.kind()) {
    case TopologyKind::Hypercube: {
      int dim = 0;
      while ((1 << dim) < t.num_procs()) ++dim;
      out << "hypercube dim=" << dim;
      break;
    }
    case TopologyKind::FullyConnected:
      out << "full procs=" << t.num_procs();
      break;
    case TopologyKind::Star:
      out << "star procs=" << t.num_procs();
      break;
    case TopologyKind::Ring:
      out << "ring procs=" << t.num_procs();
      break;
    case TopologyKind::Chain:
      out << "chain procs=" << t.num_procs();
      break;
    default: {
      // Mesh/torus/tree factory arguments are not stored; emit the
      // faithful link list instead.
      out << "custom procs=" << t.num_procs() << " links=";
      bool first = true;
      for (ProcId a = 0; a < t.num_procs(); ++a) {
        for (ProcId b : t.neighbors(a)) {
          if (a < b) {
            if (!first) out << ',';
            out << a << '-' << b;
            first = false;
          }
        }
      }
      break;
    }
  }
  out << "\n";

  const MachineParams& p = machine.params();
  out << "speed " << util::format_double(p.processor_speed, 12) << "\n";
  out << "process_startup " << util::format_double(p.process_startup, 12)
      << "\n";
  out << "message_startup " << util::format_double(p.message_startup, 12)
      << "\n";
  out << "bandwidth " << util::format_double(p.bytes_per_second, 12) << "\n";
  out << "per_hop_latency " << util::format_double(p.per_hop_latency, 12)
      << "\n";
  out << "routing " << to_string(p.routing) << "\n";
  for (ProcId q = 0; q < machine.num_procs(); ++q) {
    if (machine.speed_factor(q) != 1.0) {
      out << "speed_factor " << q << ' '
          << util::format_double(machine.speed_factor(q), 12) << "\n";
    }
  }
  return out.str();
}

void save_machine(const Machine& machine, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCode::Io, "cannot open `" + path + "` for writing");
  out << to_text(machine);
  if (!out) fail(ErrorCode::Io, "error writing `" + path + "`");
}

}  // namespace banger::machine
