// banger/machine/machine.hpp
//
// The target machine model. The paper tailors a program to a machine by
// exactly four characteristics:
//   1. Processor speed            (work units per second)
//   2. Process startup time       (seconds added to every task launch)
//   3. Message passing startup time (seconds per message per hop)
//   4. Message transmission speed (bytes per second per link)
// plus, for distributed-memory machines, the interconnection topology.
// Machine wraps those parameters and answers the two questions every
// scheduler asks: how long does work W take on processor P, and how long
// does a B-byte message take from P to Q.
#pragma once

#include <string>
#include <vector>

#include "machine/topology.hpp"

namespace banger::machine {

/// How multi-hop messages accumulate cost.
enum class Routing : std::uint8_t {
  /// 1990-era store-and-forward: the full message is re-sent at each hop,
  /// so cost = hops * (startup + bytes/bandwidth). PPSE's model.
  StoreAndForward,
  /// Wormhole/cut-through: one startup plus pipelined transmission,
  /// cost = startup + hops * header_overhead… modeled here as
  /// startup + bytes/bandwidth + (hops-1) * per_hop_latency.
  CutThrough,
};

std::string_view to_string(Routing routing) noexcept;

struct MachineParams {
  /// Work units each processor retires per second.
  double processor_speed = 1.0;
  /// Fixed overhead charged to every task execution.
  double process_startup = 0.0;
  /// Fixed overhead per message (per hop under store-and-forward).
  double message_startup = 0.0;
  /// Link bandwidth; <= 0 means infinitely fast links.
  double bytes_per_second = 0.0;
  /// Extra per-hop latency under cut-through routing.
  double per_hop_latency = 0.0;
  Routing routing = Routing::StoreAndForward;

  /// Throws Error{Machine} when parameters are out of range.
  void validate() const;
};

class Machine {
 public:
  Machine(Topology topology, MachineParams params, std::string name = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }
  [[nodiscard]] int num_procs() const noexcept { return topology_.num_procs(); }

  /// Heterogeneity: a per-processor speed multiplier (1.0 = nominal).
  void set_speed_factor(ProcId p, double factor);
  [[nodiscard]] double speed_factor(ProcId p) const;
  [[nodiscard]] bool homogeneous() const noexcept;

  /// Seconds to execute `work` units on processor `p`, including process
  /// startup.
  [[nodiscard]] double task_time(double work, ProcId p) const;

  /// Seconds for `bytes` to travel from `from` to `to`. Zero when the
  /// processors coincide (local memory).
  [[nodiscard]] double comm_time(double bytes, ProcId from, ProcId to) const;

  /// comm_time for a given hop count (lets schedulers cache distances).
  [[nodiscard]] double comm_time_hops(double bytes, int hops) const;

  /// Granularity diagnostic: communication-to-computation ratio of a
  /// one-unit task exchanging `bytes` over one hop.
  [[nodiscard]] double ccr(double bytes) const;

 private:
  std::string name_;
  Topology topology_;
  MachineParams params_;
  std::vector<double> speed_factor_;
};

/// Ready-made machines used by the benches and examples.
namespace presets {

/// An iPSC/2-like hypercube: modest links relative to CPU speed.
Machine hypercube(int dim, double ccr = 0.5);
/// Fully connected shared-bus style machine (communication nearly free).
Machine shared_memory(int num_procs);
/// Workstation LAN: star topology, expensive message startup.
Machine lan(int num_procs);

}  // namespace presets

}  // namespace banger::machine
