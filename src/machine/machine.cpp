#include "machine/machine.hpp"

#include "util/error.hpp"

namespace banger::machine {

std::string_view to_string(Routing routing) noexcept {
  switch (routing) {
    case Routing::StoreAndForward: return "store-and-forward";
    case Routing::CutThrough: return "cut-through";
  }
  return "unknown";
}

void MachineParams::validate() const {
  if (processor_speed <= 0) {
    fail(ErrorCode::Machine, "processor speed must be positive");
  }
  if (process_startup < 0 || message_startup < 0 || per_hop_latency < 0) {
    fail(ErrorCode::Machine, "startup/latency times must be non-negative");
  }
}

Machine::Machine(Topology topology, MachineParams params, std::string name)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      params_(params),
      speed_factor_(static_cast<std::size_t>(topology_.num_procs()), 1.0) {
  params_.validate();
  if (name_.empty()) name_ = topology_.name();
}

void Machine::set_speed_factor(ProcId p, double factor) {
  BANGER_ASSERT(p >= 0 && p < num_procs(), "processor id out of range");
  if (factor <= 0) {
    fail(ErrorCode::Machine, "speed factor must be positive");
  }
  speed_factor_[static_cast<std::size_t>(p)] = factor;
}

double Machine::speed_factor(ProcId p) const {
  BANGER_ASSERT(p >= 0 && p < num_procs(), "processor id out of range");
  return speed_factor_[static_cast<std::size_t>(p)];
}

bool Machine::homogeneous() const noexcept {
  for (double f : speed_factor_)
    if (f != 1.0) return false;
  return true;
}

double Machine::task_time(double work, ProcId p) const {
  return params_.process_startup +
         work / (params_.processor_speed * speed_factor(p));
}

double Machine::comm_time(double bytes, ProcId from, ProcId to) const {
  if (from == to) return 0.0;
  return comm_time_hops(bytes, topology_.hops(from, to));
}

double Machine::comm_time_hops(double bytes, int hops) const {
  if (hops <= 0) return 0.0;
  const double wire =
      params_.bytes_per_second > 0 ? bytes / params_.bytes_per_second : 0.0;
  switch (params_.routing) {
    case Routing::StoreAndForward:
      return hops * (params_.message_startup + wire);
    case Routing::CutThrough:
      return params_.message_startup + wire +
             (hops - 1) * params_.per_hop_latency;
  }
  return 0.0;
}

double Machine::ccr(double bytes) const {
  const double compute = 1.0 / params_.processor_speed;
  const double comm = comm_time_hops(bytes, 1);
  return compute > 0 ? comm / compute : 0.0;
}

namespace presets {

Machine hypercube(int dim, double ccr) {
  MachineParams p;
  p.processor_speed = 1.0;
  p.process_startup = 0.0;
  // Choose startup/bandwidth so a default 8-byte message across one hop
  // costs `ccr` seconds, split evenly between startup and wire time.
  p.message_startup = ccr / 2.0;
  p.bytes_per_second = ccr > 0 ? 8.0 / (ccr / 2.0) : 0.0;
  return Machine(Topology::hypercube(dim), p,
                 "ipsc-hypercube" + std::to_string(1 << dim));
}

Machine shared_memory(int num_procs) {
  MachineParams p;
  p.processor_speed = 1.0;
  p.message_startup = 0.001;
  p.bytes_per_second = 1e9;
  return Machine(Topology::fully_connected(num_procs), p,
                 "shared-bus" + std::to_string(num_procs));
}

Machine lan(int num_procs) {
  MachineParams p;
  p.processor_speed = 1.0;
  p.process_startup = 0.05;
  p.message_startup = 2.0;  // LAN round-trips dwarf computation
  p.bytes_per_second = 1e4;
  return Machine(Topology::star(num_procs), p,
                 "lan" + std::to_string(num_procs));
}

}  // namespace presets

}  // namespace banger::machine
