#include "machine/topology.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace banger::machine {

namespace {
void check_procs(int num_procs, int minimum = 1) {
  if (num_procs < minimum) {
    fail(ErrorCode::Machine, "topology needs at least " +
                                 std::to_string(minimum) + " processors, got " +
                                 std::to_string(num_procs));
  }
}
}  // namespace

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::FullyConnected: return "fully-connected";
    case TopologyKind::Hypercube: return "hypercube";
    case TopologyKind::Mesh: return "mesh";
    case TopologyKind::Torus: return "torus";
    case TopologyKind::Tree: return "tree";
    case TopologyKind::Star: return "star";
    case TopologyKind::Ring: return "ring";
    case TopologyKind::Chain: return "chain";
    case TopologyKind::Custom: return "custom";
  }
  return "unknown";
}

Topology::Topology(TopologyKind kind, std::string name, int num_procs)
    : kind_(kind), name_(std::move(name)), num_procs_(num_procs) {
  adj_.resize(static_cast<std::size_t>(num_procs));
}

void Topology::add_link(ProcId a, ProcId b) {
  BANGER_ASSERT(a >= 0 && a < num_procs_ && b >= 0 && b < num_procs_ && a != b,
                "bad link endpoints");
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
  ++num_links_;
}

void Topology::finalize() {
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());

  const auto n = static_cast<std::size_t>(num_procs_);
  hop_.assign(n * n, -1);
  for (std::size_t s = 0; s < n; ++s) {
    int* row = hop_.data() + s * n;
    row[s] = 0;
    std::deque<ProcId> queue{static_cast<ProcId>(s)};
    while (!queue.empty()) {
      const ProcId u = queue.front();
      queue.pop_front();
      for (ProcId v : adj_[static_cast<std::size_t>(u)]) {
        if (row[v] < 0) {
          row[v] = row[u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  for (int d : hop_) {
    if (d < 0) {
      fail(ErrorCode::Machine, "topology `" + name_ + "` is disconnected");
    }
  }
}

Topology Topology::fully_connected(int num_procs) {
  check_procs(num_procs);
  Topology t(TopologyKind::FullyConnected,
             "full" + std::to_string(num_procs), num_procs);
  for (ProcId a = 0; a < num_procs; ++a)
    for (ProcId b = a + 1; b < num_procs; ++b) t.add_link(a, b);
  t.finalize();
  return t;
}

Topology Topology::hypercube(int dim) {
  if (dim < 0 || dim > 20) {
    fail(ErrorCode::Machine,
         "hypercube dimension must be in [0,20], got " + std::to_string(dim));
  }
  const int p = 1 << dim;
  Topology t(TopologyKind::Hypercube,
             "hypercube" + std::to_string(p), p);
  for (ProcId a = 0; a < p; ++a) {
    for (int bit = 0; bit < dim; ++bit) {
      const ProcId b = a ^ (1 << bit);
      if (a < b) t.add_link(a, b);
    }
  }
  t.finalize();
  return t;
}

Topology Topology::mesh(int rows, int cols) {
  check_procs(rows);
  check_procs(cols);
  const int p = rows * cols;
  Topology t(TopologyKind::Mesh,
             "mesh" + std::to_string(rows) + "x" + std::to_string(cols), p);
  auto id = [cols](int r, int c) { return static_cast<ProcId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_link(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_link(id(r, c), id(r + 1, c));
    }
  }
  t.finalize();
  return t;
}

Topology Topology::torus(int rows, int cols) {
  check_procs(rows);
  check_procs(cols);
  const int p = rows * cols;
  Topology t(TopologyKind::Torus,
             "torus" + std::to_string(rows) + "x" + std::to_string(cols), p);
  auto id = [cols](int r, int c) { return static_cast<ProcId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Wraparound links; avoid duplicating the 2-node wrap (a ring of two
      // columns would otherwise get a double link).
      if (cols > 1 && (c + 1 < cols || cols > 2)) {
        t.add_link(id(r, c), id(r, (c + 1) % cols));
      }
      if (rows > 1 && (r + 1 < rows || rows > 2)) {
        t.add_link(id(r, c), id((r + 1) % rows, c));
      }
    }
  }
  t.finalize();
  return t;
}

Topology Topology::tree(int arity, int num_procs) {
  check_procs(num_procs);
  if (arity < 1) {
    fail(ErrorCode::Machine, "tree arity must be >= 1");
  }
  Topology t(TopologyKind::Tree,
             "tree" + std::to_string(arity) + "x" + std::to_string(num_procs),
             num_procs);
  for (ProcId child = 1; child < num_procs; ++child) {
    const ProcId parent = (child - 1) / arity;
    t.add_link(parent, child);
  }
  t.finalize();
  return t;
}

Topology Topology::star(int num_procs) {
  check_procs(num_procs);
  Topology t(TopologyKind::Star, "star" + std::to_string(num_procs),
             num_procs);
  for (ProcId leaf = 1; leaf < num_procs; ++leaf) t.add_link(0, leaf);
  t.finalize();
  return t;
}

Topology Topology::ring(int num_procs) {
  check_procs(num_procs, 3);
  Topology t(TopologyKind::Ring, "ring" + std::to_string(num_procs),
             num_procs);
  for (ProcId a = 0; a < num_procs; ++a)
    t.add_link(a, static_cast<ProcId>((a + 1) % num_procs));
  t.finalize();
  return t;
}

Topology Topology::chain(int num_procs) {
  check_procs(num_procs);
  Topology t(TopologyKind::Chain, "chain" + std::to_string(num_procs),
             num_procs);
  for (ProcId a = 0; a + 1 < num_procs; ++a) t.add_link(a, a + 1);
  t.finalize();
  return t;
}

Topology Topology::custom(std::string name, int num_procs,
                          const std::vector<std::pair<int, int>>& links) {
  check_procs(num_procs);
  Topology t(TopologyKind::Custom, std::move(name), num_procs);
  for (auto [a, b] : links) {
    if (a < 0 || a >= num_procs || b < 0 || b >= num_procs || a == b) {
      fail(ErrorCode::Machine, "bad link (" + std::to_string(a) + "," +
                                   std::to_string(b) + ") in custom topology");
    }
    if (!t.linked(a, b)) t.add_link(a, b);
  }
  t.finalize();
  return t;
}

bool Topology::linked(ProcId a, ProcId b) const {
  BANGER_ASSERT(a >= 0 && a < num_procs_ && b >= 0 && b < num_procs_,
                "processor id out of range");
  if (a == b) return false;
  const auto& nbrs = adj_[static_cast<std::size_t>(a)];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

int Topology::hops(ProcId a, ProcId b) const {
  BANGER_ASSERT(a >= 0 && a < num_procs_ && b >= 0 && b < num_procs_,
                "processor id out of range");
  return hop_[static_cast<std::size_t>(a) * static_cast<std::size_t>(num_procs_) +
              static_cast<std::size_t>(b)];
}

std::vector<ProcId> Topology::route(ProcId a, ProcId b) const {
  std::vector<ProcId> path{a};
  ProcId cur = a;
  while (cur != b) {
    // Greedy descent on hop distance; smallest neighbor id wins ties.
    ProcId next = -1;
    for (ProcId v : adj_[static_cast<std::size_t>(cur)]) {
      if (hops(v, b) == hops(cur, b) - 1) {
        next = v;
        break;  // neighbors are sorted: first match is smallest
      }
    }
    BANGER_ASSERT(next >= 0, "hop matrix inconsistent with adjacency");
    path.push_back(next);
    cur = next;
  }
  return path;
}

const std::vector<ProcId>& Topology::neighbors(ProcId p) const {
  BANGER_ASSERT(p >= 0 && p < num_procs_, "processor id out of range");
  return adj_[static_cast<std::size_t>(p)];
}

int Topology::degree(ProcId p) const {
  return static_cast<int>(neighbors(p).size());
}

int Topology::max_degree() const {
  int best = 0;
  for (ProcId p = 0; p < num_procs_; ++p) best = std::max(best, degree(p));
  return best;
}

int Topology::diameter() const {
  return *std::max_element(hop_.begin(), hop_.end());
}

int Topology::bisection_width() const {
  const int n = num_procs_;
  if (n < 2) return 0;
  const int half = n / 2;
  switch (kind_) {
    case TopologyKind::FullyConnected:
      // Every cross pair is a link: floor(n/2) * ceil(n/2).
      return half * (n - half);
    case TopologyKind::Hypercube:
      return n / 2;
    case TopologyKind::Star:
      // Any balanced cut isolates ~half the leaves from the hub.
      return half;
    case TopologyKind::Tree:
    case TopologyKind::Chain:
      return 1;
    case TopologyKind::Ring:
      return 2;
    case TopologyKind::Mesh:
    case TopologyKind::Torus:
    case TopologyKind::Custom: {
      // Exhaustive balanced bipartition over <= 20 nodes.
      if (n > 20) {
        fail(ErrorCode::Limit,
             "bisection width of irregular topologies limited to 20 "
             "processors");
      }
      int best = num_links_ + 1;
      const std::uint32_t all = (n == 32) ? 0xffffffffu
                                          : ((1u << n) - 1u);
      for (std::uint32_t side = 0; side <= all; ++side) {
        if (__builtin_popcount(side) != half) continue;
        int cut = 0;
        for (ProcId a = 0; a < n; ++a) {
          const bool in_a = (side >> a) & 1u;
          for (ProcId b : adj_[static_cast<std::size_t>(a)]) {
            if (a < b && in_a != ((side >> b) & 1u)) ++cut;
          }
        }
        best = std::min(best, cut);
      }
      return best;
    }
  }
  return 0;
}

double Topology::average_distance() const {
  if (num_procs_ < 2) return 0.0;
  long long sum = 0;
  for (int d : hop_) sum += d;
  const double pairs =
      static_cast<double>(num_procs_) * (num_procs_ - 1);
  return static_cast<double>(sum) / pairs;
}

}  // namespace banger::machine
