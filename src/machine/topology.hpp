// banger/machine/topology.hpp
//
// Interconnection network topologies of the target machine, entered in
// Banger "as another graph" (paper Fig. 2). The paper lists hypercubes,
// meshes, trees, stars, and fully-connected networks; rings and chains
// are included for generality (PPSE schedules onto *arbitrary* target
// machines). A topology is an undirected graph over processors plus its
// all-pairs hop-distance matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace banger::machine {

using ProcId = std::int32_t;

enum class TopologyKind : std::uint8_t {
  FullyConnected,
  Hypercube,
  Mesh,
  Torus,
  Tree,
  Star,
  Ring,
  Chain,
  Custom,
};

std::string_view to_string(TopologyKind kind) noexcept;

class Topology {
 public:
  /// Every processor linked to every other.
  static Topology fully_connected(int num_procs);
  /// Binary hypercube of dimension `dim` (2^dim processors, dim >= 0).
  static Topology hypercube(int dim);
  /// `rows` x `cols` 2-D mesh (no wraparound).
  static Topology mesh(int rows, int cols);
  /// `rows` x `cols` 2-D torus (wraparound mesh).
  static Topology torus(int rows, int cols);
  /// Complete `arity`-ary tree filled level by level with `num_procs`
  /// nodes; node 0 is the root.
  static Topology tree(int arity, int num_procs);
  /// Star: node 0 is the hub, all others are leaves.
  static Topology star(int num_procs);
  /// Cycle of `num_procs` >= 3 processors.
  static Topology ring(int num_procs);
  /// Linear array.
  static Topology chain(int num_procs);
  /// User-drawn topology from an explicit undirected link list.
  static Topology custom(std::string name, int num_procs,
                         const std::vector<std::pair<int, int>>& links);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int num_procs() const noexcept { return num_procs_; }

  /// True if a direct link exists (a != b required).
  [[nodiscard]] bool linked(ProcId a, ProcId b) const;
  /// Hop distance; 0 for a == b. The network must be connected (the
  /// factories guarantee it; custom() validates it).
  [[nodiscard]] int hops(ProcId a, ProcId b) const;
  /// One shortest path a..b inclusive, deterministic (smallest next hop).
  [[nodiscard]] std::vector<ProcId> route(ProcId a, ProcId b) const;

  [[nodiscard]] const std::vector<ProcId>& neighbors(ProcId p) const;
  [[nodiscard]] int degree(ProcId p) const;
  [[nodiscard]] int max_degree() const;
  /// Undirected link count.
  [[nodiscard]] int num_links() const noexcept { return num_links_; }
  /// Largest hop distance between any pair.
  [[nodiscard]] int diameter() const;
  /// Mean hop distance over distinct ordered pairs.
  [[nodiscard]] double average_distance() const;
  /// Minimum links cut by any balanced bipartition. Closed forms for the
  /// regular families; exhaustive search for custom topologies up to 20
  /// processors (Error{Limit} beyond — the problem is NP-hard).
  [[nodiscard]] int bisection_width() const;

 private:
  Topology(TopologyKind kind, std::string name, int num_procs);

  void add_link(ProcId a, ProcId b);
  /// Computes the hop matrix via BFS from every node; throws
  /// Error{Machine} if the network is disconnected.
  void finalize();

  TopologyKind kind_ = TopologyKind::Custom;
  std::string name_;
  int num_procs_ = 0;
  int num_links_ = 0;
  std::vector<std::vector<ProcId>> adj_;
  std::vector<int> hop_;  // row-major num_procs x num_procs
};

}  // namespace banger::machine
