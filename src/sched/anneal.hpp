// banger/sched/anneal.hpp
//
// Iterative-improvement scheduling by simulated annealing over task->
// processor assignments: start from the MH schedule's assignment, move
// single tasks (or swap pairs) to random processors, re-time with the
// constrained list scheduler, accept worse moves with Boltzmann
// probability under a geometric cooling schedule. The 1990s literature
// positioned annealing as the "spend more cycles, get closer to
// optimal" alternative to one-pass heuristics; ABL8 measures whether
// that held.
#pragma once

#include "sched/scheduler.hpp"

namespace banger::sched {

struct AnnealOptions {
  /// Total candidate moves examined.
  int iterations = 4000;
  /// Initial temperature as a fraction of the seed makespan.
  double initial_temperature = 0.08;
  /// Geometric cooling factor applied every `iterations / 100` moves.
  double cooling = 0.95;
  /// Probability that a move swaps two tasks instead of moving one.
  double swap_probability = 0.3;
  std::uint64_t seed = 1;
  /// Independent annealing chains; chain k runs with seed + k and the
  /// best result wins (ties go to the lowest chain index). restarts = 1
  /// reproduces the single-chain behaviour exactly.
  int restarts = 1;
  /// Worker threads for running chains concurrently (restarts > 1).
  /// <= 0 means util::default_jobs(). The result is independent of the
  /// thread count.
  int jobs = 1;
};

class AnnealScheduler final : public Scheduler {
 public:
  explicit AnnealScheduler(AnnealOptions anneal = {},
                           SchedulerOptions opts = {})
      : Scheduler(opts), anneal_(anneal) {}

  [[nodiscard]] std::string name() const override { return "anneal"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;

  /// Moves accepted during the last run (diagnostics for the bench).
  [[nodiscard]] int accepted_moves() const noexcept { return accepted_; }

 private:
  AnnealOptions anneal_;
  mutable int accepted_ = 0;
};

}  // namespace banger::sched
