// Grain packing via edge-zeroing clustering (Sarkar's internalization
// pre-pass, the lineage of Kruatrachue & Lewis's grain-packing idea):
//
//   1. start with one cluster per task;
//   2. visit edges in decreasing byte count; merge the two endpoint
//      clusters when the estimated parallel time (each cluster a virtual
//      processor, intra-cluster communication free, inter-cluster
//      communication at one-hop cost) does not increase;
//   3. map clusters onto the physical processors largest-first onto the
//      least-loaded processor (LPT);
//   4. derive start times with the constrained list scheduler.
#include <algorithm>
#include <numeric>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/error.hpp"

namespace banger::sched {

namespace {

/// Estimated parallel time of a clustering: list-schedule with one
/// virtual processor per cluster (tasks in a cluster serialize in
/// priority order; cross-cluster messages cost one hop).
double parallel_time(const TaskGraph& graph, const Machine& machine,
                     const std::vector<int>& cluster,
                     const std::vector<TaskId>& topo,
                     const std::vector<double>& priority) {
  const std::size_t n = graph.num_tasks();
  std::vector<double> finish(n, 0.0);
  std::vector<double> cluster_avail;
  cluster_avail.assign(n, 0.0);  // clusters are numbered within [0, n)

  // Process in topological order; within the same cluster, the timeline
  // is sequential. Priority influences only tie ordering inside a
  // cluster; a topological sweep with cluster-available times is an
  // adequate estimator for the merge test.
  (void)priority;
  for (TaskId t : topo) {
    double ready = 0.0;
    for (graph::EdgeId e : graph.in_edges(t)) {
      const graph::Edge& edge = graph.edge(e);
      double arrive = finish[edge.from];
      if (cluster[edge.from] != cluster[t]) {
        arrive += machine.comm_time_hops(edge.bytes, 1);
      }
      ready = std::max(ready, arrive);
    }
    const double start =
        std::max(ready, cluster_avail[static_cast<std::size_t>(cluster[t])]);
    const double dur = machine.params().process_startup +
                       graph.task(t).work / machine.params().processor_speed;
    finish[t] = start + dur;
    cluster_avail[static_cast<std::size_t>(cluster[t])] = finish[t];
  }
  return n == 0 ? 0.0 : *std::max_element(finish.begin(), finish.end());
}

}  // namespace

std::vector<int> ClusterScheduler::clusters_of(const TaskGraph& graph,
                                               const Machine& machine) const {
  const std::size_t n = graph.num_tasks();
  std::vector<int> cluster(n);
  std::iota(cluster.begin(), cluster.end(), 0);
  if (n == 0) return cluster;

  const auto topo = graph.topo_order();
  const auto priority = comm_b_levels(graph, machine);

  // Edges heaviest-first; ties by id for determinism.
  std::vector<graph::EdgeId> order(graph.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    if (graph.edge(a).bytes != graph.edge(b).bytes)
      return graph.edge(a).bytes > graph.edge(b).bytes;
    return a < b;
  });

  double best_pt = parallel_time(graph, machine, cluster, topo, priority);
  for (graph::EdgeId e : order) {
    const int ca = cluster[graph.edge(e).from];
    const int cb = cluster[graph.edge(e).to];
    if (ca == cb) continue;
    std::vector<int> merged = cluster;
    for (int& c : merged)
      if (c == cb) c = ca;
    const double pt = parallel_time(graph, machine, merged, topo, priority);
    if (pt <= best_pt + 1e-12) {
      cluster = std::move(merged);
      best_pt = pt;
    }
  }
  return cluster;
}

Schedule ClusterScheduler::run(const TaskGraph& graph,
                               const Machine& machine) const {
  if (graph.num_tasks() == 0) {
    return Schedule(machine.num_procs(), name());
  }
  const auto cluster = clusters_of(graph, machine);

  // Cluster work totals.
  std::vector<double> cluster_work(graph.num_tasks(), 0.0);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    cluster_work[static_cast<std::size_t>(cluster[t])] += graph.task(t).work;
  }
  std::vector<int> cluster_ids;
  for (std::size_t c = 0; c < cluster_work.size(); ++c) {
    if (cluster_work[c] > 0 ||
        std::find(cluster.begin(), cluster.end(), static_cast<int>(c)) !=
            cluster.end()) {
      cluster_ids.push_back(static_cast<int>(c));
    }
  }
  std::sort(cluster_ids.begin(), cluster_ids.end(), [&](int a, int b) {
    if (cluster_work[static_cast<std::size_t>(a)] !=
        cluster_work[static_cast<std::size_t>(b)])
      return cluster_work[static_cast<std::size_t>(a)] >
             cluster_work[static_cast<std::size_t>(b)];
    return a < b;
  });

  // LPT mapping onto processors.
  std::vector<double> load(static_cast<std::size_t>(machine.num_procs()), 0.0);
  std::vector<ProcId> proc_of_cluster(graph.num_tasks(), 0);
  for (int c : cluster_ids) {
    const auto lightest = static_cast<ProcId>(
        std::min_element(load.begin(), load.end()) - load.begin());
    proc_of_cluster[static_cast<std::size_t>(c)] = lightest;
    load[static_cast<std::size_t>(lightest)] +=
        cluster_work[static_cast<std::size_t>(c)];
  }

  std::vector<ProcId> assignment(graph.num_tasks());
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    assignment[t] = proc_of_cluster[static_cast<std::size_t>(cluster[t])];
  }
  return schedule_fixed_assignment(graph, machine, assignment,
                                   opts_.insertion, name());
}

}  // namespace banger::sched
