// Duplication Scheduling Heuristic (Kruatrachue & Lewis 1987/88).
//
// MH-style list scheduling, except that when a task's start on a
// candidate processor is delayed by a message from a critical parent
// located elsewhere, the heuristic tries to *duplicate* that parent (and,
// recursively, the parent's own critical ancestors up to a depth bound)
// into idle time on the candidate processor. Duplication trades redundant
// computation for communication and shines when message costs rival task
// costs — the regime ablation bench ABL4 sweeps.
//
// Performance notes (this file used to copy the candidate processor's
// whole lane plus a std::map of local finishes for every (task, proc)
// trial and again around every speculative duplication — O(lane) work
// per trial and O(log n) map churn inside the recursion):
//   - One DupScratch lives for the whole run. A trial stamp per task /
//     per edge turns "clear the map" into "bump a counter": local
//     duplicate finishes sit in flat arrays valid only when their stamp
//     matches the current trial, and committed-side edge arrivals are
//     memoised per trial the first time an in-edge is walked.
//   - Speculative duplication snapshots nothing. Every tentative
//     placement pushes one undo record; rejecting a speculation pops
//     records back to a mark (unstamping the task, erasing its tentative
//     interval, shrinking the dup list). Accepting costs nothing.
//   - The candidate lane is never copied. While a trial has no
//     tentative duplicates, slot queries go straight to the shared
//     gap-indexed Timeline (fast-path rejects intact); once duplicates
//     exist, a two-pointer merge walks the committed lane and the small
//     sorted tentative set — the same left-to-right first-fit scan the
//     copied lane produced, interval for interval.
//   - Two sound quick-rejects skip processors that provably cannot beat
//     the incumbent finish: (1) even an empty-graph start on p — the
//     earliest slot at ready 0 — already finishes too late; (2) even if
//     every in-edge were served by a local duplicate (arrival bounded
//     below by min(committed arrival, producer duration on p)), the
//     resulting slot still finishes too late. Both bounds are monotone
//     underestimates of any achievable evaluation, and the incumbent
//     update keeps the original `<  best - 1e-12` rule, so the chosen
//     processor — and the schedule — are byte-identical.
//   - data-ready queries before the first duplicate come from
//     BuildState's memoised per-(task, proc) row (same in-edge order,
//     same strict-> tie-break); only trials that actually speculate walk
//     edges by hand.
#include <algorithm>
#include <utility>
#include <vector>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/error.hpp"

namespace banger::sched {

namespace {

using Interval = std::pair<double, double>;

/// Tentative evaluation of task `t` on processor `p`, with duplication.
struct Evaluation {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  /// Duplicated ancestor copies, in the order they must be committed.
  std::vector<std::pair<graph::TaskId, double>> dups;
};

/// Run-lifetime scratch for duplication trials. One instance serves every
/// (task, processor) trial of a run; begin_trial() advances the stamp that
/// invalidates all per-trial state in O(1).
class DupScratch {
 public:
  DupScratch(const BuildState& state, int max_depth)
      : state_(state),
        max_depth_(max_depth),
        local_finish_(state.graph().num_tasks(), 0.0),
        local_stamp_(state.graph().num_tasks(), 0),
        edge_arr_(state.graph().num_edges(), 0.0),
        edge_arr_stamp_(state.graph().num_edges(), 0) {}

  /// Lower bound over every possible evaluation of `t` on `proc` (with or
  /// without duplication): each in-edge arrives no earlier than the best
  /// committed arrival unless a local duplicate of the producer serves it,
  /// and any such duplicate finishes no earlier than its own duration.
  /// Starts the trial: the edge walk primes the per-trial arrival memo.
  double ready_lower_bound(TaskId t, ProcId proc) {
    begin_trial(proc);
    double lb = 0.0;
    const TaskGraph& graph = state_.graph();
    for (graph::EdgeId e : graph.in_edges(t)) {
      const graph::Edge& edge = graph.edge(e);
      const double a =
          std::min(committed_arrival(e), state_.duration(edge.from, proc));
      if (a > lb) lb = a;
    }
    return lb;
  }

  /// Evaluates `t` on `proc`, speculatively duplicating critical remote
  /// parents. Control flow — rounds, depth bound, accept-only-on-strict-
  /// improvement — replicates the original evaluator decision for
  /// decision. Call ready_lower_bound (or begin_trial) first; the chosen
  /// duplicates remain readable via dups() until the next trial.
  Evaluation evaluate(TaskId t) {
    const double dur = state_.duration(t, proc_);
    auto [ready, crit] = data_ready(t);
    double start = slot(ready, dur);
    // Walk up from t: while a remote critical parent delays us and
    // duplicating it helps, keep duplicating. Each accept carries the
    // just-computed (ready, crit, start) into the next round, and each
    // exit path leaves them equal to what a fresh recomputation on the
    // current tentative state would yield (a rollback restores that
    // state exactly), so no final recompute is needed.
    for (int round = 0; round < max_depth_; ++round) {
      if (crit == graph::kNoTask || has_local_copy(crit)) break;

      // Mark, try the duplication, keep only if t starts earlier.
      const std::size_t mark = undo_.size();
      duplicate(crit, max_depth_ - 1);
      auto [new_ready, new_crit] = data_ready(t);
      const double new_start = slot(new_ready, dur);
      if (new_start + 1e-12 >= start) {
        rollback(mark);
        break;
      }
      ready = new_ready;
      crit = new_crit;
      start = new_start;
    }
    return {proc_, start, start + dur, {}};
  }

  [[nodiscard]] const std::vector<std::pair<TaskId, double>>& dups()
      const noexcept {
    return dups_;
  }

  void begin_trial(ProcId proc) {
    ++trial_;
    proc_ = proc;
    tentative_.clear();
    dups_.clear();
    undo_.clear();
  }

 private:
  [[nodiscard]] bool has_local_copy(TaskId u) const {
    if (local_stamp_[u] == trial_) return true;
    for (const Copy& c : state_.copies(u)) {
      if (c.proc == proc_) return true;
    }
    return false;
  }

  /// Best arrival on proc_ from the committed copies of e's producer,
  /// memoised for the duration of the trial (commits only happen between
  /// trials).
  double committed_arrival(graph::EdgeId e) {
    if (edge_arr_stamp_[e] != trial_) {
      edge_arr_[e] = state_.edge_arrival(e, proc_);
      edge_arr_stamp_[e] = trial_;
    }
    return edge_arr_[e];
  }

  /// Best arrival on proc_ of edge data, considering committed copies and
  /// tentative local duplicates.
  double arrival(graph::EdgeId e) {
    const TaskId from = state_.graph().edge(e).from;
    double best = committed_arrival(e);
    if (local_stamp_[from] == trial_) {
      best = std::min(best, local_finish_[from]);  // local: no communication
    }
    return best;
  }

  std::pair<double, TaskId> data_ready(TaskId t) {
    if (undo_.empty()) {
      // No tentative duplicates: committed copies alone decide, which is
      // exactly BuildState's memoised row (same in-edge order, strict >).
      TaskId crit = graph::kNoTask;
      const double ready = state_.data_ready(t, proc_, &crit);
      return {ready, crit};
    }
    double ready = 0.0;
    TaskId crit = graph::kNoTask;
    const TaskGraph& graph = state_.graph();
    for (graph::EdgeId e : graph.in_edges(t)) {
      const double a = arrival(e);
      if (a > ready) {
        ready = a;
        crit = graph.edge(e).from;
      }
    }
    return {ready, crit};
  }

  /// Earliest feasible start of a slot of length `duration` at or after
  /// `ready` on proc_, counting both committed and tentative intervals.
  double slot(double ready, double duration) {
    const Timeline& timeline = state_.timeline();
    if (tentative_.empty()) {
      return timeline.earliest_slot(proc_, ready, duration, true);
    }
    // Two-pointer merge of the committed lane and the tentative set —
    // the same left-to-right first-fit scan over the union, in interval
    // order. (Both sequences are disjoint-sorted; ties between equal
    // intervals cannot change the running candidate.) As in
    // Timeline::gap_scan, intervals finishing well before `ready` can
    // neither host the slot nor advance the candidate, so both cursors
    // skip past them (same 1e-6 margin, immune to boundary slack).
    const auto& lane = timeline.lane(proc_);
    double candidate = std::max(0.0, ready);
    std::size_t i = static_cast<std::size_t>(
        std::partition_point(lane.begin(), lane.end(),
                             [&](const Interval& iv) {
                               return iv.second < ready - 1e-6;
                             }) -
        lane.begin());
    std::size_t j = 0;
    while (j < tentative_.size() && tentative_[j].second < ready - 1e-6) ++j;
    while (i < lane.size() || j < tentative_.size()) {
      const Interval& iv = (j >= tentative_.size() ||
                            (i < lane.size() && lane[i] <= tentative_[j]))
                               ? lane[i++]
                               : tentative_[j++];
      if (candidate + duration <= iv.first + 1e-12) return candidate;
      candidate = std::max(candidate, iv.second);
    }
    return candidate;
  }

  /// Places a tentative duplicate of `u` on proc_, recursively duplicating
  /// its own critical ancestors first when that lets `u` start earlier.
  void duplicate(TaskId u, int depth) {
    if (depth > 0) {
      auto [ready, crit] = data_ready(u);
      if (crit != graph::kNoTask && !has_local_copy(crit)) {
        const std::size_t mark = undo_.size();
        duplicate(crit, depth - 1);
        auto [new_ready, nc] = data_ready(u);
        (void)nc;
        if (new_ready + 1e-12 >= ready) rollback(mark);
      }
    }
    auto [ready, crit] = data_ready(u);
    (void)crit;
    const double dur = state_.duration(u, proc_);
    const double start = slot(ready, dur);
    const Interval iv{start, start + dur};
    tentative_.insert(
        std::lower_bound(tentative_.begin(), tentative_.end(), iv), iv);
    local_finish_[u] = iv.second;
    local_stamp_[u] = trial_;
    dups_.emplace_back(u, start);
    undo_.push_back({u, iv});
  }

  /// Rewinds every tentative placement made since `mark` (undo records,
  /// dup list, and tentative intervals stay in lockstep: one entry each
  /// per duplicate()).
  void rollback(std::size_t mark) {
    while (undo_.size() > mark) {
      const UndoEntry& entry = undo_.back();
      local_stamp_[entry.task] = 0;
      const auto it = std::lower_bound(tentative_.begin(), tentative_.end(),
                                       entry.interval);
      tentative_.erase(it);
      dups_.pop_back();
      undo_.pop_back();
    }
  }

  struct UndoEntry {
    TaskId task;
    Interval interval;
  };

  const BuildState& state_;
  int max_depth_;
  ProcId proc_ = -1;
  std::uint64_t trial_ = 0;

  // Per-task local duplicate finishes, valid when the stamp matches the
  // current trial; per-edge committed arrivals memoised the same way.
  std::vector<double> local_finish_;
  std::vector<std::uint64_t> local_stamp_;
  std::vector<double> edge_arr_;
  std::vector<std::uint64_t> edge_arr_stamp_;

  std::vector<Interval> tentative_;  // sorted tentative intervals on proc_
  std::vector<std::pair<TaskId, double>> dups_;
  std::vector<UndoEntry> undo_;
};

}  // namespace

Schedule DshScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  BuildState state(graph, machine);
  const auto priority = comm_b_levels(graph, machine);

  std::vector<std::size_t> remaining(graph.num_tasks());
  ReadyQueue ready(priority);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push(t);
  }

  DupScratch scratch(state, opts_.duplication_depth);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId t = ready.pop();

    Evaluation best;
    best.finish = kInf;
    for (ProcId p = 0; p < machine.num_procs(); ++p) {
      const double dur = state.duration(t, p);
      // Quick-reject 1: the earliest slot on p with no data constraint at
      // all already finishes no earlier than the incumbent — nothing this
      // processor can offer (with or without duplication) would be kept
      // by the strict-improvement update below. Vacuously false while
      // best.finish is infinite, so the first processor is never skipped.
      if (state.timeline().earliest_slot(p, 0.0, dur, true) + dur >=
          best.finish - 1e-12) {
        continue;
      }
      // Quick-reject 2: even with every in-edge served by an ideal local
      // duplicate the slot still finishes no earlier than the incumbent.
      // (Also opens the trial and primes its arrival memo.)
      const double ready_lb = scratch.ready_lower_bound(t, p);
      if (state.timeline().earliest_slot(p, ready_lb, dur, true) + dur >=
          best.finish - 1e-12) {
        continue;
      }
      Evaluation cand = scratch.evaluate(t);
      if (cand.finish < best.finish - 1e-12) {
        best = std::move(cand);
        best.dups = scratch.dups();
      }
    }
    BANGER_ASSERT(best.proc >= 0, "no processor chosen");

    for (auto [dup_task, dup_start] : best.dups) {
      state.commit(dup_task, best.proc, dup_start, /*duplicate=*/true);
    }
    state.commit(t, best.proc, best.start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(name());
}

}  // namespace banger::sched
