#include "sched/anneal.hpp"

#include <cmath>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/rng.hpp"

namespace banger::sched {

Schedule AnnealScheduler::run(const TaskGraph& graph,
                              const Machine& machine) const {
  accepted_ = 0;
  if (graph.num_tasks() == 0) {
    return Schedule(machine.num_procs(), name());
  }

  // Seed with MH's assignment: annealing refines, it does not start cold.
  const Schedule seed_schedule = MhScheduler().run(graph, machine);
  std::vector<ProcId> assignment(graph.num_tasks(), 0);
  for (const Placement& p : seed_schedule.placements()) {
    if (!p.duplicate) assignment[p.task] = p.proc;
  }

  auto evaluate = [&](const std::vector<ProcId>& a) {
    return schedule_fixed_assignment(graph, machine, a, opts_.insertion,
                                     name())
        .makespan();
  };

  util::Rng rng(anneal_.seed);
  double current = evaluate(assignment);
  std::vector<ProcId> best_assignment = assignment;
  double best = current;

  double temperature = anneal_.initial_temperature * std::max(current, 1e-9);
  const int cooling_period = std::max(1, anneal_.iterations / 100);

  for (int iter = 0; iter < anneal_.iterations; ++iter) {
    std::vector<ProcId> candidate = assignment;
    if (machine.num_procs() > 1) {
      if (rng.chance(anneal_.swap_probability) && graph.num_tasks() > 1) {
        const auto a = static_cast<graph::TaskId>(
            rng.next_below(graph.num_tasks()));
        auto b = static_cast<graph::TaskId>(
            rng.next_below(graph.num_tasks()));
        if (a == b) b = (b + 1) % graph.num_tasks();
        std::swap(candidate[a], candidate[b]);
      } else {
        const auto t = static_cast<graph::TaskId>(
            rng.next_below(graph.num_tasks()));
        candidate[t] = static_cast<ProcId>(
            rng.next_below(static_cast<std::uint64_t>(machine.num_procs())));
      }
    }
    const double value = evaluate(candidate);
    const double delta = value - current;
    if (delta <= 0 ||
        (temperature > 0 && rng.chance(std::exp(-delta / temperature)))) {
      assignment = std::move(candidate);
      current = value;
      ++accepted_;
      if (current < best - 1e-12) {
        best = current;
        best_assignment = assignment;
      }
    }
    if ((iter + 1) % cooling_period == 0) {
      temperature *= anneal_.cooling;
    }
  }

  return schedule_fixed_assignment(graph, machine, best_assignment,
                                   opts_.insertion, name());
}

}  // namespace banger::sched
