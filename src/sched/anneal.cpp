#include "sched/anneal.hpp"

#include <cmath>
#include <numeric>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace banger::sched {

namespace {

/// Outcome of one independent annealing chain.
struct ChainResult {
  std::vector<ProcId> assignment;
  double makespan = 0.0;
  int accepted = 0;
};

}  // namespace

Schedule AnnealScheduler::run(const TaskGraph& graph,
                              const Machine& machine) const {
  accepted_ = 0;
  if (graph.num_tasks() == 0) {
    return Schedule(machine.num_procs(), name());
  }

  // Seed with MH's assignment: annealing refines, it does not start cold.
  const Schedule seed_schedule = MhScheduler().run(graph, machine);
  std::vector<ProcId> seed_assignment(graph.num_tasks(), 0);
  for (const Placement& p : seed_schedule.placements()) {
    if (!p.duplicate) seed_assignment[p.task] = p.proc;
  }

  auto evaluate = [&](const std::vector<ProcId>& a) {
    return schedule_fixed_assignment(graph, machine, a, opts_.insertion,
                                     name())
        .makespan();
  };

  // One chain: classic single-threaded annealing with its own RNG.
  auto run_chain = [&](std::uint64_t chain_seed) {
    ChainResult result;
    std::vector<ProcId> assignment = seed_assignment;

    util::Rng rng(chain_seed);
    double current = evaluate(assignment);
    std::vector<ProcId> best_assignment = assignment;
    double best = current;

    double temperature = anneal_.initial_temperature * std::max(current, 1e-9);
    const int cooling_period = std::max(1, anneal_.iterations / 100);

    for (int iter = 0; iter < anneal_.iterations; ++iter) {
      std::vector<ProcId> candidate = assignment;
      if (machine.num_procs() > 1) {
        if (rng.chance(anneal_.swap_probability) && graph.num_tasks() > 1) {
          const auto a = static_cast<graph::TaskId>(
              rng.next_below(graph.num_tasks()));
          auto b = static_cast<graph::TaskId>(
              rng.next_below(graph.num_tasks()));
          if (a == b) b = (b + 1) % graph.num_tasks();
          std::swap(candidate[a], candidate[b]);
        } else {
          const auto t = static_cast<graph::TaskId>(
              rng.next_below(graph.num_tasks()));
          candidate[t] = static_cast<ProcId>(
              rng.next_below(static_cast<std::uint64_t>(machine.num_procs())));
        }
      }
      const double value = evaluate(candidate);
      const double delta = value - current;
      if (delta <= 0 ||
          (temperature > 0 && rng.chance(std::exp(-delta / temperature)))) {
        assignment = std::move(candidate);
        current = value;
        ++result.accepted;
        if (current < best - 1e-12) {
          best = current;
          best_assignment = assignment;
        }
      }
      if ((iter + 1) % cooling_period == 0) {
        temperature *= anneal_.cooling;
      }
    }

    result.assignment = std::move(best_assignment);
    result.makespan = best;
    return result;
  };

  // Multi-restart: chain k gets seed + k; chains are independent, so
  // they run in parallel and the outcome is identical for any jobs.
  const int restarts = std::max(1, anneal_.restarts);
  std::vector<std::uint64_t> chain_seeds(static_cast<std::size_t>(restarts));
  std::iota(chain_seeds.begin(), chain_seeds.end(), anneal_.seed);
  const std::vector<ChainResult> chains = util::parallel_map(
      chain_seeds, anneal_.jobs,
      [&](std::uint64_t chain_seed) { return run_chain(chain_seed); });

  std::size_t winner = 0;
  for (std::size_t k = 1; k < chains.size(); ++k) {
    if (chains[k].makespan < chains[winner].makespan - 1e-12) winner = k;
  }
  for (const ChainResult& c : chains) accepted_ += c.accepted;

  return schedule_fixed_assignment(graph, machine, chains[winner].assignment,
                                   opts_.insertion, name());
}

}  // namespace banger::sched
