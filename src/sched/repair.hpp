// banger/sched/repair.hpp
//
// Fault-recovery rescheduling: given the copies that finished before a
// fail-stop crash and the set of dead processors, rebuild a feasible
// schedule for everything that still has to run, using only surviving
// processors and never sourcing data from a dead one. The re-execution
// frontier is computed conservatively in reverse-topological order:
//
//   to_run[t] = result of t is unreachable (no finished copy on a
//               surviving processor) AND t is still needed (it never
//               executed at all, or some successor has to run).
//
// A task that finished only on a dead processor and is needed by a
// surviving successor must re-execute, because its data died with the
// processor. A finished task nobody downstream needs keeps its (dead)
// copy as a historical record and is not re-run.
//
// The rescheduling pass reuses the list-scheduler core: surviving
// finished copies are pre-committed at their actual times, then the
// frontier is released in communication-aware b-level order and placed
// EFT over the surviving processors, starting no earlier than the
// detection time `now`.
#pragma once

#include <string>
#include <vector>

#include "sched/list_core.hpp"
#include "sched/schedule.hpp"

namespace banger::sched {

/// One task copy that ran to completion before recovery began (as
/// reported by the simulator or the executor).
struct CompletedCopy {
  TaskId task = graph::kNoTask;
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;
};

struct RepairRequest {
  /// Copies that finished before the crash, on any processor.
  std::vector<CompletedCopy> completed;
  /// Processors that are dead at detection time.
  std::vector<ProcId> dead;
  /// Detection time: no re-executed work may start before this.
  double now = 0.0;
  /// Insertion-based gap search for the rescheduled frontier.
  bool insertion = true;
  /// scheduler_name() of the produced schedule.
  std::string label = "repair";
};

struct RepairResult {
  /// Full repaired schedule: re-run copies are primaries, every
  /// historical finished copy is kept as a duplicate (or stays primary
  /// when the task does not re-run).
  Schedule schedule;
  /// Tasks that had finished but whose results died with a processor
  /// and were scheduled again.
  std::vector<TaskId> reexecuted;
  /// The newly scheduled placements only (the re-run frontier).
  std::vector<Placement> new_placements;
  /// Nominal seconds of finished work invalidated by the crash.
  double lost_seconds = 0.0;
  /// Nominal seconds of all work scheduled by the repair pass.
  double reexec_seconds = 0.0;
  /// Makespan of the repaired schedule (includes history).
  double makespan = 0.0;
};

/// Reschedules the unfinished frontier after a crash. Throws
/// Error{Schedule} when no processor survives or the request is
/// malformed. Deterministic: same request => identical result.
RepairResult repair_schedule(const graph::TaskGraph& graph,
                             const Machine& machine,
                             const RepairRequest& request);

}  // namespace banger::sched
