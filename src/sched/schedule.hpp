// banger/sched/schedule.hpp
//
// The Gantt-chart data model (paper Fig. 3): which task copy runs on
// which processor over which time interval, plus derived metrics
// (makespan, speedup, efficiency, utilisation) and a feasibility
// validator that re-checks every precedence constraint under the machine
// communication model.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "machine/machine.hpp"

namespace banger::sched {

using graph::TaskGraph;
using graph::TaskId;
using machine::Machine;
using machine::ProcId;

/// One task copy on one processor. Duplication heuristics may place
/// several copies of the same task; exactly one is the primary copy.
struct Placement {
  TaskId task = graph::kNoTask;
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
  bool duplicate = false;

  [[nodiscard]] double length() const noexcept { return finish - start; }
};

/// A message implied by the schedule, retained for visualisation and for
/// seeding the discrete-event simulator.
struct Message {
  graph::EdgeId edge = 0;
  ProcId from = -1;
  ProcId to = -1;
  double send = 0.0;
  double arrive = 0.0;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int num_procs, std::string scheduler_name = {});

  [[nodiscard]] int num_procs() const noexcept { return num_procs_; }
  [[nodiscard]] const std::string& scheduler_name() const noexcept {
    return scheduler_name_;
  }

  /// Records a task copy. Throws Error{Schedule} on malformed intervals.
  void place(TaskId task, ProcId proc, double start, double finish,
             bool duplicate = false);
  void add_message(Message m) { messages_.push_back(m); }

  [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
    return placements_;
  }
  [[nodiscard]] const std::vector<Message>& messages() const noexcept {
    return messages_;
  }

  /// Primary placement of a task; nullopt if the task was never placed.
  [[nodiscard]] std::optional<Placement> placement_of(TaskId task) const;
  /// All copies of a task (primary first).
  [[nodiscard]] std::vector<Placement> copies_of(TaskId task) const;

  /// Placements on one processor, sorted by start time.
  [[nodiscard]] std::vector<Placement> lane(ProcId proc) const;

  /// All lanes at once (index = processor), each in a fully
  /// deterministic order: by start, then finish, task, and duplicate
  /// flag, so ties between zero-length placements never reorder between
  /// runs. Executors that turn lanes into persistent pipeline stages
  /// rely on this stability.
  [[nodiscard]] std::vector<std::vector<Placement>> lanes() const;

  /// Latest finish over all placements (0 for an empty schedule).
  [[nodiscard]] double makespan() const noexcept;
  /// Busy time on a processor.
  [[nodiscard]] double busy(ProcId proc) const noexcept;
  /// Mean busy fraction = sum busy / (P * makespan).
  [[nodiscard]] double utilization() const noexcept;
  /// Number of processors that actually run something.
  [[nodiscard]] int procs_used() const noexcept;
  /// Total number of placements that are duplicates.
  [[nodiscard]] int num_duplicates() const noexcept;

  /// Full feasibility check against the graph and machine:
  ///   - every task has exactly one primary copy;
  ///   - no two copies overlap on the same processor;
  ///   - for every edge (u,v) and every copy of v, some copy of u
  ///     finishes early enough that its data arrives (comm model applied)
  ///     by v's start.
  /// Throws Error{Schedule} describing the first violation.
  void validate(const TaskGraph& graph, const Machine& machine,
                double tolerance = 1e-9) const;

 private:
  int num_procs_ = 0;
  std::string scheduler_name_;
  std::vector<Placement> placements_;
  std::vector<Message> messages_;
};

/// Speedup/efficiency summary of a schedule relative to the serial time
/// of the same graph on one (nominal-speed) processor of the machine.
struct ScheduleMetrics {
  double makespan = 0.0;
  double serial_time = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;   ///< speedup / processors
  double utilization = 0.0;
  int procs = 0;
  int procs_used = 0;
  int duplicates = 0;
};

ScheduleMetrics compute_metrics(const Schedule& schedule,
                                const TaskGraph& graph,
                                const Machine& machine);

}  // namespace banger::sched
