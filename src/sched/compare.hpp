// banger/sched/compare.hpp
//
// Batch scheduler bake-off: run several heuristics over the same
// (graph, machine) pair — concurrently when asked — and return their
// validated schedules plus metrics. The result vector follows the
// input name order and is bit-identical for every worker count, so
// `banger compare --jobs N` differs from `--jobs 1` only in wall-clock
// time.
#pragma once

#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace banger::sched {

struct CompareEntry {
  std::string scheduler;
  Schedule schedule;
  ScheduleMetrics metrics;
};

/// Runs each named heuristic (default: all of scheduler_names()) and
/// returns one validated entry per name, in input order. `jobs` is the
/// worker-thread count; <= 0 means util::default_jobs().
std::vector<CompareEntry> compare_schedulers(
    const TaskGraph& graph, const Machine& machine,
    const std::vector<std::string>& names, SchedulerOptions opts = {},
    int jobs = 0);

}  // namespace banger::sched
