#include "sched/optimal.hpp"

#include <algorithm>

#include "graph/analysis.hpp"
#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/error.hpp"

namespace banger::sched {

namespace {

/// Depth-first branch and bound. For a fixed (topological order,
/// assignment) pair, starting every task at
/// max(processor available, data ready) is dominant, so enumerating
/// those pairs with pruning is exact.
class BnB {
 public:
  BnB(const TaskGraph& graph, const Machine& machine,
      const OptimalScheduler::Limits& limits)
      : graph_(graph),
        machine_(machine),
        limits_(limits),
        n_(graph.num_tasks()),
        procs_(machine.num_procs()),
        finish_(n_, 0.0),
        proc_of_(n_, -1),
        remaining_preds_(n_, 0),
        avail_(static_cast<std::size_t>(procs_), 0.0) {
    // Communication-free levels for the critical-path lower bound.
    graph::CostModel cost;
    cost.task_time.reserve(n_);
    for (const graph::Task& t : graph.tasks()) {
      cost.task_time.push_back(machine.params().process_startup +
                               t.work / machine.params().processor_speed);
    }
    cost.edge_time.assign(graph.num_edges(), 0.0);
    level0_ = b_levels(graph, cost);

    for (TaskId t = 0; t < n_; ++t) {
      remaining_preds_[t] = graph.in_edges(t).size();
    }
    remaining_work_ = 0.0;
    for (const graph::Task& t : graph.tasks()) {
      remaining_work_ += machine.params().process_startup +
                         t.work / machine.params().processor_speed;
    }
    symmetric_ = machine.topology().kind() ==
                     machine::TopologyKind::FullyConnected &&
                 machine.homogeneous();
  }

  Schedule solve(std::uint64_t* nodes_out) {
    // Incumbent: the MH heuristic (already near-optimal on most inputs).
    best_schedule_ = MhScheduler().run(graph_, machine_);
    best_ = best_schedule_.makespan();

    decisions_.reserve(n_);
    dfs(0, 0.0);
    if (nodes_out != nullptr) *nodes_out = nodes_;
    return best_schedule_;
  }

 private:
  struct Decision {
    TaskId task;
    machine::ProcId proc;
    double start;
  };

  [[nodiscard]] double data_ready(TaskId t, machine::ProcId p) const {
    double ready = 0.0;
    for (graph::EdgeId e : graph_.in_edges(t)) {
      const graph::Edge& edge = graph_.edge(e);
      ready = std::max(ready,
                       finish_[edge.from] +
                           machine_.comm_time(edge.bytes, proc_of_[edge.from],
                                              p));
    }
    return ready;
  }

  /// Lower bound on the completion of any extension of the current
  /// partial schedule.
  [[nodiscard]] double lower_bound(double makespan_so_far) const {
    double lb = makespan_so_far;
    // Critical path: earliest conceivable start of each unscheduled task
    // (scheduled preds' finishes, communication optimistically free),
    // propagated topologically, plus its comm-free downward level.
    // A cheap variant: for tasks whose preds are all scheduled, the
    // bound is tight; deeper tasks inherit through level0_.
    for (TaskId t = 0; t < n_; ++t) {
      if (proc_of_[t] >= 0) continue;
      double est = 0.0;
      for (graph::EdgeId e : graph_.in_edges(t)) {
        const TaskId u = graph_.edge(e).from;
        if (proc_of_[u] >= 0) est = std::max(est, finish_[u]);
      }
      lb = std::max(lb, est + level0_[t]);
    }
    // Load: remaining work cannot beat perfect balance over current
    // availability.
    double avail_sum = 0.0;
    for (double a : avail_) avail_sum += a;
    lb = std::max(lb, (avail_sum + remaining_work_) /
                          static_cast<double>(procs_));
    return lb;
  }

  void dfs(std::size_t scheduled, double makespan_so_far) {
    if (++nodes_ > limits_.max_nodes) {
      fail(ErrorCode::Limit, "optimal scheduler node budget exhausted");
    }
    if (scheduled == n_) {
      if (makespan_so_far < best_ - 1e-12) {
        best_ = makespan_so_far;
        Schedule s(procs_, "optimal");
        for (const Decision& d : decisions_) {
          s.place(d.task, d.proc, d.start,
                  d.start + machine_.task_time(graph_.task(d.task).work,
                                               d.proc));
        }
        best_schedule_ = std::move(s);
      }
      return;
    }
    if (lower_bound(makespan_so_far) >= best_ - 1e-12) return;

    // Ready tasks, highest level first (find good incumbents early).
    std::vector<TaskId> ready;
    for (TaskId t = 0; t < n_; ++t) {
      if (proc_of_[t] < 0 && remaining_preds_[t] == 0) ready.push_back(t);
    }
    std::sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      return level0_[a] > level0_[b];
    });

    for (TaskId t : ready) {
      bool tried_empty = false;
      for (machine::ProcId p = 0; p < procs_; ++p) {
        const bool empty = avail_[static_cast<std::size_t>(p)] == 0.0;
        if (symmetric_ && empty) {
          // All empty processors of a symmetric machine are equivalent.
          if (tried_empty) continue;
          tried_empty = true;
        }
        const double start =
            std::max(avail_[static_cast<std::size_t>(p)], data_ready(t, p));
        const double dur = machine_.task_time(graph_.task(t).work, p);
        const double finish = start + dur;
        if (finish >= best_ - 1e-12 && finish > makespan_so_far) {
          // This branch cannot strictly improve; its extensions only grow.
          if (finish + 0 >= best_ - 1e-12) continue;
        }

        // apply
        const double saved_avail = avail_[static_cast<std::size_t>(p)];
        proc_of_[t] = p;
        finish_[t] = finish;
        avail_[static_cast<std::size_t>(p)] = finish;
        remaining_work_ -= dur;
        for (graph::EdgeId e : graph_.out_edges(t)) {
          --remaining_preds_[graph_.edge(e).to];
        }
        decisions_.push_back({t, p, start});

        dfs(scheduled + 1, std::max(makespan_so_far, finish));

        // undo
        decisions_.pop_back();
        for (graph::EdgeId e : graph_.out_edges(t)) {
          ++remaining_preds_[graph_.edge(e).to];
        }
        remaining_work_ += dur;
        avail_[static_cast<std::size_t>(p)] = saved_avail;
        finish_[t] = 0.0;
        proc_of_[t] = -1;
      }
    }
  }

  const TaskGraph& graph_;
  const Machine& machine_;
  OptimalScheduler::Limits limits_;
  std::size_t n_;
  machine::ProcId procs_;
  std::vector<double> level0_;
  std::vector<double> finish_;
  std::vector<machine::ProcId> proc_of_;
  std::vector<std::size_t> remaining_preds_;
  std::vector<double> avail_;
  std::vector<Decision> decisions_;
  double remaining_work_ = 0.0;
  bool symmetric_ = false;
  std::uint64_t nodes_ = 0;
  double best_ = 0.0;
  Schedule best_schedule_;
};

}  // namespace

Schedule OptimalScheduler::run(const TaskGraph& graph,
                               const Machine& machine) const {
  if (graph.num_tasks() > limits_.max_tasks) {
    fail(ErrorCode::Limit,
         "optimal scheduler limited to " + std::to_string(limits_.max_tasks) +
             " tasks, got " + std::to_string(graph.num_tasks()));
  }
  if (graph.num_tasks() == 0) {
    return Schedule(machine.num_procs(), "optimal");
  }
  BnB search(graph, machine, limits_);
  Schedule s = search.solve(&nodes_explored_);
  // The incumbent may have been the MH schedule; rebrand consistently.
  if (s.scheduler_name() != "optimal") {
    Schedule renamed(machine.num_procs(), "optimal");
    for (const Placement& p : s.placements()) {
      renamed.place(p.task, p.proc, p.start, p.finish, p.duplicate);
    }
    return renamed;
  }
  return s;
}

Schedule McpScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  // ALAP = critical path length - communication-aware b-level; smaller
  // ALAP (less slack) goes first.
  const auto bl = comm_b_levels(graph, machine);
  const double cp = graph.num_tasks() == 0
                        ? 0.0
                        : *std::max_element(bl.begin(), bl.end());
  std::vector<double> alap(graph.num_tasks());
  for (TaskId t = 0; t < graph.num_tasks(); ++t) alap[t] = cp - bl[t];

  BuildState state(graph, machine);
  std::vector<std::size_t> remaining(graph.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push_back(t);
  }
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end(),
                               [&](TaskId a, TaskId b) {
                                 if (alap[a] != alap[b])
                                   return alap[a] < alap[b];
                                 return a < b;
                               });
    const TaskId t = *it;
    ready.erase(it);
    const ProcChoice choice = best_eft(state, t, opts_.insertion);
    state.commit(t, choice.proc, choice.start, false);
    ++scheduled;
    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push_back(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(name());
}

}  // namespace banger::sched
