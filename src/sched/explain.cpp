#include "sched/explain.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace banger::sched {

std::vector<PlacementRationale> explain_schedule(const Schedule& schedule,
                                                 const TaskGraph& graph,
                                                 const Machine& machine) {
  std::vector<PlacementRationale> out;
  out.reserve(graph.num_tasks());

  // Order tasks by primary start time (schedule order).
  std::vector<Placement> primaries;
  for (const Placement& p : schedule.placements()) {
    if (!p.duplicate) primaries.push_back(p);
  }
  std::sort(primaries.begin(), primaries.end(),
            [](const Placement& a, const Placement& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });

  for (const Placement& p : primaries) {
    PlacementRationale r;
    r.task = p.task;
    r.chosen = p.proc;
    r.start = p.start;
    r.data_ready.assign(static_cast<std::size_t>(machine.num_procs()), 0.0);

    for (ProcId q = 0; q < machine.num_procs(); ++q) {
      double ready = 0.0;
      TaskId critical = graph::kNoTask;
      for (graph::EdgeId e : graph.in_edges(p.task)) {
        const graph::Edge& edge = graph.edge(e);
        double best = std::numeric_limits<double>::infinity();
        for (const Placement& copy : schedule.copies_of(edge.from)) {
          best = std::min(best, copy.finish + machine.comm_time(
                                                  edge.bytes, copy.proc, q));
        }
        if (best > ready) {
          ready = best;
          critical = edge.from;
        }
      }
      r.data_ready[static_cast<std::size_t>(q)] = ready;
      if (q == p.proc) r.critical_parent = critical;
    }

    const double chosen_ready =
        r.data_ready[static_cast<std::size_t>(p.proc)];
    // Previous finish on the processor before this task.
    double prev_finish = 0.0;
    for (const Placement& other : schedule.placements()) {
      if (other.proc == p.proc && other.finish <= p.start + 1e-12 &&
          !(other.task == p.task && !other.duplicate)) {
        prev_finish = std::max(prev_finish, other.finish);
      }
    }
    r.queue_wait = std::max(0.0, p.start - std::max(chosen_ready, prev_finish));
    const double best_ready =
        *std::min_element(r.data_ready.begin(), r.data_ready.end());
    r.arrival_penalty = chosen_ready - best_ready;
    out.push_back(std::move(r));
  }
  return out;
}

std::string explain_report(const Schedule& schedule, const TaskGraph& graph,
                           const Machine& machine, const std::string& only) {
  const auto rationales = explain_schedule(schedule, graph, machine);
  std::ostringstream out;
  util::Table table;
  table.set_header({"task", "proc", "start", "data ready", "best elsewhere",
                    "penalty", "critical parent"});
  for (const PlacementRationale& r : rationales) {
    const std::string& name = graph.task(r.task).name;
    if (!only.empty() && name != only) continue;
    const double chosen_ready =
        r.data_ready[static_cast<std::size_t>(r.chosen)];
    const double best =
        *std::min_element(r.data_ready.begin(), r.data_ready.end());
    table.add_row(
        {name, std::to_string(r.chosen), util::format_double(r.start, 5),
         util::format_double(chosen_ready, 5), util::format_double(best, 5),
         util::format_double(r.arrival_penalty, 4),
         r.critical_parent == graph::kNoTask
             ? "-"
             : graph.task(r.critical_parent).name});
  }
  if (table.num_rows() == 0 && !only.empty()) {
    fail(ErrorCode::Name, "no task named `" + only + "` in the schedule");
  }
  out << table.to_string();
  out << "penalty = how much later the data was complete on the chosen\n"
         "processor vs the best one; zero means the placement was\n"
         "data-optimal (occupancy decides the rest).\n";
  return out.str();
}

}  // namespace banger::sched
