#include "sched/compare.hpp"

#include "util/parallel.hpp"

namespace banger::sched {

std::vector<CompareEntry> compare_schedulers(
    const TaskGraph& graph, const Machine& machine,
    const std::vector<std::string>& names, SchedulerOptions opts, int jobs) {
  // Each heuristic is a pure function of (graph, machine, opts), so the
  // bake-off parallelises over names with no shared mutable state;
  // parallel_map keeps results in input order.
  return util::parallel_map(names, jobs, [&](const std::string& name) {
    const auto scheduler = make_scheduler(name, opts);
    CompareEntry entry;
    entry.scheduler = name;
    entry.schedule = scheduler->run(graph, machine);
    entry.schedule.validate(graph, machine);
    entry.metrics = compute_metrics(entry.schedule, graph, machine);
    return entry;
  });
}

}  // namespace banger::sched
