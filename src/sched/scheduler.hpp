// banger/sched/scheduler.hpp
//
// The scheduling heuristics at the heart of Banger's second principle:
// "machine-independent parallel programming can be made efficient by
// optimal scheduling heuristics which find the shortest elapsed execution
// time schedule for a specific parallel program, given a specific target
// machine."
//
// Implemented heuristics (all handle arbitrary topologies and hop-based
// communication delays):
//   mh        Mapping Heuristic of El-Rewini & Lewis (JPDC 1990): dynamic
//             ready list ordered by communication-aware b-level, earliest-
//             finish-time processor choice with slot insertion. Banger's
//             production scheduler.
//   etf       Earliest Task First (Hwang et al.): globally earliest
//             (task, processor) start among ready tasks.
//   hlfet     Highest Level First with Estimated Times: static level
//             priority, earliest-start processor.
//   dls       Dynamic Level Scheduling (Sih & Lee): maximises
//             SL(t) - EST(t,p) over ready pairs.
//   dsh       Duplication Scheduling Heuristic (Kruatrachue & Lewis):
//             copies critical parents into idle slots to erase
//             communication delays.
//   cluster   Grain packing: Sarkar-style edge-zeroing clustering, then
//             load-balanced mapping of clusters onto processors.
//   serial    Everything on processor 0 (the speedup baseline).
//   roundrobin / random  Placement baselines with feasible timing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace banger::sched {

struct SchedulerOptions {
  /// Allow filling idle gaps between already-placed tasks (insertion-
  /// based list scheduling) instead of only appending after the last one.
  bool insertion = true;
  /// Maximum ancestor chain the DSH heuristic will duplicate per task.
  int duplication_depth = 4;
  /// Seed for the `random` baseline.
  std::uint64_t seed = 1;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {}) : opts_(opts) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a feasible schedule of `graph` on `machine`. The result
  /// passes Schedule::validate for the same arguments.
  [[nodiscard]] virtual Schedule run(const TaskGraph& graph,
                                     const Machine& machine) const = 0;

 protected:
  SchedulerOptions opts_;
};

/// Factory by name ("mh", "etf", "hlfet", "dls", "dsh", "cluster",
/// "serial", "roundrobin", "random"). Throws Error{Name} on unknown names.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          SchedulerOptions opts = {});

/// All registered heuristic names, in canonical order.
std::vector<std::string> scheduler_names();

}  // namespace banger::sched
