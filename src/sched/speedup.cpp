#include "sched/speedup.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace banger::sched {

int SpeedupCurve::saturation_procs(double epsilon) const {
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].speedup - points[i - 1].speedup < epsilon) {
      return points[i - 1].procs;
    }
  }
  return points.empty() ? 0 : points.back().procs;
}

double SpeedupCurve::max_speedup() const {
  double best = 0.0;
  for (const auto& p : points) best = std::max(best, p.speedup);
  return best;
}

SpeedupCurve predict_speedup(const TaskGraph& graph,
                             const Scheduler& scheduler,
                             const MachineFactory& factory,
                             const std::vector<int>& sizes, int jobs) {
  struct SizeResult {
    SpeedupPoint point;
    std::string machine_name;
  };
  // Every size is an independent scheduling problem; parallel_map keeps
  // the points in requested-size order.
  const std::vector<SizeResult> results = util::parallel_map(
      sizes, jobs, [&](int procs) {
        const Machine machine = factory(procs);
        const Schedule schedule = scheduler.run(graph, machine);
        schedule.validate(graph, machine);
        const ScheduleMetrics m = compute_metrics(schedule, graph, machine);
        return SizeResult{{machine.num_procs(), m.makespan, m.speedup,
                           m.efficiency, m.procs_used},
                          machine.name()};
      });

  SpeedupCurve curve;
  curve.scheduler = scheduler.name();
  for (const SizeResult& r : results) {
    if (curve.machine_family.empty()) curve.machine_family = r.machine_name;
    curve.points.push_back(r.point);
  }
  return curve;
}

}  // namespace banger::sched
