#include "sched/scheduler.hpp"

#include "sched/heuristics.hpp"
#include "sched/anneal.hpp"
#include "sched/optimal.hpp"
#include "util/error.hpp"

namespace banger::sched {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          SchedulerOptions opts) {
  if (name == "mh") return std::make_unique<MhScheduler>(opts);
  if (name == "mcp") return std::make_unique<McpScheduler>(opts);
  if (name == "etf") return std::make_unique<EtfScheduler>(opts);
  if (name == "hlfet") return std::make_unique<HlfetScheduler>(opts);
  if (name == "dls") return std::make_unique<DlsScheduler>(opts);
  if (name == "dsh") return std::make_unique<DshScheduler>(opts);
  if (name == "cluster") return std::make_unique<ClusterScheduler>(opts);
  if (name == "serial") return std::make_unique<SerialScheduler>(opts);
  if (name == "roundrobin") return std::make_unique<RoundRobinScheduler>(opts);
  if (name == "random") return std::make_unique<RandomScheduler>(opts);
  // Iterative improvement; resolvable by name but excluded from the
  // default list (it costs ~1000x a list scheduler's time).
  if (name == "anneal") {
    AnnealOptions anneal;
    anneal.seed = opts.seed;
    return std::make_unique<AnnealScheduler>(anneal, opts);
  }
  // Exhaustive search; resolvable by name but excluded from
  // scheduler_names() because it only accepts small instances.
  if (name == "optimal")
    return std::make_unique<OptimalScheduler>(OptimalScheduler::Limits{}, opts);
  fail(ErrorCode::Name, "unknown scheduler `" + name + "`");
}

std::vector<std::string> scheduler_names() {
  return {"mh",      "mcp",    "etf",        "hlfet",  "dls",
          "dsh",     "cluster", "serial",    "roundrobin", "random"};
}

}  // namespace banger::sched
