// banger/sched/speedup.hpp
//
// Speedup prediction (the right-hand chart of the paper's Fig. 3):
// schedule the same PITL design onto a family of machines of growing
// size and report makespan / speedup / efficiency per size. This is
// Banger's headline "instant feedback" artifact — the user sees how far
// their design scales before any code exists.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace banger::sched {

struct SpeedupPoint {
  int procs = 0;
  double makespan = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  int procs_used = 0;
};

struct SpeedupCurve {
  std::string scheduler;
  std::string machine_family;
  std::vector<SpeedupPoint> points;

  /// Smallest processor count beyond which speedup improves by less than
  /// `epsilon` (the knee); returns the last size if it never flattens.
  [[nodiscard]] int saturation_procs(double epsilon = 0.05) const;
  [[nodiscard]] double max_speedup() const;
};

/// Builds one machine of the family per requested size.
using MachineFactory = std::function<Machine(int procs)>;

/// Runs `scheduler` over every size, validating each schedule. The
/// speedup baseline is the serial time on one processor of the same
/// family (see compute_metrics). Sizes are scheduled concurrently when
/// `jobs` > 1 (<= 0 means util::default_jobs()); the curve is identical
/// for every worker count. The factory must be safe to call from
/// multiple threads.
SpeedupCurve predict_speedup(const TaskGraph& graph,
                             const Scheduler& scheduler,
                             const MachineFactory& factory,
                             const std::vector<int>& sizes, int jobs = 1);

}  // namespace banger::sched
