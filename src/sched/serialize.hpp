// banger/sched/serialize.hpp
//
// Text serialisation of schedules (`.sched`): lets a user save the
// result of the scheduling step, exchange it, or hand-edit a placement
// and re-validate — the environment treats the schedule as a first-class
// artifact, not just a transient display.
//
//   schedule mh procs=4
//   place fan1 proc=0 start=0 finish=2
//   place upd2 proc=0 start=2 finish=6 dup
//   ...
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace banger::sched {

/// Renders a schedule; task ids become names via the graph.
std::string to_text(const Schedule& schedule, const TaskGraph& graph);

/// Parses a `.sched` document against the graph it was made for (names
/// must resolve). Throws Error{Parse} / Error{Name}.
Schedule parse_schedule(std::string_view text, const TaskGraph& graph);

/// File helpers; throw Error{Io}.
void save_schedule(const Schedule& schedule, const TaskGraph& graph,
                   const std::string& path);
Schedule load_schedule(const std::string& path, const TaskGraph& graph);

}  // namespace banger::sched
