// Baseline strategies: serial, round-robin, random. They fix the
// assignment up front and rely on the constrained list scheduler for
// feasible timing, which is exactly how a naive user would place tasks
// by hand — the comparison Banger's automatic scheduling argues against.
#include <numeric>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/rng.hpp"

namespace banger::sched {

Schedule SerialScheduler::run(const TaskGraph& graph,
                              const Machine& machine) const {
  std::vector<ProcId> assignment(graph.num_tasks(), 0);
  return schedule_fixed_assignment(graph, machine, assignment,
                                   opts_.insertion, name());
}

Schedule RoundRobinScheduler::run(const TaskGraph& graph,
                                  const Machine& machine) const {
  std::vector<ProcId> assignment(graph.num_tasks(), 0);
  const auto topo = graph.topo_order();
  ProcId next = 0;
  for (TaskId t : topo) {
    assignment[t] = next;
    next = static_cast<ProcId>((next + 1) % machine.num_procs());
  }
  return schedule_fixed_assignment(graph, machine, assignment,
                                   opts_.insertion, name());
}

Schedule RandomScheduler::run(const TaskGraph& graph,
                              const Machine& machine) const {
  util::Rng rng(opts_.seed);
  std::vector<ProcId> assignment(graph.num_tasks(), 0);
  for (auto& p : assignment) {
    p = static_cast<ProcId>(
        rng.next_below(static_cast<std::uint64_t>(machine.num_procs())));
  }
  return schedule_fixed_assignment(graph, machine, assignment,
                                   opts_.insertion, name());
}

}  // namespace banger::sched
