// banger/sched/list_core.hpp
//
// Shared machinery for every list-scheduling heuristic: processor
// timelines with insertion-based gap search, data-ready-time computation
// over already-placed task copies, and the constrained scheduler that
// turns a fixed task->processor assignment into a feasible timed
// schedule. Exposed as a real header (not an anonymous namespace) so the
// tests can exercise the machinery directly.
//
// Performance notes (the scheduler hot path):
//   - BuildState memoises per-(task, processor) data-ready times and
//     invalidates a task's row only when a copy of one of its
//     predecessors is committed, so ETF/DLS no longer re-walk every
//     in-edge of every ready task each round.
//   - Change epochs (per task-row and per timeline lane) let callers
//     cache derived values such as earliest-start times and refresh
//     exactly the stale entries.
//   - Timeline lanes carry a gap index (multiset of free-gap lengths)
//     plus a binary search over interval end times, so insertion-mode
//     earliest_slot no longer scans the full lane.
//   - Communication costs are answered from a precomputed hop matrix
//     and per-edge wire times via the machine's comm_time_hops formula.
// Every fast path reproduces the exact arithmetic (and tie-breaking) of
// the straightforward implementation: schedules are byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "sched/scheduler.hpp"

namespace banger::sched {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Occupied intervals per processor, kept sorted by start time.
class Timeline {
 public:
  explicit Timeline(int num_procs);

  /// Earliest time >= `ready` at which an uninterrupted slot of length
  /// `duration` exists on `proc`. With `insertion` false, only the region
  /// after the last occupied interval is considered.
  ///
  /// Inlined fast paths cover the common cases — append-only mode, an
  /// empty lane, and "no free gap in the lane can hold `duration`" (a
  /// gap of length g admits a task iff duration <= g + 1e-12, so a
  /// single cached max-gap answers that test); only lanes with a
  /// candidate gap fall through to the interval scan.
  [[nodiscard]] double earliest_slot(ProcId proc, double ready,
                                     double duration, bool insertion) const {
    const auto& lane = lanes_[static_cast<std::size_t>(proc)];
    if (!insertion) {
      const double tail = lane.empty() ? 0.0 : lane.back().second;
      return std::max(ready, tail);
    }
    if (lane.empty()) return std::max(0.0, ready);
    if (duration > max_gap_[static_cast<std::size_t>(proc)] + 1e-12) {
      return std::max(std::max(0.0, ready),
                      tails_[static_cast<std::size_t>(proc)]);
    }
    return gap_scan(proc, ready, duration);
  }

  /// Marks [start, start+duration) occupied on `proc`. The caller must
  /// have obtained `start` from earliest_slot (overlap is a logic error).
  void occupy(ProcId proc, double start, double duration);

  /// End of the last occupied interval (0 when idle).
  [[nodiscard]] double avail(ProcId proc) const;

  [[nodiscard]] int num_procs() const noexcept {
    return static_cast<int>(lanes_.size());
  }

  [[nodiscard]] const std::vector<std::pair<double, double>>& lane(
      ProcId proc) const;

  /// Monotonic change counter for one lane; bumped by every occupy().
  /// Lets callers detect exactly which cached per-lane results went
  /// stale.
  [[nodiscard]] std::uint64_t lane_epoch(ProcId proc) const {
    return lane_epochs_[static_cast<std::size_t>(proc)];
  }

  /// Bounds [start, finish) of the interval most recently occupied on
  /// `proc`. Meaningful only when lane_epoch(proc) > 0. In insertion
  /// mode a cached earliest_slot answer is unaffected by that single
  /// occupation when the slot ends at or before its start (the scan's
  /// prefix and first-fit gap are unchanged) or starts at or after its
  /// finish (the interval only shrinks gaps that already rejected every
  /// earlier fit, and contributes at most `finish` to the running
  /// candidate) — which lets callers skip recomputation after a commit.
  [[nodiscard]] double last_occupy_start(ProcId proc) const {
    return last_starts_[static_cast<std::size_t>(proc)];
  }
  [[nodiscard]] double last_occupy_finish(ProcId proc) const {
    return last_finishes_[static_cast<std::size_t>(proc)];
  }

 private:
  /// Left-to-right scan over the lane's intervals, entered only when
  /// the gap index says some gap could hold the slot.
  [[nodiscard]] double gap_scan(ProcId proc, double ready,
                                double duration) const;

  std::vector<std::vector<std::pair<double, double>>> lanes_;
  /// Per lane: lengths of all finite free gaps (before the first
  /// interval and between consecutive intervals). The region after the
  /// last interval is unbounded and deliberately not indexed. Used for
  /// an early "nothing fits, append at the tail" answer.
  std::vector<std::multiset<double>> gaps_;
  /// Per lane: largest entry of gaps_ (-inf when it is empty), kept in
  /// sync by occupy() so earliest_slot's fast path avoids tree walks.
  std::vector<double> max_gap_;
  /// Per lane: maximum finish over all occupied intervals (0 when
  /// idle) — the value the full left-to-right scan's candidate reaches
  /// when no gap admits the slot.
  std::vector<double> tails_;
  std::vector<std::uint64_t> lane_epochs_;
  /// Per lane: bounds of the most recent occupation (see
  /// last_occupy_start / last_occupy_finish).
  std::vector<double> last_starts_;
  std::vector<double> last_finishes_;
};

/// One placed copy of a task during scheduling.
struct Copy {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Incremental schedule state shared by the heuristics: the timeline plus
/// all copies placed so far, with data-ready-time queries.
class BuildState {
 public:
  BuildState(const TaskGraph& graph, const Machine& machine);

  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] Timeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }

  [[nodiscard]] bool placed(TaskId t) const {
    return !copies_[t].empty();
  }
  [[nodiscard]] const std::vector<Copy>& copies(TaskId t) const {
    return copies_[t];
  }

  /// Earliest time all of t's inputs can be present on `proc`, given the
  /// currently placed copies of its predecessors (which must all be
  /// placed). Optionally reports which predecessor constrains the result
  /// (the "critical parent") and that parent's best-arrival time.
  ///
  /// Answers come from a per-(task, proc) memo that is invalidated when
  /// a copy of one of t's predecessors is committed — repeated queries
  /// between commits are O(1).
  [[nodiscard]] double data_ready(TaskId t, ProcId proc,
                                  TaskId* critical_parent = nullptr) const;

  /// Monotonic counter bumped every time a copy of one of t's
  /// predecessors is committed (i.e. whenever data_ready(t, *) may have
  /// changed). Starts at 0.
  [[nodiscard]] std::uint64_t pred_epoch(TaskId t) const {
    return pred_epochs_[t];
  }

  /// data_ready for a single processor, without filling the full memo
  /// row — identical arithmetic. The fixed-assignment scheduler uses
  /// this (each task only ever starts on its assigned processor, so
  /// memoising all lanes would be wasted work).
  [[nodiscard]] double data_ready_one(TaskId t, ProcId proc) const;

  /// Validates t's memo row and returns its per-processor data-ready
  /// times. The pointer stays valid (and current) until a copy of one
  /// of t's predecessors commits.
  [[nodiscard]] const double* data_ready_row(TaskId t) const {
    if (!drt_valid_[t]) (void)data_ready(t, 0);
    return &drt_cache_[static_cast<std::size_t>(t) *
                       static_cast<std::size_t>(num_procs_)];
  }

  /// Arrival time on `proc` of the edge's data from the best copy of the
  /// producer; also reports which copy wins.
  [[nodiscard]] double edge_arrival(graph::EdgeId e, ProcId proc,
                                    const Copy** winner = nullptr) const;

  /// Places a copy and occupies the timeline.
  void commit(TaskId t, ProcId proc, double start, bool duplicate);

  /// Places a copy with an explicit finish time instead of recomputing
  /// the duration from the machine model. The repair scheduler uses this
  /// to pre-commit copies that already executed (possibly at faulted,
  /// slowdown-stretched speed) before scheduling the remaining frontier.
  void commit_fixed(TaskId t, ProcId proc, double start, double finish,
                    bool duplicate);

  /// Finalises: emits the Schedule (placements + inferred messages).
  [[nodiscard]] Schedule finish(const std::string& scheduler_name) const;

  /// Task duration on a processor.
  [[nodiscard]] double duration(TaskId t, ProcId proc) const {
    return machine_.task_time(graph_.task(t).work, proc);
  }

  /// Communication time for `bytes` between two processors under the
  /// machine model, answered from the precomputed hop matrix (identical
  /// arithmetic to machine().comm_time).
  [[nodiscard]] double comm_time(double bytes, ProcId from, ProcId to) const {
    const int h = hops(from, to);
    return h <= 0 ? 0.0 : machine_.comm_time_hops(bytes, h);
  }

  /// Communication time of graph edge `e` between two processors: the
  /// hop count comes from the precomputed matrix and the wire time
  /// (bytes / bandwidth) from a per-edge table, feeding the exact
  /// formula comm_time_hops evaluates.
  [[nodiscard]] double edge_comm_time(graph::EdgeId e, ProcId from,
                                      ProcId to) const {
    const int h = hops(from, to);
    if (h <= 0) return 0.0;
    if (store_and_forward_) {
      return h * (msg_startup_ + edge_wire_[e]);
    }
    return msg_startup_ + edge_wire_[e] + (h - 1) * per_hop_latency_;
  }

 private:
  [[nodiscard]] int hops(ProcId from, ProcId to) const {
    return hop_matrix_[static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(num_procs_) +
                       static_cast<std::size_t>(to)];
  }

  void invalidate_successors(TaskId t);

  const TaskGraph& graph_;
  const Machine& machine_;
  Timeline timeline_;
  int num_procs_ = 0;
  std::vector<std::vector<Copy>> copies_;
  std::vector<Placement> placements_;  // in commit order

  // Hoisted communication model: hop matrix, per-edge wire times, and
  // the scalar parameters of the routing formula.
  std::vector<int> hop_matrix_;     // row-major num_procs x num_procs
  std::vector<double> edge_wire_;   // bytes / bandwidth per edge
  double msg_startup_ = 0.0;
  double per_hop_latency_ = 0.0;
  bool store_and_forward_ = true;

  // Data-ready memo: row t holds data_ready(t, p) for every p, plus the
  // critical parent per processor; recomputed lazily when stale.
  mutable std::vector<double> drt_cache_;          // [t * num_procs + p]
  mutable std::vector<TaskId> drt_critical_;       // [t * num_procs + p]
  mutable std::vector<std::uint8_t> drt_valid_;    // per task row
  std::vector<std::uint64_t> pred_epochs_;         // per task
};

/// Computes the earliest-finish-time processor for task `t` over all
/// processors. Returns the chosen processor; fills start/finish.
struct ProcChoice {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
};
ProcChoice best_eft(const BuildState& state, TaskId t, bool insertion);

/// Ready list keyed by a static per-task priority: pops the highest
/// priority, ties broken toward the smallest task id — the same total
/// order the heuristics' original linear scans used, now O(log n) per
/// operation. The priority vector must outlive the queue and stay
/// constant while tasks are enqueued.
class ReadyQueue {
 public:
  explicit ReadyQueue(const std::vector<double>& priority)
      : priority_(priority) {}

  void push(TaskId t);
  /// Removes and returns the best task. Precondition: !empty().
  TaskId pop();
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  [[nodiscard]] bool before(TaskId a, TaskId b) const {
    if (priority_[a] != priority_[b]) return priority_[a] > priority_[b];
    return a < b;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  const std::vector<double>& priority_;
  std::vector<TaskId> heap_;  // binary max-heap under before()
};

/// Builds a feasible timed schedule from a fixed task->processor map,
/// releasing tasks in communication-aware b-level order. Used by the
/// cluster/round-robin/random/serial strategies.
Schedule schedule_fixed_assignment(const TaskGraph& graph,
                                   const Machine& machine,
                                   const std::vector<ProcId>& assignment,
                                   bool insertion,
                                   const std::string& scheduler_name);

/// Communication-aware b-levels under this machine's cost model with
/// one-hop communication estimates (the standard static priority).
std::vector<double> comm_b_levels(const TaskGraph& graph,
                                  const Machine& machine);
/// Communication-free static levels (SL).
std::vector<double> comp_levels(const TaskGraph& graph,
                                const Machine& machine);

}  // namespace banger::sched
