// banger/sched/list_core.hpp
//
// Shared machinery for every list-scheduling heuristic: processor
// timelines with insertion-based gap search, data-ready-time computation
// over already-placed task copies, and the constrained scheduler that
// turns a fixed task->processor assignment into a feasible timed
// schedule. Exposed as a real header (not an anonymous namespace) so the
// tests can exercise the machinery directly.
#pragma once

#include <limits>
#include <vector>

#include "sched/scheduler.hpp"

namespace banger::sched {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Occupied intervals per processor, kept sorted by start time.
class Timeline {
 public:
  explicit Timeline(int num_procs);

  /// Earliest time >= `ready` at which an uninterrupted slot of length
  /// `duration` exists on `proc`. With `insertion` false, only the region
  /// after the last occupied interval is considered.
  [[nodiscard]] double earliest_slot(ProcId proc, double ready,
                                     double duration, bool insertion) const;

  /// Marks [start, start+duration) occupied on `proc`. The caller must
  /// have obtained `start` from earliest_slot (overlap is a logic error).
  void occupy(ProcId proc, double start, double duration);

  /// End of the last occupied interval (0 when idle).
  [[nodiscard]] double avail(ProcId proc) const;

  [[nodiscard]] int num_procs() const noexcept {
    return static_cast<int>(lanes_.size());
  }

  [[nodiscard]] const std::vector<std::pair<double, double>>& lane(
      ProcId proc) const;

 private:
  std::vector<std::vector<std::pair<double, double>>> lanes_;
};

/// One placed copy of a task during scheduling.
struct Copy {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Incremental schedule state shared by the heuristics: the timeline plus
/// all copies placed so far, with data-ready-time queries.
class BuildState {
 public:
  BuildState(const TaskGraph& graph, const Machine& machine);

  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] Timeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }

  [[nodiscard]] bool placed(TaskId t) const {
    return !copies_[t].empty();
  }
  [[nodiscard]] const std::vector<Copy>& copies(TaskId t) const {
    return copies_[t];
  }

  /// Earliest time all of t's inputs can be present on `proc`, given the
  /// currently placed copies of its predecessors (which must all be
  /// placed). Optionally reports which predecessor constrains the result
  /// (the "critical parent") and that parent's best-arrival time.
  [[nodiscard]] double data_ready(TaskId t, ProcId proc,
                                  TaskId* critical_parent = nullptr) const;

  /// Arrival time on `proc` of the edge's data from the best copy of the
  /// producer; also reports which copy wins.
  [[nodiscard]] double edge_arrival(graph::EdgeId e, ProcId proc,
                                    const Copy** winner = nullptr) const;

  /// Places a copy and occupies the timeline.
  void commit(TaskId t, ProcId proc, double start, bool duplicate);

  /// Places a copy with an explicit finish time instead of recomputing
  /// the duration from the machine model. The repair scheduler uses this
  /// to pre-commit copies that already executed (possibly at faulted,
  /// slowdown-stretched speed) before scheduling the remaining frontier.
  void commit_fixed(TaskId t, ProcId proc, double start, double finish,
                    bool duplicate);

  /// Finalises: emits the Schedule (placements + inferred messages).
  [[nodiscard]] Schedule finish(const std::string& scheduler_name) const;

  /// Task duration on a processor.
  [[nodiscard]] double duration(TaskId t, ProcId proc) const {
    return machine_.task_time(graph_.task(t).work, proc);
  }

 private:
  const TaskGraph& graph_;
  const Machine& machine_;
  Timeline timeline_;
  std::vector<std::vector<Copy>> copies_;
  std::vector<Placement> placements_;  // in commit order
};

/// Computes the earliest-finish-time processor for task `t` over all
/// processors. Returns the chosen processor; fills start/finish.
struct ProcChoice {
  ProcId proc = -1;
  double start = 0.0;
  double finish = 0.0;
};
ProcChoice best_eft(const BuildState& state, TaskId t, bool insertion);

/// Builds a feasible timed schedule from a fixed task->processor map,
/// releasing tasks in communication-aware b-level order. Used by the
/// cluster/round-robin/random/serial strategies.
Schedule schedule_fixed_assignment(const TaskGraph& graph,
                                   const Machine& machine,
                                   const std::vector<ProcId>& assignment,
                                   bool insertion,
                                   const std::string& scheduler_name);

/// Communication-aware b-levels under this machine's cost model with
/// one-hop communication estimates (the standard static priority).
std::vector<double> comm_b_levels(const TaskGraph& graph,
                                  const Machine& machine);
/// Communication-free static levels (SL).
std::vector<double> comp_levels(const TaskGraph& graph,
                                const Machine& machine);

}  // namespace banger::sched
