// List-scheduling heuristics: MH, ETF, HLFET, DLS. All share the
// BuildState machinery; they differ only in how the next (task,
// processor) pair is chosen.
//
// Hot-path structure: MH and HLFET order the ready list with a static
// priority, so they pop from an O(log n) ReadyQueue. ETF and DLS rank
// every (ready task, processor) pair by a dynamic key, so they keep a
// per-(task, proc) cache of earliest-start times and refresh only the
// entries whose data-ready row or timeline lane changed since the last
// round (BuildState::pred_epoch / Timeline::lane_epoch). The comparison
// scan itself replays the original loop order, so choices — and the
// resulting schedules — are byte-identical to the straightforward
// implementation.
#include <algorithm>
#include <optional>

#include "obs/trace.hpp"
#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/error.hpp"

namespace banger::sched {

namespace {

/// Observability for one scheduler run. The recorder pointer is hoisted
/// out of the pick loop (one relaxed atomic load per run); every use is
/// behind a null check so the disabled path costs one predictable
/// branch per round. Counters live in Domain::Logical (x axis = round
/// index) so traces stay deterministic for any thread count.
struct DriveObs {
  obs::TraceRecorder* rec = obs::current();
  std::size_t rounds = 0;

  void round(const std::string& name, std::size_t ready_depth) {
    if (rec) {
      rec->counter(obs::Domain::Logical, obs::kTrackScheduler, 0,
                   static_cast<double>(rounds), "sched." + name + ".ready",
                   static_cast<double>(ready_depth));
    }
    ++rounds;
  }

  void done(const std::string& name, std::size_t scheduled) {
    if (!rec) return;
    rec->span(obs::Domain::Logical, obs::kTrackScheduler, 0, 0.0,
              static_cast<double>(rounds), "sched." + name, "sched",
              "\"tasks\": " + std::to_string(scheduled));
    rec->bump("sched." + name + ".runs");
    rec->bump("sched." + name + ".rounds", static_cast<double>(rounds));
    rec->bump("sched." + name + ".tasks", static_cast<double>(scheduled));
  }
};

/// What a pick step decided: which ready-list entry to schedule and —
/// for heuristics whose pick already evaluated processors — the
/// processor choice, so place() does not re-derive it. (This replaces
/// the old shared_ptr<Choice> mutable-cache hack: pick and place now
/// communicate through the driver.)
struct PickDecision {
  std::size_t index = 0;
  std::optional<ProcChoice> choice;
};

/// Ready-list driver for the dynamic-key heuristics (ETF, DLS):
/// repeatedly asks `pick` to choose among ready tasks, then asks
/// `place` for the processor decision unless pick already made it.
template <typename Pick, typename Place>
Schedule drive(const TaskGraph& graph, const Machine& machine,
               const std::string& name, Pick&& pick, Place&& place) {
  BuildState state(graph, machine);
  std::vector<std::size_t> remaining(graph.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push_back(t);
  }

  DriveObs dobs;
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    dobs.round(name, ready.size());
    const PickDecision decision = pick(state, ready);
    const TaskId t = ready[decision.index];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(decision.index));

    const ProcChoice choice =
        decision.choice ? *decision.choice : place(state, t);
    state.commit(t, choice.proc, choice.start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push_back(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  dobs.done(name, scheduled);
  return state.finish(name);
}

/// Ready-queue driver for the static-priority heuristics (MH, HLFET):
/// pop the best task in O(log n), then ask `place` for the processor.
template <typename Place>
Schedule drive_static(const TaskGraph& graph, const Machine& machine,
                      const std::string& name,
                      const std::vector<double>& priority, Place&& place) {
  BuildState state(graph, machine);
  std::vector<std::size_t> remaining(graph.num_tasks());
  ReadyQueue ready(priority);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push(t);
  }

  DriveObs dobs;
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    dobs.round(name, ready.size());
    const TaskId t = ready.pop();
    const ProcChoice choice = place(state, t);
    state.commit(t, choice.proc, choice.start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  dobs.done(name, scheduled);
  return state.finish(name);
}

/// Incrementally maintained earliest-start table for the pair-ranking
/// heuristics: start(t, p) = earliest_slot(p, data_ready(t, p), dur).
/// Each pick round opens with begin_round(), refreshes and scans one
/// row at a time via refresh_task(), and closes with end_round(). A
/// commit changes exactly one timeline lane, so the steady-state round
/// refreshes at most one slot per ready task; rows whose predecessor
/// set gained a copy (and tasks newly ready) recompute in full.
class StartCache {
 public:
  StartCache(const BuildState& state, bool insertion)
      : state_(state),
        insertion_(insertion),
        num_procs_(state.machine().num_procs()),
        start_(state.graph().num_tasks() *
                   static_cast<std::size_t>(num_procs_),
               0.0),
        dur_(start_.size(), 0.0),
        pred_seen_(state.graph().num_tasks(),
                   std::numeric_limits<std::uint64_t>::max()),
        lane_seen_(static_cast<std::size_t>(num_procs_),
                   std::numeric_limits<std::uint64_t>::max()) {}

  /// Opens a pick round: records which timeline lanes changed since the
  /// previous round (one, after a commit). For a lane that gained
  /// exactly one interval in insertion mode, a cached slot ending at or
  /// before that interval's start keeps its value (the scan's prefix
  /// and its first-fit gap are unchanged; an earlier fit would
  /// contradict the cached answer), as does one starting at or after
  /// its finish (the interval only shrinks gaps that already rejected
  /// every earlier fit, and contributes at most its finish — which is
  /// below such a slot — to the scan's running candidate). Those
  /// entries skip recomputation on a compare each.
  void begin_round() {
    const Timeline& timeline = state_.timeline();
    changed_.clear();
    for (ProcId p = 0; p < num_procs_; ++p) {
      const std::uint64_t epoch = timeline.lane_epoch(p);
      if (lane_seen_[static_cast<std::size_t>(p)] == epoch) continue;
      ChangedLane lane{p, -kInf, kInf};
      if (insertion_ && epoch > 0 &&
          epoch == lane_seen_[static_cast<std::size_t>(p)] + 1) {
        lane.skip_before = timeline.last_occupy_start(p);
        lane.skip_after = timeline.last_occupy_finish(p);
      }
      changed_.push_back(lane);
    }
  }

  /// Cache-effectiveness tally for the observability layer: how many
  /// rows recomputed in full vs stayed hot, and how many individual
  /// slots the quick-rejects saved. Pure bookkeeping — never feeds back
  /// into scheduling decisions.
  struct Stats {
    std::uint64_t full_rows = 0;         ///< rows recomputed end to end
    std::uint64_t rows_hot = 0;          ///< rows served from cache
    std::uint64_t slots_recomputed = 0;  ///< earliest_slot() calls
    std::uint64_t slots_skipped = 0;     ///< slots held by a skip proof
  };

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Brings t's row up to date for this round and returns its
  /// per-processor earliest starts. Callers scan the row immediately,
  /// while it is hot.
  const double* refresh_task(TaskId t) {
    const Timeline& timeline = state_.timeline();
    const std::size_t row =
        static_cast<std::size_t>(t) * static_cast<std::size_t>(num_procs_);
    if (pred_seen_[t] != state_.pred_epoch(t)) {
      ++stats_.full_rows;
      stats_.slots_recomputed += static_cast<std::uint64_t>(num_procs_);
      const double* ready_row = state_.data_ready_row(t);
      for (ProcId q = 0; q < num_procs_; ++q) {
        const std::size_t s = row + static_cast<std::size_t>(q);
        dur_[s] = state_.duration(t, q);  // run-invariant, computed once
        start_[s] =
            timeline.earliest_slot(q, ready_row[q], dur_[s], insertion_);
      }
      pred_seen_[t] = state_.pred_epoch(t);
    } else {
      ++stats_.rows_hot;
      if (!changed_.empty()) {
        const double* ready_row = state_.data_ready_row(t);
        for (const ChangedLane& lane : changed_) {
          const std::size_t s = row + static_cast<std::size_t>(lane.proc);
          if (start_[s] + dur_[s] <= lane.skip_before + 1e-12 ||
              start_[s] >= lane.skip_after) {
            ++stats_.slots_skipped;
            continue;
          }
          ++stats_.slots_recomputed;
          start_[s] = timeline.earliest_slot(lane.proc, ready_row[lane.proc],
                                             dur_[s], insertion_);
        }
      }
    }
    return &start_[row];
  }

  /// Closes the round once every ready task was refreshed.
  void end_round() {
    for (const ChangedLane& lane : changed_) {
      lane_seen_[static_cast<std::size_t>(lane.proc)] =
          state_.timeline().lane_epoch(lane.proc);
    }
  }

 private:
  struct ChangedLane {
    ProcId proc;
    double skip_before;  // cached slots ending here or earlier hold
    double skip_after;   // cached slots starting here or later hold
  };

  const BuildState& state_;
  bool insertion_;
  int num_procs_;
  std::vector<double> start_;
  std::vector<double> dur_;               // durations, filled with rows
  std::vector<std::uint64_t> pred_seen_;  // per task
  std::vector<std::uint64_t> lane_seen_;  // per lane, at last refresh
  std::vector<ChangedLane> changed_;      // lanes stale this round
  Stats stats_;
};

/// Publishes a run's StartCache hit/miss tally as `sched.<name>.cache.*`
/// metrics on the ambient recorder (no-op when tracing is off).
void publish_cache_stats(const std::string& name,
                         const std::optional<StartCache>& cache) {
  obs::TraceRecorder* rec = obs::current();
  if (!rec || !cache) return;
  const StartCache::Stats& s = cache->stats();
  const std::string prefix = "sched." + name + ".cache.";
  rec->bump(prefix + "full_rows", static_cast<double>(s.full_rows));
  rec->bump(prefix + "rows_hot", static_cast<double>(s.rows_hot));
  rec->bump(prefix + "slots_recomputed",
            static_cast<double>(s.slots_recomputed));
  rec->bump(prefix + "slots_skipped", static_cast<double>(s.slots_skipped));
}

}  // namespace

Schedule MhScheduler::run(const TaskGraph& graph,
                          const Machine& machine) const {
  const auto priority = comm_b_levels(graph, machine);
  return drive_static(graph, machine, name(), priority,
                      [&](const BuildState& state, TaskId t) {
                        return best_eft(state, t, opts_.insertion);
                      });
}

Schedule EtfScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  // ETF evaluates every (ready task, processor) pair each round; the
  // pick step already determines the processor, so the decision carries
  // it to the driver.
  std::optional<StartCache> cache;
  Schedule schedule = drive(
      graph, machine, name(),
      [&](const BuildState& state, const std::vector<TaskId>& ready) {
        if (!cache) cache.emplace(state, opts_.insertion);
        cache->begin_round();
        PickDecision decision;
        ProcChoice best;
        best.start = kInf;
        std::size_t best_idx = 0;
        const int num_procs = machine.num_procs();
        for (std::size_t i = 0; i < ready.size(); ++i) {
          const TaskId t = ready[i];
          const double* starts = cache->refresh_task(t);
          for (ProcId p = 0; p < num_procs; ++p) {
            const double start = starts[p];
            // A start above best + 1e-12 can satisfy neither the strict
            // improvement nor the tie clauses — reject on one compare.
            if (start > best.start + 1e-12) continue;
            const bool better =
                start < best.start - 1e-12 ||
                (std::abs(start - best.start) <= 1e-12 &&
                 level[t] > level[ready[best_idx]] + 1e-12) ||
                (std::abs(start - best.start) <= 1e-12 &&
                 std::abs(level[t] - level[ready[best_idx]]) <= 1e-12 &&
                 t < ready[best_idx]);
            if (better) {
              best = {p, start, start + state.duration(t, p)};
              best_idx = i;
            }
          }
        }
        cache->end_round();
        decision.index = best_idx;
        decision.choice = best;
        return decision;
      },
      [](const BuildState&, TaskId) -> ProcChoice {
        BANGER_ASSERT(false, "etf pick always carries the choice");
        return {};
      });
  publish_cache_stats(name(), cache);
  return schedule;
}

Schedule HlfetScheduler::run(const TaskGraph& graph,
                             const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  return drive_static(
      graph, machine, name(), level,
      [&](const BuildState& state, TaskId t) {
        // Classic HLFET: earliest *start* processor.
        ProcChoice best;
        best.start = kInf;
        for (ProcId p = 0; p < machine.num_procs(); ++p) {
          const double dur = state.duration(t, p);
          const double rt = state.data_ready(t, p);
          const double start =
              state.timeline().earliest_slot(p, rt, dur, opts_.insertion);
          if (start < best.start - 1e-12) {
            best = {p, start, start + dur};
          }
        }
        return best;
      });
}

Schedule DlsScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  std::optional<StartCache> cache;
  Schedule schedule = drive(
      graph, machine, name(),
      [&](const BuildState& state, const std::vector<TaskId>& ready) {
        if (!cache) cache.emplace(state, opts_.insertion);
        cache->begin_round();
        PickDecision decision;
        ProcChoice best_pc;
        double best_dl = -kInf;
        std::size_t best_idx = 0;
        const int num_procs = machine.num_procs();
        for (std::size_t i = 0; i < ready.size(); ++i) {
          const TaskId t = ready[i];
          const double lvl = level[t];
          const double* starts = cache->refresh_task(t);
          for (ProcId p = 0; p < num_procs; ++p) {
            const double start = starts[p];
            const double dl = lvl - start;
            // Below best - 1e-12 fails both the improvement and the tie
            // clause — reject on one compare.
            if (dl < best_dl - 1e-12) continue;
            if (dl > best_dl + 1e-12 ||
                (std::abs(dl - best_dl) <= 1e-12 && t < ready[best_idx])) {
              best_dl = dl;
              best_pc = {p, start, start + state.duration(t, p)};
              best_idx = i;
            }
          }
        }
        cache->end_round();
        decision.index = best_idx;
        decision.choice = best_pc;
        return decision;
      },
      [](const BuildState&, TaskId) -> ProcChoice {
        BANGER_ASSERT(false, "dls pick always carries the choice");
        return {};
      });
  publish_cache_stats(name(), cache);
  return schedule;
}

}  // namespace banger::sched
