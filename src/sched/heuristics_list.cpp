// List-scheduling heuristics: MH, ETF, HLFET, DLS. All share the
// BuildState machinery; they differ only in how the next (task,
// processor) pair is chosen.
#include <algorithm>

#include "sched/heuristics.hpp"
#include "sched/list_core.hpp"
#include "util/error.hpp"

namespace banger::sched {

namespace {

/// Ready-list driver: repeatedly asks `pick` to choose among ready tasks,
/// then asks `place` for the processor decision.
template <typename Pick, typename Place>
Schedule drive(const TaskGraph& graph, const Machine& machine,
               const std::string& name, Pick&& pick, Place&& place) {
  BuildState state(graph, machine);
  std::vector<std::size_t> remaining(graph.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining[t] = graph.in_edges(t).size();
    if (remaining[t] == 0) ready.push_back(t);
  }

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const std::size_t idx = pick(state, ready);
    const TaskId t = ready[idx];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(idx));

    const ProcChoice choice = place(state, t);
    state.commit(t, choice.proc, choice.start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining[succ] == 0) ready.push_back(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(name);
}

}  // namespace

Schedule MhScheduler::run(const TaskGraph& graph,
                          const Machine& machine) const {
  const auto priority = comm_b_levels(graph, machine);
  return drive(
      graph, machine, name(),
      [&](const BuildState&, const std::vector<TaskId>& ready) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (priority[ready[i]] > priority[ready[best]] ||
              (priority[ready[i]] == priority[ready[best]] &&
               ready[i] < ready[best])) {
            best = i;
          }
        }
        return best;
      },
      [&](const BuildState& state, TaskId t) {
        return best_eft(state, t, opts_.insertion);
      });
}

Schedule EtfScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  // ETF evaluates every (ready task, processor) pair each round; the pick
  // step already determines the processor, so it is cached for place.
  struct Choice {
    ProcChoice pc;
  };
  auto cached = std::make_shared<Choice>();
  return drive(
      graph, machine, name(),
      [&, cached](const BuildState& state, const std::vector<TaskId>& ready) {
        std::size_t best_idx = 0;
        ProcChoice best;
        best.start = kInf;
        for (std::size_t i = 0; i < ready.size(); ++i) {
          const TaskId t = ready[i];
          for (ProcId p = 0; p < machine.num_procs(); ++p) {
            const double dur = state.duration(t, p);
            const double rt = state.data_ready(t, p);
            const double start =
                state.timeline().earliest_slot(p, rt, dur, opts_.insertion);
            const bool better =
                start < best.start - 1e-12 ||
                (std::abs(start - best.start) <= 1e-12 &&
                 level[t] > level[ready[best_idx]] + 1e-12) ||
                (std::abs(start - best.start) <= 1e-12 &&
                 std::abs(level[t] - level[ready[best_idx]]) <= 1e-12 &&
                 t < ready[best_idx]);
            if (better) {
              best = {p, start, start + dur};
              best_idx = i;
            }
          }
        }
        cached->pc = best;
        return best_idx;
      },
      [cached](const BuildState&, TaskId) { return cached->pc; });
}

Schedule HlfetScheduler::run(const TaskGraph& graph,
                             const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  return drive(
      graph, machine, name(),
      [&](const BuildState&, const std::vector<TaskId>& ready) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (level[ready[i]] > level[ready[best]] ||
              (level[ready[i]] == level[ready[best]] &&
               ready[i] < ready[best])) {
            best = i;
          }
        }
        return best;
      },
      [&](const BuildState& state, TaskId t) {
        // Classic HLFET: earliest *start* processor.
        ProcChoice best;
        best.start = kInf;
        for (ProcId p = 0; p < machine.num_procs(); ++p) {
          const double dur = state.duration(t, p);
          const double rt = state.data_ready(t, p);
          const double start =
              state.timeline().earliest_slot(p, rt, dur, opts_.insertion);
          if (start < best.start - 1e-12) {
            best = {p, start, start + dur};
          }
        }
        return best;
      });
}

Schedule DlsScheduler::run(const TaskGraph& graph,
                           const Machine& machine) const {
  const auto level = comp_levels(graph, machine);
  struct Choice {
    ProcChoice pc;
  };
  auto cached = std::make_shared<Choice>();
  return drive(
      graph, machine, name(),
      [&, cached](const BuildState& state, const std::vector<TaskId>& ready) {
        std::size_t best_idx = 0;
        ProcChoice best_pc;
        double best_dl = -kInf;
        for (std::size_t i = 0; i < ready.size(); ++i) {
          const TaskId t = ready[i];
          for (ProcId p = 0; p < machine.num_procs(); ++p) {
            const double dur = state.duration(t, p);
            const double rt = state.data_ready(t, p);
            const double start =
                state.timeline().earliest_slot(p, rt, dur, opts_.insertion);
            const double dl = level[t] - start;
            if (dl > best_dl + 1e-12 ||
                (std::abs(dl - best_dl) <= 1e-12 && t < ready[best_idx])) {
              best_dl = dl;
              best_pc = {p, start, start + dur};
              best_idx = i;
            }
          }
        }
        cached->pc = best_pc;
        return best_idx;
      },
      [cached](const BuildState&, TaskId) { return cached->pc; });
}

}  // namespace banger::sched
