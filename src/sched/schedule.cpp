#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace banger::sched {

Schedule::Schedule(int num_procs, std::string scheduler_name)
    : num_procs_(num_procs), scheduler_name_(std::move(scheduler_name)) {
  if (num_procs <= 0) {
    fail(ErrorCode::Schedule, "schedule needs at least one processor");
  }
}

void Schedule::place(TaskId task, ProcId proc, double start, double finish,
                     bool duplicate) {
  if (proc < 0 || proc >= num_procs_) {
    fail(ErrorCode::Schedule,
         "placement on processor " + std::to_string(proc) + " of " +
             std::to_string(num_procs_));
  }
  if (!(start >= 0) || !(finish >= start)) {
    fail(ErrorCode::Schedule, "malformed placement interval [" +
                                  std::to_string(start) + "," +
                                  std::to_string(finish) + "]");
  }
  placements_.push_back({task, proc, start, finish, duplicate});
}

std::optional<Placement> Schedule::placement_of(TaskId task) const {
  for (const Placement& p : placements_) {
    if (p.task == task && !p.duplicate) return p;
  }
  return std::nullopt;
}

std::vector<Placement> Schedule::copies_of(TaskId task) const {
  std::vector<Placement> out;
  for (const Placement& p : placements_)
    if (p.task == task) out.push_back(p);
  std::stable_sort(out.begin(), out.end(),
                   [](const Placement& a, const Placement& b) {
                     return a.duplicate < b.duplicate;
                   });
  return out;
}

std::vector<Placement> Schedule::lane(ProcId proc) const {
  std::vector<Placement> out;
  for (const Placement& p : placements_)
    if (p.proc == proc) out.push_back(p);
  std::sort(out.begin(), out.end(), [](const Placement& a, const Placement& b) {
    return a.start < b.start;
  });
  return out;
}

std::vector<std::vector<Placement>> Schedule::lanes() const {
  std::vector<std::vector<Placement>> out(
      static_cast<std::size_t>(std::max(0, num_procs_)));
  for (const Placement& p : placements_) {
    if (p.proc >= 0 && p.proc < num_procs_) {
      out[static_cast<std::size_t>(p.proc)].push_back(p);
    }
  }
  for (auto& lane : out) {
    std::sort(lane.begin(), lane.end(),
              [](const Placement& a, const Placement& b) {
                // Fully deterministic: zero-length placements may share a
                // start time, and executors that map lanes to persistent
                // stages need every run to see the same order.
                if (a.start != b.start) return a.start < b.start;
                if (a.finish != b.finish) return a.finish < b.finish;
                if (a.task != b.task) return a.task < b.task;
                return a.duplicate < b.duplicate;
              });
  }
  return out;
}

double Schedule::makespan() const noexcept {
  double m = 0.0;
  for (const Placement& p : placements_) m = std::max(m, p.finish);
  return m;
}

double Schedule::busy(ProcId proc) const noexcept {
  double b = 0.0;
  for (const Placement& p : placements_)
    if (p.proc == proc) b += p.length();
  return b;
}

double Schedule::utilization() const noexcept {
  const double span = makespan();
  if (span <= 0 || num_procs_ == 0) return 0.0;
  double total = 0.0;
  for (const Placement& p : placements_) total += p.length();
  return total / (span * num_procs_);
}

int Schedule::procs_used() const noexcept {
  std::vector<bool> used(static_cast<std::size_t>(num_procs_), false);
  for (const Placement& p : placements_)
    used[static_cast<std::size_t>(p.proc)] = true;
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

int Schedule::num_duplicates() const noexcept {
  return static_cast<int>(
      std::count_if(placements_.begin(), placements_.end(),
                    [](const Placement& p) { return p.duplicate; }));
}

void Schedule::validate(const TaskGraph& graph, const Machine& machine,
                        double tolerance) const {
  if (num_procs_ != machine.num_procs()) {
    fail(ErrorCode::Schedule, "schedule has " + std::to_string(num_procs_) +
                                  " processors, machine has " +
                                  std::to_string(machine.num_procs()));
  }

  // Exactly one primary copy per task.
  std::vector<int> primaries(graph.num_tasks(), 0);
  for (const Placement& p : placements_) {
    if (p.task >= graph.num_tasks()) {
      fail(ErrorCode::Schedule, "placement of unknown task id " +
                                    std::to_string(p.task));
    }
    if (!p.duplicate) ++primaries[p.task];
  }
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (primaries[t] != 1) {
      fail(ErrorCode::Schedule, "task `" + graph.task(t).name + "` has " +
                                    std::to_string(primaries[t]) +
                                    " primary copies (expected 1)");
    }
  }

  // No overlap within a lane. One lanes() pass instead of a per-processor
  // placement scan (which made validation quadratic on large graphs).
  {
    const auto all_lanes = lanes();
    for (ProcId p = 0; p < num_procs_; ++p) {
      const auto& tasks = all_lanes[static_cast<std::size_t>(p)];
      for (std::size_t i = 1; i < tasks.size(); ++i) {
        if (tasks[i].start + tolerance < tasks[i - 1].finish) {
          fail(ErrorCode::Schedule,
               "tasks `" + graph.task(tasks[i - 1].task).name + "` and `" +
                   graph.task(tasks[i].task).name + "` overlap on processor " +
                   std::to_string(p));
        }
      }
    }
  }

  // Durations consistent with the machine (primaries and duplicates both
  // execute the full task).
  for (const Placement& p : placements_) {
    const double want = machine.task_time(graph.task(p.task).work, p.proc);
    if (std::abs(p.length() - want) > tolerance + 1e-9 * std::abs(want)) {
      fail(ErrorCode::Schedule,
           "task `" + graph.task(p.task).name + "` runs for " +
               std::to_string(p.length()) + "s, machine predicts " +
               std::to_string(want) + "s");
    }
  }

  // Every consumer copy must have all inputs arrive on time from *some*
  // copy of each producer. A single placement pass builds the per-task
  // copy index (primaries first, then duplicates in placement order — the
  // same order copies_of returns) that used to be rebuilt per edge.
  std::vector<std::vector<const Placement*>> by_task(graph.num_tasks());
  for (const Placement& p : placements_) {
    if (!p.duplicate) by_task[p.task].push_back(&p);
  }
  for (const Placement& p : placements_) {
    if (p.duplicate) by_task[p.task].push_back(&p);
  }
  for (const graph::Edge& e : graph.edges()) {
    const auto& producers = by_task[e.from];
    for (const Placement* consumer : by_task[e.to]) {
      bool satisfied = false;
      for (const Placement* producer : producers) {
        const double arrival =
            producer->finish +
            machine.comm_time(e.bytes, producer->proc, consumer->proc);
        if (arrival <= consumer->start + tolerance) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        fail(ErrorCode::Schedule,
             "data for edge `" + graph.task(e.from).name + "` -> `" +
                 graph.task(e.to).name + "` cannot arrive by start of the " +
                 (consumer->duplicate ? "duplicate" : "primary") +
                 " copy at t=" + std::to_string(consumer->start));
      }
    }
  }
}

ScheduleMetrics compute_metrics(const Schedule& schedule,
                                const TaskGraph& graph,
                                const Machine& machine) {
  ScheduleMetrics m;
  m.makespan = schedule.makespan();
  // Serial reference: all tasks back-to-back on one nominal processor
  // (speed factor 1), no communication.
  double serial = 0.0;
  for (const graph::Task& t : graph.tasks()) {
    serial += machine.params().process_startup +
              t.work / machine.params().processor_speed;
  }
  m.serial_time = serial;
  m.speedup = m.makespan > 0 ? serial / m.makespan : 0.0;
  m.procs = schedule.num_procs();
  m.procs_used = schedule.procs_used();
  m.efficiency = m.procs > 0 ? m.speedup / m.procs : 0.0;
  m.utilization = schedule.utilization();
  m.duplicates = schedule.num_duplicates();
  return m;
}

}  // namespace banger::sched
