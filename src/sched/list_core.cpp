#include "sched/list_core.hpp"

#include <algorithm>

#include "graph/analysis.hpp"
#include "util/error.hpp"

namespace banger::sched {

Timeline::Timeline(int num_procs) {
  BANGER_ASSERT(num_procs > 0, "timeline needs processors");
  lanes_.resize(static_cast<std::size_t>(num_procs));
  gaps_.resize(static_cast<std::size_t>(num_procs));
  max_gap_.assign(static_cast<std::size_t>(num_procs), -kInf);
  tails_.assign(static_cast<std::size_t>(num_procs), 0.0);
  lane_epochs_.assign(static_cast<std::size_t>(num_procs), 0);
  last_starts_.assign(static_cast<std::size_t>(num_procs), 0.0);
  last_finishes_.assign(static_cast<std::size_t>(num_procs), 0.0);
}

double Timeline::gap_scan(ProcId proc, double ready, double duration) const {
  const auto& lane = lanes_[static_cast<std::size_t>(proc)];
  // Intervals are sorted and non-overlapping, so their end times are
  // non-decreasing (up to the 1e-9 boundary slack occupy tolerates):
  // binary-search past every interval that finishes well before `ready`
  // (those can neither host the slot nor advance the candidate beyond
  // `ready`) and replay the original scan from there. The margin is
  // 1e-6 — far wider than both the fit epsilon and the slack — so the
  // search is immune to sub-epsilon non-monotonicity.
  const auto first = std::partition_point(
      lane.begin(), lane.end(),
      [&](const std::pair<double, double>& iv) {
        return iv.second < ready - 1e-6;
      });
  double candidate = std::max(0.0, ready);
  for (auto it = first; it != lane.end(); ++it) {
    const auto& [s, f] = *it;
    if (candidate + duration <= s + 1e-12) {
      return candidate;  // fits in the gap before this interval
    }
    candidate = std::max(candidate, f);
  }
  return candidate;
}

void Timeline::occupy(ProcId proc, double start, double duration) {
  auto& lane = lanes_[static_cast<std::size_t>(proc)];
  const std::pair<double, double> iv{start, start + duration};
  auto it = std::lower_bound(lane.begin(), lane.end(), iv);
  // Zero-duration tasks may legitimately share a boundary instant.
  if (it != lane.begin()) {
    BANGER_ASSERT(std::prev(it)->second <= start + 1e-9,
                  "overlapping occupation (before)");
  }
  if (it != lane.end()) {
    BANGER_ASSERT(iv.second <= it->first + 1e-9,
                  "overlapping occupation (after)");
  }

  // Maintain the gap index. The free region the new interval lands in
  // runs from the previous interval's end (or 0) to the next interval's
  // start (or the unbounded tail, which is not indexed).
  auto& gaps = gaps_[static_cast<std::size_t>(proc)];
  const double prev_end = it == lane.begin() ? 0.0 : std::prev(it)->second;
  if (it != lane.end()) {
    const double old_gap = it->first - prev_end;
    if (old_gap > 0.0) {
      const auto g = gaps.find(old_gap);
      BANGER_ASSERT(g != gaps.end(), "gap index out of sync");
      gaps.erase(g);
    }
    const double right = it->first - iv.second;
    if (right > 0.0) gaps.insert(right);
  }
  const double left = start - prev_end;
  if (left > 0.0) gaps.insert(left);
  max_gap_[static_cast<std::size_t>(proc)] =
      gaps.empty() ? -kInf : *gaps.rbegin();

  lane.insert(it, iv);
  tails_[static_cast<std::size_t>(proc)] =
      std::max(tails_[static_cast<std::size_t>(proc)], iv.second);
  ++lane_epochs_[static_cast<std::size_t>(proc)];
  last_starts_[static_cast<std::size_t>(proc)] = start;
  last_finishes_[static_cast<std::size_t>(proc)] = iv.second;
}

double Timeline::avail(ProcId proc) const {
  const auto& lane = lanes_[static_cast<std::size_t>(proc)];
  return lane.empty() ? 0.0 : lane.back().second;
}

const std::vector<std::pair<double, double>>& Timeline::lane(
    ProcId proc) const {
  return lanes_[static_cast<std::size_t>(proc)];
}

void ReadyQueue::push(TaskId t) {
  heap_.push_back(t);
  sift_up(heap_.size() - 1);
}

TaskId ReadyQueue::pop() {
  BANGER_ASSERT(!heap_.empty(), "pop from empty ready queue");
  const TaskId top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void ReadyQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void ReadyQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && before(heap_[l], heap_[best])) best = l;
    if (r < n && before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

BuildState::BuildState(const TaskGraph& graph, const Machine& machine)
    : graph_(graph),
      machine_(machine),
      timeline_(machine.num_procs()),
      num_procs_(machine.num_procs()),
      copies_(graph.num_tasks()) {
  placements_.reserve(graph.num_tasks());
  const auto procs = static_cast<std::size_t>(num_procs_);
  hop_matrix_.resize(procs * procs);
  for (ProcId p = 0; p < num_procs_; ++p) {
    for (ProcId q = 0; q < num_procs_; ++q) {
      hop_matrix_[static_cast<std::size_t>(p) * procs +
                  static_cast<std::size_t>(q)] =
          p == q ? 0 : machine.topology().hops(p, q);
    }
  }
  const auto& params = machine.params();
  msg_startup_ = params.message_startup;
  per_hop_latency_ = params.per_hop_latency;
  store_and_forward_ = params.routing == machine::Routing::StoreAndForward;
  edge_wire_.reserve(graph.num_edges());
  for (const graph::Edge& e : graph.edges()) {
    edge_wire_.push_back(params.bytes_per_second > 0
                             ? e.bytes / params.bytes_per_second
                             : 0.0);
  }

  drt_cache_.assign(graph.num_tasks() * procs, 0.0);
  drt_critical_.assign(graph.num_tasks() * procs, graph::kNoTask);
  drt_valid_.assign(graph.num_tasks(), 0);
  pred_epochs_.assign(graph.num_tasks(), 0);
}

double BuildState::edge_arrival(graph::EdgeId e, ProcId proc,
                                const Copy** winner) const {
  const graph::Edge& edge = graph_.edge(e);
  BANGER_ASSERT(placed(edge.from), "predecessor not yet placed");
  double best = kInf;
  const Copy* best_copy = nullptr;
  for (const Copy& c : copies_[edge.from]) {
    const double arrival = c.finish + edge_comm_time(e, c.proc, proc);
    if (arrival < best) {
      best = arrival;
      best_copy = &c;
    }
  }
  if (winner != nullptr) *winner = best_copy;
  return best;
}

double BuildState::data_ready(TaskId t, ProcId proc,
                              TaskId* critical_parent) const {
  const std::size_t row =
      static_cast<std::size_t>(t) * static_cast<std::size_t>(num_procs_);
  if (!drt_valid_[t]) {
    // Edge-outer recompute: for each processor the edges are still
    // visited in in-edge order and the running maximum uses the same
    // strict >, so both the values and the critical-parent tie-breaks
    // match the processor-outer formulation — while each edge (and its
    // producer's copies) is fetched once instead of once per processor.
    double* vals = &drt_cache_[row];
    TaskId* crit = &drt_critical_[row];
    for (ProcId p = 0; p < num_procs_; ++p) {
      vals[p] = 0.0;
      crit[p] = graph::kNoTask;
    }
    for (graph::EdgeId e : graph_.in_edges(t)) {
      const graph::Edge& edge = graph_.edge(e);
      const auto& copies = copies_[edge.from];
      BANGER_ASSERT(!copies.empty(), "predecessor not yet placed");
      const double wire = edge_wire_[e];
      if (copies.size() == 1) {
        const Copy& c = copies.front();
        const int* hop_row = &hop_matrix_[static_cast<std::size_t>(c.proc) *
                                          static_cast<std::size_t>(num_procs_)];
        for (ProcId p = 0; p < num_procs_; ++p) {
          const int h = hop_row[p];
          const double comm =
              h <= 0 ? 0.0
                     : (store_and_forward_
                            ? h * (msg_startup_ + wire)
                            : msg_startup_ + wire + (h - 1) * per_hop_latency_);
          const double arrival = c.finish + comm;
          if (arrival > vals[p]) {
            vals[p] = arrival;
            crit[p] = edge.from;
          }
        }
      } else {
        for (ProcId p = 0; p < num_procs_; ++p) {
          const double arrival = edge_arrival(e, p);
          if (arrival > vals[p]) {
            vals[p] = arrival;
            crit[p] = edge.from;
          }
        }
      }
    }
    drt_valid_[t] = 1;
  }
  if (critical_parent != nullptr) {
    *critical_parent = drt_critical_[row + static_cast<std::size_t>(proc)];
  }
  return drt_cache_[row + static_cast<std::size_t>(proc)];
}

double BuildState::data_ready_one(TaskId t, ProcId proc) const {
  if (drt_valid_[t]) {
    return drt_cache_[static_cast<std::size_t>(t) *
                          static_cast<std::size_t>(num_procs_) +
                      static_cast<std::size_t>(proc)];
  }
  double ready = 0.0;
  for (graph::EdgeId e : graph_.in_edges(t)) {
    const double arrival = edge_arrival(e, proc);
    if (arrival > ready) ready = arrival;
  }
  return ready;
}

void BuildState::invalidate_successors(TaskId t) {
  for (graph::EdgeId e : graph_.out_edges(t)) {
    const TaskId succ = graph_.edge(e).to;
    drt_valid_[succ] = 0;
    ++pred_epochs_[succ];
  }
}

void BuildState::commit(TaskId t, ProcId proc, double start, bool duplicate) {
  const double dur = duration(t, proc);
  timeline_.occupy(proc, start, dur);
  copies_[t].push_back({proc, start, start + dur});
  placements_.push_back({t, proc, start, start + dur, duplicate});
  invalidate_successors(t);
}

void BuildState::commit_fixed(TaskId t, ProcId proc, double start,
                              double finish, bool duplicate) {
  BANGER_ASSERT(finish >= start, "fixed copy with negative duration");
  timeline_.occupy(proc, start, finish - start);
  copies_[t].push_back({proc, start, finish});
  placements_.push_back({t, proc, start, finish, duplicate});
  invalidate_successors(t);
}

Schedule BuildState::finish(const std::string& scheduler_name) const {
  Schedule schedule(machine_.num_procs(), scheduler_name);
  for (const Placement& p : placements_) {
    schedule.place(p.task, p.proc, p.start, p.finish, p.duplicate);
  }
  // Reconstruct the winning message for every edge into every primary
  // copy, for Gantt displays and the simulator.
  for (const Placement& p : placements_) {
    if (p.duplicate) continue;
    for (graph::EdgeId e : graph_.in_edges(p.task)) {
      const Copy* winner = nullptr;
      (void)edge_arrival(e, p.proc, &winner);
      BANGER_ASSERT(winner != nullptr, "edge without producer copy");
      if (winner->proc != p.proc) {
        Message m;
        m.edge = e;
        m.from = winner->proc;
        m.to = p.proc;
        m.send = winner->finish;
        m.arrive = winner->finish + edge_comm_time(e, winner->proc, p.proc);
        schedule.add_message(m);
      }
    }
  }
  return schedule;
}

ProcChoice best_eft(const BuildState& state, TaskId t, bool insertion) {
  ProcChoice best;
  best.finish = kInf;
  for (ProcId p = 0; p < state.machine().num_procs(); ++p) {
    const double ready = state.data_ready(t, p);
    const double dur = state.duration(t, p);
    const double start =
        state.timeline().earliest_slot(p, ready, dur, insertion);
    const double finish = start + dur;
    if (finish < best.finish - 1e-12) {
      best = {p, start, finish};
    }
  }
  BANGER_ASSERT(best.proc >= 0, "no processor chosen");
  return best;
}

std::vector<double> comm_b_levels(const TaskGraph& graph,
                                  const Machine& machine) {
  graph::CostModel cost;
  cost.task_time.reserve(graph.num_tasks());
  for (const graph::Task& t : graph.tasks()) {
    // Priority uses nominal (factor-1) speed; per-processor factors are
    // handled at placement time.
    cost.task_time.push_back(machine.params().process_startup +
                             t.work / machine.params().processor_speed);
  }
  cost.edge_time.reserve(graph.num_edges());
  for (const graph::Edge& e : graph.edges()) {
    cost.edge_time.push_back(machine.comm_time_hops(e.bytes, 1));
  }
  return b_levels(graph, cost);
}

std::vector<double> comp_levels(const TaskGraph& graph,
                                const Machine& machine) {
  graph::CostModel cost;
  cost.task_time.reserve(graph.num_tasks());
  for (const graph::Task& t : graph.tasks()) {
    cost.task_time.push_back(machine.params().process_startup +
                             t.work / machine.params().processor_speed);
  }
  cost.edge_time.assign(graph.num_edges(), 0.0);
  return b_levels(graph, cost);
}

Schedule schedule_fixed_assignment(const TaskGraph& graph,
                                   const Machine& machine,
                                   const std::vector<ProcId>& assignment,
                                   bool insertion,
                                   const std::string& scheduler_name) {
  BANGER_ASSERT(assignment.size() == graph.num_tasks(),
                "assignment arity mismatch");
  for (ProcId p : assignment) {
    if (p < 0 || p >= machine.num_procs()) {
      fail(ErrorCode::Schedule, "assignment references processor " +
                                    std::to_string(p) + " of " +
                                    std::to_string(machine.num_procs()));
    }
  }

  BuildState state(graph, machine);
  const auto priority = comm_b_levels(graph, machine);

  // Dynamic ready list: among ready tasks pick the highest priority and
  // place it on its assigned processor at the earliest feasible time.
  std::vector<std::size_t> remaining_preds(graph.num_tasks());
  ReadyQueue ready(priority);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining_preds[t] = graph.in_edges(t).size();
    if (remaining_preds[t] == 0) ready.push(t);
  }

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId t = ready.pop();

    const ProcId p = assignment[t];
    const double dur = state.duration(t, p);
    const double ready_time = state.data_ready_one(t, p);
    const double start =
        state.timeline().earliest_slot(p, ready_time, dur, insertion);
    state.commit(t, p, start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining_preds[succ] == 0) ready.push(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(scheduler_name);
}

}  // namespace banger::sched
