#include "sched/list_core.hpp"

#include <algorithm>

#include "graph/analysis.hpp"
#include "util/error.hpp"

namespace banger::sched {

Timeline::Timeline(int num_procs) {
  BANGER_ASSERT(num_procs > 0, "timeline needs processors");
  lanes_.resize(static_cast<std::size_t>(num_procs));
}

double Timeline::earliest_slot(ProcId proc, double ready, double duration,
                               bool insertion) const {
  const auto& lane = lanes_[static_cast<std::size_t>(proc)];
  if (!insertion) {
    const double tail = lane.empty() ? 0.0 : lane.back().second;
    return std::max(ready, tail);
  }
  double candidate = std::max(0.0, ready);
  for (const auto& [s, f] : lane) {
    if (candidate + duration <= s + 1e-12) {
      return candidate;  // fits in the gap before this interval
    }
    candidate = std::max(candidate, f);
  }
  return candidate;
}

void Timeline::occupy(ProcId proc, double start, double duration) {
  auto& lane = lanes_[static_cast<std::size_t>(proc)];
  const std::pair<double, double> iv{start, start + duration};
  auto it = std::lower_bound(lane.begin(), lane.end(), iv);
  // Zero-duration tasks may legitimately share a boundary instant.
  if (it != lane.begin()) {
    BANGER_ASSERT(std::prev(it)->second <= start + 1e-9,
                  "overlapping occupation (before)");
  }
  if (it != lane.end()) {
    BANGER_ASSERT(iv.second <= it->first + 1e-9,
                  "overlapping occupation (after)");
  }
  lane.insert(it, iv);
}

double Timeline::avail(ProcId proc) const {
  const auto& lane = lanes_[static_cast<std::size_t>(proc)];
  return lane.empty() ? 0.0 : lane.back().second;
}

const std::vector<std::pair<double, double>>& Timeline::lane(
    ProcId proc) const {
  return lanes_[static_cast<std::size_t>(proc)];
}

BuildState::BuildState(const TaskGraph& graph, const Machine& machine)
    : graph_(graph),
      machine_(machine),
      timeline_(machine.num_procs()),
      copies_(graph.num_tasks()) {}

double BuildState::edge_arrival(graph::EdgeId e, ProcId proc,
                                const Copy** winner) const {
  const graph::Edge& edge = graph_.edge(e);
  BANGER_ASSERT(placed(edge.from), "predecessor not yet placed");
  double best = kInf;
  const Copy* best_copy = nullptr;
  for (const Copy& c : copies_[edge.from]) {
    const double arrival =
        c.finish + machine_.comm_time(edge.bytes, c.proc, proc);
    if (arrival < best) {
      best = arrival;
      best_copy = &c;
    }
  }
  if (winner != nullptr) *winner = best_copy;
  return best;
}

double BuildState::data_ready(TaskId t, ProcId proc,
                              TaskId* critical_parent) const {
  double ready = 0.0;
  TaskId critical = graph::kNoTask;
  for (graph::EdgeId e : graph_.in_edges(t)) {
    const double arrival = edge_arrival(e, proc);
    if (arrival > ready) {
      ready = arrival;
      critical = graph_.edge(e).from;
    }
  }
  if (critical_parent != nullptr) *critical_parent = critical;
  return ready;
}

void BuildState::commit(TaskId t, ProcId proc, double start, bool duplicate) {
  const double dur = duration(t, proc);
  timeline_.occupy(proc, start, dur);
  copies_[t].push_back({proc, start, start + dur});
  placements_.push_back({t, proc, start, start + dur, duplicate});
}

void BuildState::commit_fixed(TaskId t, ProcId proc, double start,
                              double finish, bool duplicate) {
  BANGER_ASSERT(finish >= start, "fixed copy with negative duration");
  timeline_.occupy(proc, start, finish - start);
  copies_[t].push_back({proc, start, finish});
  placements_.push_back({t, proc, start, finish, duplicate});
}

Schedule BuildState::finish(const std::string& scheduler_name) const {
  Schedule schedule(machine_.num_procs(), scheduler_name);
  for (const Placement& p : placements_) {
    schedule.place(p.task, p.proc, p.start, p.finish, p.duplicate);
  }
  // Reconstruct the winning message for every edge into every primary
  // copy, for Gantt displays and the simulator.
  for (const Placement& p : placements_) {
    if (p.duplicate) continue;
    for (graph::EdgeId e : graph_.in_edges(p.task)) {
      const Copy* winner = nullptr;
      (void)edge_arrival(e, p.proc, &winner);
      BANGER_ASSERT(winner != nullptr, "edge without producer copy");
      if (winner->proc != p.proc) {
        Message m;
        m.edge = e;
        m.from = winner->proc;
        m.to = p.proc;
        m.send = winner->finish;
        m.arrive = winner->finish + machine_.comm_time(graph_.edge(e).bytes,
                                                       winner->proc, p.proc);
        schedule.add_message(m);
      }
    }
  }
  return schedule;
}

ProcChoice best_eft(const BuildState& state, TaskId t, bool insertion) {
  ProcChoice best;
  best.finish = kInf;
  for (ProcId p = 0; p < state.machine().num_procs(); ++p) {
    const double ready = state.data_ready(t, p);
    const double dur = state.duration(t, p);
    const double start =
        state.timeline().earliest_slot(p, ready, dur, insertion);
    const double finish = start + dur;
    if (finish < best.finish - 1e-12) {
      best = {p, start, finish};
    }
  }
  BANGER_ASSERT(best.proc >= 0, "no processor chosen");
  return best;
}

std::vector<double> comm_b_levels(const TaskGraph& graph,
                                  const Machine& machine) {
  graph::CostModel cost;
  cost.task_time.reserve(graph.num_tasks());
  for (const graph::Task& t : graph.tasks()) {
    // Priority uses nominal (factor-1) speed; per-processor factors are
    // handled at placement time.
    cost.task_time.push_back(machine.params().process_startup +
                             t.work / machine.params().processor_speed);
  }
  cost.edge_time.reserve(graph.num_edges());
  for (const graph::Edge& e : graph.edges()) {
    cost.edge_time.push_back(machine.comm_time_hops(e.bytes, 1));
  }
  return b_levels(graph, cost);
}

std::vector<double> comp_levels(const TaskGraph& graph,
                                const Machine& machine) {
  graph::CostModel cost;
  cost.task_time.reserve(graph.num_tasks());
  for (const graph::Task& t : graph.tasks()) {
    cost.task_time.push_back(machine.params().process_startup +
                             t.work / machine.params().processor_speed);
  }
  cost.edge_time.assign(graph.num_edges(), 0.0);
  return b_levels(graph, cost);
}

Schedule schedule_fixed_assignment(const TaskGraph& graph,
                                   const Machine& machine,
                                   const std::vector<ProcId>& assignment,
                                   bool insertion,
                                   const std::string& scheduler_name) {
  BANGER_ASSERT(assignment.size() == graph.num_tasks(),
                "assignment arity mismatch");
  for (ProcId p : assignment) {
    if (p < 0 || p >= machine.num_procs()) {
      fail(ErrorCode::Schedule, "assignment references processor " +
                                    std::to_string(p) + " of " +
                                    std::to_string(machine.num_procs()));
    }
  }

  BuildState state(graph, machine);
  const auto priority = comm_b_levels(graph, machine);

  // Dynamic ready list: among ready tasks pick the highest priority and
  // place it on its assigned processor at the earliest feasible time.
  std::vector<std::size_t> remaining_preds(graph.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    remaining_preds[t] = graph.in_edges(t).size();
    if (remaining_preds[t] == 0) ready.push_back(t);
  }

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    auto it = std::max_element(
        ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
          if (priority[a] != priority[b]) return priority[a] < priority[b];
          return a > b;  // prefer the smaller id
        });
    const TaskId t = *it;
    ready.erase(it);

    const ProcId p = assignment[t];
    const double dur = state.duration(t, p);
    const double ready_time = state.data_ready(t, p);
    const double start =
        state.timeline().earliest_slot(p, ready_time, dur, insertion);
    state.commit(t, p, start, /*duplicate=*/false);
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (--remaining_preds[succ] == 0) ready.push_back(succ);
    }
  }
  if (scheduled != graph.num_tasks()) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }
  return state.finish(scheduler_name);
}

}  // namespace banger::sched
