// banger/sched/explain.hpp
//
// Placement rationale: for each task of a finished schedule, reconstruct
// the data-arrival picture the scheduler faced — when the task's inputs
// could have been ready on every processor — and report why the chosen
// processor made sense (or how much was left on the table). This is the
// environment answering the non-programmer's natural question about a
// Gantt chart: "why is my task over there?"
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace banger::sched {

struct PlacementRationale {
  TaskId task = graph::kNoTask;
  ProcId chosen = -1;
  double start = 0.0;
  /// Earliest time the task's data could be complete on each processor,
  /// given the schedule's actual copies (ignores processor occupancy).
  std::vector<double> data_ready;
  /// The predecessor whose message constrains the chosen processor
  /// (kNoTask for source tasks).
  TaskId critical_parent = graph::kNoTask;
  /// Idle gap the task waited on its processor after data was ready
  /// (start - max(data_ready[chosen], prev finish on proc)).
  double queue_wait = 0.0;
  /// data_ready[chosen] - min over procs of data_ready: what moving the
  /// task to the data-optimal processor could have saved *in arrival
  /// time* (occupancy may still have made the choice right).
  double arrival_penalty = 0.0;
};

/// Computes rationales for every task (primary copies, schedule order).
std::vector<PlacementRationale> explain_schedule(const Schedule& schedule,
                                                 const TaskGraph& graph,
                                                 const Machine& machine);

/// Human-readable report; `only` restricts to one task name ("" = all).
std::string explain_report(const Schedule& schedule, const TaskGraph& graph,
                           const Machine& machine,
                           const std::string& only = {});

}  // namespace banger::sched
