#include "sched/repair.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace banger::sched {

namespace {

double nominal_seconds(const graph::TaskGraph& graph, const Machine& machine,
                       TaskId t) {
  return machine.params().process_startup +
         graph.task(t).work / machine.params().processor_speed;
}

}  // namespace

RepairResult repair_schedule(const graph::TaskGraph& graph,
                             const Machine& machine,
                             const RepairRequest& request) {
  const std::size_t n = graph.num_tasks();
  const int num_procs = machine.num_procs();

  std::vector<char> is_dead(static_cast<std::size_t>(num_procs), 0);
  for (ProcId p : request.dead) {
    if (p < 0 || p >= num_procs) {
      fail(ErrorCode::Schedule, "repair request kills processor " +
                                    std::to_string(p) + " of " +
                                    std::to_string(num_procs));
    }
    is_dead[static_cast<std::size_t>(p)] = 1;
  }
  if (std::count(is_dead.begin(), is_dead.end(), char{1}) == num_procs) {
    fail(ErrorCode::Schedule, "no processor survives the fault plan");
  }

  for (const CompletedCopy& c : request.completed) {
    if (c.task >= n || c.proc < 0 || c.proc >= num_procs ||
        c.finish < c.start) {
      fail(ErrorCode::Schedule, "malformed completed copy in repair request");
    }
  }

  // alive: the task's result is reachable (finished on a survivor).
  // executed: some copy finished somewhere, even a dead processor.
  std::vector<char> alive(n, 0);
  std::vector<char> executed(n, 0);
  for (const CompletedCopy& c : request.completed) {
    executed[c.task] = 1;
    if (!is_dead[static_cast<std::size_t>(c.proc)]) alive[c.task] = 1;
  }

  // Reverse-topological need analysis (see header).
  const std::vector<TaskId> topo = graph.topo_order();
  std::vector<char> to_run(n, 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId t = *it;
    if (alive[t]) continue;
    bool needed = !executed[t];
    if (!needed) {
      for (graph::EdgeId e : graph.out_edges(t)) {
        if (to_run[graph.edge(e).to]) {
          needed = true;
          break;
        }
      }
    }
    to_run[t] = needed ? 1 : 0;
  }

  // Pre-commit the surviving history so data_ready() sees real copies
  // (and never a dead one) and the timeline blocks their intervals.
  BuildState state(graph, machine);
  for (const CompletedCopy& c : request.completed) {
    if (is_dead[static_cast<std::size_t>(c.proc)]) continue;
    state.commit_fixed(c.task, c.proc, c.start, c.finish, c.duplicate);
  }

  // Release the frontier in priority order. Every predecessor of a
  // to_run task is either alive (pre-committed above) or itself to_run,
  // so data_ready's all-preds-placed invariant holds throughout.
  const auto priority = comm_b_levels(graph, machine);
  std::vector<std::size_t> remaining_preds(n, 0);
  std::vector<TaskId> ready;
  std::size_t frontier_size = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!to_run[t]) continue;
    ++frontier_size;
    std::size_t preds = 0;
    for (graph::EdgeId e : graph.in_edges(t)) {
      if (to_run[graph.edge(e).from]) ++preds;
    }
    remaining_preds[t] = preds;
    if (preds == 0) ready.push_back(t);
  }

  RepairResult result;
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    auto it = std::max_element(
        ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
          if (priority[a] != priority[b]) return priority[a] < priority[b];
          return a > b;  // prefer the smaller id
        });
    const TaskId t = *it;
    ready.erase(it);

    ProcChoice best;
    best.finish = kInf;
    for (ProcId p = 0; p < num_procs; ++p) {
      if (is_dead[static_cast<std::size_t>(p)]) continue;
      const double ready_time =
          std::max(request.now, state.data_ready(t, p));
      const double dur = state.duration(t, p);
      const double start = state.timeline().earliest_slot(
          p, ready_time, dur, request.insertion);
      if (start + dur < best.finish - 1e-12) {
        best = {p, start, start + dur};
      }
    }
    BANGER_ASSERT(best.proc >= 0, "no surviving processor chosen");
    state.commit(t, best.proc, best.start, /*duplicate=*/false);
    result.new_placements.push_back(
        {t, best.proc, best.start, best.finish, false});
    ++scheduled;

    for (graph::EdgeId e : graph.out_edges(t)) {
      const TaskId succ = graph.edge(e).to;
      if (!to_run[succ]) continue;
      if (--remaining_preds[succ] == 0) ready.push_back(succ);
    }
  }
  if (scheduled != frontier_size) {
    fail(ErrorCode::Schedule, "task graph contains a cycle");
  }

  // Assemble the repaired schedule. Primary selection per task:
  //   - re-run task: the new placement is primary, history demotes to
  //     duplicates;
  //   - surviving task: earliest alive finished copy is primary
  //     (promoting a duplicate if the original primary died);
  //   - finished-on-dead-only and unneeded: the dead copy stays primary
  //     as a historical record.
  Schedule schedule(num_procs, request.label);
  std::vector<const CompletedCopy*> history_primary(n, nullptr);
  for (const CompletedCopy& c : request.completed) {
    if (to_run[c.task]) continue;
    const CompletedCopy* cur = history_primary[c.task];
    const bool c_alive = !is_dead[static_cast<std::size_t>(c.proc)];
    const bool cur_alive =
        cur != nullptr && !is_dead[static_cast<std::size_t>(cur->proc)];
    if (cur == nullptr || (c_alive && !cur_alive) ||
        (c_alive == cur_alive && c.finish < cur->finish)) {
      history_primary[c.task] = &c;
    }
  }
  for (const CompletedCopy& c : request.completed) {
    const bool primary = history_primary[c.task] == &c;
    schedule.place(c.task, c.proc, c.start, c.finish, !primary);
  }
  for (const Placement& p : result.new_placements) {
    schedule.place(p.task, p.proc, p.start, p.finish, /*duplicate=*/false);
    for (graph::EdgeId e : graph.in_edges(p.task)) {
      const Copy* winner = nullptr;
      (void)state.edge_arrival(e, p.proc, &winner);
      BANGER_ASSERT(winner != nullptr, "edge without producer copy");
      if (winner->proc != p.proc) {
        Message m;
        m.edge = e;
        m.from = winner->proc;
        m.to = p.proc;
        m.send = winner->finish;
        m.arrive = winner->finish + machine.comm_time(graph.edge(e).bytes,
                                                      winner->proc, p.proc);
        schedule.add_message(m);
      }
    }
  }

  for (TaskId t = 0; t < n; ++t) {
    if (!to_run[t]) continue;
    result.reexec_seconds += nominal_seconds(graph, machine, t);
    if (executed[t]) {
      result.reexecuted.push_back(t);
      result.lost_seconds += nominal_seconds(graph, machine, t);
    }
  }
  result.makespan = schedule.makespan();
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace banger::sched
