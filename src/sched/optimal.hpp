// banger/sched/optimal.hpp
//
// Exhaustive branch-and-bound scheduler for *small* instances. Useless
// in production (exponential), invaluable for evaluation: it gives the
// true optimum against which ABL5 measures every heuristic's gap —
// turning the paper's "optimal scheduling heuristics" phrasing into a
// measurable claim.
#pragma once

#include "sched/scheduler.hpp"

namespace banger::sched {

/// Branch and bound over (task order x processor) decisions with
/// critical-path lower bounds. Optimal among schedules *without task
/// duplication* — DSH can legitimately beat it on communication-heavy
/// instances by replicating work. Throws Error{Limit} when the instance
/// exceeds `max_tasks` or the node budget, so callers cannot hang the
/// environment by accident.
class OptimalScheduler final : public Scheduler {
 public:
  struct Limits {
    std::size_t max_tasks = 14;
    /// Search nodes explored before giving up.
    std::uint64_t max_nodes = 20'000'000;
  };

  explicit OptimalScheduler(SchedulerOptions opts = {}) : Scheduler(opts) {}
  OptimalScheduler(Limits limits, SchedulerOptions opts)
      : Scheduler(opts), limits_(limits) {}

  [[nodiscard]] std::string name() const override { return "optimal"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;

  /// Number of branch-and-bound nodes the last run() explored.
  [[nodiscard]] std::uint64_t nodes_explored() const noexcept {
    return nodes_explored_;
  }

 private:
  Limits limits_;
  mutable std::uint64_t nodes_explored_ = 0;
};

/// Modified Critical Path (MCP, Wu & Gajski): static priority by ALAP
/// (as-late-as-possible) start time — tasks whose latest feasible start
/// is earliest go first; earliest-finish processor with insertion.
class McpScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "mcp"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

}  // namespace banger::sched
