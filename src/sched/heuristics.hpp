// banger/sched/heuristics.hpp
//
// Concrete scheduler classes. Most callers go through make_scheduler();
// the classes are exposed so tests and ablation benches can construct
// them with explicit options.
#pragma once

#include "sched/scheduler.hpp"

namespace banger::sched {

/// Mapping Heuristic (El-Rewini & Lewis, JPDC 1990): dynamic ready list
/// ordered by communication-aware b-level; earliest-finish processor with
/// slot insertion; hop-based message delays over the machine topology.
class MhScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "mh"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Earliest Task First: among all (ready task, processor) pairs pick the
/// globally earliest start; ties broken by higher static level.
class EtfScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "etf"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Highest Level First with Estimated Times: static (communication-free)
/// level priority; earliest-start processor choice.
class HlfetScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "hlfet"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Dynamic Level Scheduling (Sih & Lee): maximises SL(t) - EST(t,p).
class DlsScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "dls"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Duplication Scheduling Heuristic (Kruatrachue & Lewis): MH-style list
/// scheduling that copies critical parents into idle slots when doing so
/// lets a task start earlier, trading redundant computation for
/// communication.
class DshScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "dsh"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Grain packing via Sarkar-style edge zeroing: repeatedly merge the
/// endpoints of heavy edges into clusters while the estimated parallel
/// time does not grow, then map clusters to processors by load balancing
/// and derive times with the constrained list scheduler.
class ClusterScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "cluster"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;

  /// Exposed for tests: the cluster id per task after edge zeroing.
  [[nodiscard]] std::vector<int> clusters_of(const TaskGraph& graph,
                                             const Machine& machine) const;
};

/// All tasks on processor 0 in priority order: the speedup denominator.
class SerialScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "serial"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Tasks dealt to processors round-robin in topological order.
class RoundRobinScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "roundrobin"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

/// Uniformly random assignment (seeded); timing still feasible.
class RandomScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] Schedule run(const TaskGraph& graph,
                             const Machine& machine) const override;
};

}  // namespace banger::sched
