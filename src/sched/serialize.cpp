#include "sched/serialize.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::sched {

namespace {

double parse_num(std::string_view s, int line) {
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(ErrorCode::Parse, "bad number `" + std::string(s) + "`", {line, 1});
  }
  return value;
}

}  // namespace

std::string to_text(const Schedule& schedule, const TaskGraph& graph) {
  std::ostringstream out;
  out << "schedule " << (schedule.scheduler_name().empty()
                             ? "unnamed"
                             : schedule.scheduler_name())
      << " procs=" << schedule.num_procs() << "\n";
  auto rows = schedule.placements();
  for (const Placement& p : rows) {
    out << "place " << graph.task(p.task).name << " proc=" << p.proc
        << " start=" << util::format_double(p.start, 17)
        << " finish=" << util::format_double(p.finish, 17);
    if (p.duplicate) out << " dup";
    out << "\n";
  }
  return out.str();
}

Schedule parse_schedule(std::string_view text, const TaskGraph& graph) {
  Schedule schedule;
  bool have_header = false;
  int lineno = 0;
  for (auto raw : util::split(text, '\n')) {
    ++lineno;
    auto hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const auto line = util::trim(raw);
    if (line.empty()) continue;
    auto tokens = util::split_ws(line);

    if (tokens[0] == "schedule") {
      if (have_header) {
        fail(ErrorCode::Parse, "duplicate schedule header", {lineno, 1});
      }
      if (tokens.size() != 3 || !util::starts_with(tokens[2], "procs=")) {
        fail(ErrorCode::Parse, "expected `schedule <name> procs=N`",
             {lineno, 1});
      }
      const int procs =
          static_cast<int>(parse_num(tokens[2].substr(6), lineno));
      schedule = Schedule(procs, std::string(tokens[1]));
      have_header = true;
      continue;
    }
    if (tokens[0] == "place") {
      if (!have_header) {
        fail(ErrorCode::Parse, "place before schedule header", {lineno, 1});
      }
      if (tokens.size() < 5) {
        fail(ErrorCode::Parse,
             "expected `place <task> proc=P start=S finish=F [dup]`",
             {lineno, 1});
      }
      const graph::TaskId task = graph.require(std::string(tokens[1]));
      machine::ProcId proc = -1;
      double start = -1;
      double finish = -1;
      bool dup = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "dup") {
          dup = true;
        } else if (util::starts_with(tokens[i], "proc=")) {
          proc = static_cast<machine::ProcId>(
              parse_num(tokens[i].substr(5), lineno));
        } else if (util::starts_with(tokens[i], "start=")) {
          start = parse_num(tokens[i].substr(6), lineno);
        } else if (util::starts_with(tokens[i], "finish=")) {
          finish = parse_num(tokens[i].substr(7), lineno);
        } else {
          fail(ErrorCode::Parse,
               "unknown field `" + std::string(tokens[i]) + "`", {lineno, 1});
        }
      }
      schedule.place(task, proc, start, finish, dup);
      continue;
    }
    fail(ErrorCode::Parse, "unknown directive `" + std::string(tokens[0]) +
                               "`", {lineno, 1});
  }
  if (!have_header) {
    fail(ErrorCode::Parse, "missing schedule header");
  }
  return schedule;
}

void save_schedule(const Schedule& schedule, const TaskGraph& graph,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCode::Io, "cannot open `" + path + "` for writing");
  out << to_text(schedule, graph);
  if (!out) fail(ErrorCode::Io, "error writing `" + path + "`");
}

Schedule load_schedule(const std::string& path, const TaskGraph& graph) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::Io, "cannot open `" + path + "` for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_schedule(buf.str(), graph);
}

}  // namespace banger::sched
