// banger/cli/cli.hpp
//
// The environment as a command-line tool. All functionality is exposed
// through run(), which writes to caller-provided streams — so the CLI
// is unit-testable and the `banger` binary in tools/ is a three-line
// main.
//
// Commands:
//   banger info <design.pitl>                     design summary
//   banger validate <design.pitl>                 exit 0/1
//   banger flatten <design.pitl>                  flattened task DAG
//   banger dot <design.pitl>                      Graphviz of the design
//   banger topo <kind> key=value...               topology properties+DOT
//   banger schedule <design> <machine> [options]  Gantt/table/SVG
//   banger speedup <design> <machine> [options]   prediction curve
//   banger simulate <design> <machine> [options]  discrete-event replay
//   banger trial <design> [--input v=expr]...     sequential trial run
//   banger run <design> <machine> [options]       threaded execution
//   banger codegen <design> <machine> [options]   emit C++ to stdout/-o
//   banger serve [--port N | --once] [options]    JSON-lines design service
//
// Common options: --scheduler NAME, --input VAR=PITS_EXPR (repeatable),
// --sizes 1,2,4, --contention, --events N, --format gantt|table|svg,
// -o FILE.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace banger::cli {

/// Executes one CLI invocation. `args` excludes the program name.
/// Returns the process exit code (0 success, 1 user error, 2 usage).
/// Never throws: user-level Errors are rendered on `err`.
/// `in` feeds commands that read requests (`banger serve` in stdio
/// mode); every other command ignores it.
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);

/// Convenience overload reading from std::cin.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// The usage text (also printed on bad invocations).
std::string usage();

}  // namespace banger::cli
