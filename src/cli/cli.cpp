#include "cli/cli.hpp"

#include <fstream>
#include <iostream>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "analyze/analyze.hpp"
#include "core/html_report.hpp"
#include "core/lint.hpp"
#include "core/recovery.hpp"
#include "fault/fault.hpp"
#include "sched/compare.hpp"
#include "sched/explain.hpp"
#include "transform/transform.hpp"
#include "core/project.hpp"
#include "graph/serialize.hpp"
#include "machine/serialize.hpp"
#include "obs/trace.hpp"
#include "pits/interp.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/charts.hpp"
#include "viz/dot.hpp"
#include "viz/gantt.hpp"
#include "viz/trace.hpp"

namespace banger::cli {

namespace {

struct Options {
  std::vector<std::string> positional;
  std::string scheduler = "mh";
  std::string format = "gantt";  // gantt | table | svg
  std::string output_file;
  std::vector<int> sizes{1, 2, 4, 8};
  std::map<std::string, pits::Value> inputs;
  std::string inputs_file;  ///< --inputs FILE: batched trials, one per line
  pits::ExecOptions::Engine pits_engine = pits::ExecOptions::Engine::Auto;
  bool contention = false;
  std::size_t events = 20;
  std::string task;             ///< --task filter for explain
  std::string fault_plan_file;  ///< --fault-plan for simulate/run/faults
  std::string fail_on = "error";  ///< --fail-on threshold for check
  bool json = false;              ///< --json for lint
  int jobs = 0;    ///< --jobs worker threads (0 = BANGER_JOBS or all cores)
  int queue_cap = 8;  ///< --queue-cap stream inter-stage queue capacity
  int trials = 1;  ///< --trials Monte Carlo runs for faults
  std::string metrics_file;  ///< --metrics: write flat metrics JSON here
  // ---- serve options
  int port = -1;            ///< --port: TCP listen port (-1 = stdio mode)
  int max_inflight = 256;   ///< --max-inflight admission-control slots
  int deadline_ms = 0;      ///< --deadline-ms per-request deadline (0 = off)
  int cache_cap = 256;      ///< --cache-cap artifact cache entries
  bool serve_once = false;  ///< --once: answer one request and exit
};

[[noreturn]] void usage_error(const std::string& message) {
  // ErrorCode::Usage maps to exit status 2 (see run()).
  fail(ErrorCode::Usage, message + "\n" + usage());
}

/// Single checked parser for every numeric flag: rejects non-numeric
/// text, trailing junk, overflow, and values below `min_value`, naming
/// the offending flag and value in the diagnostic.
std::int64_t numeric_flag(const std::string& flag, std::string_view value,
                          std::int64_t min_value) {
  std::int64_t v = 0;
  if (!util::parse_int64(value, v)) {
    usage_error("option " + flag + " expects an integer, got `" +
                std::string(value) + "`");
  }
  // All numeric flags fit comfortably in int; anything bigger is a typo.
  constexpr std::int64_t kMax = std::numeric_limits<int>::max();
  if (v < min_value || v > kMax) {
    usage_error("option " + flag + " expects a value in [" +
                std::to_string(min_value) + ", " + std::to_string(kMax) +
                "], got `" + std::string(value) + "`");
  }
  return v;
}

Options parse_options(const std::vector<std::string>& args,
                      std::size_t first) {
  Options o;
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage_error("option " + a + " needs a value");
      return args[++i];
    };
    if (a == "--scheduler") {
      o.scheduler = next();
    } else if (a == "--format") {
      o.format = next();
      if (o.format != "gantt" && o.format != "table" && o.format != "svg" &&
          o.format != "trace" && o.format != "html" && o.format != "text" &&
          o.format != "json" && o.format != "sarif") {
        usage_error("unknown format `" + o.format + "`");
      }
    } else if (a == "-o" || a == "--output" || a == "--out") {
      o.output_file = next();
    } else if (a == "--metrics") {
      o.metrics_file = next();
    } else if (a == "--sizes") {
      o.sizes.clear();
      for (auto part : util::split(next(), ',')) {
        o.sizes.push_back(
            static_cast<int>(numeric_flag("--sizes", util::trim(part), 1)));
      }
      if (o.sizes.empty()) usage_error("--sizes needs at least one size");
    } else if (a == "--input") {
      const std::string& kv = next();
      auto eq = kv.find('=');
      if (eq == std::string::npos) {
        usage_error("--input expects VAR=EXPR, got `" + kv + "`");
      }
      const std::string var = kv.substr(0, eq);
      // The value is a PITS expression: numbers, vectors, formulas.
      o.inputs[var] = pits::eval_expression(kv.substr(eq + 1), {});
    } else if (a == "--inputs") {
      o.inputs_file = next();
    } else if (a == "--pits-engine") {
      const std::string& engine = next();
      if (engine == "vm") {
        o.pits_engine = pits::ExecOptions::Engine::Vm;
      } else if (engine == "walk") {
        o.pits_engine = pits::ExecOptions::Engine::Walk;
      } else {
        usage_error("--pits-engine expects `vm` or `walk`, got `" + engine +
                    "`");
      }
    } else if (a == "--task") {
      o.task = next();
    } else if (a == "--fault-plan") {
      o.fault_plan_file = next();
    } else if (a == "--fail-on") {
      o.fail_on = next();
      if (o.fail_on != "warning" && o.fail_on != "error") {
        usage_error("--fail-on expects `warning` or `error`, got `" +
                    o.fail_on + "`");
      }
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--contention") {
      o.contention = true;
    } else if (a == "--events") {
      o.events = static_cast<std::size_t>(numeric_flag("--events", next(), 0));
    } else if (a == "--jobs") {
      o.jobs = static_cast<int>(numeric_flag("--jobs", next(), 1));
    } else if (a == "--queue-cap") {
      o.queue_cap = static_cast<int>(numeric_flag("--queue-cap", next(), 1));
    } else if (a == "--port") {
      const std::string& value = next();
      o.port = static_cast<int>(numeric_flag("--port", value, 0));
      if (o.port > 65535) {
        usage_error("option --port expects a port in [0, 65535], got `" +
                    value + "`");
      }
    } else if (a == "--max-inflight") {
      o.max_inflight =
          static_cast<int>(numeric_flag("--max-inflight", next(), 1));
    } else if (a == "--deadline-ms") {
      o.deadline_ms =
          static_cast<int>(numeric_flag("--deadline-ms", next(), 0));
    } else if (a == "--cache-cap") {
      o.cache_cap = static_cast<int>(numeric_flag("--cache-cap", next(), 1));
    } else if (a == "--once") {
      o.serve_once = true;
    } else if (a == "--trials") {
      o.trials = static_cast<int>(numeric_flag("--trials", next(), 1));
    } else if (!a.empty() && a[0] == '-') {
      usage_error("unknown option `" + a + "`");
    } else {
      o.positional.push_back(a);
    }
  }
  return o;
}

Project load_project(const Options& o, std::size_t index) {
  if (o.positional.size() <= index) {
    usage_error("missing design file argument");
  }
  return Project::load(o.positional[index]);
}

machine::Machine load_machine_arg(const Options& o, std::size_t index) {
  if (o.positional.size() <= index) {
    usage_error("missing machine file argument");
  }
  return machine::load_machine(o.positional[index]);
}

void write_or_print(const std::string& text, const Options& o,
                    std::ostream& out) {
  if (o.output_file.empty()) {
    out << text;
  } else {
    std::ofstream file(o.output_file);
    if (!file) fail(ErrorCode::Io, "cannot write `" + o.output_file + "`");
    file << text;
  }
}

int cmd_info(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  const auto s = project.summary();
  out << "design: " << project.design().name() << "\n"
      << "levels: " << project.design().num_graphs()
      << "  hierarchy depth: " << s.depth << "\n"
      << "leaf tasks: " << s.leaf_tasks << "  dependences: " << s.edges
      << "  stores: " << s.stores << "\n"
      << "total work: " << util::format_double(s.total_work) << "  critical path: "
      << util::format_double(s.critical_path_work)
      << "  average parallelism: "
      << util::format_double(s.average_parallelism, 4) << "\n";
  const auto& flat = project.flattened();
  out << "input stores:";
  for (std::size_t i : flat.input_stores()) out << ' ' << flat.stores[i].var;
  out << "\noutput stores:";
  for (std::size_t i : flat.output_stores()) out << ' ' << flat.stores[i].var;
  out << "\n";
  return 0;
}

int cmd_validate(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);  // ctor validates
  out << "ok: " << project.design().name() << " ("
      << project.summary().leaf_tasks << " leaf tasks)\n";
  return 0;
}

int cmd_flatten(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  const auto& flat = project.flattened();
  util::Table table;
  table.set_header({"task", "work", "preds"});
  for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    std::string preds;
    for (graph::TaskId p : flat.graph.preds(t)) {
      if (!preds.empty()) preds += ",";
      preds += flat.graph.task(p).name;
    }
    table.add_row({flat.graph.task(t).name,
                   util::format_double(flat.graph.task(t).work), preds});
  }
  out << table.to_string();
  return 0;
}

int cmd_dot(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  write_or_print(viz::to_dot(project.design()), o, out);
  return 0;
}

int cmd_topo(const Options& o, std::ostream& out) {
  if (o.positional.empty()) usage_error("topo needs a kind");
  // Reuse the .machine topology grammar: "topology <kind> k=v...".
  std::string line = "topology";
  for (const auto& p : o.positional) line += ' ' + p;
  const auto machine = machine::parse_machine(line + "\n");
  const auto& t = machine.topology();
  out << t.name() << ": " << t.num_procs() << " processors, "
      << t.num_links() << " links, diameter " << t.diameter()
      << ", max degree " << t.max_degree() << ", avg hops "
      << util::format_double(t.average_distance(), 4) << "\n";
  out << viz::to_dot(t);
  return 0;
}

int cmd_schedule(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  // Shared with the serve daemon's `schedule` op — the service promises
  // responses byte-identical to this command.
  const auto r =
      serve::render_schedule(project.schedule(o.scheduler),
                             project.flattened().graph, project.machine(),
                             o.format);
  write_or_print(r.artifact, o, out);
  out << r.trailer;
  return 0;
}

int cmd_speedup(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  const auto curve = project.speedup(o.sizes, o.scheduler, o.jobs);
  util::Table table;
  table.set_header({"procs", "makespan", "speedup", "efficiency"});
  for (const auto& pt : curve.points) {
    table.add_row({std::to_string(pt.procs),
                   util::format_double(pt.makespan, 6),
                   util::format_double(pt.speedup, 4),
                   util::format_double(pt.efficiency, 4)});
  }
  out << table.to_string() << "\n"
      << viz::render_speedup_chart(curve);
  return 0;
}

int cmd_simulate(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  sim::SimOptions sim_opts;
  sim_opts.link_contention = o.contention;
  fault::FaultPlan plan;
  if (!o.fault_plan_file.empty()) {
    plan = fault::FaultPlan::load(o.fault_plan_file);
    sim_opts.faults = &plan;
  }
  const auto result = project.simulate(o.scheduler, sim_opts);
  if (!o.output_file.empty()) {
    // -o writes the Chrome trace of the replay for chrome://tracing.
    write_or_print(viz::to_chrome_trace(result, project.flattened().graph), o,
                   out);
  }
  out << "simulated makespan " << util::format_double(result.makespan, 6)
      << "s, " << result.num_messages << " messages, max queue delay "
      << util::format_double(result.max_queue_delay, 4) << "s\n";
  if (sim_opts.faults != nullptr) {
    out << "fault plan `" << plan.name() << "`: "
        << (result.complete ? "completed despite faults"
                            : "incomplete - work stranded")
        << ", " << result.killed.size() << " copies killed\n";
  }
  out << result.animation(o.events);
  return 0;
}

/// Parses a `--inputs FILE` batch: one trial per line, `VAR=EXPR` pairs
/// separated by `;`. Blank lines and `#` comments are skipped. An empty
/// pair list is a valid trial (a run with no external inputs).
std::vector<std::map<std::string, pits::Value>> load_trial_inputs(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::Io, "cannot open `" + path + "` for reading");
  std::vector<std::map<std::string, pits::Value>> batch;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto& trial = batch.emplace_back();
    for (auto part : util::split(trimmed, ';')) {
      const std::string_view pair = util::trim(part);
      if (pair.empty()) continue;
      const auto eq = pair.find('=');
      if (eq == std::string_view::npos) {
        fail(ErrorCode::Usage,
             "`" + path + "` line " + std::to_string(line_no) +
                 ": expected VAR=EXPR, got `" + std::string(pair) + "`");
      }
      const std::string var{util::trim(pair.substr(0, eq))};
      trial[var] = pits::eval_expression(std::string(pair.substr(eq + 1)), {});
    }
  }
  return batch;
}

int cmd_trial(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  exec::RunOptions run_opts;
  run_opts.pits.engine = o.pits_engine;
  if (!o.inputs_file.empty()) {
    if (!o.inputs.empty()) {
      usage_error("give either --input VAR=EXPR or --inputs FILE, not both");
    }
    const auto batch = load_trial_inputs(o.inputs_file);
    const serve::TrialBatchRender r =
        serve::render_trial_batch(project.trial_runs(batch, run_opts, o.jobs));
    out << r.text;
    return r.exit_code;
  }
  // No wall clock in trial output: the sequential reference run is
  // fully deterministic, and serve caches/replays the same bytes.
  out << serve::render_run_result(project.trial_run(o.inputs, run_opts),
                                  /*include_wall=*/false);
  return 0;
}

int cmd_run(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  exec::RunOptions run_opts;
  run_opts.pits.engine = o.pits_engine;
  fault::FaultPlan plan;
  if (!o.fault_plan_file.empty()) {
    plan = fault::FaultPlan::load(o.fault_plan_file);
    run_opts.faults = &plan;
  }
  const auto result = project.run(o.inputs, o.scheduler, run_opts);
  out << serve::render_run_result(result, /*include_wall=*/true);
  if (run_opts.faults != nullptr) {
    out << "fault plan `" << plan.name() << "`: " << result.workers_died
        << " workers died, " << result.tasks_rescued
        << " tasks rescued, recovery overhead "
        << util::format_double(result.recovery_overhead_seconds, 4) << "s\n";
  }
  return 0;
}

int cmd_stream(const Options& o, std::ostream& out, std::ostream& err) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  if (o.inputs_file.empty()) {
    usage_error("stream needs --inputs FILE (one batch per line)");
  }
  if (!o.inputs.empty()) {
    usage_error("give stream batches via --inputs FILE, not --input");
  }
  const auto batches = load_trial_inputs(o.inputs_file);
  exec::StreamOptions stream_opts;
  stream_opts.run.pits.engine = o.pits_engine;
  stream_opts.queue_capacity = static_cast<std::size_t>(o.queue_cap);
  stream_opts.jobs = o.jobs;
  const auto result = project.run_stream(batches, o.scheduler, stream_opts);
  // Batch output on stdout stays byte-identical to running each batch
  // through `banger run`; the execution report goes to stderr.
  const serve::TrialBatchRender r =
      serve::render_stream_batches(result.outcomes);
  out << r.text;
  err << result.report.render();
  return r.exit_code;
}

int cmd_faults(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  const auto& schedule = project.schedule(o.scheduler);
  const auto& graph = project.flattened().graph;

  fault::FaultPlan plan;
  if (!o.fault_plan_file.empty()) {
    plan = fault::FaultPlan::load(o.fault_plan_file);
  } else {
    // Default scenario: kill the busiest processor halfway through.
    plan = fault::plan_crash_busiest(schedule, 0.5);
  }

  core::FaultRunOptions opts;
  opts.sim.link_contention = o.contention;
  const auto report =
      core::run_with_faults(graph, project.machine(), schedule, plan, opts);

  viz::FaultOverlay overlay;
  for (const fault::CrashFault& c : plan.crashes()) {
    overlay.crashes.push_back({c.proc, c.at});
  }
  for (const sched::Placement& p : report.repair.new_placements) {
    overlay.reexecuted.push_back(p.task);
  }
  const sched::Schedule& shown =
      report.crashed ? report.repair.schedule : schedule;

  if (o.format == "svg") {
    write_or_print(viz::render_gantt_svg(shown, graph, overlay), o, out);
    return 0;
  }
  out << "fault plan `" << plan.name() << "` (seed " << plan.seed() << ") on "
      << schedule.scheduler_name() << " schedule\n";
  out << report.summary();
  if (o.trials > 1) {
    // Monte Carlo over the plan's stochastic outcomes: trial k runs
    // with seed + k, aggregated deterministically for any --jobs.
    core::FaultMonteCarloOptions mc;
    mc.trials = o.trials;
    mc.jobs = o.jobs;
    mc.run = opts;
    out << core::fault_monte_carlo(graph, project.machine(), schedule, plan,
                                   mc)
               .summary();
  }
  out << viz::render_gantt(shown, graph, overlay);
  if (o.events > 0) {
    sim::SimResult merged;
    merged.events = report.events;
    out << merged.animation(o.events);
  }
  return 0;
}

int cmd_trace(const Options& o, std::ostream& out) {
  // One Perfetto-loadable artifact: the planned schedule, the simulated
  // replay (with fault overlays when a plan is given), the scheduler's
  // internal rounds, and — under a fault plan — the recovery pipeline.
  // Only deterministic clock domains are exported, so the file is
  // byte-identical for any --jobs value. Rendering is shared with the
  // serve daemon's `trace` op; the ambient recorder is reused when
  // --metrics installed one, so the metrics file sees this command's
  // counters too.
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));

  sim::SimOptions sim_opts;
  sim_opts.link_contention = o.contention;
  std::optional<fault::FaultPlan> plan;
  if (!o.fault_plan_file.empty()) {
    plan = fault::FaultPlan::load(o.fault_plan_file);
  }
  const auto r = serve::render_trace(
      project.flattened().graph, project.machine(), o.scheduler, sim_opts,
      plan ? &*plan : nullptr, obs::current());
  write_or_print(r.artifact, o, out);
  if (!o.output_file.empty()) {
    out << "wrote " << r.events << " trace events to `" << o.output_file
        << "` (load in https://ui.perfetto.dev)\n";
  }
  return 0;
}

int cmd_report(const Options& o, std::ostream& out) {
  // One self-contained artifact: summary, lint, schedule, utilisation,
  // speedup, heuristic comparison — markdown by default, --format html
  // for the browser version with SVG charts.
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  if (o.format == "html") {
    HtmlReportOptions opts;
    opts.scheduler = o.scheduler;
    opts.speedup_sizes = o.sizes;
    write_or_print(render_html_report(project, opts), o, out);
    return 0;
  }
  std::ostringstream md;
  const auto s = project.summary();
  md << "# banger report: " << project.design().name() << "\n\n";
  md << "## Design\n\n"
     << "- leaf tasks: " << s.leaf_tasks << ", dependences: " << s.edges
     << ", stores: " << s.stores << "\n"
     << "- hierarchy depth: " << s.depth << "\n"
     << "- total work: " << util::format_double(s.total_work)
     << ", critical path: " << util::format_double(s.critical_path_work)
     << ", average parallelism: "
     << util::format_double(s.average_parallelism, 4) << "\n\n";

  md << "## Lint\n\n";
  const auto issues = lint_design(project.design());
  if (issues.empty()) {
    md << "clean\n\n";
  } else {
    for (const auto& issue : issues) md << "- " << issue.to_string() << "\n";
    md << "\n";
  }

  md << "## Schedule (" << o.scheduler << " on " << project.machine().name()
     << ")\n\n```\n"
     << viz::render_gantt(project.schedule(o.scheduler),
                          project.flattened().graph)
     << viz::render_utilization(project.schedule(o.scheduler)) << "```\n\n";

  md << "## Speedup prediction\n\n```\n";
  const auto curve = project.speedup(o.sizes, o.scheduler, o.jobs);
  md << viz::render_speedup_chart(curve) << "```\n\n";

  md << "## Heuristic comparison\n\n```\n";
  util::Table table;
  table.set_header({"scheduler", "makespan", "speedup", "duplicates"});
  const auto entries = sched::compare_schedulers(
      project.flattened().graph, project.machine(), sched::scheduler_names(),
      {}, o.jobs);
  for (const sched::CompareEntry& e : entries) {
    table.add_row({e.scheduler, util::format_double(e.metrics.makespan, 6),
                   util::format_double(e.metrics.speedup, 4),
                   std::to_string(e.metrics.duplicates)});
  }
  md << table.to_string() << "```\n";
  write_or_print(md.str(), o, out);
  return 0;
}

int cmd_explain(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  const auto& schedule = project.schedule(o.scheduler);
  out << sched::explain_report(schedule, project.flattened().graph,
                               project.machine(), o.task);
  return 0;
}

int cmd_grain(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  const machine::Machine machine = load_machine_arg(o, 1);
  const auto& graph = project.flattened().graph;
  const auto scheduler = sched::make_scheduler(o.scheduler);
  const auto before = scheduler->run(graph, machine);

  util::Table table;
  table.set_header({"min grain (s)", "tasks", "edges", "makespan",
                    "vs unpacked"});
  table.add_row({"(none)", std::to_string(graph.num_tasks()),
                 std::to_string(graph.num_edges()),
                 util::format_double(before.makespan(), 6), "1.0"});
  for (double grain : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    transform::GrainPackOptions opts;
    opts.min_grain_seconds = grain;
    opts.max_grain_seconds = grain * 4;
    const auto packed = transform::pack_grains(graph, machine, opts);
    const auto s = scheduler->run(packed.graph, machine);
    table.add_row({util::format_double(grain, 4),
                   std::to_string(packed.graph.num_tasks()),
                   std::to_string(packed.graph.num_edges()),
                   util::format_double(s.makespan(), 6),
                   util::format_double(s.makespan() / before.makespan(), 4)});
  }
  out << table.to_string();
  return 0;
}

int cmd_split(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  const machine::Machine machine = load_machine_arg(o, 1);
  const auto& graph = project.flattened().graph;
  const auto scheduler = sched::make_scheduler(o.scheduler);
  const auto before = scheduler->run(graph, machine);
  util::Table table;
  table.set_header({"split threshold (s)", "tasks", "makespan",
                    "vs unsplit"});
  table.add_row({"(none)", std::to_string(graph.num_tasks()),
                 util::format_double(before.makespan(), 6), "1.0"});
  for (double threshold : {16.0, 8.0, 4.0, 2.0, 1.0}) {
    const auto split =
        transform::split_heavy_tasks(graph, machine, threshold, 8);
    const auto s = scheduler->run(split.graph, machine);
    table.add_row({util::format_double(threshold, 4),
                   std::to_string(split.graph.num_tasks()),
                   util::format_double(s.makespan(), 6),
                   util::format_double(s.makespan() / before.makespan(), 4)});
  }
  out << table.to_string();
  out << "(planning transform: shards carry work and traffic shares, not"
         " PITS)\n";
  return 0;
}

int cmd_lint(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  if (o.json) {
    // Same interface-layer rules, rendered by the analysis engine's JSON
    // emitter (positions and rule codes included).
    analyze::AnalyzeOptions opts;
    opts.pits_rules = false;
    opts.determinacy_rules = false;
    const auto diagnostics = analyze::analyze_design(project.design(), opts);
    analyze::EmitOptions emit;
    emit.file = o.positional[0];
    write_or_print(analyze::emit_json(diagnostics, emit), o, out);
    return analyze::has_severity(diagnostics, analyze::Severity::Error) ? 1
                                                                        : 0;
  }
  const auto issues = lint_design(project.design());
  for (const LintIssue& issue : issues) {
    out << issue.to_string() << "\n";
  }
  if (issues.empty()) out << "clean: no issues found\n";
  return has_errors(issues) ? 1 : 0;
}

int cmd_check(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  // Shared with the serve daemon's `check` op (pass the same `file`
  // label there for byte-identical diagnostics).
  const auto r = serve::render_check(project.design(), o.format, o.fail_on,
                                     o.positional[0]);
  write_or_print(r.text, o, out);
  return r.exit_code;
}

int cmd_compare(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  const auto entries = sched::compare_schedulers(
      project.flattened().graph, project.machine(), sched::scheduler_names(),
      {}, o.jobs);
  util::Table table;
  table.set_header({"scheduler", "makespan", "speedup", "efficiency",
                    "procs used", "duplicates"});
  for (const sched::CompareEntry& e : entries) {
    const auto& m = e.metrics;
    table.add_row({e.scheduler, util::format_double(m.makespan, 6),
                   util::format_double(m.speedup, 4),
                   util::format_double(m.efficiency, 4),
                   std::to_string(m.procs_used),
                   std::to_string(m.duplicates)});
  }
  out << table.to_string();
  return 0;
}

int cmd_serve(const Options& o, std::istream& in, std::ostream& out,
              std::ostream& err) {
  serve::ServeOptions sopts;
  sopts.jobs = o.jobs;
  sopts.max_inflight = o.max_inflight;
  sopts.deadline_ms = o.deadline_ms;
  sopts.cache_capacity = static_cast<std::size_t>(o.cache_cap);
  serve::Server server(sopts);
  if (o.serve_once) {
    // Smoke-test mode: answer exactly one request from stdin and exit.
    std::string line;
    if (!std::getline(in, line)) return 0;
    out << server.handle_line(line) << "\n";
    return 0;
  }
  if (o.port >= 0) return server.serve_tcp(o.port, err);
  return server.serve_stream(in, out);
}

int cmd_codegen(const Options& o, std::ostream& out) {
  Project project = load_project(o, 0);
  project.set_machine(load_machine_arg(o, 1));
  write_or_print(project.generate_code(o.inputs, o.scheduler), o, out);
  return 0;
}

}  // namespace

std::string usage() {
  return
      "usage: banger <command> [arguments] [options]\n"
      "commands:\n"
      "  info     <design.pitl>                design summary\n"
      "  validate <design.pitl>                check a design\n"
      "  flatten  <design.pitl>                flattened task DAG\n"
      "  dot      <design.pitl>                Graphviz export\n"
      "  topo     <kind> key=value...          topology properties\n"
      "  schedule <design> <machine>           Gantt chart / table / SVG\n"
      "  speedup  <design> <machine>           speedup prediction\n"
      "  simulate <design> <machine>           discrete-event replay\n"
      "  trace    <design> <machine>           Perfetto/Chrome trace JSON of\n"
      "                                        schedule + replay + scheduler\n"
      "                                        internals (+ recovery with\n"
      "                                        --fault-plan); --out FILE\n"
      "  faults   <design> <machine>           crash injection + repair report\n"
      "  trial    <design>                     sequential trial run; --inputs\n"
      "                                        FILE batches many trials\n"
      "  run      <design> <machine>           threaded execution\n"
      "  stream   <design> <machine>           pipeline execution over a\n"
      "                                        stream of input batches\n"
      "                                        (--inputs FILE, one batch per\n"
      "                                        line); per-batch output on\n"
      "                                        stdout, execution report on\n"
      "                                        stderr\n"
      "  codegen  <design> <machine>           emit standalone C++\n"
      "  lint     <design.pitl>                interface diagnostics\n"
      "                                        (--json for machine output;\n"
      "                                        exits 1 when errors are found)\n"
      "  check    <design.pitl>                full static analysis: interface,\n"
      "                                        PITS dataflow, determinacy/races\n"
      "                                        (--format text|json|sarif,\n"
      "                                        --fail-on warning|error)\n"
      "  compare  <design> <machine>           all heuristics side by side\n"
      "  grain    <design> <machine>           grain-packing sweep\n"
      "  split    <design> <machine>           data-parallel split sweep\n"
      "  explain  <design> <machine>           placement rationale per task\n"
      "  report   <design> <machine>           one artifact of it all\n"
      "                                        (--format html for a browser page)\n"
      "  serve                                 long-lived design service:\n"
      "                                        JSON-lines requests on stdin\n"
      "                                        (or --port N for TCP), answered\n"
      "                                        concurrently with a content-\n"
      "                                        hashed artifact cache; --once\n"
      "                                        answers a single request\n"
      "options:\n"
      "  --scheduler NAME   mh|mcp|etf|hlfet|dls|dsh|cluster|serial|...\n"
      "  --input VAR=EXPR   bind an input store (PITS expression)\n"
      "  --inputs FILE      trial/stream: batched runs, one trial per line of\n"
      "                     `VAR=EXPR; VAR=EXPR` pairs (# comments allowed);\n"
      "                     compiles once, exits 1 if any trial fails\n"
      "  --sizes 1,2,4,8    processor counts for speedup\n"
      "  --format F         gantt|table|svg|trace (schedule);\n"
      "                     text|json|sarif (check)\n"
      "  --fail-on S        check exit threshold: warning|error (default error)\n"
      "  --json             lint: emit diagnostics as JSON\n"
      "  --contention       simulate per-link queueing\n"
      "  --fault-plan F     inject a .fault plan (simulate/run/faults;\n"
      "                     faults defaults to a busiest-proc crash)\n"
      "  --events N         simulation events to print\n"
      "  --jobs N           worker threads for compare/speedup/faults/report\n"
      "                     and batched trial --inputs runs\n"
      "                     (default: BANGER_JOBS env or all cores; results\n"
      "                     are identical for every value)\n"
      "  --trials N         faults: Monte Carlo over N seed-varied runs\n"
      "  --queue-cap N      stream: bounded inter-stage queue capacity in\n"
      "                     packets (default 8); backpressure, never loss\n"
      "  --pits-engine E    run/trial: PITS execution engine, `vm` (default)\n"
      "                     or `walk` (reference tree-walker); results are\n"
      "                     identical either way\n"
      "  --metrics FILE     write a flat JSON metrics summary of the command\n"
      "                     (scheduler rounds, cache hits, sim/exec/recovery\n"
      "                     counters) to FILE\n"
      "  --port N           serve: listen on 127.0.0.1:N (0 = ephemeral;\n"
      "                     default: stdio JSON-lines mode)\n"
      "  --max-inflight N   serve: shed requests beyond N in flight (def 256)\n"
      "  --deadline-ms N    serve: shed requests queued longer than N ms\n"
      "  --cache-cap N      serve: artifact cache entries before LRU\n"
      "                     eviction (default 256)\n"
      "  --once             serve: answer one request and exit\n"
      "  -o, --out FILE     write main artifact to FILE\n"
      "exit status: 0 success, 1 user error, 2 usage error\n";
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  return run(args, std::cin, out, err);
}

int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  try {
    const Options options = parse_options(args, 1);

    // --metrics installs an ambient recorder around the whole command;
    // every instrumented layer it exercises contributes counters.
    std::optional<obs::TraceRecorder> metrics_rec;
    std::optional<obs::ScopedRecorder> metrics_scope;
    if (!options.metrics_file.empty()) {
      metrics_rec.emplace();
      metrics_scope.emplace(*metrics_rec);
    }

    auto dispatch = [&]() -> int {
      if (command == "info") return cmd_info(options, out);
      if (command == "validate") return cmd_validate(options, out);
      if (command == "flatten") return cmd_flatten(options, out);
      if (command == "dot") return cmd_dot(options, out);
      if (command == "topo") return cmd_topo(options, out);
      if (command == "schedule") return cmd_schedule(options, out);
      if (command == "speedup") return cmd_speedup(options, out);
      if (command == "simulate") return cmd_simulate(options, out);
      if (command == "trace") return cmd_trace(options, out);
      if (command == "faults") return cmd_faults(options, out);
      if (command == "trial") return cmd_trial(options, out);
      if (command == "run") return cmd_run(options, out);
      if (command == "stream") return cmd_stream(options, out, err);
      if (command == "report") return cmd_report(options, out);
      if (command == "explain") return cmd_explain(options, out);
      if (command == "grain") return cmd_grain(options, out);
      if (command == "split") return cmd_split(options, out);
      if (command == "lint") return cmd_lint(options, out);
      if (command == "check") return cmd_check(options, out);
      if (command == "compare") return cmd_compare(options, out);
      if (command == "codegen") return cmd_codegen(options, out);
      if (command == "serve") return cmd_serve(options, in, out, err);
      err << "banger: unknown command `" << command << "`\n" << usage();
      return 2;
    };
    const int code = dispatch();

    if (metrics_rec) {
      metrics_scope.reset();
      std::ofstream file(options.metrics_file);
      if (!file) {
        fail(ErrorCode::Io,
             "cannot write `" + options.metrics_file + "`");
      }
      file << metrics_rec->metrics_json();
    }
    return code;
  } catch (const Error& e) {
    err << "banger: " << e.what() << "\n";
    return e.code() == ErrorCode::Usage ? 2 : 1;
  } catch (const std::exception& e) {
    err << "banger: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace banger::cli
