#include "workloads/lu.hpp"

#include <string>

#include "util/error.hpp"

namespace banger::workloads {

using graph::Design;
using graph::Node;
using graph::NodeKind;
using graph::TaskGraph;

namespace {

Node store(std::string name, double bytes) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = std::move(name);
  n.bytes = bytes;
  return n;
}

Node task(std::string name, double work, std::vector<std::string> in,
          std::vector<std::string> out, std::string pits) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = std::move(name);
  n.work = work;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  n.pits = std::move(pits);
  return n;
}

}  // namespace

Design lu3x3_design() {
  Design design("lu3x3");
  graph::DataflowGraph& root = design.root_graph();

  // ---- stores (the open rectangles of Fig. 1) ----
  root.add_node(store("A", 72));  // 9 doubles, row-major
  root.add_node(store("b", 24));
  root.add_node(store("L", 72));
  root.add_node(store("U", 72));
  root.add_node(store("x", 24));

  // ---- elimination tasks ----
  root.add_node(task("fan1", 2, {"A"}, {"l21", "l31"},
                     "l21 := A[3] / A[0]\n"
                     "l31 := A[6] / A[0]\n"));
  root.add_node(task("upd2", 4, {"A", "l21"}, {"u22", "u23"},
                     "u22 := A[4] - l21 * A[1]\n"
                     "u23 := A[5] - l21 * A[2]\n"));
  root.add_node(task("upd3", 4, {"A", "l31"}, {"a32p", "a33p"},
                     "a32p := A[7] - l31 * A[1]\n"
                     "a33p := A[8] - l31 * A[2]\n"));
  root.add_node(task("fan2", 1, {"a32p", "u22"}, {"l32"},
                     "l32 := a32p / u22\n"));
  root.add_node(task("upd4", 2, {"a33p", "l32", "u23"}, {"u33"},
                     "u33 := a33p - l32 * u23\n"));
  root.add_node(task("packL", 3, {"l21", "l31", "l32"}, {"L"},
                     "L := [1, 0, 0, l21, 1, 0, l31, l32, 1]\n"));
  root.add_node(task("packU", 3, {"A", "u22", "u23", "u33"}, {"U"},
                     "U := [A[0], A[1], A[2], 0, u22, u23, 0, 0, u33]\n"));

  // ---- the bold `solve` supernode and its expansion ----
  {
    Node solve;
    solve.kind = NodeKind::Super;
    solve.name = "solve";
    solve.inputs = {"L", "U", "b"};
    solve.outputs = {"x"};
    const graph::GraphId child = design.add_graph("solve_sub");
    solve.subgraph = child;
    root.add_node(std::move(solve));

    graph::DataflowGraph& sub = design.graph(child);
    sub.add_node(store("y", 24));
    sub.add_node(task("fwd", 6, {"L", "b"}, {"y"},
                      "-- forward substitution: L y = b\n"
                      "y1 := b[0]\n"
                      "y2 := b[1] - L[3] * y1\n"
                      "y3 := b[2] - L[6] * y1 - L[7] * y2\n"
                      "y := [y1, y2, y3]\n"));
    sub.add_node(task("back", 9, {"U", "y"}, {"x"},
                      "-- back substitution: U x = y\n"
                      "x3 := y[2] / U[8]\n"
                      "x2 := (y[1] - U[5] * x3) / U[4]\n"
                      "x1 := (y[0] - U[1] * x2 - U[2] * x3) / U[0]\n"
                      "x := [x1, x2, x3]\n"));
    sub.connect("fwd", "y", "y", 24);
    sub.connect("y", "back", "y", 24);
  }

  // ---- root arcs ----
  root.connect("A", "fan1", "A", 72);
  root.connect("A", "upd2", "A", 72);
  root.connect("A", "upd3", "A", 72);
  root.connect("A", "packU", "A", 72);
  root.connect("fan1", "upd2", "l21", 8);
  root.connect("fan1", "upd3", "l31", 8);
  root.connect("fan1", "packL", "l21", 8);
  root.connect("fan1", "packL", "l31", 8);
  root.connect("upd2", "fan2", "u22", 8);
  root.connect("upd3", "fan2", "a32p", 8);
  root.connect("upd2", "upd4", "u23", 8);
  root.connect("upd3", "upd4", "a33p", 8);
  root.connect("fan2", "upd4", "l32", 8);
  root.connect("fan2", "packL", "l32", 8);
  root.connect("upd2", "packU", "u22", 8);
  root.connect("upd2", "packU", "u23", 8);
  root.connect("upd4", "packU", "u33", 8);
  root.connect("packL", "L", "L", 72);
  root.connect("packU", "U", "U", 72);
  root.connect("L", "solve", "L", 72);
  root.connect("U", "solve", "U", 72);
  root.connect("b", "solve", "b", 24);
  root.connect("solve", "x", "x", 24);

  design.validate();
  return design;
}

TaskGraph lu_taskgraph(int n, double element_bytes) {
  if (n < 2) {
    fail(ErrorCode::Graph, "lu_taskgraph requires n >= 2");
  }
  TaskGraph g;
  // fan[k]: computes column multipliers at step k (n-1-k divisions).
  // upd[k][i]: updates row i (k < i < n) at step k (2*(n-1-k) flops).
  std::vector<std::vector<graph::TaskId>> upd(
      static_cast<std::size_t>(n),
      std::vector<graph::TaskId>(static_cast<std::size_t>(n), graph::kNoTask));
  std::vector<graph::TaskId> fan(static_cast<std::size_t>(n), graph::kNoTask);

  for (int k = 0; k + 1 < n; ++k) {
    const double remaining = n - 1 - k;
    graph::Task fan_task;
    fan_task.name = "fan" + std::to_string(k);
    fan_task.work = remaining;
    fan[static_cast<std::size_t>(k)] = g.add_task(std::move(fan_task));
    if (k > 0) {
      // The pivot row of step k is produced by upd[k-1][k].
      g.add_edge(upd[static_cast<std::size_t>(k - 1)]
                    [static_cast<std::size_t>(k)],
                 fan[static_cast<std::size_t>(k)], remaining * element_bytes,
                 "row" + std::to_string(k));
    }
    for (int i = k + 1; i < n; ++i) {
      graph::Task upd_task;
      upd_task.name = "upd" + std::to_string(k) + "_" + std::to_string(i);
      upd_task.work = 2 * remaining;
      const graph::TaskId id = g.add_task(std::move(upd_task));
      upd[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = id;
      // Needs this step's multipliers...
      g.add_edge(fan[static_cast<std::size_t>(k)], id, element_bytes,
                 "l" + std::to_string(k));
      // ...and row i as left by the previous step.
      if (k > 0) {
        g.add_edge(upd[static_cast<std::size_t>(k - 1)]
                      [static_cast<std::size_t>(i)],
                   id, remaining * element_bytes,
                   "row" + std::to_string(i));
      }
    }
  }
  return g;
}

}  // namespace banger::workloads
