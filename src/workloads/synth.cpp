#include "workloads/synth.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>

namespace banger::workloads {

namespace {

/// Variable names must be identifiers; task names may contain dots.
std::string var_of(const std::string& task_name) {
  std::string v = "v_";
  for (char c : task_name) {
    v += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return v;
}

}  // namespace

void synthesize_pits(graph::TaskGraph& graph, const SynthOptions& options) {
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    graph::Task& task = graph.task(t);
    const std::string out_var = var_of(task.name);

    std::string src = "acc := 1\n";
    std::vector<std::string> inputs;
    for (graph::TaskId p : graph.preds(t)) {
      const std::string in_var = var_of(graph.task(p).name);
      inputs.push_back(in_var);
      src += "acc := acc + " + in_var + "\n";
    }
    const auto iters = static_cast<long long>(
        std::max(1.0, task.work * options.iterations_per_work));
    src += "repeat " + std::to_string(iters) + " times\n";
    src += "  acc := acc + sin(acc) * 0.001\n";
    src += "end\n";
    src += out_var + " := acc\n";

    task.pits = std::move(src);
    task.inputs = std::move(inputs);
    task.outputs = {out_var};
  }
  // No edge relabelling needed: the executor falls back to matching a
  // predecessor by its declared outputs when the edge label is silent.
}

graph::FlattenResult as_flatten(graph::TaskGraph graph) {
  graph::FlattenResult flat;
  flat.graph = std::move(graph);
  return flat;
}

}  // namespace banger::workloads
